//! # inlinetune
//!
//! A from-scratch Rust reproduction of **“Automatic Tuning of Inlining
//! Heuristics”** (John Cavazos & Michael F.P. O'Boyle, SC 2005): off-line
//! genetic-algorithm tuning of a dynamic compiler's inlining heuristic,
//! specialized per compilation scenario, optimization goal and target
//! architecture.
//!
//! This crate is a facade re-exporting the workspace's sub-crates:
//!
//! | Module | Crate | Role |
//! |---|---|---|
//! | [`simrng`] | `inlinetune-simrng` | deterministic PRNG + distributions |
//! | [`ir`] | `inlinetune-ir` | bytecode-like IR, interpreter, size/frequency analysis |
//! | [`inliner`] | `inlinetune-inline` | the Fig. 3/4 heuristics and the inlining transformation |
//! | [`jit`] | `inlinetune-jit` | the VM simulator: compilers, adaptive system, scenarios |
//! | [`workloads`] | `inlinetune-workloads` | synthetic SPECjvm98 / DaCapo+JBB suites |
//! | [`ga`] | `inlinetune-ga` | the genetic-algorithm engine (ECJ analog) |
//! | [`search`] | `inlinetune-search` | pluggable search strategies + the racing portfolio |
//! | [`tuner`] | `inlinetune-core` | the paper's contribution: the off-line tuning pipeline |
//! | [`problems`] | `inlinetune-problems` | the problem-generic seam: inlining, compiler flags, data-structure selection |
//! | [`served`] | `inlinetune-served` | the `tuned` daemon: job queue, checkpoint/resume, wire protocol, remote dispatch |
//! | [`evald`] | `inlinetune-evald` | the remote fitness-evaluation worker: eval RPCs, heartbeats, chaos injection |
//! | [`obs`] | `inlinetune-obs` | observability: spans, latency histograms, counters, Prometheus exposition |
//! | [`stored`] | `inlinetune-stored` | persistent fitness store: crash-safe segments, warm-start seeds |
//!
//! ## Quickstart
//!
//! ```
//! use inlinetune::prelude::*;
//!
//! // Measure a benchmark under the Jikes default heuristic…
//! let bench = workloads::benchmark_by_name("db").expect("known benchmark");
//! let arch = ArchModel::pentium4();
//! let cfg = AdaptConfig::default();
//! let default = measure(&bench.program, Scenario::Opt, &arch,
//!                       &InlineParams::jikes_default(), &cfg);
//!
//! // …and with inlining disabled: inlining should help running time.
//! let off = measure(&bench.program, Scenario::Opt, &arch,
//!                   &InlineParams::disabled(), &cfg);
//! assert!(default.running_cycles < off.running_cycles);
//! ```
//!
//! See the `examples/` directory for tuning runs and the `experiments`
//! binary for the full paper reproduction.

pub use evald;
pub use ga;
pub use inliner;
pub use ir;
pub use jit;
pub use obs;
pub use problems;
pub use search;
pub use served;
pub use simrng;
pub use stored;
pub use tuner;
pub use workloads;

/// The names most programs need, in one import.
pub mod prelude {
    pub use ga::{GaConfig, GeneticAlgorithm, Ranges};
    pub use inliner::{InlineParams, ParamRanges};
    pub use ir::{Method, MethodId, Program};
    pub use jit::{measure, AdaptConfig, ArchModel, Measurement, Scenario};
    pub use tuner::{evaluate_suite, paper_tasks, Goal, Tuner, TuningTask};
    pub use workloads::{
        self, all_benchmarks, benchmark_by_name, dacapo_jbb, specjvm98, Benchmark,
    };
}
