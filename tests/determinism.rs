//! Whole-pipeline determinism: the experiments are advertised as
//! bit-reproducible; these tests pin that promise at every level.

use inlinetune::prelude::*;

#[test]
fn suite_generation_is_bit_identical() {
    let a = specjvm98();
    let b = specjvm98();
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.program, y.program, "{}", x.name());
    }
}

#[test]
fn measurements_are_bit_identical_across_repeats() {
    let b = benchmark_by_name("javac").unwrap();
    let arch = ArchModel::pentium4();
    let cfg = AdaptConfig::default();
    for scenario in [Scenario::Opt, Scenario::Adapt] {
        let m1 = measure(
            &b.program,
            scenario,
            &arch,
            &InlineParams::jikes_default(),
            &cfg,
        );
        let m2 = measure(
            &b.program,
            scenario,
            &arch,
            &InlineParams::jikes_default(),
            &cfg,
        );
        // Full struct equality, including every f64 to the last bit.
        assert_eq!(m1, m2, "{scenario}");
        assert!(m1.total_cycles.to_bits() == m2.total_cycles.to_bits());
    }
}

#[test]
fn fitness_is_bit_identical_across_tuner_instances() {
    let task = TuningTask {
        name: "Opt:Tot".into(),
        scenario: Scenario::Opt,
        goal: Goal::Total,
        arch: ArchModel::pentium4(),
    };
    let training = vec![
        benchmark_by_name("db").unwrap(),
        benchmark_by_name("jess").unwrap(),
    ];
    let t1 = Tuner::new(task.clone(), training.clone(), AdaptConfig::default());
    let t2 = Tuner::new(task, training, AdaptConfig::default());
    let p = InlineParams::from_genes(&[31, 9, 7, 512, 135]);
    assert_eq!(t1.fitness(&p).to_bits(), t2.fitness(&p).to_bits());
}

#[test]
fn serialized_programs_are_stable_text() {
    // The pretty form is the IR's serialized format; it must be stable
    // across generations of the same benchmark.
    let a = ir::pretty::program_to_string(&benchmark_by_name("db").unwrap().program);
    let b = ir::pretty::program_to_string(&benchmark_by_name("db").unwrap().program);
    assert_eq!(a, b);
    // And it reloads to the identical program.
    let p = ir::parse::parse_program(&a).unwrap();
    assert_eq!(p, benchmark_by_name("db").unwrap().program);
}
