//! Qualitative paper-shape assertions: the claims of the paper's
//! motivation and evaluation sections that our simulator must reproduce.
//!
//! These are the load-bearing integration tests: if a calibration change
//! breaks one of them, the reproduction story breaks with it.

use inlinetune::prelude::*;

fn x86() -> ArchModel {
    ArchModel::pentium4()
}

fn cfg() -> AdaptConfig {
    AdaptConfig::default()
}

/// Fig. 1(a): under `Opt`, the default heuristic substantially improves
/// *running* time on the training suite.
#[test]
fn fig1_inlining_improves_opt_running_time() {
    let mut ratios = Vec::new();
    for b in specjvm98() {
        let with = measure(
            &b.program,
            Scenario::Opt,
            &x86(),
            &InlineParams::jikes_default(),
            &cfg(),
        );
        let without = measure(
            &b.program,
            Scenario::Opt,
            &x86(),
            &InlineParams::disabled(),
            &cfg(),
        );
        ratios.push(with.running_cycles / without.running_cycles);
    }
    let avg = ratios.iter().sum::<f64>() / ratios.len() as f64;
    assert!(
        avg < 0.9,
        "inlining must cut Opt running time by >10%, got avg ratio {avg:.3}"
    );
}

/// Fig. 1: inlining's *total*-time effect is much weaker than its
/// running-time effect under `Opt` (compile time eats the gains), and at
/// least one program degrades — the paper's motivation for tuning.
#[test]
fn fig1_total_time_is_a_tradeoff_under_opt() {
    let mut run_sum = 0.0;
    let mut tot_sum = 0.0;
    let mut degraded = 0;
    let suite = specjvm98();
    for b in &suite {
        let with = measure(
            &b.program,
            Scenario::Opt,
            &x86(),
            &InlineParams::jikes_default(),
            &cfg(),
        );
        let without = measure(
            &b.program,
            Scenario::Opt,
            &x86(),
            &InlineParams::disabled(),
            &cfg(),
        );
        run_sum += with.running_cycles / without.running_cycles;
        let t = with.total_cycles / without.total_cycles;
        tot_sum += t;
        if t > 1.0 {
            degraded += 1;
        }
    }
    let n = suite.len() as f64;
    assert!(
        tot_sum / n > run_sum / n + 0.05,
        "total ratios ({:.3}) must sit well above running ratios ({:.3})",
        tot_sum / n,
        run_sum / n
    );
    assert!(
        degraded >= 1,
        "at least one program's total time must degrade"
    );
}

/// Fig. 2: the best `MAX_INLINE_DEPTH` differs across programs and
/// scenarios, and the sweep is not flat for jess under Opt.
#[test]
fn fig2_best_depth_is_program_and_scenario_dependent() {
    let sweep = |name: &str, scenario: Scenario| -> Vec<f64> {
        let b = benchmark_by_name(name).unwrap();
        (0..=10u32)
            .map(|depth| {
                let params = InlineParams {
                    max_inline_depth: depth,
                    ..InlineParams::jikes_default()
                };
                measure(&b.program, scenario, &x86(), &params, &cfg()).total_cycles
            })
            .collect()
    };
    let best = |ys: &[f64]| {
        ys.iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0
    };
    let jess_opt = sweep("jess", Scenario::Opt);
    let compress_opt = sweep("compress", Scenario::Opt);
    // jess prefers shallow inlining under Opt (paper: best depth 0); our
    // model: within 0..=2.
    assert!(
        best(&jess_opt) <= 2,
        "jess Opt best depth {}",
        best(&jess_opt)
    );
    // compress tolerates (benefits from) deeper inlining than jess.
    assert!(best(&compress_opt) >= best(&jess_opt));
    // Depth genuinely matters for jess: worst/best spread above 2%.
    let (lo, hi) = (
        jess_opt.iter().cloned().fold(f64::INFINITY, f64::min),
        jess_opt.iter().cloned().fold(0.0f64, f64::max),
    );
    assert!(hi / lo > 1.02, "jess sweep too flat: {lo}..{hi}");
}

/// The train/test structural split: DaCapo-like programs are far more
/// compile-heavy under `Opt` than SPEC-like ones — the substrate of the
/// paper's 26–37% unseen-suite total-time wins.
#[test]
fn dacapo_is_compile_dominated_under_opt() {
    let share = |suite: &[Benchmark]| -> f64 {
        let mut s = 0.0;
        for b in suite {
            let m = measure(
                &b.program,
                Scenario::Opt,
                &x86(),
                &InlineParams::jikes_default(),
                &cfg(),
            );
            s += m.compile_cycles / m.total_cycles;
        }
        s / suite.len() as f64
    };
    let spec = share(&specjvm98());
    let dacapo = share(&dacapo_jbb());
    assert!(
        dacapo > spec + 0.15,
        "DaCapo compile share ({dacapo:.2}) must exceed SPEC's ({spec:.2}) clearly"
    );
}

/// §6.3: parameters tuned (here: hand-set small) to restrict inlining cut
/// `Opt` compile time on the test suite markedly versus the default.
#[test]
fn restrictive_params_cut_dacapo_compile_time() {
    let restrictive = InlineParams {
        callee_max_size: 10,
        always_inline_size: 6,
        max_inline_depth: 8,
        caller_max_size: 400,
        hot_callee_max_size: 135,
    };
    let mut default_compile = 0.0;
    let mut restricted_compile = 0.0;
    for b in dacapo_jbb() {
        default_compile += measure(
            &b.program,
            Scenario::Opt,
            &x86(),
            &InlineParams::jikes_default(),
            &cfg(),
        )
        .compile_cycles;
        restricted_compile +=
            measure(&b.program, Scenario::Opt, &x86(), &restrictive, &cfg()).compile_cycles;
    }
    assert!(
        restricted_compile < 0.8 * default_compile,
        "restrictive params must cut compile cycles by >20%: {restricted_compile:.3e} vs {default_compile:.3e}"
    );
}

/// The architectures differ the way the paper says: the PPC model
/// punishes code growth harder (smaller I-cache), the x86 model rewards
/// call elimination harder (deeper pipeline).
#[test]
fn architecture_asymmetries_hold() {
    let ppc = ArchModel::powerpc_g4();
    let p4 = x86();
    assert!(p4.call_overhead > ppc.call_overhead);
    assert!(p4.icache_capacity > ppc.icache_capacity);
    // Same footprint: the PPC penalty is at least the x86 penalty.
    for f in [10_000.0, 30_000.0, 100_000.0] {
        assert!(ppc.icache_penalty(f) >= p4.icache_penalty(f));
    }
}

/// Under `Adapt`, the system compiles far less at the optimizing level
/// than `Opt` does, and its steady-state running time is no better.
#[test]
fn adapt_trades_running_for_compile() {
    for name in ["jess", "javac", "antlr"] {
        let b = benchmark_by_name(name).unwrap();
        let params = InlineParams::jikes_default();
        let adapt = measure(&b.program, Scenario::Adapt, &x86(), &params, &cfg());
        let opt = measure(&b.program, Scenario::Opt, &x86(), &params, &cfg());
        assert!(
            adapt.opt_compile_cycles < opt.opt_compile_cycles,
            "{name}: adapt must opt-compile less"
        );
        assert!(adapt.n_opt_methods < opt.n_opt_methods, "{name}");
        assert!(adapt.n_baseline_methods > 0, "{name}");
    }
}
