//! Cross-crate semantic soundness: the compiled (inlined) form of real
//! workload programs computes exactly what the original computes, for any
//! heuristic the tuner might propose.

use inlinetune::prelude::*;
use ir::interp::{run, InterpLimits};
use simrng::Rng;
use workloads::{generate, BenchmarkSpec, OpMix, Suite};

fn tiny_spec(seed_name: &'static str) -> BenchmarkSpec {
    BenchmarkSpec {
        name: seed_name,
        description: "integration-test workload",
        suite: Suite::SpecJvm98,
        n_workers: 20,
        n_accessors: 10,
        n_layers: 4,
        body_median_ops: 6.0,
        body_sigma: 0.8,
        fanout_mean: 1.6,
        hot_skew: 1.2,
        n_phases: 2,
        driver_iters: 3,
        phase_trips: 3,
        kernel_prob: 0.4,
        kernel_trips: 8,
        call_in_loop_prob: 0.3,
        cold_branch_prob: 0.25,
        mix: OpMix::INT,
    }
}

fn limits() -> InterpLimits {
    InterpLimits {
        fuel: 100_000_000,
        max_depth: 128,
    }
}

#[test]
fn inlining_workload_programs_preserves_semantics_across_param_space() {
    let mut rng = Rng::seed_from_u64(0x5eed);
    for case in 0..12 {
        let program = generate(&tiny_spec("sem-test"), 1000 + case);
        let before = run(&program, &[], &limits()).expect("workload runs");
        // A spread of parameter vectors across the search space, plus the
        // two reference points.
        let mut params_list = vec![InlineParams::jikes_default(), InlineParams::disabled()];
        for _ in 0..4 {
            params_list.push(InlineParams {
                callee_max_size: rng.range_i64(0, 60) as u32,
                always_inline_size: rng.range_i64(0, 35) as u32,
                max_inline_depth: rng.range_i64(0, 15) as u32,
                caller_max_size: rng.range_i64(0, 4000) as u32,
                hot_callee_max_size: rng.range_i64(0, 400) as u32,
            });
        }
        let all_ids: Vec<MethodId> = program.methods.iter().map(|m| m.id).collect();
        for params in &params_list {
            let (inlined, _) =
                inliner::inline_program(&program, params, &inliner::HotSites::new(), &all_ids);
            let after = run(&inlined, &[], &limits()).expect("inlined workload runs");
            assert_eq!(before.value, after.value, "case {case}, params {params}");
            assert_eq!(before.heap_digest, after.heap_digest, "case {case}");
            assert_eq!(before.fuel_used, after.fuel_used, "case {case}");
            assert!(after.calls_executed <= before.calls_executed);
        }
    }
}

#[test]
fn adaptive_hot_site_inlining_also_preserves_semantics() {
    let program = generate(&tiny_spec("sem-hot"), 77);
    let before = run(&program, &[], &limits()).expect("runs");
    // Use the real adaptive plan's hot sites.
    let plan = jit::adaptive::plan(&program, &ArchModel::pentium4(), &AdaptConfig::default());
    let all_ids: Vec<MethodId> = program.methods.iter().map(|m| m.id).collect();
    let (inlined, stats) = inliner::inline_program(
        &program,
        &InlineParams::jikes_default(),
        &plan.hot_sites,
        &all_ids,
    );
    let after = run(&inlined, &[], &limits()).expect("inlined runs");
    assert_eq!(before.value, after.value);
    assert_eq!(before.heap_digest, after.heap_digest);
    // The hot set should actually have been consulted.
    let total_hot: u32 = stats.values().map(|s| s.hot_considered).sum();
    assert!(total_hot > 0, "no hot sites were considered");
}

#[test]
fn compiled_program_states_validate_structurally() {
    let program = generate(&tiny_spec("sem-validate"), 5);
    let arch = ArchModel::pentium4();
    let state = jit::compile::compile_all_opt(
        &program,
        &arch,
        &InlineParams::jikes_default(),
        &inliner::HotSites::new(),
    );
    assert!(
        ir::validate::validate(&state.program).is_empty(),
        "{:?}",
        ir::validate::validate(&state.program)
    );
}
