//! End-to-end integration: tune on a training suite, apply to unseen
//! programs — the full pipeline of the paper in miniature.

use inlinetune::prelude::*;

fn small_ga() -> GaConfig {
    GaConfig {
        pop_size: 10,
        generations: 6,
        stagnation_limit: None,
        threads: 1,
        seed: 31,
        ..GaConfig::default()
    }
}

#[test]
fn tune_then_evaluate_unseen_benchmark() {
    let training = vec![
        benchmark_by_name("db").unwrap(),
        benchmark_by_name("compress").unwrap(),
    ];
    let task = TuningTask {
        name: "Opt:Tot".into(),
        scenario: Scenario::Opt,
        goal: Goal::Total,
        arch: ArchModel::pentium4(),
    };
    let tuner = Tuner::new(task.clone(), training, AdaptConfig::default());
    let outcome = tuner.tune(small_ga());

    // The tuned heuristic is valid and at least roughly competitive.
    assert!(outcome.fitness <= 1.05, "fitness {}", outcome.fitness);
    assert!(task.ranges().contains(&outcome.params.to_genes()));

    // Apply to a program the tuner never saw.
    let unseen = vec![benchmark_by_name("jess").unwrap()];
    let eval = evaluate_suite(
        &unseen,
        task.scenario,
        &task.arch,
        &outcome.params,
        &AdaptConfig::default(),
    );
    let ratio = eval.benches[0].total_ratio;
    assert!(ratio.is_finite() && ratio > 0.0);
}

#[test]
fn tuning_is_deterministic_given_seed() {
    let training = vec![benchmark_by_name("db").unwrap()];
    let task = TuningTask {
        name: "Adapt".into(),
        scenario: Scenario::Adapt,
        goal: Goal::Balance,
        arch: ArchModel::powerpc_g4(),
    };
    let a = Tuner::new(task.clone(), training.clone(), AdaptConfig::default()).tune(small_ga());
    let b = Tuner::new(task, training, AdaptConfig::default()).tune(small_ga());
    assert_eq!(a.params, b.params);
    assert_eq!(a.fitness, b.fitness);
    assert_eq!(a.ga.evaluations, b.ga.evaluations);
}

#[test]
fn goals_produce_different_heuristics_or_tradeoffs() {
    // Tuning for Total vs Running must not yield a heuristic that is
    // worse on its own goal than the other goal's winner.
    let training = vec![benchmark_by_name("jess").unwrap()];
    let arch = ArchModel::pentium4();
    let mk_task = |goal| TuningTask {
        name: format!("Opt:{goal}"),
        scenario: Scenario::Opt,
        goal,
        arch: arch.clone(),
    };
    let cfg = AdaptConfig::default();
    let for_total = Tuner::new(mk_task(Goal::Total), training.clone(), cfg).tune(small_ga());
    let for_running = Tuner::new(mk_task(Goal::Running), training.clone(), cfg).tune(small_ga());

    let m =
        |params: &InlineParams| measure(&training[0].program, Scenario::Opt, &arch, params, &cfg);
    let (mt, mr) = (m(&for_total.params), m(&for_running.params));
    // Each winner is at least as good on its own metric (tiny slack for
    // the small search budget).
    assert!(
        mt.total_cycles <= mr.total_cycles * 1.02,
        "{} vs {}",
        mt.total_cycles,
        mr.total_cycles
    );
    assert!(mr.running_cycles <= mt.running_cycles * 1.02);
}

#[test]
fn prelude_exports_compile_and_work_together() {
    // The doc-advertised flow, in one breath.
    let b = benchmark_by_name("raytrace").unwrap();
    let m = measure(
        &b.program,
        Scenario::Adapt,
        &ArchModel::pentium4(),
        &InlineParams::jikes_default(),
        &AdaptConfig::default(),
    );
    assert!(m.total_cycles > m.running_cycles);
    assert!(m.n_opt_methods + m.n_baseline_methods > 0);
}
