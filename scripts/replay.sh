#!/usr/bin/env bash
# Replay one failing simulation seed with its full fault trace.
#
#   scripts/replay.sh 1442              # replay seed 1442
#   scripts/replay.sh 1442 --broken     # ...against the redispatch-off build
#
# The sweep (`simtest --seeds N`, run by scripts/ci.sh) prints a
# `replay: scripts/replay.sh <seed>` line for every failing seed. The
# whole scenario — fault plan, crash/partition timeline, GA seed — is
# derived from that one integer, so this reproduces the exact failure:
# same frames dropped, same virtual timestamps, same verdict.
set -euo pipefail
cd "$(dirname "$0")/.."

if [ $# -lt 1 ]; then
  echo "usage: scripts/replay.sh <seed> [--broken]" >&2
  exit 2
fi
SEED=$1
shift

cargo build --release --offline -p inlinetune-sim --bin simtest >/dev/null
exec target/release/simtest --seed "$SEED" --trace "$@"
