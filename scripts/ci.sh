#!/usr/bin/env bash
# CI for inlinetune: format check, fully offline build + test, an
# end-to-end smoke run of the `tuned` daemon (submit a tiny Opt:Tot job
# over localhost, watch it finish, pull metrics, shut down), and a
# distributed-evaluation smoke via scripts/bench.sh (1 local vs
# 2 evald workers, bit-identity enforced).
#
# The workspace must never need the network: `--offline` everywhere.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo build --release --offline"
cargo build --workspace --release --offline

echo "== cargo test --offline"
cargo test --workspace --offline --quiet

echo "== tuned smoke run"
TUNED=target/release/tuned
RUN_DIR=$(mktemp -d)
trap 'kill "$DAEMON_PID" 2>/dev/null || true; rm -rf "$RUN_DIR"' EXIT

"$TUNED" serve --addr 127.0.0.1:0 --dir "$RUN_DIR" --workers 1 &
DAEMON_PID=$!

# The daemon publishes its OS-assigned port in <dir>/addr.
for _ in $(seq 1 100); do
  [ -s "$RUN_DIR/addr" ] && break
  sleep 0.1
done
ADDR=$(cat "$RUN_DIR/addr")
echo "daemon at $ADDR"

SUBMIT=$("$TUNED" submit --addr "$ADDR" --name smoke --scenario opt --goal tot \
  --bench db --pop 6 --gens 2 --seed 7 --threads 1)
echo "submitted: $SUBMIT"
ID=$(printf '%s' "$SUBMIT" | sed -n 's/.*"id":\([0-9]*\).*/\1/p')

"$TUNED" watch --addr "$ADDR" --id "$ID" | tail -n 1 | grep -q '"state":"done"' \
  || { echo "smoke job did not finish"; exit 1; }

"$TUNED" metrics --addr "$ADDR" | grep -q '"generations":' \
  || { echo "metrics missing counters"; exit 1; }

"$TUNED" shutdown --addr "$ADDR"
wait "$DAEMON_PID"

echo "== evald distributed-evaluation smoke (scripts/bench.sh)"
BENCH_POP=6 BENCH_GENS=2 scripts/bench.sh >/dev/null
grep -q '"identical": true' BENCH_evald.json \
  || { echo "distributed run not bit-identical to local"; exit 1; }

echo "== CI OK"
