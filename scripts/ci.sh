#!/usr/bin/env bash
# CI for inlinetune: format check, fully offline build + test, an
# end-to-end smoke run of the `tuned` daemon (submit a tiny Opt:Tot job
# over localhost, watch it finish, pull metrics, then smoke-tune the
# flags and dss problem domains through the same daemon and prove they
# reload from the run directory after a restart), a
# distributed-evaluation smoke via scripts/bench.sh (1 local vs
# 2 evald workers, bit-identity enforced and the distributed case
# required to beat local throughput on multi-core hosts — single-core
# hosts can't parallelize, so there the gate bounds dispatch overhead
# instead and the sim scaling suite carries the speedup proof; plus a
# search-strategy
# shootout whose racing portfolio must hit its shared memo, and a
# persistent-store bench whose warm start must match cold in no more
# evaluations), a deterministic-simulation sweep: 200 seeded fault
# schedules over the simulated cluster (crates/sim) plus seeded
# kill-mid-append store crash/recovery scenarios, every seed required
# to reproduce the fault-free result bit-for-bit (failing seeds replay
# with scripts/replay.sh <seed> / simtest --store-seed <seed>), and the
# throughput-scaling suite (`simtest --scale`): a virtual worker fleet
# that must beat serial at 2 workers and hold >=70% parallel efficiency
# at 16, bit-identical and exactly-once under seeded fault variants.
# Finally the multi-tenant shard soak (`simtest --shard-seeds`): per
# seed, 1000 virtual clients across four tenants push jobs through the
# sharded control plane over a shared 100-worker fleet — no lost jobs,
# quotas respected, no tenant starved, results bit-identical. PR 10
# adds the online drift sweep (seeded drifting workloads under fault
# weather, every daemon trajectory bit-identical to the in-process
# reference runner), a calibration-stability check for the perf-gate
# baseline, and BENCH_online.json (calibrated hot-path gates plus the
# online-vs-frozen drift-study verdict) via scripts/bench.sh.
#
# The workspace must never need the network: `--offline` everywhere.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo build --release --offline"
cargo build --workspace --release --offline

echo "== cargo test --offline"
cargo test --workspace --offline --quiet

# The property-test suites (obs histogram invariants, registry JSON
# round-trips) need the external `proptest` crate, which is not vendored:
# they are gated behind a bare `proptest` cargo feature and skipped unless
# a dev-dependency on proptest has been added (networked checkout).
has_proptest_dep() { # manifest
  awk '/^\[dev-dependencies\]/ { f = 1; next } /^\[/ { f = 0 } f && /^proptest *=/' \
    "$1" | grep -q .
}
if has_proptest_dep crates/obs/Cargo.toml; then
  echo "== cargo test --features proptest (property suites)"
  cargo test -p inlinetune-obs --offline --quiet --features proptest
  cargo test -p inlinetune-served --offline --quiet --features proptest
  cargo test -p inlinetune-problems --offline --quiet --features proptest
  cargo test -p inlinetune-shard --offline --quiet --features proptest
  cargo test -p inlinetune-online --offline --quiet --features proptest
else
  echo "== property suites skipped (proptest crate not vendored)"
fi

echo "== calibration stability (perf-gate baseline)"
# The per-machine baseline every calibrated perf gate scales from must
# itself be repeatable: five back-to-back calibrations, each required
# to hold a <20% coefficient of variation and to agree with the others
# within 30%. #[ignore]d in plain `cargo test` (developer machines can
# be arbitrarily loaded); CI runs it explicitly, in release mode like
# the gates themselves.
cargo test -p inlinetune-obs --release --offline --test calibration \
  -- --ignored --quiet

echo "== tuned smoke run"
TUNED=target/release/tuned
RUN_DIR=$(mktemp -d)
trap 'kill "$DAEMON_PID" 2>/dev/null || true; rm -rf "$RUN_DIR"' EXIT

"$TUNED" serve --addr 127.0.0.1:0 --dir "$RUN_DIR" --workers 1 \
  --metrics-listen 127.0.0.1:0 &
DAEMON_PID=$!

# The daemon publishes its OS-assigned port in <dir>/addr.
for _ in $(seq 1 100); do
  [ -s "$RUN_DIR/addr" ] && break
  sleep 0.1
done
ADDR=$(cat "$RUN_DIR/addr")
echo "daemon at $ADDR"

SUBMIT=$("$TUNED" submit --addr "$ADDR" --name smoke --scenario opt --goal tot \
  --bench db --pop 6 --gens 2 --seed 7 --threads 1)
echo "submitted: $SUBMIT"
ID=$(printf '%s' "$SUBMIT" | sed -n 's/.*"id":\([0-9]*\).*/\1/p')

"$TUNED" watch --addr "$ADDR" --id "$ID" | tail -n 1 | grep -q '"state":"done"' \
  || { echo "smoke job did not finish"; exit 1; }

"$TUNED" metrics --addr "$ADDR" | grep -q '"generations":' \
  || { echo "metrics missing counters"; exit 1; }

"$TUNED" obs --addr "$ADDR" | grep -q '"counters"' \
  || { echo "obs verb missing registry snapshot"; exit 1; }

# Prometheus exposition: the daemon publishes the exporter's OS-assigned
# port in <dir>/metrics-addr; scrape it with bash's /dev/tcp.
for _ in $(seq 1 100); do
  [ -s "$RUN_DIR/metrics-addr" ] && break
  sleep 0.1
done
MADDR=$(cat "$RUN_DIR/metrics-addr")
echo "metrics exporter at $MADDR"
exec 3<>"/dev/tcp/${MADDR%:*}/${MADDR##*:}"
printf 'GET /metrics HTTP/1.0\r\n\r\n' >&3
SCRAPE=$(cat <&3)
exec 3<&- 3>&-
printf '%s' "$SCRAPE" | grep -q '^tuned_jobs{state="done"} 1' \
  || { echo "scrape missing tuned_jobs gauge"; printf '%s\n' "$SCRAPE"; exit 1; }
printf '%s' "$SCRAPE" | grep -q '^# TYPE ga_generations counter' \
  || { echo "scrape missing obs registry counters"; exit 1; }

# Smoke-tune each non-inlining problem domain through the same daemon:
# one flags job, one dss job, both must converge over the same worker
# pool that just tuned the inlining smoke job.
declare -A PROBLEM_IDS
for PROBLEM in flags dss; do
  SUBMIT=$("$TUNED" submit --addr "$ADDR" --name "smoke-$PROBLEM" \
    --scenario opt --goal tot --bench db --problem "$PROBLEM" \
    --pop 6 --gens 2 --seed 7 --threads 1)
  echo "submitted $PROBLEM: $SUBMIT"
  PID_NUM=$(printf '%s' "$SUBMIT" | sed -n 's/.*"id":\([0-9]*\).*/\1/p')
  PROBLEM_IDS[$PROBLEM]=$PID_NUM
  LAST=$("$TUNED" watch --addr "$ADDR" --id "$PID_NUM" | tail -n 1)
  printf '%s' "$LAST" | grep -q '"state":"done"' \
    || { echo "$PROBLEM smoke job did not finish"; exit 1; }
  printf '%s' "$LAST" | grep -q "\"problem\":\"$PROBLEM\"" \
    || { echo "$PROBLEM job lost its problem tag on the wire"; exit 1; }
done

"$TUNED" shutdown --addr "$ADDR"
wait "$DAEMON_PID"

# Checkpoint reload: restart the daemon on the same run directory; the
# flags and dss jobs must come back from their on-disk specs/results as
# finished jobs with their problem tags intact.
rm -f "$RUN_DIR/addr"
"$TUNED" serve --addr 127.0.0.1:0 --dir "$RUN_DIR" --workers 1 &
DAEMON_PID=$!
for _ in $(seq 1 100); do
  [ -s "$RUN_DIR/addr" ] && break
  sleep 0.1
done
ADDR=$(cat "$RUN_DIR/addr")
for PROBLEM in flags dss; do
  STATUS=$("$TUNED" status --addr "$ADDR" --id "${PROBLEM_IDS[$PROBLEM]}")
  printf '%s' "$STATUS" | grep -q '"state":"done"' \
    || { echo "$PROBLEM job did not reload as done"; echo "$STATUS"; exit 1; }
  printf '%s' "$STATUS" | grep -q "\"problem\":\"$PROBLEM\"" \
    || { echo "$PROBLEM job reloaded without its problem tag"; echo "$STATUS"; exit 1; }
done
"$TUNED" shutdown --addr "$ADDR"
wait "$DAEMON_PID"

echo "== evald distributed-evaluation smoke (scripts/bench.sh)"
# The evald section keeps the steady-state default budget (16x64, with
# a warmup job per case): the throughput assertion needs enough
# evaluations that setup cost stops dominating. The other sections run
# toy budgets — obs gets a loose overhead threshold and the search
# shootout a small budget — because CI machines are noisy and those are
# pipeline smokes; the tight defaults apply to dedicated bench runs.
BENCH_SEARCH_POP=6 BENCH_SEARCH_GENS=2 BENCH_OBS_RUNS=2 BENCH_OBS_REPS=3 \
  BENCH_OBS_MAX_PCT=5.0 scripts/bench.sh >/dev/null
grep -q '"identical": true' BENCH_evald.json \
  || { echo "distributed run not bit-identical to local"; exit 1; }
# bench.sh picks the gate by host parallelism: strict beats-local on
# >= 2 cores, a dispatch-overhead floor on single-core runners (where
# two worker processes cannot physically out-compute one core and the
# `simtest --scale` stage below is the scaling proof).
grep -q '"throughput_ok": true' BENCH_evald.json \
  || { echo "distributed throughput gate failed"; cat BENCH_evald.json; exit 1; }
if [ "$(nproc)" -ge 2 ]; then
  grep -q '"distributed_beats_local": true' BENCH_evald.json \
    || { echo "distributed (2 workers) did not beat local throughput"; \
         cat BENCH_evald.json; exit 1; }
fi
grep -q '"fitness_identical": true' BENCH_obs.json \
  || { echo "obs recording changed the tuned result"; exit 1; }
grep -q '"overhead_ok": true' BENCH_obs.json \
  || { echo "obs overhead above threshold"; cat BENCH_obs.json; exit 1; }
grep -q '"shared_ok": true' BENCH_search.json \
  || { echo "racing portfolio never hit its shared memo"; cat BENCH_search.json; exit 1; }
grep -q '"race":' BENCH_search.json \
  || { echo "strategy shootout missing the portfolio row"; cat BENCH_search.json; exit 1; }
grep -q '"warm_ok":true' BENCH_store.json \
  || { echo "store warm start needed more evals than cold"; cat BENCH_store.json; exit 1; }
# The calibrated perf gates + online drift study that bench.sh just ran
# (perfgate already exits nonzero on a tripped gate; re-check the
# artifact so a stale file cannot pass).
grep -q '"gates_ok":true' BENCH_online.json \
  || { echo "a calibrated perf gate tripped"; cat BENCH_online.json; exit 1; }
grep -q '"online_ok":true' BENCH_online.json \
  || { echo "online did not beat the frozen incumbent on enough schedules"; \
       cat BENCH_online.json; exit 1; }

echo "== sim sweep (200 seeded fault schedules on the virtual clock)"
# Fixed base seed so CI failures reproduce exactly: replay any failing
# seed it prints with `scripts/replay.sh <seed>`.
target/release/simtest --seeds "${SIM_SWEEP_SEEDS:-200}" --base-seed 1 \
  --mixed-seeds "${SIM_MIXED_SEEDS:-8}" \
  --online-seeds "${SIM_ONLINE_SEEDS:-50}" --out BENCH_sim.json
grep -q '"failed":0' BENCH_sim.json \
  || { echo "sim sweep caught failing seeds"; cat BENCH_sim.json; exit 1; }
# The sweep's mixed-problem stage: per seed, an inline + a flags + a
# dss job queued on one daemon under the same fault schedule; no job
# may be lost and every result must bit-match its fault-free tune.
grep -q '"mixed_failed":0' BENCH_sim.json \
  || { echo "mixed-problem sweep lost or corrupted jobs"; cat BENCH_sim.json; exit 1; }
# The sweep's store stage: seeded kill-mid-append crash/recovery
# scenarios (torn wal tails, compactions straddling the kill); every
# acknowledged record must survive bit-exactly.
grep -q '"store_failed":0' BENCH_sim.json \
  || { echo "store crash/recovery sweep lost acked records"; cat BENCH_sim.json; exit 1; }
# The sweep's online stage: drifting workloads (step/ramp/cyclic) under
# the same fault weather; every daemon epoch trajectory — probes,
# retune decisions, detection latencies, final incumbent bits — must
# equal the in-process reference runner, with checkpoints loadable at
# every epoch (failing seeds replay with `simtest --online-seed N`).
grep -q '"online_failed":0' BENCH_sim.json \
  || { echo "online drift sweep diverged from the reference runner"; \
       cat BENCH_sim.json; exit 1; }
grep -q '"online_retunes":0' BENCH_sim.json \
  && { echo "online sweep committed no retunes — drift detection inert"; \
       cat BENCH_sim.json; exit 1; }
# The sweep must prove it has teeth: a build that loses re-dispatched
# work has to be caught by at least one seed.
target/release/simtest --broken --seeds 12 --base-seed 9 >/dev/null \
  || { echo "broken-build self-test: no seed caught the lost work"; exit 1; }

echo "== sim throughput-scaling suite (virtual workers, batched dispatch)"
# Fast profile: the 2-worker beats-serial point, the 16-worker
# efficiency floor, and the three seeded fault variants (lossy links,
# mid-run crash, unhealed partition) — every run must stay bit-identical
# and exactly-once. The full 1..50 matrix runs via `simtest --scale`.
target/release/simtest --scale \
  --scale-workers "${SIM_SCALE_WORKERS:-2,16}" --out BENCH_scale.json \
  || { echo "throughput-scaling suite failed"; cat BENCH_scale.json; exit 1; }
grep -q '"scale_ok":true' BENCH_scale.json \
  || { echo "BENCH_scale.json missing the green verdict"; cat BENCH_scale.json; exit 1; }

# The sharded-control-plane bench that bench.sh wrote above: throughput
# and p95 scheduling delay at 1/4/16 shards over one shared worker
# fleet; the sharded run must beat the single-queue baseline at 16
# concurrent jobs (bench.sh already exits nonzero when the gate fails —
# this re-checks the artifact so a stale file cannot pass).
grep -q '"shard_bench_ok":true' BENCH_shard.json \
  || { echo "sharded >= single-queue bench gate failed"; cat BENCH_shard.json; exit 1; }

echo "== multi-tenant shard soak (simtest --shard-seeds)"
# The headline soak: per seed, 1000 virtual clients across four tenants
# (one quota-capped) submit onto a sharded daemon over a shared
# 100-worker fleet under crash/restart/partition weather. Invariants per
# seed: no lost jobs, structured busy/quota rejects only, no tenant
# starved, quotas never overdrawn, every result bit-identical to its
# fault-free single-shard tune. Scale knobs for slow hosts:
# SIM_SHARD_SEEDS / SIM_SHARD_CLIENTS / SIM_SHARD_WORKERS.
target/release/simtest --seeds 0 --mixed-seeds 0 --store-seeds 0 \
  --base-seed 1 --shard-seeds "${SIM_SHARD_SEEDS:-50}" \
  --shard-clients "${SIM_SHARD_CLIENTS:-1000}" \
  --shard-workers "${SIM_SHARD_WORKERS:-100}" \
  --out BENCH_shard_soak.json \
  || { echo "shard soak caught failing seeds (replay: simtest --shard-seed N)"; \
       cat BENCH_shard_soak.json; exit 1; }
grep -q '"shard_failed":0' BENCH_shard_soak.json \
  || { echo "BENCH_shard_soak.json missing the green verdict"; \
       cat BENCH_shard_soak.json; exit 1; }

echo "== CI OK"
