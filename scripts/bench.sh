#!/usr/bin/env bash
# Benchmarks distributed fitness evaluation: the same tuning job is run
# twice — once through a lone `tuned` daemon evaluating locally, once
# fanned out over two `evald` worker processes — and the throughput
# numbers land in BENCH_evald.json together with a bit-identity check of
# the tuned parameters (the two runs must produce the same genes).
#
# Steady-state methodology: each case first runs a small warmup job
# (priming the daemon's code paths and, in the distributed case, the
# workers' problem caches — the one-off problem build used to be charged
# to the measured run), then times the measured job wall-to-wall from
# submit to the terminal watch frame. Throughput is the measured job's
# evaluations over that wall time, not over daemon uptime — uptime
# counts boot and idle and once diluted both numbers toward a wash. The
# default budget (16x64) is the steady-state floor where per-generation
# dispatch cost, not setup, is what's being measured.
#
# The throughput gate adapts to the host:
#   * >= 2 usable cores: the batched/pipelined dispatcher must make the
#     distributed case *strictly beat* local evals/sec at 2 workers.
#   * single-core host (CI containers pinned to one CPU): two worker
#     processes cannot physically out-compute one — every eval
#     serializes on the same core, so "distributed beats local" is not
#     measurable here; the virtual-clock scaling suite (BENCH_scale.json,
#     `simtest --scale`) is the scaling proof. What IS measurable — and
#     what regressed in the one-RPC-per-genome days — is dispatch
#     overhead: distributed must hold >= BENCH_MIN_SINGLECORE_RATIO of
#     local throughput (the old per-genome dispatch and a 50ms accept
#     stall both land far below it).
# Either way the script exits nonzero when its gate fails.
#
# Knobs (environment): BENCH_POP (population), BENCH_GENS (generations),
# BENCH_SEED, BENCH_MIN_SINGLECORE_RATIO. Defaults are small enough for
# a CI smoke run.
set -euo pipefail
cd "$(dirname "$0")/.."

POP=${BENCH_POP:-16}
GENS=${BENCH_GENS:-64}
SEED=${BENCH_SEED:-7}
OUT=${BENCH_OUT:-BENCH_evald.json}
MIN_RATIO=${BENCH_MIN_SINGLECORE_RATIO:-0.70}
CORES=$(nproc 2>/dev/null || echo 1)

cargo build --workspace --release --offline >/dev/null

TUNED=target/release/tuned
EVALD=target/release/evald

WORK=$(mktemp -d)
PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
  rm -rf "$WORK"
}
trap cleanup EXIT

wait_file() { # path
  for _ in $(seq 1 100); do [ -s "$1" ] && return 0; sleep 0.1; done
  echo "bench: timed out waiting for $1" >&2
  return 1
}

json_num() { # file, field -> first numeric value of "field"
  sed -n "s/.*\"$2\":\(-\{0,1\}[0-9.][0-9.e+-]*\).*/\1/p" "$1" | head -n 1
}

submit_and_watch() { # addr, job name, pop, gens, seed
  local submitted id
  submitted=$("$TUNED" submit --addr "$1" --name "$2" \
    --scenario opt --goal tot --bench db \
    --pop "$3" --gens "$4" --seed "$5" --threads 1)
  id=$(printf '%s' "$submitted" | sed -n 's/.*"id":\([0-9]*\).*/\1/p')
  "$TUNED" watch --addr "$1" --id "$id" >/dev/null
  printf '%s' "$id"
}

run_case() { # name, extra `tuned` serve flags...
  local name=$1
  shift
  local dir="$WORK/$name"
  mkdir -p "$dir"
  "$TUNED" serve --addr 127.0.0.1:0 --dir "$dir" --workers 1 "$@" \
    >"$dir/serve.log" 2>&1 &
  local pid=$!
  PIDS+=("$pid")
  wait_file "$dir/addr"
  local addr
  addr=$(cat "$dir/addr")

  # Warmup: primes the daemon and (distributed) the workers' problem
  # caches so the measured job sees steady state, not one-off builds.
  # Identical for both cases — the fitness memo it leaves behind is the
  # same on each side, preserving the bit-identity comparison.
  submit_and_watch "$addr" "warmup-$name" 6 2 3 >/dev/null
  "$TUNED" metrics --addr "$addr" >"$dir/metrics-warm.json"

  local id t0 t1
  t0=$(date +%s.%N)
  id=$(submit_and_watch "$addr" "bench-$name" "$POP" "$GENS" "$SEED")
  t1=$(date +%s.%N)
  awk -v a="$t0" -v b="$t1" 'BEGIN { printf "%.6f", b - a }' >"$dir/wall"

  "$TUNED" status --addr "$addr" --id "$id" >"$dir/status.json"
  "$TUNED" metrics --addr "$addr" >"$dir/metrics.json"
  "$TUNED" shutdown --addr "$addr" >/dev/null
  wait "$pid" 2>/dev/null || true

  grep -q '"state":"done"' "$dir/status.json" \
    || { echo "bench: $name job did not finish"; cat "$dir/status.json"; exit 1; }
}

echo "== bench: local (1 daemon, in-process evaluation)"
run_case local

echo "== bench: distributed (1 daemon + 2 evald workers)"
for i in 1 2; do
  "$EVALD" --addr 127.0.0.1:0 --addr-file "$WORK/worker$i.addr" \
    >"$WORK/worker$i.log" 2>&1 &
  PIDS+=("$!")
  wait_file "$WORK/worker$i.addr"
done
run_case distributed \
  --worker "$(cat "$WORK/worker1.addr")" \
  --worker "$(cat "$WORK/worker2.addr")"

genes() { # status file -> the tuned gene vector
  sed -n 's/.*"genes":\[\([0-9,-]*\)\].*/\1/p' "$1" | head -n 1
}

LOCAL_GENES=$(genes "$WORK/local/status.json")
DIST_GENES=$(genes "$WORK/distributed/status.json")
IDENTICAL=false
[ -n "$LOCAL_GENES" ] && [ "$LOCAL_GENES" = "$DIST_GENES" ] && IDENTICAL=true

measured_evals() { # name -> evaluations performed by the measured job
  awk -v total="$(json_num "$WORK/$1/metrics.json" evaluations)" \
    -v warm="$(json_num "$WORK/$1/metrics-warm.json" evaluations)" \
    'BEGIN { print total - warm }'
}

evals_per_sec() { # name -> measured-job evals over measured-job wall time
  awk -v ev="$(measured_evals "$1")" -v wall="$(cat "$WORK/$1/wall")" \
    'BEGIN { printf "%.4f", (wall > 0) ? ev / wall : 0 }'
}

LOCAL_EPS=$(evals_per_sec local)
DIST_EPS=$(evals_per_sec distributed)
BEATS=$(awk -v l="$LOCAL_EPS" -v d="$DIST_EPS" \
  'BEGIN { print (d > l) ? "true" : "false" }')
SPEEDUP=$(awk -v l="$LOCAL_EPS" -v d="$DIST_EPS" \
  'BEGIN { printf "%.4f", (l > 0) ? d / l : 0 }')
if [ "$CORES" -ge 2 ]; then
  THROUGHPUT_GATE="beats-local"
  THROUGHPUT_OK=$BEATS
else
  THROUGHPUT_GATE="overhead-bounded-single-core"
  THROUGHPUT_OK=$(awk -v s="$SPEEDUP" -v min="$MIN_RATIO" \
    'BEGIN { print (s >= min) ? "true" : "false" }')
fi

emit_case() { # name
  local m="$WORK/$1/metrics.json"
  local wall evals hit_rate completed batches
  wall=$(cat "$WORK/$1/wall")
  evals=$(measured_evals "$1")
  hit_rate=$(json_num "$m" cache_hit_rate)
  completed=$(sed -n 's/.*"remote":{[^}]*"completed":\([0-9]*\).*/\1/p' "$m" | head -n 1)
  batches=$(sed -n 's/.*"remote":{[^}]*"batches":\([0-9]*\).*/\1/p' "$m" | head -n 1)
  awk -v n="$1" -v wall="$wall" -v ev="$evals" \
      -v hit="$hit_rate" -v rc="${completed:-0}" -v rb="${batches:-0}" 'BEGIN {
    eps = (wall > 0) ? ev / wall : 0
    printf "    \"%s\": {\n", n
    printf "      \"wall_secs\": %.4f,\n", wall
    printf "      \"evaluations\": %d,\n", ev
    printf "      \"evaluations_per_sec\": %.4f,\n", eps
    printf "      \"cache_hit_rate\": %.4f,\n", hit
    printf "      \"remote_completed\": %d,\n", rc
    printf "      \"remote_batches\": %d\n", rb
    printf "    }"
  }'
}

{
  printf '{\n'
  printf '  "bench": "evald distributed evaluation",\n'
  printf '  "pop": %d,\n' "$POP"
  printf '  "gens": %d,\n' "$GENS"
  printf '  "seed": %d,\n' "$SEED"
  printf '  "cores": %d,\n' "$CORES"
  printf '  "identical": %s,\n' "$IDENTICAL"
  printf '  "speedup_2w": %s,\n' "$SPEEDUP"
  printf '  "distributed_beats_local": %s,\n' "$BEATS"
  printf '  "throughput_gate": "%s",\n' "$THROUGHPUT_GATE"
  printf '  "min_single_core_ratio": %s,\n' "$MIN_RATIO"
  printf '  "throughput_ok": %s,\n' "$THROUGHPUT_OK"
  printf '  "cases": {\n'
  emit_case local
  printf ',\n'
  emit_case distributed
  printf '\n  }\n'
  printf '}\n'
} >"$OUT"

echo "== bench: wrote $OUT"
cat "$OUT"
[ "$IDENTICAL" = true ] || { echo "bench: distributed result differs from local!"; exit 1; }
[ "$THROUGHPUT_OK" = true ] || {
  if [ "$THROUGHPUT_GATE" = beats-local ]; then
    echo "bench: distributed (2 workers, $DIST_EPS evals/sec) did not beat local ($LOCAL_EPS evals/sec)!"
  else
    echo "bench: single-core dispatch overhead too high:" \
      "distributed $DIST_EPS vs local $LOCAL_EPS evals/sec" \
      "(ratio $SPEEDUP < $MIN_RATIO)"
  fi
  exit 1
}

# ---------------------------------------------------------------------------
# Observability overhead: the same deterministic tuning job, once with the
# obs layer recording and once with it compiled out (`inlinetune-obs/off`),
# must land within BENCH_OBS_MAX_PCT of each other and produce bit-identical
# fitness.
#
# Methodology notes (the naive version of this benchmark is wrong):
#   * The two builds' hot functions are byte-identical, but the extra obs
#     code shifts their addresses, and code-placement alone swings wall
#     time by 3-4% on this workload. `-align-all-functions=6` pins every
#     function to a 64-byte boundary in BOTH builds, which collapses that
#     layout bias below the noise floor.
#   * Runs alternate between the variants and each side keeps its minimum,
#     so slow drift (thermal, background load) hits both equally.
#
#   * Each process runs the job BENCH_OBS_REPS times and reports its
#     in-process minimum (warm caches, settled CPU frequency), which is a
#     much tighter estimator than one cold run per process.
#
# Knobs: BENCH_OBS_POP, BENCH_OBS_GENS, BENCH_OBS_RUNS (alternating pairs),
# BENCH_OBS_REPS (in-process repetitions), BENCH_OBS_MAX_PCT, BENCH_OBS_OUT.

OBS_POP=${BENCH_OBS_POP:-8}
OBS_GENS=${BENCH_OBS_GENS:-2}
OBS_RUNS=${BENCH_OBS_RUNS:-3}
OBS_REPS=${BENCH_OBS_REPS:-6}
OBS_MAX_PCT=${BENCH_OBS_MAX_PCT:-2.0}
OBS_OUT=${BENCH_OBS_OUT:-BENCH_obs.json}
OBS_RUSTFLAGS="-C llvm-args=-align-all-functions=6"

echo "== bench: obs overhead (recording on vs. compiled out)"
RUSTFLAGS="$OBS_RUSTFLAGS" CARGO_TARGET_DIR=target/bench-obs-on \
  cargo build --release --offline --example obs_overhead >/dev/null
RUSTFLAGS="$OBS_RUSTFLAGS" CARGO_TARGET_DIR=target/bench-obs-off \
  cargo build --release --offline --features inlinetune-obs/off \
  --example obs_overhead >/dev/null

OBS_ON_BIN=target/bench-obs-on/release/examples/obs_overhead
OBS_OFF_BIN=target/bench-obs-off/release/examples/obs_overhead

obs_field() { # json-line, field -> value (numbers and quoted strings)
  printf '%s' "$1" | sed -n "s/.*\"$2\":\"\{0,1\}\([a-z0-9]*\)\"\{0,1\}[,}].*/\1/p"
}

ON_MIN= OFF_MIN= ON_BITS= OFF_BITS=
for _ in $(seq 1 "$OBS_RUNS"); do
  on_line=$("$OBS_ON_BIN" "$OBS_POP" "$OBS_GENS" "$SEED" "$OBS_REPS")
  off_line=$("$OBS_OFF_BIN" "$OBS_POP" "$OBS_GENS" "$SEED" "$OBS_REPS")
  on_us=$(obs_field "$on_line" elapsed_micros)
  off_us=$(obs_field "$off_line" elapsed_micros)
  ON_BITS=$(obs_field "$on_line" fitness_bits)
  OFF_BITS=$(obs_field "$off_line" fitness_bits)
  [ "$(obs_field "$on_line" obs_compiled_out)" = false ] \
    || { echo "bench: on-variant reports recording compiled out"; exit 1; }
  [ "$(obs_field "$off_line" obs_compiled_out)" = true ] \
    || { echo "bench: off-variant reports recording still live"; exit 1; }
  if [ -z "$ON_MIN" ] || [ "$on_us" -lt "$ON_MIN" ]; then ON_MIN=$on_us; fi
  if [ -z "$OFF_MIN" ] || [ "$off_us" -lt "$OFF_MIN" ]; then OFF_MIN=$off_us; fi
  echo "   on ${on_us}us / off ${off_us}us"
done

[ "$ON_BITS" = "$OFF_BITS" ] && OBS_IDENTICAL=true || OBS_IDENTICAL=false

OVERHEAD_PCT=$(awk -v on="$ON_MIN" -v off="$OFF_MIN" \
  'BEGIN { printf "%.3f", (on - off) * 100.0 / off }')
OVERHEAD_OK=$(awk -v pct="$OVERHEAD_PCT" -v max="$OBS_MAX_PCT" \
  'BEGIN { print (pct < max) ? "true" : "false" }')

{
  printf '{\n'
  printf '  "bench": "obs recording overhead",\n'
  printf '  "pop": %d,\n' "$OBS_POP"
  printf '  "gens": %d,\n' "$OBS_GENS"
  printf '  "seed": %d,\n' "$SEED"
  printf '  "runs": %d,\n' "$OBS_RUNS"
  printf '  "reps_per_run": %d,\n' "$OBS_REPS"
  printf '  "on_min_micros": %d,\n' "$ON_MIN"
  printf '  "off_min_micros": %d,\n' "$OFF_MIN"
  printf '  "overhead_pct": %s,\n' "$OVERHEAD_PCT"
  printf '  "overhead_max_pct": %s,\n' "$OBS_MAX_PCT"
  printf '  "overhead_ok": %s,\n' "$OVERHEAD_OK"
  printf '  "fitness_identical": %s\n' "$OBS_IDENTICAL"
  printf '}\n'
} >"$OBS_OUT"

echo "== bench: wrote $OBS_OUT"
cat "$OBS_OUT"
[ "$OBS_IDENTICAL" = true ] \
  || { echo "bench: observability changed the tuned result!"; exit 1; }
[ "$OVERHEAD_OK" = true ] \
  || { echo "bench: obs overhead ${OVERHEAD_PCT}% exceeds ${OBS_MAX_PCT}%"; exit 1; }

# ---------------------------------------------------------------------------
# Search-strategy shootout: every pluggable strategy plus the racing
# portfolio runs the same Opt:Tot/db tuning cell under the same proposal
# budget (pop × gens), one `tuned` job per strategy; the fitness each one
# reaches lands in BENCH_search.json. A second daemon then runs a
# portfolio with a duplicated deterministic member (`race:ga+grid+grid`):
# the duplicate's probes must be answered from the race's shared memo,
# so the `race_shared_hits` counter is required to be nonzero — the
# cross-strategy cache demonstrably works.
#
# Knobs: BENCH_SEARCH_POP / BENCH_SEARCH_GENS (default: the evald bench's
# POP/GENS), BENCH_SEARCH_OUT.

SEARCH_POP=${BENCH_SEARCH_POP:-$POP}
SEARCH_GENS=${BENCH_SEARCH_GENS:-$GENS}
SEARCH_OUT=${BENCH_SEARCH_OUT:-BENCH_search.json}
SEARCH_SPECS="ga random hillclimb anneal grid race:ga+random+hillclimb"

echo "== bench: search strategies (budget ${SEARCH_POP}x${SEARCH_GENS} per strategy)"

start_daemon() { # dir -> addr on stdout
  mkdir -p "$1"
  "$TUNED" serve --addr 127.0.0.1:0 --dir "$1" --workers 1 \
    >"$1/serve.log" 2>&1 &
  PIDS+=("$!")
  wait_file "$1/addr"
  cat "$1/addr"
}

run_strategy() { # addr, spec, status-file
  local submitted id
  submitted=$("$TUNED" submit --addr "$1" --name "bench-$2" \
    --scenario opt --goal tot --bench db --strategy "$2" \
    --pop "$SEARCH_POP" --gens "$SEARCH_GENS" --seed "$SEED" --threads 1)
  id=$(printf '%s' "$submitted" | sed -n 's/.*"id":\([0-9]*\).*/\1/p')
  "$TUNED" watch --addr "$1" --id "$id" >/dev/null
  "$TUNED" status --addr "$1" --id "$id" >"$3"
  grep -q '"state":"done"' "$3" \
    || { echo "bench: strategy $2 did not finish"; cat "$3"; exit 1; }
}

SEARCH_DIR="$WORK/search"
SEARCH_ADDR=$(start_daemon "$SEARCH_DIR")
FITNESS_ROWS=""
for spec in $SEARCH_SPECS; do
  key=${spec%%:*} # "race:ga+random+hillclimb" reports as "race"
  run_strategy "$SEARCH_ADDR" "$spec" "$SEARCH_DIR/$key.json"
  fit=$(json_num "$SEARCH_DIR/$key.json" fitness)
  [ -n "$fit" ] || { echo "bench: no fitness for $spec"; exit 1; }
  echo "   $key: fitness $fit"
  FITNESS_ROWS="$FITNESS_ROWS    \"$key\": $fit,\n"
done
"$TUNED" shutdown --addr "$SEARCH_ADDR" >/dev/null

# The shared-memo check runs on its own daemon so the counter can only
# come from this one portfolio.
MEMO_DIR="$WORK/search-memo"
MEMO_ADDR=$(start_daemon "$MEMO_DIR")
MEMO_SPEC="race:ga+grid+grid"
run_strategy "$MEMO_ADDR" "$MEMO_SPEC" "$MEMO_DIR/status.json"
"$TUNED" obs --addr "$MEMO_ADDR" >"$MEMO_DIR/obs.json"
"$TUNED" shutdown --addr "$MEMO_ADDR" >/dev/null
SHARED_HITS=$(grep -o 'race_shared_hits[^:]*:"[0-9]*"' "$MEMO_DIR/obs.json" \
  | sed 's/.*:"//; s/"//' | awk '{s += $1} END {print s + 0}')
[ "$SHARED_HITS" -gt 0 ] && SHARED_OK=true || SHARED_OK=false

{
  printf '{\n'
  printf '  "bench": "search strategy shootout",\n'
  printf '  "pop": %d,\n' "$SEARCH_POP"
  printf '  "gens": %d,\n' "$SEARCH_GENS"
  printf '  "seed": %d,\n' "$SEED"
  printf '  "budget": %d,\n' "$((SEARCH_POP * SEARCH_GENS))"
  printf '  "fitness": {\n'
  printf '%b' "$FITNESS_ROWS" | sed '$ s/,$//'
  printf '  },\n'
  printf '  "shared_memo_spec": "%s",\n' "$MEMO_SPEC"
  printf '  "race_shared_hits": %d,\n' "$SHARED_HITS"
  printf '  "shared_ok": %s\n' "$SHARED_OK"
  printf '}\n'
} >"$SEARCH_OUT"

echo "== bench: wrote $SEARCH_OUT"
cat "$SEARCH_OUT"
[ "$SHARED_OK" = true ] \
  || { echo "bench: racing portfolio never hit its shared memo!"; exit 1; }

# ---------------------------------------------------------------------------
# Persistent fitness store: durable append / lookup throughput plus the
# warm-start payoff. `store_bench` tunes one cell cold, rebuilds a store
# from the cold run's evaluation log, re-tunes warm-started under the
# identical budget, and asserts warm start reaches the cold target in no
# more evaluations (`warm_ok`). Every append flushes before acking, so
# append_per_sec is the durable path, not a page-cache mirage.
#
# Knobs: BENCH_STORE_RECORDS, BENCH_STORE_OUT.

STORE_RECORDS=${BENCH_STORE_RECORDS:-2000}
STORE_OUT=${BENCH_STORE_OUT:-BENCH_store.json}

echo "== bench: persistent fitness store (${STORE_RECORDS} records)"
cargo build --release --offline --example store_bench >/dev/null
target/release/examples/store_bench "$STORE_RECORDS" "$POP" "$GENS" "$SEED" \
  >"$STORE_OUT"

echo "== bench: wrote $STORE_OUT"
cat "$STORE_OUT"
grep -q '"warm_ok":true' "$STORE_OUT" \
  || { echo "bench: warm start needed more evaluations than cold!"; exit 1; }

# ---------------------------------------------------------------------------
# Sharded control plane: the same backlog of concurrent jobs pushed
# through the simulated cluster at 1, 4 and 16 shards over one shared
# worker fleet (runners scale with shards, so the 1-shard point IS the
# old single-queue daemon). `simtest --shard-bench` measures jobs/sec on
# the virtual clock plus the p95 scheduling delay (submit -> first
# runner pickup) per shard count, writes BENCH_shard.json, and exits
# nonzero unless every job finishes and the 16-shard throughput is at
# least the single-queue baseline's.
#
# Knobs: BENCH_SHARD_JOBS (concurrent jobs per point), BENCH_SHARD_OUT.

SHARD_JOBS=${BENCH_SHARD_JOBS:-16}
SHARD_OUT=${BENCH_SHARD_OUT:-BENCH_shard.json}

echo "== bench: sharded control plane (1/4/16 shards, ${SHARD_JOBS} concurrent jobs)"
target/release/simtest --shard-bench --shard-bench-jobs "$SHARD_JOBS" \
  --out "$SHARD_OUT" \
  || { echo "bench: sharded throughput fell below the single-queue baseline!"; \
       cat "$SHARD_OUT"; exit 1; }

echo "== bench: wrote $SHARD_OUT"
cat "$SHARD_OUT"

# ---------------------------------------------------------------------------
# Online drift study + calibrated perf gates: `experiments online` runs
# adaptive re-tuning, the frozen incumbent and a per-epoch oracle on
# three seeded drift schedules (step/ramp/cyclic), writing per-epoch
# rows to results/online.csv. `perfgate` then times the tuner's hot
# paths (genome eval, durable store put/get, dispatch-ledger
# claim/resolve) against per-machine thresholds calibrated from the
# obs reference kernel, folds in the study's online-vs-frozen verdict
# (online must win on >= 2 of 3 schedules), and writes BENCH_online.json.
# perfgate exits nonzero when any gate trips.
#
# Knobs: BENCH_ONLINE_OUT, BENCH_PERFGATE_REPS.

ONLINE_OUT=${BENCH_ONLINE_OUT:-BENCH_online.json}

echo "== bench: online drift study (3 schedules x online/frozen/oracle)"
target/release/experiments online --seed "$SEED" >/dev/null

echo "== bench: calibrated perf gates"
target/release/perfgate --out "$ONLINE_OUT" --csv results/online.csv \
  --reps "${BENCH_PERFGATE_REPS:-5}" \
  || { echo "bench: a calibrated perf gate tripped!"; cat "$ONLINE_OUT"; exit 1; }

echo "== bench: wrote $ONLINE_OUT"
cat "$ONLINE_OUT"
