#!/usr/bin/env bash
# Benchmarks distributed fitness evaluation: the same tuning job is run
# twice — once through a lone `tuned` daemon evaluating locally, once
# fanned out over two `evald` worker processes — and the throughput
# numbers land in BENCH_evald.json together with a bit-identity check of
# the tuned parameters (the two runs must produce the same genes).
#
# Knobs (environment): BENCH_POP (population), BENCH_GENS (generations),
# BENCH_SEED. Defaults are small enough for a CI smoke run.
set -euo pipefail
cd "$(dirname "$0")/.."

POP=${BENCH_POP:-8}
GENS=${BENCH_GENS:-4}
SEED=${BENCH_SEED:-7}
OUT=${BENCH_OUT:-BENCH_evald.json}

cargo build --workspace --release --offline >/dev/null

TUNED=target/release/tuned
EVALD=target/release/evald

WORK=$(mktemp -d)
PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
  rm -rf "$WORK"
}
trap cleanup EXIT

wait_file() { # path
  for _ in $(seq 1 100); do [ -s "$1" ] && return 0; sleep 0.1; done
  echo "bench: timed out waiting for $1" >&2
  return 1
}

json_num() { # file, field -> first numeric value of "field"
  sed -n "s/.*\"$2\":\(-\{0,1\}[0-9.][0-9.e+-]*\).*/\1/p" "$1" | head -n 1
}

run_case() { # name, extra `tuned serve` flags...
  local name=$1
  shift
  local dir="$WORK/$name"
  mkdir -p "$dir"
  "$TUNED" serve --addr 127.0.0.1:0 --dir "$dir" --workers 1 "$@" \
    >"$dir/serve.log" 2>&1 &
  local pid=$!
  PIDS+=("$pid")
  wait_file "$dir/addr"
  local addr
  addr=$(cat "$dir/addr")

  local submitted id
  submitted=$("$TUNED" submit --addr "$addr" --name "bench-$name" \
    --scenario opt --goal tot --bench db \
    --pop "$POP" --gens "$GENS" --seed "$SEED" --threads 1)
  id=$(printf '%s' "$submitted" | sed -n 's/.*"id":\([0-9]*\).*/\1/p')

  "$TUNED" watch --addr "$addr" --id "$id" >/dev/null
  "$TUNED" status --addr "$addr" --id "$id" >"$dir/status.json"
  "$TUNED" metrics --addr "$addr" >"$dir/metrics.json"
  "$TUNED" shutdown --addr "$addr" >/dev/null
  wait "$pid" 2>/dev/null || true

  grep -q '"state":"done"' "$dir/status.json" \
    || { echo "bench: $name job did not finish"; cat "$dir/status.json"; exit 1; }
}

echo "== bench: local (1 daemon, in-process evaluation)"
run_case local

echo "== bench: distributed (1 daemon + 2 evald workers)"
for i in 1 2; do
  "$EVALD" --addr 127.0.0.1:0 --addr-file "$WORK/worker$i.addr" \
    >"$WORK/worker$i.log" 2>&1 &
  PIDS+=("$!")
  wait_file "$WORK/worker$i.addr"
done
run_case distributed \
  --worker "$(cat "$WORK/worker1.addr")" \
  --worker "$(cat "$WORK/worker2.addr")"

genes() { # status file -> the tuned gene vector
  sed -n 's/.*"genes":\[\([0-9,-]*\)\].*/\1/p' "$1" | head -n 1
}

LOCAL_GENES=$(genes "$WORK/local/status.json")
DIST_GENES=$(genes "$WORK/distributed/status.json")
IDENTICAL=false
[ -n "$LOCAL_GENES" ] && [ "$LOCAL_GENES" = "$DIST_GENES" ] && IDENTICAL=true

emit_case() { # name
  local m="$WORK/$1/metrics.json"
  local uptime evals gps hit_rate completed
  uptime=$(json_num "$m" uptime_secs)
  evals=$(json_num "$m" evaluations)
  gps=$(json_num "$m" generations_per_sec)
  hit_rate=$(json_num "$m" cache_hit_rate)
  completed=$(sed -n 's/.*"remote":{[^}]*"completed":\([0-9]*\).*/\1/p' "$m" | head -n 1)
  awk -v n="$1" -v up="$uptime" -v ev="$evals" -v gps="$gps" \
      -v hit="$hit_rate" -v rc="${completed:-0}" 'BEGIN {
    eps = (up > 0) ? ev / up : 0
    printf "    \"%s\": {\n", n
    printf "      \"generations_per_sec\": %.4f,\n", gps
    printf "      \"evaluations\": %d,\n", ev
    printf "      \"evaluations_per_sec\": %.4f,\n", eps
    printf "      \"cache_hit_rate\": %.4f,\n", hit
    printf "      \"remote_completed\": %d\n", rc
    printf "    }"
  }'
}

{
  printf '{\n'
  printf '  "bench": "evald distributed evaluation",\n'
  printf '  "pop": %d,\n' "$POP"
  printf '  "gens": %d,\n' "$GENS"
  printf '  "seed": %d,\n' "$SEED"
  printf '  "identical": %s,\n' "$IDENTICAL"
  printf '  "cases": {\n'
  emit_case local
  printf ',\n'
  emit_case distributed
  printf '\n  }\n'
  printf '}\n'
} >"$OUT"

echo "== bench: wrote $OUT"
cat "$OUT"
[ "$IDENTICAL" = true ] || { echo "bench: distributed result differs from local!"; exit 1; }
