//! Measures what the observability layer costs the local eval loop.
//!
//! Runs one deterministic tuning job in-process and prints a JSON line
//! with the elapsed wall time and whether recording was compiled out.
//! `scripts/bench.sh` runs this binary twice — once as built normally,
//! once with `--features inlinetune-obs/off` (every counter/histogram/
//! span call const-folded to a no-op) — and asserts the difference
//! stays under 2% of the eval loop.
//!
//! ```sh
//! cargo run --release --example obs_overhead -- [POP] [GENS] [SEED] [REPS]
//! ```
//!
//! The job runs `REPS` times in one process and the minimum elapsed time
//! is reported: back-to-back in-process repetitions share warm caches
//! and a settled CPU frequency, so their minimum is a far more stable
//! estimator than one cold process run.

use inlinetune::obs;
use inlinetune::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let mut num =
        |default: usize| -> usize { args.next().and_then(|a| a.parse().ok()).unwrap_or(default) };
    let pop = num(16);
    let gens = num(8);
    let seed = num(7) as u64;
    let reps = num(3).max(1);

    let task = TuningTask {
        name: "Opt:Tot".into(),
        scenario: Scenario::Opt,
        goal: Goal::Total,
        arch: ArchModel::pentium4(),
    };
    let tuner = Tuner::new(task, specjvm98(), AdaptConfig::default());
    let ga = GaConfig {
        pop_size: pop,
        generations: gens,
        threads: 1,
        seed,
        stagnation_limit: None,
        ..GaConfig::default()
    };

    let mut min_elapsed = u128::MAX;
    let mut fitness_bits = 0u64;
    let mut evaluations = 0usize;
    for rep in 0..reps {
        let started = std::time::Instant::now();
        let mut state = tuner.start(ga.clone());
        while !tuner.step(&mut state) {}
        let elapsed = started.elapsed().as_micros();
        min_elapsed = min_elapsed.min(elapsed);

        let bits = tuner.outcome(&state).fitness.to_bits();
        if rep == 0 {
            fitness_bits = bits;
            evaluations = state.evaluations();
        } else {
            assert_eq!(bits, fitness_bits, "repetition changed the result");
        }
    }

    // One line of JSON for scripts to scrape. The fitness is printed so
    // the on/off runs can be checked for bit-identity: observability
    // must never change results.
    println!(
        "{{\"elapsed_micros\":{min_elapsed},\"obs_compiled_out\":{},\"evaluations\":{evaluations},\"fitness_bits\":\"{fitness_bits:016x}\"}}",
        obs::recording_compiled_out(),
    );
}
