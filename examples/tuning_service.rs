//! Drive the tuning service in-process: start a daemon, submit two jobs,
//! stream one of them generation-by-generation, and show the checkpoint
//! machinery surviving a daemon stop/start.
//!
//! ```sh
//! cargo run --release --example tuning_service
//! ```
//!
//! The same daemon is available as a standalone TCP service via the
//! `tuned` binary (`tuned serve`, then `tuned submit/status/watch/...`);
//! this example uses the library API directly so everything happens in
//! one process.

use inlinetune::prelude::*;
use inlinetune::served::daemon::{Daemon, DaemonConfig};
use inlinetune::served::job::{JobSpec, JobState};
use inlinetune::served::RunDir;

fn job(name: &str, goal: Goal, seed: u64) -> JobSpec {
    JobSpec {
        name: name.into(),
        scenario: Scenario::Opt,
        goal,
        arch: "x86-p4".into(),
        suite: vec!["db".into(), "jess".into()],
        ga: GaConfig {
            pop_size: 10,
            generations: 8,
            threads: 1,
            seed,
            stagnation_limit: None,
            ..GaConfig::default()
        },
        strategy: "ga".into(),
        problem: "inline".into(),
        tenant: "default".into(),
        online: None,
        drift_pos: None,
    }
}

fn main() {
    let dir = std::env::temp_dir().join(format!("tuning-service-demo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Phase 1: a daemon with two workers takes two jobs concurrently.
    let daemon = Daemon::start(
        DaemonConfig {
            workers: 2,
            queue_capacity: 8,
            ..DaemonConfig::default()
        },
        RunDir::open(&dir).expect("run dir"),
    )
    .expect("daemon");
    let a = daemon.submit(job("Opt:Tot", Goal::Total, 101)).unwrap();
    let b = daemon.submit(job("Opt:Bal", Goal::Balance, 102)).unwrap();
    println!("submitted jobs {a} and {b}");

    // Stream job A generation by generation.
    let mut last_gen = 0;
    loop {
        let r = daemon.status(a).expect("job exists");
        if r.generation > last_gen {
            last_gen = r.generation;
            println!(
                "  job {a} [{}] generation {:>2}, best fitness {:.4}",
                r.spec.name,
                r.generation,
                r.best_fitness.unwrap_or(f64::INFINITY)
            );
        }
        if r.state.is_terminal() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }

    // Stop the daemon mid-flight for job B (it may still be running) —
    // then restart over the same directory. Recovery resumes B from its
    // last checkpoint; the result is bit-identical to an uninterrupted
    // run because the checkpoint captures the complete GA state.
    daemon.shutdown();
    println!("daemon stopped; restarting over {}", dir.display());
    let daemon = Daemon::start(
        DaemonConfig::default(),
        RunDir::open(&dir).expect("run dir"),
    )
    .expect("daemon restart");

    for id in [a, b] {
        let r = loop {
            let r = daemon.status(id).expect("job exists");
            if r.state.is_terminal() {
                break r;
            }
            std::thread::sleep(std::time::Duration::from_millis(20));
        };
        assert_eq!(r.state, JobState::Done);
        let (genes, fitness) = r.result.expect("done job has a result");
        println!(
            "job {id} [{}] done after {} generations: fitness {:.4}, genes {genes:?}",
            r.spec.name, r.generation, fitness,
        );
    }

    let m = daemon.metrics_snapshot();
    println!(
        "metrics: {} generations, {} evaluations, cache hit rate {:.0}%, {} checkpoints, {} job(s) recovered",
        m.generations,
        m.evaluations,
        m.cache_hit_rate * 100.0,
        m.checkpoints_written,
        m.jobs_recovered
    );

    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
