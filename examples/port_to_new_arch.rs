//! "Porting the compiler to a new platform": define a custom architecture
//! model and let the GA derive its inlining heuristic automatically — the
//! paper's core pitch ("performed just once, off-line, each time the
//! compiler is ported to a new platform").
//!
//! We invent an embedded-class machine — slow clock, tiny I-cache, cheap
//! calls — and show that the heuristic the GA finds for it differs from
//! both the Jikes default and the x86-tuned values, in the directions the
//! machine's constraints predict (less code growth).
//!
//! ```sh
//! cargo run --release --example port_to_new_arch
//! ```

use inlinetune::prelude::*;

/// A hypothetical embedded core: think early-2000s ARM9-class SoC.
fn embedded_arch() -> ArchModel {
    ArchModel {
        name: "embedded-arm9",
        clock_hz: 200e6,
        // Short, in-order pipeline: everything is a couple of cycles.
        class_cycles: [1.0, 3.0, 2.5, 6.0],
        // Branch-and-link is cheap.
        call_overhead: 5.0,
        call_arg_overhead: 0.5,
        baseline_slowdown: 2.5,
        baseline_compile_per_unit: 100.0,
        baseline_compile_fixed: 4_000.0,
        opt_compile_fixed: 30_000.0,
        opt_compile_per_unit: 2_500.0,
        opt_compile_super_coeff: 6.0,
        opt_compile_exponent: 1.8,
        // 8 KB I-cache: code bloat is poison.
        icache_capacity: 2_000.0,
        icache_miss_penalty: 0.8,
        inline_synergy: 0.08,
        spill_threshold: 150.0,
        spill_penalty: 0.2,
    }
}

fn main() {
    let arch = embedded_arch();
    let task = TuningTask {
        name: format!("Opt:Bal ({})", arch.name),
        scenario: Scenario::Opt,
        goal: Goal::Balance,
        arch: arch.clone(),
    };
    println!("tuning the inlining heuristic for `{}`…", arch.name);

    let training = specjvm98();
    let tuner = Tuner::new(task, training.clone(), AdaptConfig::default());
    let outcome = tuner.tune(GaConfig {
        pop_size: 20,
        generations: 50,
        stagnation_limit: Some(20),
        seed: 7,
        ..GaConfig::default()
    });

    let default = InlineParams::jikes_default();
    println!("\n{:<22} {:>8} {:>8}", "parameter", "default", arch.name);
    for (name, (d, t)) in inliner::PARAM_NAMES.iter().zip(
        default
            .to_genes()
            .into_iter()
            .zip(outcome.params.to_genes()),
    ) {
        println!("{name:<22} {d:>8} {t:>8}");
    }

    // How much did specializing to the machine matter?
    let eval = evaluate_suite(
        &training,
        Scenario::Opt,
        &arch,
        &outcome.params,
        &AdaptConfig::default(),
    );
    println!(
        "\non `{}`, the machine-specialized heuristic vs the Jikes default:\n  \
         running -{:.0}%, total -{:.0}% (SPECjvm98 averages)",
        arch.name,
        eval.running_reduction_pct(),
        eval.total_reduction_pct()
    );

    // Sanity: the x86-tuned heuristic is NOT the right heuristic here —
    // check one cell of the cross-architecture matrix.
    let x86_task = TuningTask {
        name: "Opt:Bal (x86)".into(),
        scenario: Scenario::Opt,
        goal: Goal::Balance,
        arch: ArchModel::pentium4(),
    };
    let x86_tuned = Tuner::new(x86_task, training.clone(), AdaptConfig::default())
        .tune(GaConfig {
            pop_size: 20,
            generations: 50,
            stagnation_limit: Some(20),
            seed: 7,
            ..GaConfig::default()
        })
        .params;
    let cross = evaluate_suite(
        &training,
        Scenario::Opt,
        &arch,
        &x86_tuned,
        &AdaptConfig::default(),
    );
    println!(
        "the x86-tuned heuristic on `{}`: running -{:.0}%, total -{:.0}% — \
         cross-platform reuse leaves performance on the table",
        arch.name,
        cross.running_reduction_pct(),
        cross.total_reduction_pct()
    );
}
