//! Tune an inlining heuristic with the genetic algorithm, exactly like
//! the paper: train on SPECjvm98, then evaluate the tuned heuristic on
//! the unseen DaCapo+JBB suite.
//!
//! ```sh
//! cargo run --release --example tune_heuristic            # quick budget
//! cargo run --release --example tune_heuristic -- 200     # 200 generations
//! ```

use inlinetune::prelude::*;

fn main() {
    let generations: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(40);

    // The paper's headline cell: the Opt scenario tuned for total time on
    // the Pentium-4 model (Table 4 column "Opt:Tot").
    let task = TuningTask {
        name: "Opt:Tot".into(),
        scenario: Scenario::Opt,
        goal: Goal::Total,
        arch: ArchModel::pentium4(),
    };

    println!(
        "training suite: SPECjvm98 (7 programs); goal: {}",
        task.goal
    );
    let training = specjvm98();
    let tuner = Tuner::new(task.clone(), training.clone(), AdaptConfig::default());

    let started = std::time::Instant::now();
    let outcome = tuner.tune(GaConfig {
        pop_size: 20,
        generations,
        stagnation_limit: Some(25),
        seed: 2005,
        ..GaConfig::default()
    });
    println!(
        "tuned in {:.1}s over {} distinct simulator evaluations ({} cache hits)",
        started.elapsed().as_secs_f64(),
        outcome.ga.evaluations,
        outcome.ga.cache_hits,
    );
    println!(
        "tuned params: {}  (fitness {:.4}: {:.1}% better than the default on the training geomean)",
        outcome.params,
        outcome.fitness,
        100.0 * (1.0 - outcome.fitness),
    );

    // Convergence curve (one line per ~10 generations).
    println!("\nconvergence:");
    for g in outcome.ga.history.iter().step_by(10) {
        println!("  gen {:>3}: best fitness {:.4}", g.index, g.best_fitness);
    }

    // The §5 methodology: evaluate on the unseen test suite.
    for (label, suite) in [
        ("SPECjvm98 (train)", &training),
        ("DaCapo+JBB (test)", &dacapo_jbb()),
    ] {
        let eval = evaluate_suite(
            suite,
            task.scenario,
            &task.arch,
            &outcome.params,
            &AdaptConfig::default(),
        );
        println!("\n{label}: tuned vs default (ratio < 1 is better)");
        for b in &eval.benches {
            println!(
                "  {:<10} running {:.3}  total {:.3}",
                b.name, b.running_ratio, b.total_ratio
            );
        }
        println!(
            "  => average: running -{:.0}%, total -{:.0}%",
            eval.running_reduction_pct(),
            eval.total_reduction_pct()
        );
    }
}
