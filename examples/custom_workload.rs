//! Build your own program with the IR builder, run it through the JIT
//! simulator, and specialize a heuristic for it (the paper's §6.5
//! per-program tuning, on a program the suites have never seen).
//!
//! The program models a tiny JSON-ish tokenizer: a dispatch loop over a
//! buffer, per-token handler methods, and a deep chain of character
//! utilities.
//!
//! ```sh
//! cargo run --release --example custom_workload
//! ```

use inlinetune::prelude::*;
use ir::builder::{MethodBuilder, ProgramBuilder};
use ir::op::OpKind;

/// Hand-build the tokenizer program.
fn tokenizer() -> ir::Program {
    let mut pb = ProgramBuilder::new("tokenizer");

    // Character utilities: a chain is_space -> to_lower -> class_of.
    let mut class_of = MethodBuilder::new("class_of", 1);
    let c = class_of.op(OpKind::And, class_of.param(0), 0x7fi64);
    let cls = class_of.op(OpKind::Shr, c, 4i64);
    class_of.ret(cls);
    let class_of_id = pb.add(class_of);

    let mut to_lower = MethodBuilder::new("to_lower", 1);
    let low = to_lower.op(OpKind::Or, to_lower.param(0), 0x20i64);
    let site = pb.fresh_site();
    let cls = to_lower
        .call(site, class_of_id, vec![low.into()], true)
        .unwrap();
    let merged = to_lower.op(OpKind::Xor, low, cls);
    to_lower.ret(merged);
    let to_lower_id = pb.add(to_lower);

    // Token handlers: each consumes a few characters.
    let mut handler_ids = Vec::new();
    for h in 0..6 {
        let mut handler = MethodBuilder::new(format!("handle{h}"), 1);
        let mut acc = handler.param(0);
        handler.begin_loop(4 + h);
        let ch = handler.op(OpKind::Load, acc, 0i64);
        let site = pb.fresh_site();
        let low = handler
            .call(site, to_lower_id, vec![ch.into()], true)
            .unwrap();
        acc = handler.op(OpKind::Add, acc, low);
        handler.end();
        handler.ret(acc);
        handler_ids.push(pb.add(handler));
    }

    // The dispatch loop.
    let mut main = MethodBuilder::new("main", 0);
    let cursor = main.op(OpKind::Mov, 1i64, 0i64);
    main.begin_loop(30_000);
    let tok = main.op(OpKind::Load, cursor, 0i64);
    let mut v = tok;
    for (i, &h) in handler_ids.iter().enumerate() {
        main.begin_if(v, 1.0 / (i as f64 + 2.0));
        let site = pb.fresh_site();
        let r = main.call(site, h, vec![v.into()], true).unwrap();
        main.op_into(OpKind::Mov, cursor, r, 0i64);
        main.end();
        v = main.op(OpKind::Shr, v, 1i64);
    }
    main.end();
    main.ret(cursor);
    let main_id = pb.add(main);
    pb.entry(main_id);
    pb.build().expect("tokenizer program validates")
}

fn main() {
    let program = tokenizer();
    println!(
        "hand-built `{}`: {} methods, {} call sites",
        program.name,
        program.method_count(),
        program.call_site_count()
    );
    // The IR is executable: run it through the reference interpreter.
    let out = ir::interp::run(&program, &[], &ir::interp::InterpLimits::default())
        .expect("tokenizer runs");
    println!(
        "interpreted: value {}, {} semantic steps, {} dynamic calls",
        out.value, out.fuel_used, out.calls_executed
    );

    let arch = ArchModel::pentium4();
    let cfg = AdaptConfig::default();
    let default = measure(
        &program,
        Scenario::Opt,
        &arch,
        &InlineParams::jikes_default(),
        &cfg,
    );
    println!(
        "\nJikes default under Opt: running {:.3}ms, total {:.3}ms",
        default.running_seconds(&arch) * 1e3,
        default.total_seconds(&arch) * 1e3
    );

    // Specialize a heuristic for this one program (paper §6.5).
    let ranges = ga::Ranges::new(ParamRanges::paper_opt_only().bounds.to_vec());
    let engine = GeneticAlgorithm::new(
        ranges,
        GaConfig {
            pop_size: 16,
            generations: 40,
            stagnation_limit: Some(15),
            seed: 99,
            threads: 1,
            ..GaConfig::default()
        },
    );
    let ga_result = engine.run(|genes| {
        let params = InlineParams::from_genes(genes);
        measure(&program, Scenario::Opt, &arch, &params, &cfg).running_cycles
            / default.running_cycles
    });
    let tuned = InlineParams::from_genes(&ga_result.best_genome);
    let best = measure(&program, Scenario::Opt, &arch, &tuned, &cfg);
    println!(
        "specialized params {}\n  running {:.3}ms ({:.1}% faster than the default heuristic)",
        tuned,
        best.running_seconds(&arch) * 1e3,
        100.0 * (1.0 - best.running_cycles / default.running_cycles)
    );

    // Inlining must never change what the program computes: verify on the
    // actual inlined bodies.
    let (inlined, _) = inliner::inline_program(
        &program,
        &tuned,
        &inliner::HotSites::new(),
        &program.methods.iter().map(|m| m.id).collect::<Vec<_>>(),
    );
    let out2 = ir::interp::run(&inlined, &[], &ir::interp::InterpLimits::default())
        .expect("inlined tokenizer runs");
    assert_eq!(out.value, out2.value, "inlining preserved semantics");
    assert!(out2.calls_executed <= out.calls_executed);
    println!(
        "semantics check: value identical, dynamic calls {} -> {}",
        out.calls_executed, out2.calls_executed
    );
}
