//! Race three search strategies against each other through the tuning
//! service and watch the standings live: start a daemon behind a TCP
//! server, submit one `race:ga+random+hillclimb` job, and stream its
//! watch frames — each frame carries a per-strategy best-so-far table.
//!
//! ```sh
//! cargo run --release --example strategy_race
//! ```
//!
//! The same race is available from the command line:
//!
//! ```sh
//! tuned serve &
//! tuned submit --name demo --scenario opt --goal tot --bench db \
//!              --strategy race:ga+random+hillclimb
//! tuned watch --id 1
//! ```

use inlinetune::prelude::*;
use inlinetune::served::daemon::{Daemon, DaemonConfig};
use inlinetune::served::job::JobSpec;
use inlinetune::served::json::Json;
use inlinetune::served::{Client, RunDir, Server};

fn main() {
    let dir = std::env::temp_dir().join(format!("strategy-race-demo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let daemon = Daemon::start(
        DaemonConfig::default(),
        RunDir::open(&dir).expect("run dir"),
    )
    .expect("daemon");
    let server = Server::bind("127.0.0.1:0", daemon.clone()).expect("bind");
    let addr = server.local_addr().to_string();
    std::thread::spawn(move || server.serve().expect("serve"));
    println!("tuning service on {addr}");

    let spec = JobSpec {
        name: "Opt:Tot race".into(),
        scenario: Scenario::Opt,
        goal: Goal::Total,
        arch: "x86-p4".into(),
        suite: vec!["db".into()],
        ga: GaConfig {
            pop_size: 10,
            generations: 12,
            threads: 1,
            seed: 42,
            stagnation_limit: None,
            ..GaConfig::default()
        },
        strategy: "race:ga+random+hillclimb".into(),
        problem: "inline".into(),
        tenant: "default".into(),
        online: None,
        drift_pos: None,
    };
    let mut client = Client::connect(&addr).expect("connect");
    let id = client.submit(&spec).expect("submit");
    println!("submitted race job {id} ({})\n", spec.strategy);

    // Every watch frame of a racing job carries a `strategies` array:
    // one standing per portfolio member, updated each round.
    let mut watcher = Client::connect(&addr).expect("connect watcher");
    let last = watcher
        .watch(id, |frame| {
            let round = frame.get("generation").and_then(Json::as_i64).unwrap_or(0);
            let Some(standings) = frame.get("strategies").and_then(Json::as_arr) else {
                return;
            };
            print!("round {round:>2}: ");
            for s in standings {
                let name = s.get("name").and_then(Json::as_str).unwrap_or("?");
                let evals = s.get("evaluations").and_then(Json::as_i64).unwrap_or(0);
                match s.get("best_fitness").and_then(Json::as_f64) {
                    Some(f) => print!("{name} {f:.4} ({evals} evals)  "),
                    None => print!("{name} — ({evals} evals)  "),
                }
            }
            println!();
        })
        .expect("watch");

    let result = last.get("result").expect("done job has a result");
    let fitness = result
        .get("fitness")
        .and_then(Json::as_f64)
        .expect("fitness");
    let genes: Vec<i64> = result
        .get("params")
        .and_then(|p| p.get("genes"))
        .and_then(Json::as_arr)
        .expect("genes")
        .iter()
        .filter_map(Json::as_i64)
        .collect();
    println!("\nrace winner: fitness {fitness:.4}, params {genes:?}");

    let _ = client.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
