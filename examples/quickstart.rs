//! Quickstart: measure one benchmark under different inlining heuristics
//! and scenarios, then see what the heuristic decided.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use inlinetune::prelude::*;

fn main() {
    // A synthetic stand-in for SPECjvm98's `db`, generated
    // deterministically: same program every run, everywhere.
    let bench = benchmark_by_name("db").expect("db is a known benchmark");
    println!(
        "benchmark `{}`: {} methods, {} call sites\n  ({})",
        bench.name(),
        bench.program.method_count(),
        bench.program.call_site_count(),
        bench.spec.description,
    );

    let arch = ArchModel::pentium4();
    let cfg = AdaptConfig::default();

    // Three heuristics: none, the Jikes RVM default, and the paper's
    // x86 Opt:Tot tuned values.
    let heuristics = [
        ("no inlining", InlineParams::disabled()),
        ("Jikes default", InlineParams::jikes_default()),
        (
            "paper Opt:Tot",
            InlineParams {
                callee_max_size: 10,
                always_inline_size: 6,
                max_inline_depth: 8,
                caller_max_size: 2419,
                hot_callee_max_size: 135,
            },
        ),
    ];

    for scenario in [Scenario::Opt, Scenario::Adapt] {
        println!("\n--- scenario {scenario} ---");
        println!(
            "{:<14} {:>12} {:>12} {:>12} {:>8} {:>8}",
            "heuristic", "running(ms)", "total(ms)", "compile(ms)", "inlined", "code"
        );
        for (name, params) in &heuristics {
            let m = measure(&bench.program, scenario, &arch, params, &cfg);
            println!(
                "{:<14} {:>12.3} {:>12.3} {:>12.3} {:>8} {:>8}",
                name,
                m.running_seconds(&arch) * 1e3,
                m.total_seconds(&arch) * 1e3,
                arch.cycles_to_seconds(m.compile_cycles) * 1e3,
                m.inline_stats.inlined,
                m.code_size,
            );
        }
    }

    // Inspect the decision record for the default heuristic under Opt.
    let m = measure(
        &bench.program,
        Scenario::Opt,
        &arch,
        &InlineParams::jikes_default(),
        &cfg,
    );
    let s = m.inline_stats;
    println!(
        "\ndefault-heuristic decisions under Opt: {} sites considered, {} inlined \
         ({} via always-inline); rejected: {} too big, {} too deep, {} caller full, {} recursive",
        s.considered,
        s.inlined,
        s.always_inlined,
        s.rej_callee_size,
        s.rej_depth,
        s.rej_caller_size,
        s.rej_recursive
    );
}
