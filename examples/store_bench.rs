//! Benchmarks the persistent fitness store (`crates/stored`).
//!
//! Two phases, one JSON object on stdout (consumed by `scripts/bench.sh`
//! into `BENCH_store.json`):
//!
//! 1. **Raw throughput** — append `RECORDS` synthetic records across
//!    three cells (every append flushes before acking, so this measures
//!    the durable path), then look every one of them up again.
//! 2. **Warm-start payoff** — tune one small cell cold (plain GA,
//!    logging every evaluation), rebuild a store from that log, and
//!    re-tune warm-started from the store under the identical budget.
//!    The store contains the cold run's own best genome, so the warm
//!    run must reach the cold target within its first generation —
//!    `warm_ok` asserts `warm_evals <= cold_evals`.
//!
//! ```sh
//! cargo run --release --example store_bench -- [RECORDS] [POP] [GENS] [SEED]
//! ```

use std::time::Instant;

use inlinetune::prelude::*;
use inlinetune::search::Strategy;
use inlinetune::stored::{digest_parts, Fingerprint, Record, Store, FEATURES};
use inlinetune::tuner::cell_fingerprint;

/// Drives a strategy against the tuner, logging every evaluation;
/// stops early once `stop_at` is reached (warm run) or the budget ends.
fn drive(
    tuner: &Tuner,
    strategy: &mut dyn Strategy,
    stop_at: Option<f64>,
) -> (Vec<(Vec<i64>, f64)>, f64, usize) {
    let mut log = Vec::new();
    let mut best = f64::INFINITY;
    let mut evals_to_best = 0;
    loop {
        let batch = strategy.ask();
        let scores: Vec<f64> = batch
            .iter()
            .map(|g| tuner.fitness(&InlineParams::from_genes(g)))
            .collect();
        for (g, f) in batch.iter().zip(&scores) {
            log.push((g.clone(), *f));
        }
        strategy.tell(&batch, &scores);
        if let Some((_, f)) = strategy.best() {
            if f < best {
                best = f;
                evals_to_best = strategy.evaluations();
            }
        }
        if stop_at.is_some_and(|bar| best <= bar) || strategy.is_done() {
            return (log, best, evals_to_best);
        }
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut num =
        |default: usize| -> usize { args.next().and_then(|a| a.parse().ok()).unwrap_or(default) };
    let records = num(2000).max(10);
    let pop = num(8);
    let gens = num(4);
    let seed = num(7) as u64;

    let scratch = std::env::temp_dir().join(format!("store-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);

    // Phase 1: durable append + lookup throughput over synthetic cells.
    let cells: Vec<Fingerprint> = (0..3)
        .map(|c| Fingerprint {
            cell_digest: digest_parts(&["store-bench", &c.to_string()]),
            arch: "x86-p4".into(),
            features: (0..FEATURES).map(|f| (c * FEATURES + f) as f64).collect(),
            problem: "inline".into(),
        })
        .collect();
    let plan: Vec<Record> = (0..records)
        .map(|i| Record {
            fingerprint: cells[i % cells.len()].clone(),
            genome: vec![i as i64, (i * 7) as i64, (i % 13) as i64, 1, 135],
            fitness: 1.0 - (i as f64) / (records as f64 * 2.0),
        })
        .collect();

    let throughput_dir = scratch.join("throughput");
    let store = Store::open(&throughput_dir).expect("bench store opens");
    let started = Instant::now();
    for rec in &plan {
        store.append(rec).expect("bench append");
    }
    let append_secs = started.elapsed().as_secs_f64();

    let started = Instant::now();
    for rec in &plan {
        let hit = store.get(rec.fingerprint.cell_digest, &rec.genome);
        assert_eq!(
            hit.map(f64::to_bits),
            Some(rec.fitness.to_bits()),
            "lookup lost or mangled an acked record"
        );
    }
    let lookup_secs = started.elapsed().as_secs_f64();
    drop(store);

    // Phase 2: cold vs warm-started tuning of one small cell.
    let task = TuningTask {
        name: "Opt:Tot".into(),
        scenario: jit::Scenario::Opt,
        goal: Goal::Total,
        arch: ArchModel::pentium4(),
    };
    let suite = vec![benchmark_by_name("db").expect("db exists").clone()];
    let tuner = Tuner::new(task.clone(), suite.clone(), AdaptConfig::default());
    let ga = GaConfig {
        pop_size: pop,
        generations: gens,
        threads: 1,
        seed,
        stagnation_limit: None,
        ..GaConfig::default()
    };

    let mut cold = tuner.start_strategy("ga", ga.clone()).expect("ga builds");
    let (cold_log, target, cold_evals) = drive(&tuner, cold.as_mut(), None);

    let warm_dir = scratch.join("warm");
    let store = Store::open(&warm_dir).expect("warm store opens");
    let fp = cell_fingerprint(&task, &suite);
    for (genome, fitness) in &cold_log {
        store
            .append(&Record {
                fingerprint: fp.clone(),
                genome: genome.clone(),
                fitness: *fitness,
            })
            .expect("warm append");
    }
    let mut warm = tuner
        .start_strategy("warmstart", ga)
        .expect("warmstart builds");
    let planted = warm.seed_population(&store.warm_seeds(&fp, pop));
    let (_, warm_best, warm_evals) = drive(&tuner, warm.as_mut(), Some(target));
    drop(store);
    let _ = std::fs::remove_dir_all(&scratch);

    let warm_ok = warm_best <= target && warm_evals <= cold_evals;
    println!(
        "{{\"bench\":\"persistent fitness store\",\"records\":{records},\
         \"append_per_sec\":{:.0},\"lookup_per_sec\":{:.0},\
         \"pop\":{pop},\"gens\":{gens},\"seed\":{seed},\
         \"target\":{target:.6},\"cold_evals\":{cold_evals},\
         \"warm_evals\":{warm_evals},\"warm_seeds\":{planted},\
         \"warm_ok\":{warm_ok}}}",
        records as f64 / append_secs,
        records as f64 / lookup_secs,
    );
    assert!(warm_ok, "warm start needed more evaluations than cold");
}
