//! Distributed fitness evaluation, wired up in one process: two `evald`
//! eval servers on background threads, a worker pool dispatching to
//! them, and a GA search whose cache-miss evaluations go over TCP —
//! then the proof that distribution changed nothing: the tuned
//! parameters are bit-identical to a plain local run of the same seed.
//!
//! ```sh
//! cargo run --release --example distributed_tuning
//! ```
//!
//! The same topology runs across machines with the real binaries:
//! `evald --addr HOST:PORT` per worker, then
//! `tuned serve --worker HOST:PORT --worker HOST:PORT ...`.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use inlinetune::evald::{Chaos, EvalWorker};
use inlinetune::prelude::*;
use inlinetune::served::dispatch::{DispatchConfig, RemoteEvaluator, WorkerPool};
use inlinetune::served::job::JobSpec;
use inlinetune::served::Metrics;
use inlinetune::{ga, jit, tuner};

fn spec(seed: u64) -> JobSpec {
    JobSpec {
        name: "Opt:Tot".into(),
        scenario: jit::Scenario::Opt,
        goal: tuner::Goal::Total,
        arch: "x86-p4".into(),
        suite: vec!["db".into(), "compress".into()],
        ga: ga::GaConfig {
            pop_size: 12,
            generations: 6,
            threads: 1,
            seed,
            stagnation_limit: None,
            ..ga::GaConfig::default()
        },
        strategy: "ga".into(),
        problem: "inline".into(),
        tenant: "default".into(),
        online: None,
        drift_pos: None,
    }
}

fn main() {
    let spec = spec(2005);

    // Two eval workers, each on an OS-assigned port. In production these
    // are separate `evald` processes on separate machines; the protocol
    // is the same either way.
    let mut addrs = Vec::new();
    let mut stops = Vec::new();
    for _ in 0..2 {
        let worker = EvalWorker::bind("127.0.0.1:0", Chaos::inert()).expect("bind worker");
        addrs.push(worker.local_addr().to_string());
        stops.push(worker.stop_flag());
        std::thread::spawn(move || worker.serve().expect("serve"));
    }
    println!("workers: {addrs:?}");

    // The dispatch side: a pool over those addresses and a remote
    // evaluator for this job. The fallback closure is the local fitness
    // path — used only if every worker dies.
    let pool = Arc::new(WorkerPool::with_workers(DispatchConfig::default(), &addrs));
    let metrics = Arc::new(Metrics::new());
    let tuning = Tuner::new(
        spec.task().expect("task"),
        spec.training().expect("training suite"),
        spec.adapt_cfg(),
    );
    let remote = RemoteEvaluator::new(&pool, spec.to_json(), &metrics, |genes| {
        tuning.fitness(&InlineParams::from_genes(genes))
    });

    // Drive the search one generation at a time through the remote
    // evaluator. Only memo-table misses travel over the wire. Each
    // generation's wall-time breakdown comes from the obs layer via
    // `last_timing` — the same numbers `tuned` forwards in watch frames.
    let mut state = tuning.start(spec.ga.clone());
    while !state.step_with(&remote) {
        let best = state.best().map_or(f64::INFINITY, |(_, f)| f);
        let remote_evals = metrics.remote_completed.load(Ordering::Relaxed);
        match state.last_timing() {
            Some(t) => println!(
                "generation {:>2}: best fitness {best:.4}  \
                 eval {:>6}us ({} evals, {} cached)  breed {:>4}us  \
                 (remote evals so far: {remote_evals})",
                t.generation, t.eval_micros, t.evaluations, t.cache_hits, t.breed_micros,
            ),
            None => println!(
                "generation {:>2}: best fitness {best:.4}  \
                 (remote evals so far: {remote_evals})",
                state.generation(),
            ),
        }
    }
    let distributed = tuning.outcome(&state);

    // The invariant that makes all the retry/failover machinery safe:
    // fitness is a pure function of the genome, so the distributed
    // search equals the local search bit-for-bit.
    let local = tuning.tune(spec.ga.clone());
    assert_eq!(
        distributed.params, local.params,
        "distribution must not change the result"
    );
    assert_eq!(distributed.fitness.to_bits(), local.fitness.to_bits());

    println!(
        "\ntuned params (distributed == local): {:?}",
        distributed.params
    );
    println!(
        "fitness {:.4} vs default heuristic (lower is better)",
        distributed.fitness
    );
    for w in pool.snapshots() {
        println!(
            "worker {}: {} dispatched, {} completed, mean rtt {:.2} ms",
            w.addr, w.dispatched, w.completed, w.mean_rtt_ms
        );
    }

    for stop in stops {
        stop.store(true, Ordering::SeqCst);
    }
}
