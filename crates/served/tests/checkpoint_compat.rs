//! Golden checkpoint fixtures: committed JSON bytes that every future
//! build must keep loading.
//!
//! The round-trip tests in `src/checkpoint.rs` prove that *today's*
//! serializer and deserializer agree with each other; they cannot catch
//! a change that breaks both sides in lockstep. These fixtures are the
//! bytes an *old* daemon actually wrote, frozen in the repo: run
//! directories survive upgrades only if this suite stays green.
//!
//! Three shapes are pinned:
//!
//! * `legacy_ga_checkpoint.json` — the original untagged `GaSnapshot`
//!   object from before the `search` strategy seam existed. No
//!   `"strategy"` key; must decode as a GA checkpoint forever.
//! * `tagged_race_checkpoint.json` — a `"strategy":"race"` snapshot
//!   with nested member snapshots, the richest tagged shape.
//! * `legacy_job_spec.json` — a pre-problems `spec.json` with no
//!   `"problem"` key; must load (and recover through a full daemon
//!   restart) as an inlining job forever, with the compatibility
//!   handled entirely in the loader.
//!
//! If the format changes *intentionally*, regenerate with
//! `REGEN_FIXTURES=1 cargo test -p inlinetune-served --test
//! checkpoint_compat` and make the migration story explicit in review —
//! a changed fixture means old run directories need a compatibility
//! path, not just new bytes.

use std::path::PathBuf;

use ga::{GaConfig, GaState, Ranges};
use search::StrategySnapshot;
use served::checkpoint::{strategy_snapshot_from_json, strategy_snapshot_to_json};
use served::json::parse;

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn tiny_cfg() -> GaConfig {
    GaConfig {
        pop_size: 6,
        generations: 10,
        threads: 1,
        seed: 7,
        stagnation_limit: None,
        ..GaConfig::default()
    }
}

fn toy_fitness(g: &[i64]) -> f64 {
    g.iter().map(|&x| (x * x) as f64).sum()
}

/// The shape a pre-`search` daemon wrote: an untagged `GaSnapshot`.
fn build_legacy_ga() -> StrategySnapshot {
    let mut state = GaState::new(Ranges::new(vec![(-50, 50); 5]), tiny_cfg());
    for _ in 0..3 {
        state.step(toy_fitness);
    }
    StrategySnapshot::Ga(state.snapshot())
}

/// A mid-flight racing portfolio: tagged, with nested member snapshots.
fn build_tagged_race() -> StrategySnapshot {
    let mut s = search::build(
        "race:ga+random+hillclimb",
        Ranges::new(vec![(1, 40), (1, 20), (1, 300)]),
        tiny_cfg(),
    )
    .expect("valid race spec");
    for _ in 0..3 {
        if s.is_done() {
            break;
        }
        let batch = s.ask();
        let scores: Vec<f64> = batch.iter().map(|g| toy_fitness(g)).collect();
        s.tell(&batch, &scores);
    }
    s.snapshot()
}

/// Reads a committed fixture, regenerating it first when
/// `REGEN_FIXTURES` is set (build functions are fully seeded, so
/// regeneration is deterministic).
fn fixture(name: &str, build: impl Fn() -> StrategySnapshot) -> String {
    let path = fixture_path(name);
    if std::env::var("REGEN_FIXTURES").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, strategy_snapshot_to_json(&build()).to_text()).unwrap();
    }
    std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); regenerate with REGEN_FIXTURES=1",
            path.display()
        )
    })
}

#[test]
fn legacy_untagged_ga_fixture_still_loads() {
    let text = fixture("legacy_ga_checkpoint.json", build_legacy_ga);
    assert!(
        !text.contains("\"strategy\""),
        "the legacy fixture must stay untagged — that is the point of it"
    );

    let decoded = strategy_snapshot_from_json(&parse(&text).expect("fixture is valid JSON"))
        .expect("legacy bytes must keep decoding");
    let StrategySnapshot::Ga(ref snap) = decoded else {
        panic!("untagged checkpoint decoded as '{}'", decoded.kind());
    };
    assert_eq!(snap.next_gen, 3, "fixture was frozen after 3 generations");
    assert_eq!(snap.config.seed, 7);
    assert_eq!(snap.population.len(), 6);

    // The serializer still emits the exact legacy bytes: a pre-upgrade
    // daemon reading a post-upgrade run dir sees the shape it expects.
    assert_eq!(
        strategy_snapshot_to_json(&decoded).to_text(),
        text,
        "re-serializing the legacy checkpoint changed its bytes"
    );

    // And the checkpoint is not just parseable but *resumable*.
    let mut resumed = search::restore(decoded).expect("legacy checkpoint restores");
    assert!(!resumed.is_done());
    assert!(!resumed.ask().is_empty(), "resumed GA proposes no genomes");
}

#[test]
fn tagged_race_fixture_still_loads() {
    let text = fixture("tagged_race_checkpoint.json", build_tagged_race);
    assert!(
        text.contains("\"strategy\""),
        "the race fixture must carry its strategy tag"
    );

    let decoded = strategy_snapshot_from_json(&parse(&text).expect("fixture is valid JSON"))
        .expect("tagged bytes must keep decoding");
    let StrategySnapshot::Race(ref race) = decoded else {
        panic!("race checkpoint decoded as '{}'", decoded.kind());
    };
    let names: Vec<&str> = race.members.iter().map(|m| m.name.as_str()).collect();
    assert_eq!(names, ["ga", "random", "hillclimb"]);
    assert_eq!(race.rounds, 3, "fixture was frozen after 3 rounds");
    assert!(!race.done);

    assert_eq!(
        strategy_snapshot_to_json(&decoded).to_text(),
        text,
        "re-serializing the race checkpoint changed its bytes"
    );

    let mut resumed = search::restore(decoded).expect("race checkpoint restores");
    assert!(!resumed.is_done());
    assert!(
        !resumed.ask().is_empty(),
        "resumed race proposes no genomes"
    );
}

#[test]
fn legacy_spec_without_a_problem_key_loads_as_an_inlining_job() {
    let text = std::fs::read_to_string(fixture_path("legacy_job_spec.json")).unwrap();
    assert!(
        !text.contains("\"problem\""),
        "the legacy fixture must stay problem-less — that is the point of it"
    );
    let spec = served::JobSpec::from_text(&text).expect("legacy spec bytes must keep loading");
    assert_eq!(spec.problem, "inline");
    assert_eq!(spec.build_problem().unwrap().id(), "inline");
    // Today's serializer tags the problem explicitly, and the tagged
    // bytes decode back to the same spec.
    let reserialized = spec.to_json().to_text();
    assert!(reserialized.contains("\"problem\":\"inline\""));
    assert_eq!(served::JobSpec::from_text(&reserialized).unwrap(), spec);
}

#[test]
fn legacy_spec_without_an_online_key_loads_with_online_mode_off() {
    let text = std::fs::read_to_string(fixture_path("legacy_job_spec.json")).unwrap();
    assert!(
        !text.contains("\"online\"") && !text.contains("\"drift_pos\""),
        "the legacy fixture must stay online-less — that is the point of it"
    );
    let spec = served::JobSpec::from_text(&text).expect("legacy spec bytes must keep loading");
    assert!(spec.online.is_none(), "online mode must default off");
    assert!(spec.drift_pos.is_none());
    // Offline specs stay byte-compatible: the serializer emits no
    // online keys for them, so a pre-online daemon can still read the
    // spec this daemon writes back.
    let reserialized = spec.to_json().to_text();
    assert!(!reserialized.contains("\"online\""));
    assert!(!reserialized.contains("\"drift_pos\""));
}

#[test]
fn online_spec_fixture_still_loads() {
    let text = std::fs::read_to_string(fixture_path("online_job_spec.json")).unwrap();
    let spec = served::JobSpec::from_text(&text).expect("online spec bytes must keep loading");
    let online = spec.online.as_ref().expect("fixture is an online spec");
    assert_eq!(online.epochs, 12);
    assert_eq!(online.kind, workloads::DriftKind::Cyclic);
    assert_eq!(online.period, 3);
    assert_eq!(online.phases, 3);
    assert_eq!(online.drift_seed, 11);
    assert_eq!(online.window, 2);
    assert!((online.threshold_pct - 4.5).abs() < 1e-12);
    assert!(spec.drift_pos.is_none());
    // The fixture round-trips bit-exactly through today's serializer.
    assert_eq!(spec.to_json().to_text(), text.trim_end());
    assert_eq!(
        served::JobSpec::from_text(&spec.to_json().to_text()).unwrap(),
        spec
    );
    // A phase-pinned clone serializes its position and loads back.
    let pinned = spec.at_pos(workloads::DriftPos {
        phase: 1,
        num: 0,
        den: 1,
    });
    let back = served::JobSpec::from_text(&pinned.to_json().to_text()).unwrap();
    assert_eq!(back, pinned);
}

#[test]
fn legacy_spec_without_a_tenant_key_loads_as_the_default_tenant() {
    let text = std::fs::read_to_string(fixture_path("legacy_job_spec.json")).unwrap();
    assert!(
        !text.contains("\"tenant\""),
        "the legacy fixture must stay tenant-less — that is the point of it"
    );
    let spec = served::JobSpec::from_text(&text).expect("legacy spec bytes must keep loading");
    assert_eq!(spec.tenant, shard::DEFAULT_TENANT);
    // Today's serializer tags the tenant explicitly, and the tagged
    // bytes decode back to the same spec.
    let reserialized = spec.to_json().to_text();
    assert!(reserialized.contains("\"tenant\":\"default\""));
    assert_eq!(served::JobSpec::from_text(&reserialized).unwrap(), spec);
}

#[test]
fn legacy_run_dir_recovers_on_a_sharded_daemon_under_the_default_tenant() {
    // The same pre-shard run directory, booted on a daemon that shards
    // its queue: recovery must route the job to a shard, account it to
    // the default tenant, and still finish it.
    let dir = std::env::temp_dir().join(format!("ckpt-compat-sharded-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let legacy = std::fs::read_to_string(fixture_path("legacy_job_spec.json")).unwrap();
    std::fs::create_dir_all(dir.join("jobs/1")).unwrap();
    std::fs::write(dir.join("jobs/1/spec.json"), &legacy).unwrap();

    let run_dir = served::RunDir::open(&dir).unwrap();
    let daemon = served::Daemon::start(
        served::DaemonConfig {
            workers: 2,
            shards: 3,
            ..served::DaemonConfig::default()
        },
        run_dir,
    )
    .unwrap();
    let unit = std::env::var("SIM_TIMEOUT_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1000u64);
    let deadline = std::time::Instant::now() + std::time::Duration::from_millis(unit * 120);
    let record = loop {
        let r = daemon.status(1).expect("recovered job must be tracked");
        if r.state.is_terminal() {
            break r;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "legacy job never finished on the sharded daemon"
        );
        std::thread::sleep(std::time::Duration::from_millis(20));
    };
    let tenants = daemon.tenant_usage();
    daemon.shutdown();

    assert_eq!(record.spec.tenant, shard::DEFAULT_TENANT);
    assert!(record.shard < 3, "job must land in a real shard");
    assert!(record.result.is_some(), "legacy job must complete");
    let row = tenants
        .iter()
        .find(|t| t.tenant == shard::DEFAULT_TENANT)
        .expect("default tenant accounted");
    assert!(
        row.admitted >= 1,
        "recovery admits under the default tenant"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn legacy_run_dir_recovers_as_an_inlining_job_bit_identically() {
    // A run directory as a pre-problems daemon left it: spec.json with
    // no "problem" key, job interrupted before any result was written.
    let dir = std::env::temp_dir().join(format!("ckpt-compat-legacy-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let legacy = std::fs::read_to_string(fixture_path("legacy_job_spec.json")).unwrap();
    std::fs::create_dir_all(dir.join("jobs/1")).unwrap();
    std::fs::write(dir.join("jobs/1/spec.json"), &legacy).unwrap();

    let run_dir = served::RunDir::open(&dir).unwrap();
    let daemon = served::Daemon::start(
        served::DaemonConfig {
            workers: 1,
            ..served::DaemonConfig::default()
        },
        run_dir,
    )
    .unwrap();
    // Wall-clock bound (this drives a real daemon, not the sim clock);
    // scales with `SIM_TIMEOUT_MS` per the convention in restart.rs.
    let unit = std::env::var("SIM_TIMEOUT_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1000u64);
    let deadline = std::time::Instant::now() + std::time::Duration::from_millis(unit * 120);
    let record = loop {
        let r = daemon.status(1).expect("recovered job must be tracked");
        if r.state.is_terminal() {
            break r;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "legacy job never finished"
        );
        std::thread::sleep(std::time::Duration::from_millis(20));
    };
    daemon.shutdown();

    assert_eq!(record.spec.problem, "inline");
    let (genes, fitness) = record.result.expect("legacy job must complete");
    // Same trajectory the pre-problems daemon would have produced: the
    // direct Tuner path over the same spec.
    let spec = served::JobSpec::from_text(&legacy).unwrap();
    let outcome = tuner::Tuner::new(
        spec.task().unwrap(),
        spec.training().unwrap(),
        spec.adapt_cfg(),
    )
    .tune(spec.ga.clone());
    assert_eq!(genes, outcome.params.to_genes());
    assert_eq!(fitness.to_bits(), outcome.fitness.to_bits());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn restored_fixtures_keep_searching_deterministically() {
    // A restored checkpoint must not merely load: stepping it twice from
    // the same bytes must propose the same genomes both times.
    for (name, build) in [
        (
            "legacy_ga_checkpoint.json",
            build_legacy_ga as fn() -> StrategySnapshot,
        ),
        ("tagged_race_checkpoint.json", build_tagged_race),
    ] {
        let text = fixture(name, build);
        let step = |text: &str| -> Vec<Vec<i64>> {
            let decoded = strategy_snapshot_from_json(&parse(text).unwrap()).unwrap();
            let mut s = search::restore(decoded).unwrap();
            let batch = s.ask();
            let scores: Vec<f64> = batch.iter().map(|g| toy_fitness(g)).collect();
            s.tell(&batch, &scores);
            s.ask()
        };
        assert_eq!(
            step(&text),
            step(&text),
            "{name}: two restores of the same bytes diverged"
        );
    }
}
