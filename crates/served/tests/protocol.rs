//! Protocol robustness: malformed frames, oversized lines, and half-open
//! connections must not wedge the daemon — and metrics stay live while
//! jobs run concurrently.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use ga::GaConfig;
use jit::Scenario;
use served::daemon::{Daemon, DaemonConfig};
use served::job::JobSpec;
use served::json::{parse, u64_from_json, Json};
use served::{Client, RunDir, Server};
use tuner::Goal;

/// The wall-clock unit every deadline in this suite is a multiple of.
/// These tests exercise a real daemon over real sockets, so their
/// bounds cannot ride the simulated clock (`crates/sim`) — but they
/// *can* scale: set `SIM_TIMEOUT_MS` (default 1000) to stretch every
/// bound on slow or heavily loaded CI machines instead of editing
/// hard-coded deadlines.
fn timeout_unit() -> Duration {
    let ms = std::env::var("SIM_TIMEOUT_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1000);
    Duration::from_millis(ms)
}

fn bound(units: u32) -> Duration {
    timeout_unit() * units
}

struct TestServer {
    addr: String,
    daemon: Daemon,
    stop: std::sync::Arc<std::sync::atomic::AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
    dir: PathBuf,
}

impl TestServer {
    fn start(tag: &str, workers: usize) -> Self {
        Self::start_configured(tag, workers, false, |c| c)
    }

    /// Like [`TestServer::start`], with the persistent fitness store
    /// enabled under the run directory.
    fn start_with_store(tag: &str, workers: usize) -> Self {
        Self::start_configured(tag, workers, true, |c| c)
    }

    /// Like [`TestServer::start`], with extra daemon-config tweaks
    /// (shards, quotas, caps) applied on top of the defaults.
    fn start_tuned(
        tag: &str,
        workers: usize,
        tweak: impl FnOnce(DaemonConfig) -> DaemonConfig,
    ) -> Self {
        Self::start_configured(tag, workers, false, tweak)
    }

    fn start_configured(
        tag: &str,
        workers: usize,
        with_store: bool,
        tweak: impl FnOnce(DaemonConfig) -> DaemonConfig,
    ) -> Self {
        let dir = std::env::temp_dir().join(format!("tuned-proto-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = with_store.then(|| {
            std::sync::Arc::new(stored::Store::open(dir.join("store")).expect("open store"))
        });
        let daemon = Daemon::start(
            tweak(DaemonConfig {
                workers,
                queue_capacity: 16,
                store,
                ..DaemonConfig::default()
            }),
            RunDir::open(&dir).unwrap(),
        )
        .unwrap();
        let server = Server::bind("127.0.0.1:0", daemon.clone()).unwrap();
        let addr = server.local_addr().to_string();
        let stop = server.stop_flag();
        let handle = std::thread::spawn(move || {
            server.serve().expect("serve");
        });
        Self {
            addr,
            daemon,
            stop,
            handle: Some(handle),
            dir,
        }
    }
}

impl Drop for TestServer {
    fn drop(&mut self) {
        for r in self.daemon.list() {
            let _ = self.daemon.cancel(r.id);
        }
        self.stop.store(true, std::sync::atomic::Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        self.daemon.shutdown();
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

fn raw_request(stream: &mut TcpStream, line: &str) -> Json {
    stream.write_all(line.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut resp = String::new();
    reader.read_line(&mut resp).unwrap();
    parse(resp.trim_end()).expect("daemon always answers with JSON")
}

fn job(seed: u64, generations: usize) -> JobSpec {
    JobSpec {
        name: format!("job-{seed}"),
        scenario: Scenario::Opt,
        goal: Goal::Total,
        arch: "x86-p4".into(),
        suite: vec!["db".into()],
        ga: GaConfig {
            pop_size: 6,
            generations,
            threads: 1,
            seed,
            stagnation_limit: None,
            ..GaConfig::default()
        },
        strategy: "ga".into(),
        problem: "inline".into(),
        tenant: "default".into(),
        online: None,
        drift_pos: None,
    }
}

#[test]
fn malformed_frames_get_errors_and_the_connection_survives() {
    let ts = TestServer::start("malformed", 1);
    let mut stream = TcpStream::connect(&ts.addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();

    for bad in [
        "this is not json",
        "{\"no_cmd\":1}",
        "{\"cmd\":42}",
        "{\"cmd\":\"no-such-verb\"}",
        "{\"cmd\":\"status\"}",
        "{\"cmd\":\"submit\",\"job\":{\"name\":\"x\"}}",
        "[1,2,3]",
    ] {
        let resp = raw_request(&mut stream, bad);
        assert_eq!(
            resp.get("ok"),
            Some(&Json::Bool(false)),
            "{bad} must be rejected"
        );
        assert!(resp.get("error").is_some());
    }

    // Same connection still serves good requests.
    let resp = raw_request(&mut stream, "{\"cmd\":\"ping\"}");
    assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));

    // And the error counter saw every unparseable frame / unknown verb
    // (well-formed requests with bad arguments are not protocol errors).
    let m = ts.daemon.metrics_snapshot();
    assert!(m.protocol_errors >= 5, "saw {} errors", m.protocol_errors);
}

#[test]
fn unknown_strategy_submit_gets_a_structured_error_frame() {
    let ts = TestServer::start("bad-strategy", 1);
    let mut stream = TcpStream::connect(&ts.addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();

    let submit = |strategy: &str| {
        format!(
            "{{\"cmd\":\"submit\",\"job\":{{\"name\":\"j\",\"scenario\":\"opt\",\
             \"goal\":\"tot\",\"arch\":\"x86-p4\",\"suite\":[\"db\"],\
             \"strategy\":\"{strategy}\"}}}}"
        )
    };
    for bad in ["gradient", "race:ga", "race:ga+bogus", ""] {
        let resp = raw_request(&mut stream, &submit(bad));
        assert_eq!(
            resp.get("ok"),
            Some(&Json::Bool(false)),
            "strategy '{bad}' must be rejected at submit"
        );
        let msg = resp.get("error").and_then(Json::as_str).unwrap();
        assert!(
            msg.contains("unknown strategy") || msg.contains("at least 2 members"),
            "error frame should name the problem, got: {msg}"
        );
    }
    assert!(
        ts.daemon.list().is_empty(),
        "a rejected submit must not enqueue a job"
    );

    // The connection survives, and a well-formed race spec is accepted.
    let resp = raw_request(&mut stream, &submit("race:ga+random"));
    assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));
    let id = resp.get("id").and_then(Json::as_i64).unwrap() as u64;
    let _ = ts.daemon.cancel(id);
}

#[test]
fn oversized_line_closes_the_connection_without_buffering_it() {
    let ts = TestServer::start("oversized", 1);
    let mut stream = TcpStream::connect(&ts.addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();

    // 4 MiB of garbage on one line: the server must reject after ~1 MiB
    // and close, not accumulate the rest.
    let chunk = vec![b'a'; 64 * 1024];
    let mut wrote_err = None;
    for _ in 0..64 {
        if let Err(e) = stream.write_all(&chunk) {
            wrote_err = Some(e); // server already hung up mid-send: fine
            break;
        }
    }
    if wrote_err.is_none() {
        let _ = stream.write_all(b"\n");
    }
    let mut resp = Vec::new();
    let _ = stream.read_to_end(&mut resp); // server closes after the error frame
    let text = String::from_utf8_lossy(&resp);
    if !text.trim().is_empty() {
        let v = parse(text.trim()).expect("error frame is JSON");
        assert_eq!(v.get("ok"), Some(&Json::Bool(false)));
    }

    // The daemon is still alive for everyone else.
    let mut client = Client::connect(&ts.addr).unwrap();
    assert!(client.list().unwrap().is_empty());
}

#[test]
fn half_open_connections_do_not_wedge_the_daemon() {
    let ts = TestServer::start("halfopen", 1);

    // Open sockets that send nothing (and one that sends half a frame),
    // then leave them dangling.
    let idle: Vec<TcpStream> = (0..4)
        .map(|_| TcpStream::connect(&ts.addr).unwrap())
        .collect();
    let mut partial = TcpStream::connect(&ts.addr).unwrap();
    partial.write_all(b"{\"cmd\":\"stat").unwrap(); // no newline, ever

    // The daemon still answers new connections promptly.
    let start = Instant::now();
    let mut client = Client::connect(&ts.addr).unwrap();
    client.set_timeout(Some(Duration::from_secs(10))).unwrap();
    let id = client.submit(&job(1, 2)).unwrap();
    let deadline = Instant::now() + bound(60);
    loop {
        let j = client.status(id).unwrap();
        if j.get("state").and_then(Json::as_str) == Some("done") {
            break;
        }
        assert!(Instant::now() < deadline, "job stuck behind idle sockets");
        std::thread::sleep(Duration::from_millis(30));
    }
    assert!(
        start.elapsed() < bound(60),
        "half-open peers delayed real work"
    );
    drop(partial);
    drop(idle);
}

#[test]
fn metrics_are_live_while_two_jobs_run_concurrently() {
    let ts = TestServer::start("metrics", 2);
    let mut client = Client::connect(&ts.addr).unwrap();
    let a = client.submit(&job(10, 200)).unwrap();
    let b = client.submit(&job(11, 200)).unwrap();

    // Wait until both are on workers simultaneously.
    let deadline = Instant::now() + bound(60);
    let running = loop {
        let m = client.metrics().unwrap();
        let running = m
            .get("jobs")
            .and_then(|j| j.get("running"))
            .and_then(Json::as_i64)
            .unwrap_or(0);
        if running == 2 {
            break running;
        }
        assert!(Instant::now() < deadline, "never saw 2 running jobs");
        std::thread::sleep(Duration::from_millis(20));
    };
    assert_eq!(running, 2);

    // Counters advance while they run.
    let g0 = |m: &Json, k: &str| m.get(k).and_then(Json::as_i64).unwrap_or(-1);
    let m1 = client.metrics().unwrap();
    let deadline = Instant::now() + bound(60);
    // The generation counter bumps just before its checkpoint lands, so
    // wait for both to advance.
    let m2 = loop {
        let m = client.metrics().unwrap();
        if g0(&m, "generations") > g0(&m1, "generations") && g0(&m, "checkpoints_written") > 0 {
            break m;
        }
        assert!(Instant::now() < deadline, "generation counter frozen");
        std::thread::sleep(Duration::from_millis(30));
    };
    assert!(g0(&m2, "evaluations") > 0);
    assert!(g0(&m2, "connections") >= 1);
    assert_eq!(g0(&m2, "jobs_submitted"), 2);
    let rate = m2.get("cache_hit_rate").and_then(Json::as_f64).unwrap();
    assert!((0.0..=1.0).contains(&rate));

    // Cancel both; they must land in `canceled` promptly.
    assert_eq!(client.cancel(a).unwrap(), "running");
    assert_eq!(client.cancel(b).unwrap(), "running");
    let deadline = Instant::now() + bound(60);
    loop {
        let m = client.metrics().unwrap();
        let canceled = m
            .get("jobs")
            .and_then(|j| j.get("canceled"))
            .and_then(Json::as_i64)
            .unwrap_or(0);
        if canceled == 2 {
            break;
        }
        assert!(Instant::now() < deadline, "cancel never landed");
        std::thread::sleep(Duration::from_millis(30));
    }
}

#[test]
fn watch_streams_generations_then_terminates() {
    let ts = TestServer::start("watch", 1);
    let mut client = Client::connect(&ts.addr).unwrap();
    let id = client.submit(&job(3, 3)).unwrap();

    let mut watcher = Client::connect(&ts.addr).unwrap();
    watcher.set_timeout(Some(bound(120))).unwrap();
    let mut updates = 0;
    let last = watcher.watch(id, |_| updates += 1).unwrap();
    assert!(updates >= 2, "watch sent {updates} updates");
    assert_eq!(last.get("state").and_then(Json::as_str), Some("done"));
    assert_eq!(last.get("generation").and_then(Json::as_i64), Some(3));
}

#[test]
fn store_verbs_roundtrip_over_the_wire() {
    let ts = TestServer::start_with_store("store", 1);
    let mut c = Client::connect(&ts.addr).unwrap();
    let spec = job(61, 3);
    let genes = vec![25, 15, 8, 4, 9];

    // Empty store: get misses, stats are zero.
    assert_eq!(c.store_get(&spec, &genes).unwrap(), None);
    let stats = c.store_stats().unwrap();
    assert_eq!(stats.get("records"), Some(&Json::Int(0)));

    // Put, then read the exact bits back.
    let fitness = 0.876_543_210_987_f64;
    assert!(c.store_put(&spec, &genes, fitness).unwrap());
    assert!(!c.store_put(&spec, &genes, fitness).unwrap(), "duplicate");
    let got = c.store_get(&spec, &genes).unwrap().expect("present");
    assert_eq!(got.to_bits(), fitness.to_bits());

    // Another cell (different goal) does not see the record.
    let other = JobSpec {
        goal: Goal::Running,
        ..job(61, 3)
    };
    assert_eq!(c.store_get(&other, &genes).unwrap(), None);

    // Compaction folds the wal and the record survives.
    let report = c.store_compact().unwrap();
    assert_eq!(report.get("records"), Some(&Json::Int(1)));
    assert_eq!(
        c.store_get(&spec, &genes).unwrap().map(f64::to_bits),
        Some(fitness.to_bits())
    );
    let stats = c.store_stats().unwrap();
    assert_eq!(stats.get("records"), Some(&Json::Int(1)));
    assert_eq!(stats.get("segments"), Some(&Json::Int(1)));
    assert_eq!(stats.get("wal_records"), Some(&Json::Int(0)));

    // Bad op is a structured error, connection survives.
    let mut stream = TcpStream::connect(&ts.addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let resp = raw_request(&mut stream, "{\"cmd\":\"store\",\"op\":\"drop\"}");
    assert_eq!(resp.get("ok"), Some(&Json::Bool(false)));
}

#[test]
fn store_verbs_without_a_store_are_structured_errors() {
    let ts = TestServer::start("storeless", 1);
    let mut c = Client::connect(&ts.addr).unwrap();
    let e = c.store_stats().unwrap_err();
    assert!(e.contains("no store configured"), "{e}");
    let e = c.store_get(&job(1, 3), &[1, 2, 3, 4, 5]).unwrap_err();
    assert!(e.contains("no store configured"), "{e}");
}

/// Submits `spec` over a raw socket and returns the response frame.
fn raw_submit(stream: &mut TcpStream, spec: &JobSpec) -> Json {
    let line = Json::obj(vec![
        ("cmd", Json::Str("submit".into())),
        ("job", spec.to_json()),
    ])
    .to_text();
    raw_request(stream, &line)
}

#[test]
fn a_full_shard_queue_answers_with_a_structured_busy_frame() {
    // One runner, room for one queued job: the first submit runs, the
    // second queues, the third must bounce with reason "queue_full".
    let ts = TestServer::start_tuned("busy-queue", 1, |c| DaemonConfig {
        queue_capacity: 1,
        ..c
    });
    let mut stream = TcpStream::connect(&ts.addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();

    let a = raw_submit(&mut stream, &job(70, 400));
    assert_eq!(a.get("ok"), Some(&Json::Bool(true)));
    // Wait for the first job to leave the queue so exactly one slot is
    // in play.
    let deadline = Instant::now() + bound(60);
    loop {
        let running = ts
            .daemon
            .list()
            .iter()
            .filter(|r| r.state.name() == "running")
            .count();
        if running == 1 {
            break;
        }
        assert!(Instant::now() < deadline, "first job never started");
        std::thread::sleep(Duration::from_millis(10));
    }
    let b = raw_submit(&mut stream, &job(71, 400));
    assert_eq!(b.get("ok"), Some(&Json::Bool(true)));
    let c = raw_submit(&mut stream, &job(72, 400));
    assert_eq!(c.get("ok"), Some(&Json::Bool(false)), "{}", c.to_text());
    assert_eq!(c.get("busy"), Some(&Json::Bool(true)));
    assert_eq!(c.get("reason").and_then(Json::as_str), Some("queue_full"));
    assert_eq!(c.get("retryable"), Some(&Json::Bool(true)));
    assert!(ts.daemon.metrics_snapshot().busy_rejects >= 1);

    // The connection survives the reject.
    let resp = raw_request(&mut stream, "{\"cmd\":\"ping\"}");
    assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));
}

#[test]
fn quota_exhaustion_is_a_non_retryable_busy_frame() {
    // job(…) estimates pop 6 × 3 gens = 18 evals; a quota of 20 admits
    // one job and must reject the second.
    let ts = TestServer::start_tuned("busy-quota", 1, |c| DaemonConfig {
        tenant_quotas: vec![("capped".into(), 20)],
        ..c
    });
    let mut stream = TcpStream::connect(&ts.addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let capped = |seed| JobSpec {
        tenant: "capped".into(),
        ..job(seed, 3)
    };

    let a = raw_submit(&mut stream, &capped(80));
    assert_eq!(a.get("ok"), Some(&Json::Bool(true)), "{}", a.to_text());
    let b = raw_submit(&mut stream, &capped(81));
    assert_eq!(b.get("ok"), Some(&Json::Bool(false)));
    assert_eq!(b.get("busy"), Some(&Json::Bool(true)));
    assert_eq!(b.get("reason").and_then(Json::as_str), Some("quota"));
    assert_eq!(b.get("retryable"), Some(&Json::Bool(false)));
    assert!(ts.daemon.metrics_snapshot().quota_rejects >= 1);

    // An uncapped tenant is unaffected.
    let c = raw_submit(&mut stream, &job(82, 3));
    assert_eq!(c.get("ok"), Some(&Json::Bool(true)));

    // The tenants verb reports the accounting.
    let mut client = Client::connect(&ts.addr).unwrap();
    let rows = client.tenants().unwrap();
    let row = rows
        .iter()
        .find(|t| t.get("tenant").and_then(Json::as_str) == Some("capped"))
        .expect("capped tenant row");
    assert_eq!(row.get("admitted").and_then(u64_from_json), Some(1));
    assert_eq!(row.get("rejected").and_then(u64_from_json), Some(1));
    assert_eq!(row.get("quota").and_then(u64_from_json), Some(20));
}

#[test]
fn metrics_carry_per_shard_rows_and_records_carry_tenant_and_shard() {
    let ts = TestServer::start_tuned("shard-rows", 2, |c| DaemonConfig { shards: 3, ..c });
    let mut client = Client::connect(&ts.addr).unwrap();
    let id = client.submit(&job(90, 2)).unwrap();

    let m = client.metrics().unwrap();
    let shards = m.get("shards").and_then(Json::as_arr).expect("shards rows");
    assert_eq!(shards.len(), 3, "one row per shard");
    let total: i64 = shards
        .iter()
        .flat_map(|s| {
            ["queued", "running", "done", "failed", "canceled"]
                .map(|k| s.get(k).and_then(Json::as_i64).unwrap())
        })
        .sum();
    assert_eq!(total, 1, "the submitted job shows up in exactly one shard");
    assert!(m.get("tenants").and_then(Json::as_arr).is_some());

    let j = client.status(id).unwrap();
    assert_eq!(j.get("tenant").and_then(Json::as_str), Some("default"));
    let shard = j.get("shard").and_then(Json::as_i64).expect("shard field");
    assert!((0..3).contains(&shard));
    let _ = client.cancel(id);
}

#[test]
fn connections_past_the_cap_bounce_with_a_busy_frame() {
    let ts = TestServer::start_tuned("conn-cap", 1, |c| DaemonConfig {
        max_connections: 2,
        ..c
    });
    // Fill the cap with two served connections (a ping response proves
    // each is accepted and counted before the next connect).
    // 30s timeouts: a fully loaded test host can starve these threads
    // well past the file's usual 10s.
    let mut a = TcpStream::connect(&ts.addr).unwrap();
    a.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    assert_eq!(
        raw_request(&mut a, "{\"cmd\":\"ping\"}").get("ok"),
        Some(&Json::Bool(true))
    );
    let mut b = TcpStream::connect(&ts.addr).unwrap();
    b.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    assert_eq!(
        raw_request(&mut b, "{\"cmd\":\"ping\"}").get("ok"),
        Some(&Json::Bool(true))
    );

    // The third connection gets one busy frame, then EOF.
    let mut c = TcpStream::connect(&ts.addr).unwrap();
    c.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let mut reader = BufReader::new(c.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let v = parse(line.trim_end()).expect("busy frame is JSON");
    assert_eq!(v.get("ok"), Some(&Json::Bool(false)), "{}", v.to_text());
    assert_eq!(v.get("busy"), Some(&Json::Bool(true)));
    assert_eq!(v.get("reason").and_then(Json::as_str), Some("connections"));
    let mut rest = String::new();
    assert_eq!(reader.read_line(&mut rest).unwrap(), 0, "then EOF");
    assert!(ts.daemon.metrics_snapshot().busy_rejects >= 1);

    // Freeing a slot readmits new connections.
    drop(a);
    let deadline = Instant::now() + bound(30);
    loop {
        let mut d = TcpStream::connect(&ts.addr).unwrap();
        d.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        let resp = raw_request(&mut d, "{\"cmd\":\"ping\"}");
        if resp.get("ok") == Some(&Json::Bool(true)) {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "slot never freed after disconnect"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    drop(b);
}
