//! Kill-and-restart: SIGKILL the daemon mid-search, restart it over the
//! same run directory, and require the finished job's tuned parameters
//! to be bit-identical to an uninterrupted in-process run — for the
//! plain GA job and for a racing portfolio evaluated on remote `evald`
//! workers.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use evald::{Chaos, EvalWorker};
use ga::GaConfig;
use jit::Scenario;
use served::job::JobSpec;
use served::json::Json;
use served::Client;
use tuner::{Goal, Tuner};

fn tmp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("tuned-restart-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// The wall-clock unit every deadline in this suite is a multiple of.
/// This suite drives real child processes, so its bounds cannot ride the
/// simulated clock (`crates/sim`) — but they *can* scale: set
/// `SIM_TIMEOUT_MS` (default 1000) to stretch every bound on slow or
/// heavily loaded CI machines instead of editing hard-coded sleeps.
fn timeout_unit() -> Duration {
    let ms = std::env::var("SIM_TIMEOUT_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1000);
    Duration::from_millis(ms)
}

fn bound(units: u32) -> Duration {
    timeout_unit() * units
}

fn spawn_daemon(dir: &Path) -> Child {
    spawn_daemon_with_workers(dir, &[])
}

/// Spawns `tuned serve`, optionally pointed at remote `evald` workers.
fn spawn_daemon_with_workers(dir: &Path, eval_workers: &[String]) -> Child {
    let mut args = vec![
        "serve".to_string(),
        "--addr".into(),
        "127.0.0.1:0".into(),
        "--dir".into(),
        dir.to_str().unwrap().into(),
        "--workers".into(),
        "1".into(),
    ];
    for w in eval_workers {
        args.push("--worker".into());
        args.push(w.clone());
    }
    Command::new(env!("CARGO_BIN_EXE_tuned"))
        .args(&args)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn tuned")
}

/// An in-process `evald` worker. It lives in the *test* process, so a
/// SIGKILL of the daemon leaves it running — exactly the distributed
/// picture: the coordinator dies, the farm survives.
struct TestEvalWorker {
    addr: String,
    stop: std::sync::Arc<std::sync::atomic::AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl TestEvalWorker {
    fn start() -> Self {
        let worker = EvalWorker::bind("127.0.0.1:0", Chaos::inert()).unwrap();
        let addr = worker.local_addr().to_string();
        let stop = worker.stop_flag();
        let handle = std::thread::spawn(move || worker.serve().unwrap());
        Self {
            addr,
            stop,
            handle: Some(handle),
        }
    }
}

impl Drop for TestEvalWorker {
    fn drop(&mut self) {
        self.stop.store(true, std::sync::atomic::Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Waits for the daemon to publish its (fresh) listening address.
fn wait_addr(dir: &Path) -> String {
    let path = dir.join("addr");
    let deadline = Instant::now() + bound(30);
    while Instant::now() < deadline {
        if let Ok(addr) = std::fs::read_to_string(&path) {
            if !addr.is_empty() {
                return addr;
            }
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    panic!("daemon never wrote {}", path.display());
}

fn connect(addr: &str) -> Client {
    let deadline = Instant::now() + bound(10);
    loop {
        match Client::connect(addr) {
            Ok(c) => return c,
            Err(e) if Instant::now() >= deadline => panic!("cannot connect: {e}"),
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

fn job_spec() -> JobSpec {
    JobSpec {
        name: "Opt:Tot".into(),
        scenario: Scenario::Opt,
        goal: Goal::Total,
        arch: "x86-p4".into(),
        suite: vec!["db".into(), "jess".into()],
        ga: GaConfig {
            pop_size: 8,
            generations: 10,
            threads: 1,
            seed: 20_260_807,
            stagnation_limit: None,
            ..GaConfig::default()
        },
        strategy: "ga".into(),
        problem: "inline".into(),
        tenant: "default".into(),
        online: None,
        drift_pos: None,
    }
}

fn state_of(job: &Json) -> String {
    job.get("state")
        .and_then(Json::as_str)
        .unwrap_or("?")
        .into()
}

fn generation_of(job: &Json) -> i64 {
    job.get("generation").and_then(Json::as_i64).unwrap_or(0)
}

#[test]
fn sigkill_and_restart_produce_bit_identical_params() {
    let dir = tmp_dir("bitident");
    let spec = job_spec();

    // The ground truth: the same job run uninterrupted, in-process.
    let expected = Tuner::new(
        spec.task().unwrap(),
        spec.training().unwrap(),
        spec.adapt_cfg(),
    )
    .tune(spec.ga.clone());
    let expected_genes = expected.params.to_genes();

    // Daemon #1: submit, let it checkpoint a few generations, SIGKILL.
    let mut child = spawn_daemon(&dir);
    let addr = wait_addr(&dir);
    let mut client = connect(&addr);
    let id = client.submit(&spec).expect("submit");
    let deadline = Instant::now() + bound(120);
    loop {
        let job = client.status(id).expect("status");
        if generation_of(&job) >= 2 {
            break;
        }
        assert_ne!(
            state_of(&job),
            "done",
            "job finished before we could kill the daemon; slow the job down"
        );
        assert!(Instant::now() < deadline, "job never reached generation 2");
        std::thread::sleep(Duration::from_millis(30));
    }
    child.kill().expect("SIGKILL the daemon");
    let _ = child.wait();

    // Daemon #2 over the same run dir: recovery must resume the job from
    // its checkpoint and finish it.
    std::fs::remove_file(dir.join("addr")).expect("drop stale addr file");
    let mut child2 = spawn_daemon(&dir);
    let addr2 = wait_addr(&dir);
    let mut client2 = connect(&addr2);
    let deadline = Instant::now() + bound(300);
    let finished = loop {
        let job = client2.status(id).expect("status after restart");
        match state_of(&job).as_str() {
            "done" => break job,
            "failed" | "canceled" => panic!("job ended {:?}", job.to_text()),
            _ => {}
        }
        assert!(Instant::now() < deadline, "resumed job never finished");
        std::thread::sleep(Duration::from_millis(50));
    };

    let result = finished.get("result").expect("done job has a result");
    let genes: Vec<i64> = result
        .get("params")
        .and_then(|p| p.get("genes"))
        .and_then(Json::as_arr)
        .expect("result carries genes")
        .iter()
        .map(|g| g.as_i64().unwrap())
        .collect();
    assert_eq!(
        genes, expected_genes,
        "kill-and-restart must not change the tuned parameters"
    );
    let fitness = result
        .get("fitness")
        .and_then(Json::as_f64)
        .expect("result carries fitness");
    assert_eq!(
        fitness.to_bits(),
        expected.fitness.to_bits(),
        "kill-and-restart must not change the fitness bits"
    );

    // The restart actually recovered (rather than silently restarting
    // from scratch): the metrics say so.
    let metrics = client2.metrics().expect("metrics");
    assert_eq!(
        metrics.get("jobs_recovered").and_then(Json::as_i64),
        Some(1),
        "daemon #2 must have recovered the incomplete job"
    );

    let _ = client2.shutdown();
    let _ = child2.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn race_job_on_remote_workers_survives_sigkill_bit_identically() {
    let dir = tmp_dir("race");
    let spec = JobSpec {
        strategy: "race:ga+random+hillclimb".into(),
        ..job_spec()
    };

    // The ground truth: the same race run uninterrupted, in-process.
    let tuner = Tuner::new(
        spec.task().unwrap(),
        spec.training().unwrap(),
        spec.adapt_cfg(),
    );
    let mut expected = tuner
        .start_strategy(&spec.strategy, spec.ga.clone())
        .expect("valid race spec");
    while !tuner.step_strategy(expected.as_mut()) {}
    let (expected_genes, expected_fitness) = expected.best().expect("race found a best");

    // The evaluation farm outlives the daemon: both workers live in this
    // process and are handed to both daemon incarnations via --worker.
    let workers = [TestEvalWorker::start(), TestEvalWorker::start()];
    let worker_addrs: Vec<String> = workers.iter().map(|w| w.addr.clone()).collect();

    // Daemon #1: submit the race, let it checkpoint a few rounds, SIGKILL.
    let mut child = spawn_daemon_with_workers(&dir, &worker_addrs);
    let addr = wait_addr(&dir);
    let mut client = connect(&addr);
    let id = client.submit(&spec).expect("submit race");
    let deadline = Instant::now() + bound(120);
    loop {
        let job = client.status(id).expect("status");
        if generation_of(&job) >= 2 {
            // Watch frames report per-strategy best-so-far standings.
            let standings = job
                .get("strategies")
                .and_then(Json::as_arr)
                .expect("a racing job reports per-strategy standings");
            assert_eq!(standings.len(), 3, "one standing per race member");
            for s in standings {
                assert!(s.get("name").and_then(Json::as_str).is_some());
                assert!(s.get("evaluations").and_then(Json::as_i64).is_some());
            }
            break;
        }
        assert_ne!(
            state_of(&job),
            "done",
            "race finished before we could kill the daemon; slow the job down"
        );
        assert!(Instant::now() < deadline, "race never reached round 2");
        std::thread::sleep(Duration::from_millis(30));
    }
    child.kill().expect("SIGKILL the daemon");
    let _ = child.wait();

    // Daemon #2 over the same run dir and the same (still-running)
    // worker farm: recovery resumes the race from its checkpoint.
    std::fs::remove_file(dir.join("addr")).expect("drop stale addr file");
    let mut child2 = spawn_daemon_with_workers(&dir, &worker_addrs);
    let addr2 = wait_addr(&dir);
    let mut client2 = connect(&addr2);
    let deadline = Instant::now() + bound(300);
    let finished = loop {
        let job = client2.status(id).expect("status after restart");
        match state_of(&job).as_str() {
            "done" => break job,
            "failed" | "canceled" => panic!("race ended {:?}", job.to_text()),
            _ => {}
        }
        assert!(Instant::now() < deadline, "resumed race never finished");
        std::thread::sleep(Duration::from_millis(50));
    };

    let result = finished.get("result").expect("done job has a result");
    let genes: Vec<i64> = result
        .get("params")
        .and_then(|p| p.get("genes"))
        .and_then(Json::as_arr)
        .expect("result carries genes")
        .iter()
        .map(|g| g.as_i64().unwrap())
        .collect();
    assert_eq!(
        genes, expected_genes,
        "kill-and-restart must not change the race's winning parameters"
    );
    let fitness = result
        .get("fitness")
        .and_then(Json::as_f64)
        .expect("result carries fitness");
    assert_eq!(
        fitness.to_bits(),
        expected_fitness.to_bits(),
        "kill-and-restart must not change the race's fitness bits"
    );
    assert_eq!(
        finished.get("strategy").and_then(Json::as_str),
        Some("race:ga+random+hillclimb"),
        "status frames carry the job's strategy spec"
    );

    let metrics = client2.metrics().expect("metrics");
    assert_eq!(
        metrics.get("jobs_recovered").and_then(Json::as_i64),
        Some(1),
        "daemon #2 must have recovered the incomplete race"
    );
    // The farm actually took load: remote dispatch happened on daemon #2.
    let dispatched = metrics
        .get("remote")
        .and_then(|r| r.get("completed"))
        .and_then(Json::as_i64)
        .unwrap_or(0);
    assert!(
        dispatched > 0,
        "the resumed race must evaluate on the remote workers"
    );

    let _ = client2.shutdown();
    let _ = child2.wait();
    let _ = std::fs::remove_dir_all(&dir);
}
