//! Kill-and-restart: SIGKILL the daemon mid-search, restart it over the
//! same run directory, and require the finished job's tuned parameters
//! to be bit-identical to an uninterrupted in-process run.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use ga::GaConfig;
use jit::Scenario;
use served::job::JobSpec;
use served::json::Json;
use served::Client;
use tuner::{Goal, Tuner};

fn tmp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("tuned-restart-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn spawn_daemon(dir: &Path) -> Child {
    Command::new(env!("CARGO_BIN_EXE_tuned"))
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--dir",
            dir.to_str().unwrap(),
            "--workers",
            "1",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn tuned")
}

/// Waits for the daemon to publish its (fresh) listening address.
fn wait_addr(dir: &Path) -> String {
    let path = dir.join("addr");
    let deadline = Instant::now() + Duration::from_secs(30);
    while Instant::now() < deadline {
        if let Ok(addr) = std::fs::read_to_string(&path) {
            if !addr.is_empty() {
                return addr;
            }
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    panic!("daemon never wrote {}", path.display());
}

fn connect(addr: &str) -> Client {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match Client::connect(addr) {
            Ok(c) => return c,
            Err(e) if Instant::now() >= deadline => panic!("cannot connect: {e}"),
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

fn job_spec() -> JobSpec {
    JobSpec {
        name: "Opt:Tot".into(),
        scenario: Scenario::Opt,
        goal: Goal::Total,
        arch: "x86-p4".into(),
        suite: vec!["db".into(), "jess".into()],
        ga: GaConfig {
            pop_size: 8,
            generations: 10,
            threads: 1,
            seed: 20_260_807,
            stagnation_limit: None,
            ..GaConfig::default()
        },
    }
}

fn state_of(job: &Json) -> String {
    job.get("state")
        .and_then(Json::as_str)
        .unwrap_or("?")
        .into()
}

fn generation_of(job: &Json) -> i64 {
    job.get("generation").and_then(Json::as_i64).unwrap_or(0)
}

#[test]
fn sigkill_and_restart_produce_bit_identical_params() {
    let dir = tmp_dir("bitident");
    let spec = job_spec();

    // The ground truth: the same job run uninterrupted, in-process.
    let expected = Tuner::new(
        spec.task().unwrap(),
        spec.training().unwrap(),
        spec.adapt_cfg(),
    )
    .tune(spec.ga.clone());
    let expected_genes = expected.params.to_genes();

    // Daemon #1: submit, let it checkpoint a few generations, SIGKILL.
    let mut child = spawn_daemon(&dir);
    let addr = wait_addr(&dir);
    let mut client = connect(&addr);
    let id = client.submit(&spec).expect("submit");
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let job = client.status(id).expect("status");
        if generation_of(&job) >= 2 {
            break;
        }
        assert_ne!(
            state_of(&job),
            "done",
            "job finished before we could kill the daemon; slow the job down"
        );
        assert!(Instant::now() < deadline, "job never reached generation 2");
        std::thread::sleep(Duration::from_millis(30));
    }
    child.kill().expect("SIGKILL the daemon");
    let _ = child.wait();

    // Daemon #2 over the same run dir: recovery must resume the job from
    // its checkpoint and finish it.
    std::fs::remove_file(dir.join("addr")).expect("drop stale addr file");
    let mut child2 = spawn_daemon(&dir);
    let addr2 = wait_addr(&dir);
    let mut client2 = connect(&addr2);
    let deadline = Instant::now() + Duration::from_secs(300);
    let finished = loop {
        let job = client2.status(id).expect("status after restart");
        match state_of(&job).as_str() {
            "done" => break job,
            "failed" | "canceled" => panic!("job ended {:?}", job.to_text()),
            _ => {}
        }
        assert!(Instant::now() < deadline, "resumed job never finished");
        std::thread::sleep(Duration::from_millis(50));
    };

    let result = finished.get("result").expect("done job has a result");
    let genes: Vec<i64> = result
        .get("params")
        .and_then(|p| p.get("genes"))
        .and_then(Json::as_arr)
        .expect("result carries genes")
        .iter()
        .map(|g| g.as_i64().unwrap())
        .collect();
    assert_eq!(
        genes, expected_genes,
        "kill-and-restart must not change the tuned parameters"
    );
    let fitness = result
        .get("fitness")
        .and_then(Json::as_f64)
        .expect("result carries fitness");
    assert_eq!(
        fitness.to_bits(),
        expected.fitness.to_bits(),
        "kill-and-restart must not change the fitness bits"
    );

    // The restart actually recovered (rather than silently restarting
    // from scratch): the metrics say so.
    let metrics = client2.metrics().expect("metrics");
    assert_eq!(
        metrics.get("jobs_recovered").and_then(Json::as_i64),
        Some(1),
        "daemon #2 must have recovered the incomplete job"
    );

    let _ = client2.shutdown();
    let _ = child2.wait();
    let _ = std::fs::remove_dir_all(&dir);
}
