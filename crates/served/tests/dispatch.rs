//! Fault-injection tests for the remote dispatch layer, using in-test
//! fake workers: an honest one that computes real fitness, plus workers
//! that reply with garbage, oversized frames, or nothing at all.
//!
//! The fakes live on `sim`'s simulated network: no real sockets, and —
//! crucially — no real sleeps. The silent-worker scenario used to cost
//! wall-clock request timeouts per generation; on the virtual clock the
//! same timeouts resolve the instant the cluster goes idle.
//!
//! The standing invariant under test: no matter how workers misbehave,
//! a generation completes and the run is **bit-identical** to the same
//! seed evaluated locally — fitness is pure and the memo merge is keyed
//! by genome, so delivery faults can only cost time, never correctness.

use std::io::{BufReader, BufWriter, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use ga::GaConfig;
use jit::Scenario;
use served::dispatch::{DispatchConfig, RemoteEvaluator, WorkerPool};
use served::proto::{
    err, eval_batch_response, ok_with, parse_eval_batch_request, parse_request, read_frame,
    write_frame, EvalOutcome, Frame,
};
use served::{JobSpec, Metrics, NetStream, Transport};
use sim::SimNet;
use tuner::{Goal, Tuner};

fn tiny_spec(seed: u64) -> JobSpec {
    JobSpec {
        name: "Opt:Tot".into(),
        scenario: Scenario::Opt,
        goal: Goal::Total,
        arch: "x86-p4".into(),
        suite: vec!["db".into()],
        ga: GaConfig {
            pop_size: 6,
            generations: 3,
            threads: 1,
            seed,
            stagnation_limit: None,
            ..GaConfig::default()
        },
        strategy: "ga".into(),
        problem: "inline".into(),
        tenant: "default".into(),
        online: None,
        drift_pos: None,
    }
}

fn fast_cfg() -> DispatchConfig {
    DispatchConfig {
        connect_timeout: Duration::from_millis(500),
        request_timeout: Duration::from_millis(400),
        backoff_base: Duration::from_millis(5),
        backoff_cap: Duration::from_millis(40),
        ..DispatchConfig::default()
    }
}

/// A pool dialing out of the simulated daemon node.
fn sim_pool(net: &Arc<SimNet>, addrs: &[String]) -> Arc<WorkerPool> {
    let mut pool = WorkerPool::with_workers(fast_cfg(), addrs);
    pool.set_transport(net.transport("daemon"));
    Arc::new(pool)
}

/// How a fake worker treats `eval_batch` requests.
#[derive(Clone, Copy, PartialEq)]
enum Behavior {
    /// Computes real fitness through a [`Tuner`].
    Honest,
    /// Replies with a line that is not JSON.
    Malformed,
    /// Replies with a line longer than the 1 MiB frame cap.
    Oversized,
    /// Reads requests and never replies.
    Silent,
}

/// Starts a fake worker on simulated node `node`; returns its address
/// and a stop flag.
fn fake_worker(
    net: &Arc<SimNet>,
    node: &str,
    behavior: Behavior,
    spec: &JobSpec,
) -> (String, Arc<AtomicBool>) {
    let transport = net.transport(node);
    let listener = transport
        .bind(&format!("{node}:7000"))
        .expect("bind fake worker");
    let addr = listener.local_addr();
    let stop = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&stop);
    let tuner = (behavior == Behavior::Honest).then(|| {
        Tuner::new(
            spec.task().unwrap(),
            spec.training().unwrap(),
            spec.adapt_cfg(),
        )
    });
    std::thread::spawn(move || {
        while !flag.load(Ordering::SeqCst) {
            match listener.accept(Duration::from_millis(50)) {
                Ok(Some(stream)) => {
                    handle_conn(stream, behavior, tuner.as_ref(), &flag, &*transport);
                }
                Ok(None) => {}
                Err(_) => return,
            }
        }
    });
    (addr, stop)
}

fn handle_conn(
    stream: Box<dyn NetStream>,
    behavior: Behavior,
    tuner: Option<&Tuner>,
    stop: &AtomicBool,
    transport: &dyn Transport,
) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    let mut writer = BufWriter::new(write_half);
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let line = match read_frame(&mut reader) {
            Frame::Line(line) => line,
            Frame::Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue; // idle poll so the stop flag stays live
            }
            _ => return,
        };
        let Ok((cmd, body)) = parse_request(&line) else {
            return;
        };
        let ok = match cmd.as_str() {
            "task" | "ping" => write_frame(&mut writer, &ok_with(vec![])).is_ok(),
            "eval_batch" => match behavior {
                Behavior::Honest => {
                    let (batch_id, evals) = parse_eval_batch_request(&body).unwrap();
                    // Real compute: hold the busy bracket so the virtual
                    // clock cannot fire request deadlines while we work.
                    let results: Vec<(usize, EvalOutcome)> = {
                        let _busy = served::net::busy(transport);
                        let t = tuner.expect("honest worker has a tuner");
                        evals
                            .iter()
                            .map(|e| {
                                let fitness =
                                    t.fitness(&inliner::InlineParams::from_genes(&e.genes));
                                (e.id, EvalOutcome::Fitness(fitness))
                            })
                            .collect()
                    };
                    write_frame(&mut writer, &eval_batch_response(batch_id, &results)).is_ok()
                }
                Behavior::Malformed => {
                    writer.write_all(b"%%% not json %%%\n").is_ok() && writer.flush().is_ok()
                }
                Behavior::Oversized => {
                    let mut big = vec![b'x'; 2 << 20];
                    big.push(b'\n');
                    writer.write_all(&big).is_ok() && writer.flush().is_ok()
                }
                Behavior::Silent => true, // say nothing, keep the socket open
            },
            _ => write_frame(&mut writer, &err("unexpected verb")).is_ok(),
        };
        if !ok {
            return;
        }
    }
}

/// Runs a full GA search through a [`RemoteEvaluator`] over `pool`.
fn run_distributed(
    spec: &JobSpec,
    pool: &Arc<WorkerPool>,
    metrics: &Arc<Metrics>,
) -> (Vec<i64>, f64) {
    let tuner = Tuner::new(
        spec.task().unwrap(),
        spec.training().unwrap(),
        spec.adapt_cfg(),
    );
    let remote = RemoteEvaluator::new(pool, spec.to_json(), metrics, |genes| {
        tuner.fitness(&inliner::InlineParams::from_genes(genes))
    });
    let mut state = tuner.start(spec.ga.clone());
    while !state.step_with(&remote) {}
    let outcome = tuner.outcome(&state);
    (outcome.params.to_genes(), outcome.fitness)
}

/// The same search, entirely local.
fn run_local(spec: &JobSpec) -> (Vec<i64>, f64) {
    let tuner = Tuner::new(
        spec.task().unwrap(),
        spec.training().unwrap(),
        spec.adapt_cfg(),
    );
    let outcome = tuner.tune(spec.ga.clone());
    (outcome.params.to_genes(), outcome.fitness)
}

#[test]
fn distributed_run_is_bit_identical_to_local() {
    let net = SimNet::new(11);
    let spec = tiny_spec(1701);
    let (w1, s1) = fake_worker(&net, "w0", Behavior::Honest, &spec);
    let (w2, s2) = fake_worker(&net, "w1", Behavior::Honest, &spec);
    let pool = sim_pool(&net, &[w1, w2]);
    let metrics = Arc::new(Metrics::new());

    let (genes, fitness) = run_distributed(&spec, &pool, &metrics);
    let (local_genes, local_fitness) = run_local(&spec);
    assert_eq!(genes, local_genes);
    assert_eq!(fitness.to_bits(), local_fitness.to_bits());
    assert!(
        metrics.remote_completed.load(Ordering::Relaxed) > 0,
        "evaluations must actually have gone over the wire"
    );
    assert_eq!(
        metrics.remote_fallback_evals.load(Ordering::Relaxed),
        0,
        "healthy workers should answer everything"
    );
    s1.store(true, Ordering::SeqCst);
    s2.store(true, Ordering::SeqCst);
    net.shutdown();
}

#[test]
fn malformed_responses_evict_the_worker_without_wedging_the_run() {
    let net = SimNet::new(12);
    let spec = tiny_spec(42);
    let (bad, sb) = fake_worker(&net, "w0", Behavior::Malformed, &spec);
    let (good, sg) = fake_worker(&net, "w1", Behavior::Honest, &spec);
    let pool = sim_pool(&net, &[bad, good]);
    let metrics = Arc::new(Metrics::new());

    let (genes, fitness) = run_distributed(&spec, &pool, &metrics);
    let (local_genes, local_fitness) = run_local(&spec);
    assert_eq!(genes, local_genes);
    assert_eq!(fitness.to_bits(), local_fitness.to_bits());
    assert!(
        metrics.remote_evictions.load(Ordering::Relaxed) >= 1,
        "garbage must get the worker evicted"
    );
    sb.store(true, Ordering::SeqCst);
    sg.store(true, Ordering::SeqCst);
    net.shutdown();
}

#[test]
fn oversized_responses_evict_the_worker_without_wedging_the_run() {
    let net = SimNet::new(13);
    let spec = tiny_spec(43);
    let (bad, sb) = fake_worker(&net, "w0", Behavior::Oversized, &spec);
    let (good, sg) = fake_worker(&net, "w1", Behavior::Honest, &spec);
    let pool = sim_pool(&net, &[bad, good]);
    let metrics = Arc::new(Metrics::new());

    let (genes, fitness) = run_distributed(&spec, &pool, &metrics);
    let (local_genes, local_fitness) = run_local(&spec);
    assert_eq!(genes, local_genes);
    assert_eq!(fitness.to_bits(), local_fitness.to_bits());
    assert!(metrics.remote_evictions.load(Ordering::Relaxed) >= 1);
    sb.store(true, Ordering::SeqCst);
    sg.store(true, Ordering::SeqCst);
    net.shutdown();
}

#[test]
fn silent_worker_times_out_and_work_is_redispatched() {
    // On real sockets this test paid for every 400 ms request timeout in
    // wall clock; on the virtual clock the timeouts fire the moment the
    // cluster idles, so the whole scenario runs at compute speed.
    let net = SimNet::new(14);
    let spec = tiny_spec(44);
    let (mute, sm) = fake_worker(&net, "w0", Behavior::Silent, &spec);
    let (good, sg) = fake_worker(&net, "w1", Behavior::Honest, &spec);
    let pool = sim_pool(&net, &[mute, good]);
    let metrics = Arc::new(Metrics::new());

    let (genes, fitness) = run_distributed(&spec, &pool, &metrics);
    let (local_genes, local_fitness) = run_local(&spec);
    assert_eq!(genes, local_genes);
    assert_eq!(fitness.to_bits(), local_fitness.to_bits());
    assert!(
        metrics.remote_timeouts.load(Ordering::Relaxed) >= 1,
        "the silent worker must have timed out at least once"
    );
    assert!(
        metrics.remote_retries.load(Ordering::Relaxed) >= 1,
        "timed-out work must have been re-dispatched"
    );
    sm.store(true, Ordering::SeqCst);
    sg.store(true, Ordering::SeqCst);
    net.shutdown();
}

#[test]
fn dead_pool_falls_back_to_local_and_still_matches() {
    let net = SimNet::new(15);
    let spec = tiny_spec(45);
    // Nothing listens here: every connect fails, the worker is evicted,
    // and the whole generation lands on the fallback path.
    let pool = sim_pool(&net, &["ghost:7000".to_string()]);
    let metrics = Arc::new(Metrics::new());

    let (genes, fitness) = run_distributed(&spec, &pool, &metrics);
    let (local_genes, local_fitness) = run_local(&spec);
    assert_eq!(genes, local_genes);
    assert_eq!(fitness.to_bits(), local_fitness.to_bits());
    assert!(metrics.remote_fallback_evals.load(Ordering::Relaxed) > 0);
    net.shutdown();
}
