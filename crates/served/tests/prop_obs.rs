//! Property tests: the `obs` verb's registry JSON survives a round trip
//! through the hand-rolled JSON layer losslessly.
//!
//! Gated behind the bare `proptest` cargo feature because the
//! `proptest` crate is not vendored (offline, zero-dependency builds).
//! To run:
//!
//! ```text
//! # on a networked machine:
//! #   add `proptest = "1"` under [dev-dependencies] in crates/served/Cargo.toml
//! cargo test -p inlinetune-served --features proptest
//! ```

#![cfg(feature = "proptest")]

use std::sync::Arc;

use proptest::prelude::*;
use served::proto::{registry_from_json, registry_to_json};

/// A registry snapshot built by *recording* arbitrary activity — the
/// only way production snapshots come to exist — rather than by
/// constructing the struct freehand.
fn arb_snapshot() -> impl Strategy<Value = obs::RegistrySnapshot> {
    let counters = proptest::collection::vec(("[a-z_]{1,12}", any::<u64>()), 0..8);
    let gauges = proptest::collection::vec(("[a-z_]{1,12}", any::<i64>()), 0..8);
    let hists = proptest::collection::vec(
        (
            "[a-z_]{1,12}",
            proptest::collection::vec(any::<u64>(), 0..32),
        ),
        0..4,
    );
    let spans = proptest::collection::vec(("[a-z/]{1,16}", any::<u64>()), 0..6);
    (counters, gauges, hists, spans).prop_map(|(cs, gs, hs, sps)| {
        let reg = Arc::new(obs::Registry::with_clock(Arc::new(obs::ManualClock::new())));
        for (name, v) in cs {
            reg.counter(&name).add(v);
        }
        for (name, v) in gs {
            reg.gauge(&name).add(v);
        }
        for (name, samples) in hs {
            let h = reg.histogram(&name);
            for s in samples {
                h.record(s);
            }
        }
        for (name, _) in sps {
            drop(reg.span(&name));
        }
        reg.snapshot()
    })
}

proptest! {
    #[test]
    fn registry_json_roundtrips_losslessly(snap in arb_snapshot()) {
        let json = registry_to_json(&snap);
        let text = json.to_text();
        let parsed = served::json::parse(&text).unwrap();
        prop_assert_eq!(registry_from_json(&parsed), Ok(snap));
    }

    #[test]
    fn extreme_u64_counters_survive_the_wire(v in any::<u64>()) {
        let reg = obs::Registry::new();
        reg.counter("c").add(v);
        let snap = reg.snapshot();
        let text = registry_to_json(&snap).to_text();
        let back = registry_from_json(&served::json::parse(&text).unwrap()).unwrap();
        prop_assert_eq!(back.counter("c"), v);
    }
}
