//! Property tests for the batched dispatch layer: the `eval_batch` wire
//! format round-trips losslessly (fitness bits included), the
//! [`served::dispatch::BatchLedger`] never drops or double-scores a
//! genome under arbitrary claim/requeue/resolve interleavings, and the
//! adaptive batch target stays inside `[1, max_inflight]` no matter
//! what the RTT model observes.
//!
//! Gated behind the bare `proptest` cargo feature because the
//! `proptest` crate is not vendored (offline, zero-dependency builds).
//! To run:
//!
//! ```text
//! # on a networked machine:
//! #   add `proptest = "1"` under [dev-dependencies] in crates/served/Cargo.toml
//! cargo test -p inlinetune-served --features proptest
//! ```
//!
//! The same invariants are pinned deterministically by the always-on
//! unit tests in `served::dispatch` (`ledger_resolve_is_exactly_once`,
//! `batch_target_stays_within_bounds_as_the_model_moves`) and
//! `served::proto`'s round-trip tests — this file widens them to
//! arbitrary inputs.

#![cfg(feature = "proptest")]

use proptest::prelude::*;
use served::dispatch::{BatchLedger, Worker};
use served::proto::{
    eval_batch_request, eval_batch_response, parse_eval_batch_request, parse_eval_batch_response,
    parse_request, EvalOutcome, EvalRequest,
};

fn arb_outcome() -> impl Strategy<Value = EvalOutcome> {
    prop_oneof![
        any::<f64>().prop_map(EvalOutcome::Fitness),
        any::<u32>().prop_map(|b| EvalOutcome::Fitness(f64::from_bits(
            0x7ff8_0000_0000_0000 | u64::from(b)
        ))), // assorted NaN payloads
        "[ -~]{0,40}".prop_map(EvalOutcome::Error),
    ]
}

proptest! {
    #[test]
    fn batch_requests_roundtrip_losslessly(
        batch_id in any::<u64>(),
        evals in proptest::collection::vec(
            (any::<usize>(), proptest::collection::vec(any::<i64>(), 0..8)),
            0..16,
        ),
    ) {
        let evals: Vec<EvalRequest> = evals
            .into_iter()
            .map(|(id, genes)| EvalRequest { id, genes })
            .collect();
        let text = eval_batch_request(batch_id, &evals).to_text();
        let (cmd, body) = parse_request(&text).unwrap();
        prop_assert_eq!(cmd, "eval_batch");
        let (back_id, back) = parse_eval_batch_request(&body).unwrap();
        prop_assert_eq!(back_id, batch_id);
        prop_assert_eq!(back.len(), evals.len());
        for (a, b) in back.iter().zip(&evals) {
            prop_assert_eq!(a.id, b.id);
            prop_assert_eq!(&a.genes, &b.genes);
        }
    }

    #[test]
    fn batch_responses_roundtrip_bit_exactly(
        batch_id in any::<u64>(),
        results in proptest::collection::vec((any::<usize>(), arb_outcome()), 0..16),
    ) {
        let text = eval_batch_response(batch_id, &results).to_text();
        let parsed = served::json::parse(&text).unwrap();
        let (back_id, back) = parse_eval_batch_response(&parsed).unwrap();
        prop_assert_eq!(back_id, batch_id);
        prop_assert_eq!(back.len(), results.len());
        for ((aid, a), (bid, b)) in back.iter().zip(&results) {
            prop_assert_eq!(aid, bid);
            match (a, b) {
                (EvalOutcome::Fitness(x), EvalOutcome::Fitness(y)) => {
                    prop_assert_eq!(x.to_bits(), y.to_bits());
                }
                (EvalOutcome::Error(x), EvalOutcome::Error(y)) => prop_assert_eq!(x, y),
                (got, want) => prop_assert!(false, "outcome kind flipped: {got:?} vs {want:?}"),
            }
        }
    }

    /// Arbitrary interleavings of claims, requeues, and (possibly
    /// duplicate, possibly conflicting) resolves: every index is
    /// committed exactly once, with its first value, and nothing is
    /// lost.
    #[test]
    fn ledger_never_drops_or_double_scores(
        n in 1usize..24,
        ops in proptest::collection::vec((0u8..3, 1usize..8), 1..64),
    ) {
        let ledger = BatchLedger::new(n, 0);
        let mut outstanding: Vec<usize> = Vec::new();
        let mut committed = vec![false; n];
        for (op, arg) in ops {
            match op {
                // Claim up to `arg` indexes.
                0 => outstanding.extend(ledger.claim(arg)),
                // Requeue everything currently claimed-but-unresolved
                // (a worker failure re-dispatching its batch).
                1 => {
                    ledger.requeue(&outstanding);
                    outstanding.clear();
                }
                // Resolve one outstanding index; re-resolving with a
                // different value must report stale and change nothing.
                _ => {
                    if let Some(idx) = outstanding.pop() {
                        let fresh = ledger.resolve(idx, idx as f64);
                        prop_assert_eq!(fresh, !committed[idx]);
                        committed[idx] = true;
                        prop_assert!(!ledger.resolve(idx, -1.0), "duplicate commit accepted");
                    }
                }
            }
        }
        // Drain: whatever is still queued or outstanding resolves once.
        ledger.requeue(&outstanding);
        loop {
            let batch = ledger.claim(4);
            if batch.is_empty() {
                break;
            }
            for idx in batch {
                prop_assert_eq!(ledger.resolve(idx, idx as f64), !committed[idx]);
                committed[idx] = true;
            }
        }
        prop_assert_eq!(ledger.remaining(), 0);
        let results = ledger.into_results();
        prop_assert_eq!(results.len(), n);
        for (idx, r) in results.iter().enumerate() {
            // First value wins: every slot carries idx, never the -1.0
            // a duplicate commit tried to sneak in.
            prop_assert_eq!(*r, Some(idx as f64));
        }
    }

    /// The adaptive batch target is always a sane claim size, whatever
    /// the RTT model has seen — zero RTTs, `u64::MAX` RTTs, handshakes
    /// without batches, batches without handshakes.
    #[test]
    fn batch_target_stays_in_bounds(
        max_inflight in 0usize..64,
        observations in proptest::collection::vec(
            (any::<bool>(), 1u64..32, any::<u64>()),
            0..32,
        ),
    ) {
        let worker = Worker::new("w:1".into(), false);
        for (is_handshake, len, rtt) in observations {
            if is_handshake {
                worker.note_handshake_rtt(rtt);
            } else {
                worker.note_batch_rtt(len, rtt);
            }
            let target = worker.batch_target(max_inflight);
            prop_assert!(target >= 1, "target {target} below 1");
            prop_assert!(
                target <= max_inflight.max(1),
                "target {target} above cap {max_inflight}"
            );
        }
    }
}
