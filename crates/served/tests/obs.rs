//! Deterministic observability: in-process `evald` workers with fault
//! injection, every registry on an [`obs::ManualClock`], and **exact**
//! assertions on counters and histogram buckets.
//!
//! Two properties make exactness possible where most metrics tests
//! settle for `> 0`:
//!
//! * the dispatcher's failure handling is deterministic given a worker
//!   that *always* fails — `max_consecutive_failures` failures of
//!   `max_inflight` claims each produce a fixed number of retries,
//!   backoffs and exactly one eviction;
//! * a frozen manual clock makes every duration sample exactly zero, so
//!   every histogram sample lands in bucket 0 and `sum == max == 0` no
//!   matter how threads interleave.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use evald::{Chaos, ChaosConfig, EvalWorker};
use ga::{Evaluator, GaConfig};
use inliner::InlineParams;
use jit::Scenario;
use served::dispatch::{DispatchConfig, RemoteEvaluator, Worker, WorkerPool};
use served::proto::{registry_from_json, registry_to_json};
use served::{JobSpec, Metrics};
use tuner::{Goal, Tuner};

fn tiny_spec(seed: u64) -> JobSpec {
    JobSpec {
        name: "Opt:Tot".into(),
        scenario: Scenario::Opt,
        goal: Goal::Total,
        arch: "x86-p4".into(),
        suite: vec!["db".into()],
        ga: GaConfig {
            pop_size: 6,
            generations: 3,
            threads: 1,
            seed,
            stagnation_limit: None,
            ..GaConfig::default()
        },
        strategy: "ga".into(),
        problem: "inline".into(),
        tenant: "default".into(),
        online: None,
        drift_pos: None,
    }
}

fn fast_dispatch(max_inflight: usize) -> DispatchConfig {
    DispatchConfig {
        connect_timeout: Duration::from_millis(500),
        request_timeout: Duration::from_millis(800),
        backoff_base: Duration::from_millis(2),
        backoff_cap: Duration::from_millis(10),
        max_consecutive_failures: 3,
        max_inflight,
        ..DispatchConfig::default()
    }
}

fn manual_registry() -> Arc<obs::Registry> {
    Arc::new(obs::Registry::with_clock(Arc::new(obs::ManualClock::new())))
}

/// An in-process worker recording into its own manual-clock registry.
struct TestWorker {
    addr: String,
    reg: Arc<obs::Registry>,
    stop: Arc<std::sync::atomic::AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl TestWorker {
    fn start(chaos: Chaos) -> Self {
        let reg = manual_registry();
        let worker = EvalWorker::bind_with_obs("127.0.0.1:0", chaos, Arc::clone(&reg)).unwrap();
        let addr = worker.local_addr().to_string();
        let stop = worker.stop_flag();
        let handle = std::thread::spawn(move || worker.serve().unwrap());
        Self {
            addr,
            reg,
            stop,
            handle: Some(handle),
        }
    }
}

impl Drop for TestWorker {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// A pool over the given workers, recording into its own manual-clock
/// registry.
fn manual_pool(cfg: DispatchConfig, addrs: &[String]) -> (Arc<WorkerPool>, Arc<obs::Registry>) {
    let reg = manual_registry();
    let mut pool = WorkerPool::with_workers(cfg, addrs);
    pool.set_obs(Arc::clone(&reg));
    (Arc::new(pool), reg)
}

/// Every **duration** histogram in the snapshot must have recorded all
/// its samples as exactly zero (frozen clock): all in bucket 0, zero
/// sum, zero max. Count-valued histograms (batch sizes) are exempt —
/// their samples are sizes, not clock reads.
fn assert_all_samples_zero(snap: &obs::RegistrySnapshot) {
    for (name, h) in &snap.histograms {
        if !name.contains("_micros") {
            continue;
        }
        assert_eq!(h.counts[0], h.total, "{name}: all samples in bucket 0");
        assert_eq!(h.sum, 0, "{name}: frozen clock records zero durations");
        assert_eq!(h.max, 0, "{name}: frozen clock records zero max");
    }
}

/// A worker with `drop:1.0` chaos answers its `task` handshake but kills
/// every connection at the first `eval`. The dispatcher's reaction is
/// fully deterministic, so every counter asserts an exact value:
///
/// * 3 connection attempts (`max_consecutive_failures`), each claiming
///   all 4 genomes → `retries == 3 * 4 == 12`;
/// * backoff after failures 1 and 2; the third failure evicts instead
///   → `backoffs == 2`, `evictions == 1`;
/// * nothing ever completes → `completed == 0`, the RPC latency
///   histogram exists but is empty, and all 4 genomes fall back to the
///   local path → `fallback_evals == 4`;
/// * worker side: one tuner build (`misses == 1`) then two cache hits,
///   and one chaos drop per connection → `drops == 3`.
#[test]
fn dead_dropping_worker_evicts_with_exact_counters() {
    let chaos = Chaos::new(ChaosConfig::parse("drop:1.0").unwrap(), 1);
    let worker = TestWorker::start(chaos);
    let (pool, reg) = manual_pool(fast_dispatch(4), &[worker.addr.clone()]);
    let metrics = Arc::new(Metrics::new());

    let spec = tiny_spec(3001);
    let genomes: Vec<Vec<i64>> = vec![InlineParams::jikes_default().to_genes(); 4];
    let eval = RemoteEvaluator::new(&pool, spec.to_json(), &metrics, |g| g[0] as f64);
    let scores = eval.evaluate(&genomes);
    assert_eq!(scores.len(), 4, "every genome resolves via the fallback");

    let label = |base: &str| obs::labeled(base, &[("worker", &worker.addr)]);
    let snap = reg.snapshot();
    assert_eq!(snap.counter(&label("dispatch_retries")), 12);
    assert_eq!(snap.counter(&label("dispatch_evictions")), 1);
    assert_eq!(snap.counter(&label("dispatch_backoffs")), 2);
    assert_eq!(snap.counter(&label("dispatch_timeouts")), 0);
    assert_eq!(snap.counter("dispatch_fallback_evals"), 4);
    let rpc = snap
        .histogram(&label("rpc_latency_micros"))
        .expect("the latency histogram is created when dispatch starts");
    assert_eq!(rpc.total, 0, "nothing ever completed");

    let stats = pool.all()[0].stats.read();
    assert_eq!(stats.completed, 0);
    assert_eq!(stats.retries, 12);
    assert_eq!(stats.evictions, 1);
    assert_eq!(metrics.remote_retries.load(Ordering::Relaxed), 12);
    assert_eq!(metrics.remote_evictions.load(Ordering::Relaxed), 1);
    assert_eq!(metrics.remote_fallback_evals.load(Ordering::Relaxed), 4);
    assert_eq!(metrics.remote_completed.load(Ordering::Relaxed), 0);

    let wsnap = worker.reg.snapshot();
    assert_eq!(wsnap.counter("evald_connections"), 3);
    assert_eq!(wsnap.counter("evald_task_cache_misses"), 1);
    assert_eq!(wsnap.counter("evald_task_cache_hits"), 2);
    assert_eq!(wsnap.counter("evald_chaos_drops"), 3);
    assert_eq!(wsnap.counter("evald_evals"), 0);
}

/// A healthy worker under manual clocks: the full GA run stays
/// bit-identical to the local reference, every remote evaluation shows
/// up in both sides' instruments, and every latency histogram asserts
/// exact bucket contents.
#[test]
fn healthy_worker_run_is_bit_identical_with_exact_histograms() {
    let worker = TestWorker::start(Chaos::inert());
    let (pool, reg) = manual_pool(fast_dispatch(8), &[worker.addr.clone()]);
    let metrics = Arc::new(Metrics::new());
    let ga_reg = manual_registry();

    let spec = tiny_spec(3002);
    let tuner = Tuner::new(
        spec.task().unwrap(),
        spec.training().unwrap(),
        spec.adapt_cfg(),
    );
    let mut state = tuner.start(spec.ga.clone());
    state.set_obs(Arc::clone(&ga_reg));
    let remote = RemoteEvaluator::new(&pool, spec.to_json(), &metrics, |genes| {
        tuner.fitness(&InlineParams::from_genes(genes))
    });
    while !state.step_with(&remote) {}
    let outcome = tuner.outcome(&state);

    // Bit-identity against the all-local reference run.
    let local = Tuner::new(
        spec.task().unwrap(),
        spec.training().unwrap(),
        spec.adapt_cfg(),
    )
    .tune(spec.ga.clone());
    assert_eq!(outcome.params.to_genes(), local.params.to_genes());
    assert_eq!(outcome.fitness.to_bits(), local.fitness.to_bits());

    // Every distinct evaluation went remote, none fell back, and the
    // worker answered each exactly once.
    let completed = metrics.remote_completed.load(Ordering::Relaxed);
    assert_eq!(completed, state.evaluations() as u64);
    assert_eq!(metrics.remote_fallback_evals.load(Ordering::Relaxed), 0);
    assert_eq!(metrics.remote_retries.load(Ordering::Relaxed), 0);
    assert_eq!(metrics.remote_evictions.load(Ordering::Relaxed), 0);
    let stats = pool.all()[0].stats.read();
    assert_eq!(stats.completed, completed);
    assert_eq!(stats.rtt_micros, 0, "frozen clock: zero RTT");

    // Dispatcher side: one latency sample per *batch* round-trip (not
    // per eval — batching is the point), and the batch-size histogram
    // accounts for every completed eval exactly once.
    let snap = reg.snapshot();
    let rpc = snap
        .histogram(&obs::labeled(
            "rpc_latency_micros",
            &[("worker", &worker.addr)],
        ))
        .unwrap();
    let batches = metrics.remote_batches.load(Ordering::Relaxed);
    assert!(batches > 0, "a distributed run must send batches");
    assert_eq!(rpc.total, batches, "one latency sample per batch");
    assert!(
        rpc.total <= completed,
        "batching can only reduce round-trips"
    );
    let sizes = snap
        .histogram(&obs::labeled(
            "dispatch_batch_size",
            &[("worker", &worker.addr)],
        ))
        .unwrap();
    assert_eq!(sizes.sum, completed, "batch sizes sum to completed evals");
    assert_eq!(sizes.total, rpc.total, "one size sample per batch");
    assert_all_samples_zero(&snap);

    // Worker side: one timed eval per completed request, no drops.
    let wsnap = worker.reg.snapshot();
    assert_eq!(wsnap.counter("evald_evals"), completed);
    assert_eq!(wsnap.counter("evald_chaos_drops"), 0);
    let weval = wsnap.histogram("evald_eval_micros").unwrap();
    assert_eq!(weval.total, completed);
    assert_all_samples_zero(&wsnap);

    // GA side: one generation span and per-phase histogram sample per
    // step, all exactly zero under the manual clock.
    let gsnap = ga_reg.snapshot();
    let gens = spec.ga.generations as u64;
    assert_eq!(gsnap.counter("ga_generations"), gens);
    assert_eq!(gsnap.histogram("ga_eval_micros").unwrap().total, gens);
    assert_all_samples_zero(&gsnap);
    assert_eq!(
        gsnap
            .spans
            .iter()
            .filter(|s| s.path == "generation")
            .count() as u64,
        gens
    );
}

/// Two workers — one dropping 30% of connections — still converge to the
/// bit-identical result, per-worker completions add up to the batch
/// totals, and the frozen clocks keep every histogram exact even though
/// retry scheduling is nondeterministic.
#[test]
fn chaos_and_healthy_worker_pair_keeps_exact_accounting() {
    let flaky = TestWorker::start(Chaos::new(ChaosConfig::parse("drop:0.3").unwrap(), 7));
    let steady = TestWorker::start(Chaos::inert());
    let (pool, reg) = manual_pool(fast_dispatch(2), &[flaky.addr.clone(), steady.addr.clone()]);
    let metrics = Arc::new(Metrics::new());

    let spec = tiny_spec(3003);
    let tuner = Tuner::new(
        spec.task().unwrap(),
        spec.training().unwrap(),
        spec.adapt_cfg(),
    );
    let mut state = tuner.start(spec.ga.clone());
    state.set_obs(manual_registry());
    let remote = RemoteEvaluator::new(&pool, spec.to_json(), &metrics, |genes| {
        tuner.fitness(&InlineParams::from_genes(genes))
    });
    while !state.step_with(&remote) {}
    let outcome = tuner.outcome(&state);

    let local = Tuner::new(
        spec.task().unwrap(),
        spec.training().unwrap(),
        spec.adapt_cfg(),
    )
    .tune(spec.ga.clone());
    assert_eq!(outcome.params.to_genes(), local.params.to_genes());
    assert_eq!(outcome.fitness.to_bits(), local.fitness.to_bits());

    // Remote completions plus local fallbacks cover every distinct
    // evaluation exactly once (results merge by genome, so a retried
    // request that eventually lands still counts once per response).
    let completed = metrics.remote_completed.load(Ordering::Relaxed);
    let per_worker: u64 = pool.all().iter().map(|w| w.stats.read().completed).sum();
    assert_eq!(
        per_worker, completed,
        "worker counters account for every response"
    );
    assert_eq!(
        completed + metrics.remote_fallback_evals.load(Ordering::Relaxed),
        state.evaluations() as u64
    );

    // Exactness survives chaos: every completed eval is accounted for by
    // exactly one batch-size sample's worth of size, every successful
    // batch left exactly one latency sample, and whatever durations got
    // recorded are all-zero.
    let snap = reg.snapshot();
    let rpc_total: u64 = snap
        .histograms
        .iter()
        .filter(|(n, _)| n.starts_with("rpc_latency_micros"))
        .map(|(_, h)| h.total)
        .sum();
    let (size_samples, size_sum) = snap
        .histograms
        .iter()
        .filter(|(n, _)| n.starts_with("dispatch_batch_size"))
        .fold((0u64, 0u64), |(t, s), (_, h)| (t + h.total, s + h.sum));
    assert_eq!(size_sum, completed, "batch sizes sum to completed evals");
    assert_eq!(
        size_samples, rpc_total,
        "one size sample per answered batch"
    );
    assert!(
        rpc_total <= metrics.remote_batches.load(Ordering::Relaxed),
        "chaos-killed batches send but never produce a latency sample"
    );
    assert_all_samples_zero(&snap);
    assert_all_samples_zero(&flaky.reg.snapshot());
    assert_all_samples_zero(&steady.reg.snapshot());
}

/// Hammers one worker's stats from many threads while a poller takes
/// snapshots: because `completed` and `rtt_micros` move under one lock,
/// every observed mean RTT must be *exactly* 1 ms — a torn read (the old
/// per-field atomics) surfaces as a fractional mean.
#[test]
fn worker_stats_snapshot_is_internally_consistent_under_load() {
    let w = Arc::new(Worker::new("x:1".into(), true));
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));

    let writers: Vec<_> = (0..4)
        .map(|_| {
            let w = Arc::clone(&w);
            std::thread::spawn(move || {
                for _ in 0..20_000 {
                    w.stats.update(|s| {
                        s.completed += 1;
                        s.rtt_micros += 1000;
                    });
                }
            })
        })
        .collect();

    let poller = {
        let w = Arc::clone(&w);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut observed = 0u64;
            while !stop.load(Ordering::SeqCst) {
                let s = w.snapshot();
                if s.completed > 0 {
                    assert_eq!(
                        s.mean_rtt_ms, 1.0,
                        "snapshot mixed counters from different instants: {s:?}"
                    );
                    observed += 1;
                }
            }
            observed
        })
    };

    for h in writers {
        h.join().unwrap();
    }
    stop.store(true, Ordering::SeqCst);
    assert!(
        poller.join().unwrap() > 0,
        "the poller must observe snapshots"
    );
    let s = w.stats.read();
    assert_eq!(s.completed, 80_000);
    assert_eq!(s.rtt_micros, 80_000_000);
}

/// The `obs` verb round-trips the registry through the wire JSON
/// losslessly, including u64 values beyond the f64-safe integer range.
#[test]
fn obs_json_roundtrips_exactly() {
    let reg = manual_registry();
    reg.counter("big").add(u64::MAX - 3);
    reg.counter(&obs::labeled("evals", &[("worker", "a:1")]))
        .inc();
    reg.gauge("temp").set(-42);
    let h = reg.histogram("lat");
    h.record(0);
    h.record(150);
    h.record(u64::MAX);
    drop(obs::span!(reg, "phase", idx = 3));

    let snap = reg.snapshot();
    let json = registry_to_json(&snap);
    // Through text, like the wire does it.
    let text = json.to_text();
    let parsed = served::json::parse(&text).unwrap();
    let back = registry_from_json(&parsed).unwrap();
    assert_eq!(back, snap);
    assert_eq!(back.counter("big"), u64::MAX - 3);
    assert_eq!(back.histogram("lat").unwrap().max, u64::MAX);
}
