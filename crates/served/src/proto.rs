//! The wire protocol: one JSON object per line, both directions.
//!
//! Requests are `{"cmd": "...", ...}`; responses are `{"ok": true, ...}`
//! or `{"ok": false, "error": "..."}`. The framing layer is deliberately
//! defensive: lines longer than [`MAX_FRAME_BYTES`] kill the connection
//! (a client that sends them is broken or hostile), while merely
//! malformed JSON gets an error response and the connection stays
//! usable.

use std::io::{BufRead, Write};

use crate::checkpoint::{f64_from_json, f64_to_json};
use crate::daemon::JobRecord;
use crate::dispatch::WorkerSnapshot;
use crate::json::{parse, u64_from_json, u64_to_json, Json};
use crate::metrics::MetricsSnapshot;

/// Longest request or response line the daemon will read, in bytes.
pub const MAX_FRAME_BYTES: usize = 1 << 20;

/// What became of one attempt to read a frame.
#[derive(Debug)]
pub enum Frame {
    /// A complete line (without the trailing newline).
    Line(String),
    /// Clean end of stream.
    Eof,
    /// The line exceeded [`MAX_FRAME_BYTES`]; the caller must drop the
    /// connection.
    Oversized,
    /// An I/O error (includes read timeouts on half-open connections).
    Err(std::io::Error),
}

/// Reads one newline-delimited frame, enforcing the size cap *while
/// reading* — a 100 MB line is rejected after 1 MiB, not buffered.
pub fn read_frame(reader: &mut impl BufRead) -> Frame {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let chunk = match reader.fill_buf() {
            Ok(c) => c,
            Err(e) => return Frame::Err(e),
        };
        if chunk.is_empty() {
            return if line.is_empty() {
                Frame::Eof
            } else {
                // Stream ended mid-line; treat the partial line as a frame.
                match String::from_utf8(line) {
                    Ok(s) => Frame::Line(s),
                    Err(_) => Frame::Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        "frame is not UTF-8",
                    )),
                }
            };
        }
        let newline = chunk.iter().position(|&b| b == b'\n');
        let take = newline.map_or(chunk.len(), |i| i + 1);
        if line.len() + take > MAX_FRAME_BYTES + 1 {
            reader.consume(take);
            return Frame::Oversized;
        }
        line.extend_from_slice(&chunk[..take]);
        reader.consume(take);
        if newline.is_some() {
            while line.last() == Some(&b'\n') || line.last() == Some(&b'\r') {
                line.pop();
            }
            return match String::from_utf8(line) {
                Ok(s) => Frame::Line(s),
                Err(_) => Frame::Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "frame is not UTF-8",
                )),
            };
        }
    }
}

/// Writes one response frame (a line of JSON).
///
/// # Errors
/// Propagates I/O errors.
pub fn write_frame(writer: &mut impl Write, v: &Json) -> std::io::Result<()> {
    let mut text = v.to_text();
    text.push('\n');
    writer.write_all(text.as_bytes())?;
    writer.flush()
}

/// A success envelope with extra fields.
#[must_use]
pub fn ok_with(mut fields: Vec<(&str, Json)>) -> Json {
    let mut pairs = vec![("ok", Json::Bool(true))];
    pairs.append(&mut fields);
    Json::obj(pairs)
}

/// An error envelope.
#[must_use]
pub fn err(message: impl Into<String>) -> Json {
    Json::obj(vec![
        ("ok", Json::Bool(false)),
        ("error", Json::Str(message.into())),
    ])
}

/// A structured `busy` reject envelope: `ok:false` like any error, plus
/// machine-readable fields so a client can distinguish "back off and
/// retry" (full queue, connection cap) from "don't bother" (quota).
///
/// ```text
/// {"ok":false,"busy":true,"reason":"queue_full","retryable":true,"error":"..."}
/// ```
#[must_use]
pub fn err_busy(reject: &shard::Reject) -> Json {
    Json::obj(vec![
        ("ok", Json::Bool(false)),
        ("busy", Json::Bool(true)),
        ("reason", Json::Str(reject.kind.reason().into())),
        ("retryable", Json::Bool(reject.kind.retryable())),
        ("error", Json::Str(reject.message.clone())),
    ])
}

/// Parses a request line into `(cmd, body)`.
///
/// # Errors
/// Malformed JSON or a missing `cmd` field.
pub fn parse_request(line: &str) -> Result<(String, Json), String> {
    let v = parse(line)?;
    let cmd = v
        .get("cmd")
        .and_then(Json::as_str)
        .ok_or("request needs a string 'cmd' field")?
        .to_string();
    Ok((cmd, v))
}

/// One genome inside an `eval_batch` request: the dispatcher's index
/// into the generation plus the raw gene vector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalRequest {
    /// Caller-chosen id; echoed back verbatim in the matching result.
    pub id: usize,
    /// The genome to score.
    pub genes: Vec<i64>,
}

/// One genome's outcome inside an `eval_batch` response. The batch
/// envelope itself can succeed while individual items fail — that is
/// the partial-failure seam: a worker reports what it could measure and
/// names what it could not, instead of poisoning the whole round-trip.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalOutcome {
    /// A bit-exact fitness measurement.
    Fitness(f64),
    /// This item could not be evaluated (e.g. genes outside the
    /// problem's space); the batch's other results still stand.
    Error(String),
}

/// Builds an `eval_batch` request frame: one round-trip carrying a whole
/// generation's worth of evals for one worker.
///
/// ```text
/// {"cmd":"eval_batch","id":"3","evals":[{"id":0,"genes":[23,...]},...]}
/// ```
///
/// The batch `id` is echoed in the response so a dispatcher can detect
/// stale or duplicated frames from an earlier batch on the same
/// connection.
#[must_use]
pub fn eval_batch_request(batch_id: u64, evals: &[EvalRequest]) -> Json {
    Json::obj(vec![
        ("cmd", Json::Str("eval_batch".into())),
        ("id", u64_to_json(batch_id)),
        (
            "evals",
            Json::Arr(
                evals
                    .iter()
                    .map(|e| {
                        Json::obj(vec![
                            ("id", Json::Int(e.id as i64)),
                            (
                                "genes",
                                Json::Arr(e.genes.iter().map(|&g| Json::Int(g)).collect()),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Parses the body of an `eval_batch` request into `(batch_id, evals)`.
///
/// # Errors
/// Describes the first malformed field.
pub fn parse_eval_batch_request(body: &Json) -> Result<(u64, Vec<EvalRequest>), String> {
    let batch_id = body
        .get("id")
        .and_then(u64_from_json)
        .ok_or("eval_batch needs a numeric 'id'")?;
    let items = body
        .get("evals")
        .and_then(Json::as_arr)
        .ok_or("eval_batch needs an 'evals' array")?;
    let evals = items
        .iter()
        .map(|item| {
            let id = item
                .get("id")
                .and_then(Json::as_usize)
                .ok_or("eval_batch item needs a numeric 'id'")?;
            let genes: Vec<i64> = item
                .get("genes")
                .and_then(Json::as_arr)
                .and_then(|gs| gs.iter().map(Json::as_i64).collect())
                .ok_or("eval_batch item needs an integer 'genes' array")?;
            Ok(EvalRequest { id, genes })
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok((batch_id, evals))
}

/// Builds an `eval_batch` response envelope: the echoed batch id plus
/// one result object per item — `{"id":N,"fitness":...}` for successes,
/// `{"id":N,"error":"..."}` for per-item failures.
#[must_use]
pub fn eval_batch_response(batch_id: u64, results: &[(usize, EvalOutcome)]) -> Json {
    ok_with(vec![
        ("id", u64_to_json(batch_id)),
        (
            "results",
            Json::Arr(
                results
                    .iter()
                    .map(|(id, outcome)| {
                        Json::obj(vec![
                            ("id", Json::Int(*id as i64)),
                            match outcome {
                                EvalOutcome::Fitness(f) => ("fitness", f64_to_json(*f)),
                                EvalOutcome::Error(e) => ("error", Json::Str(e.clone())),
                            },
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Parses a full `eval_batch` response frame into
/// `(batch_id, per-item outcomes)`. Fitness values decode bit-exactly.
///
/// # Errors
/// A `{"ok":false}` envelope or any malformed field — the caller should
/// treat either as a protocol violation by the worker.
pub fn parse_eval_batch_response(v: &Json) -> Result<(u64, Vec<(usize, EvalOutcome)>), String> {
    if v.get("ok").and_then(Json::as_bool) != Some(true) {
        let detail = v
            .get("error")
            .and_then(Json::as_str)
            .unwrap_or("missing ok flag");
        return Err(format!("eval_batch rejected: {detail}"));
    }
    let batch_id = v
        .get("id")
        .and_then(u64_from_json)
        .ok_or("eval_batch response needs a numeric 'id'")?;
    let items = v
        .get("results")
        .and_then(Json::as_arr)
        .ok_or("eval_batch response needs a 'results' array")?;
    let results = items
        .iter()
        .map(|item| {
            let id = item
                .get("id")
                .and_then(Json::as_usize)
                .ok_or("eval_batch result needs a numeric 'id'")?;
            if let Some(f) = item.get("fitness").and_then(f64_from_json) {
                return Ok((id, EvalOutcome::Fitness(f)));
            }
            if let Some(e) = item.get("error").and_then(Json::as_str) {
                return Ok((id, EvalOutcome::Error(e.to_string())));
            }
            Err("eval_batch result needs 'fitness' or 'error'".to_string())
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok((batch_id, results))
}

/// Serializes a tuned genome as its raw gene vector plus — for the
/// inlining problem, whose five genes have stable public names — one
/// named field per gene (the pre-problems wire shape, kept so existing
/// consumers of `result.params.callee_max_size` never notice).
#[must_use]
pub fn genome_to_json(problem: &str, genes: &[i64]) -> Json {
    let mut pairs = vec![(
        "genes",
        Json::Arr(genes.iter().map(|&g| Json::Int(g)).collect()),
    )];
    if problem == "inline" && genes.len() == inliner::PARAM_NAMES.len() {
        pairs.push(("callee_max_size", Json::Int(genes[0])));
        pairs.push(("always_inline_size", Json::Int(genes[1])));
        pairs.push(("max_inline_depth", Json::Int(genes[2])));
        pairs.push(("caller_max_size", Json::Int(genes[3])));
        pairs.push(("hot_callee_max_size", Json::Int(genes[4])));
    }
    Json::obj(pairs)
}

/// Serializes a job record for `status` / `list` / `watch` responses.
#[must_use]
pub fn record_to_json(r: &JobRecord) -> Json {
    let mut pairs = vec![
        ("id", Json::Int(r.id as i64)),
        ("name", Json::Str(r.spec.name.clone())),
        ("state", Json::Str(r.state.name().into())),
        ("problem", Json::Str(r.spec.problem.clone())),
        ("strategy", Json::Str(r.spec.strategy.clone())),
        ("tenant", Json::Str(r.spec.tenant.clone())),
        ("shard", Json::Int(r.shard as i64)),
        ("generation", Json::Int(r.generation as i64)),
        (
            "best_fitness",
            r.best_fitness.map_or(Json::Null, f64_to_json),
        ),
    ];
    if let Some(o) = &r.online {
        pairs.push((
            "online",
            Json::obj(vec![
                ("epoch", u64_to_json(o.epoch)),
                ("retunes", u64_to_json(o.retunes)),
                ("regret_pct", f64_to_json(o.regret_pct)),
                ("phase", Json::Int(i64::from(o.phase))),
            ]),
        ));
    }
    if r.standings.len() > 1 {
        pairs.push((
            "strategies",
            Json::Arr(
                r.standings
                    .iter()
                    .map(|s| {
                        Json::obj(vec![
                            ("name", Json::Str(s.name.clone())),
                            (
                                "best_fitness",
                                s.best_fitness.map_or(Json::Null, f64_to_json),
                            ),
                            ("evaluations", Json::Int(s.evaluations as i64)),
                            ("eliminated", Json::Bool(s.eliminated)),
                        ])
                    })
                    .collect(),
            ),
        ));
    }
    if let Some((genes, fitness)) = &r.result {
        pairs.push((
            "result",
            Json::obj(vec![
                ("params", genome_to_json(&r.spec.problem, genes)),
                ("fitness", f64_to_json(*fitness)),
            ]),
        ));
    }
    if let Some(e) = &r.error {
        pairs.push(("error", Json::Str(e.clone())));
    }
    if let Some(t) = &r.timing {
        pairs.push((
            "timing",
            Json::obj(vec![
                ("generation", Json::Int(t.generation as i64)),
                ("eval_micros", u64_to_json(t.eval_micros)),
                ("select_micros", u64_to_json(t.select_micros)),
                ("breed_micros", u64_to_json(t.breed_micros)),
                ("evaluations", Json::Int(t.evaluations as i64)),
                ("cache_hits", Json::Int(t.cache_hits as i64)),
            ]),
        ));
    }
    Json::obj(pairs)
}

fn hist_to_json(name: &str, h: &obs::HistSnapshot) -> Json {
    Json::obj(vec![
        ("name", Json::Str(name.to_string())),
        (
            "counts",
            Json::Arr(h.counts.iter().map(|&c| u64_to_json(c)).collect()),
        ),
        ("total", u64_to_json(h.total)),
        ("sum", u64_to_json(h.sum)),
        ("max", u64_to_json(h.max)),
        // Derived, for human consumers; `registry_from_json` recomputes.
        ("p50", u64_to_json(h.p50())),
        ("p95", u64_to_json(h.p95())),
        ("p99", u64_to_json(h.p99())),
    ])
}

/// Serializes an observability registry snapshot for the `obs` verb.
/// `u64` values ride as decimal strings (`u64_to_json`) so nothing is
/// clipped to the JSON integer range.
#[must_use]
pub fn registry_to_json(s: &obs::RegistrySnapshot) -> Json {
    Json::obj(vec![
        (
            "counters",
            Json::Obj(
                s.counters
                    .iter()
                    .map(|(k, v)| (k.clone(), u64_to_json(*v)))
                    .collect(),
            ),
        ),
        (
            "gauges",
            Json::Obj(
                s.gauges
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::Int(*v)))
                    .collect(),
            ),
        ),
        (
            "histograms",
            Json::Arr(
                s.histograms
                    .iter()
                    .map(|(k, h)| hist_to_json(k, h))
                    .collect(),
            ),
        ),
        (
            "spans",
            Json::Arr(
                s.spans
                    .iter()
                    .map(|sp| {
                        Json::obj(vec![
                            ("path", Json::Str(sp.path.clone())),
                            ("label", Json::Str(sp.label.clone())),
                            ("start_micros", u64_to_json(sp.start_micros)),
                            ("dur_micros", u64_to_json(sp.dur_micros)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Decodes what [`registry_to_json`] produced. Derived histogram fields
/// (p50/p95/p99) are ignored — they recompute from the buckets.
///
/// # Errors
/// Describes the first malformed field.
pub fn registry_from_json(v: &Json) -> Result<obs::RegistrySnapshot, String> {
    let counters = match v.get("counters") {
        Some(Json::Obj(pairs)) => pairs
            .iter()
            .map(|(k, val)| {
                u64_from_json(val)
                    .map(|n| (k.clone(), n))
                    .ok_or_else(|| format!("counter '{k}' is not a u64"))
            })
            .collect::<Result<Vec<_>, _>>()?,
        _ => return Err("obs JSON needs a 'counters' object".into()),
    };
    let gauges = match v.get("gauges") {
        Some(Json::Obj(pairs)) => pairs
            .iter()
            .map(|(k, val)| {
                val.as_i64()
                    .map(|n| (k.clone(), n))
                    .ok_or_else(|| format!("gauge '{k}' is not an integer"))
            })
            .collect::<Result<Vec<_>, _>>()?,
        _ => return Err("obs JSON needs a 'gauges' object".into()),
    };
    let histograms = v
        .get("histograms")
        .and_then(Json::as_arr)
        .ok_or("obs JSON needs a 'histograms' array")?
        .iter()
        .map(|h| {
            let name = h
                .get("name")
                .and_then(Json::as_str)
                .ok_or("histogram needs a 'name'")?
                .to_string();
            let counts = h
                .get("counts")
                .and_then(Json::as_arr)
                .ok_or_else(|| format!("histogram '{name}' needs a 'counts' array"))?
                .iter()
                .map(|c| u64_from_json(c).ok_or_else(|| format!("bad count in '{name}'")))
                .collect::<Result<Vec<u64>, _>>()?;
            if counts.len() != obs::NUM_BUCKETS {
                return Err(format!(
                    "histogram '{name}' has {} buckets, expected {}",
                    counts.len(),
                    obs::NUM_BUCKETS
                ));
            }
            let field = |key: &str| {
                h.get(key)
                    .and_then(u64_from_json)
                    .ok_or_else(|| format!("histogram '{name}' needs a u64 '{key}'"))
            };
            Ok((
                name.clone(),
                obs::HistSnapshot {
                    counts,
                    total: field("total")?,
                    sum: field("sum")?,
                    max: field("max")?,
                },
            ))
        })
        .collect::<Result<Vec<_>, String>>()?;
    let spans = v
        .get("spans")
        .and_then(Json::as_arr)
        .ok_or("obs JSON needs a 'spans' array")?
        .iter()
        .map(|sp| {
            let text = |key: &str| {
                sp.get(key)
                    .and_then(Json::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| format!("span needs a string '{key}'"))
            };
            let micros = |key: &str| {
                sp.get(key)
                    .and_then(u64_from_json)
                    .ok_or_else(|| format!("span needs a u64 '{key}'"))
            };
            Ok(obs::SpanRecord {
                path: text("path")?,
                label: text("label")?,
                start_micros: micros("start_micros")?,
                dur_micros: micros("dur_micros")?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(obs::RegistrySnapshot {
        counters,
        gauges,
        histograms,
        spans,
    })
}

/// Serializes a metrics snapshot.
#[must_use]
pub fn metrics_to_json(m: &MetricsSnapshot) -> Json {
    Json::obj(vec![
        ("uptime_secs", f64_to_json(m.uptime_secs)),
        (
            "jobs",
            Json::obj(vec![
                ("queued", Json::Int(m.jobs.queued as i64)),
                ("running", Json::Int(m.jobs.running as i64)),
                ("done", Json::Int(m.jobs.done as i64)),
                ("failed", Json::Int(m.jobs.failed as i64)),
                ("canceled", Json::Int(m.jobs.canceled as i64)),
            ]),
        ),
        ("jobs_submitted", Json::Int(m.jobs_submitted as i64)),
        ("jobs_recovered", Json::Int(m.jobs_recovered as i64)),
        ("generations", Json::Int(m.generations as i64)),
        ("generations_per_sec", f64_to_json(m.generations_per_sec)),
        ("evaluations", Json::Int(m.evaluations as i64)),
        ("cache_hits", Json::Int(m.cache_hits as i64)),
        ("cache_hit_rate", f64_to_json(m.cache_hit_rate)),
        (
            "checkpoints_written",
            Json::Int(m.checkpoints_written as i64),
        ),
        ("connections", Json::Int(m.connections as i64)),
        ("protocol_errors", Json::Int(m.protocol_errors as i64)),
        ("busy_rejects", Json::Int(m.busy_rejects as i64)),
        ("quota_rejects", Json::Int(m.quota_rejects as i64)),
        (
            "slow_watch_disconnects",
            Json::Int(m.slow_watch_disconnects as i64),
        ),
        (
            "remote",
            Json::obj(vec![
                ("dispatched", Json::Int(m.remote_dispatched as i64)),
                ("batches", Json::Int(m.remote_batches as i64)),
                ("completed", Json::Int(m.remote_completed as i64)),
                ("retries", Json::Int(m.remote_retries as i64)),
                ("timeouts", Json::Int(m.remote_timeouts as i64)),
                ("evictions", Json::Int(m.remote_evictions as i64)),
                ("fallback_evals", Json::Int(m.remote_fallback_evals as i64)),
            ]),
        ),
    ])
}

/// Serializes one shard's job gauges for the `metrics` verb.
#[must_use]
pub fn shard_to_json(s: &crate::daemon::ShardSnapshot) -> Json {
    Json::obj(vec![
        ("shard", Json::Int(s.shard as i64)),
        ("queued", Json::Int(s.queued as i64)),
        ("running", Json::Int(s.running as i64)),
        ("done", Json::Int(s.done as i64)),
        ("failed", Json::Int(s.failed as i64)),
        ("canceled", Json::Int(s.canceled as i64)),
    ])
}

/// Serializes one tenant's quota accounting for the `tenants` /
/// `metrics` verbs. `u64` budget numbers ride as decimal strings so
/// nothing clips to the JSON integer range.
#[must_use]
pub fn tenant_to_json(t: &shard::TenantUsage) -> Json {
    Json::obj(vec![
        ("tenant", Json::Str(t.tenant.clone())),
        ("quota", t.quota.map_or(Json::Null, u64_to_json)),
        ("used", u64_to_json(t.used)),
        ("reserved", u64_to_json(t.reserved)),
        ("admitted", u64_to_json(t.admitted)),
        ("rejected", u64_to_json(t.rejected)),
        ("settled", u64_to_json(t.settled)),
    ])
}

/// Serializes one worker's counters for the `metrics` / `workers` verbs.
#[must_use]
pub fn worker_to_json(w: &WorkerSnapshot) -> Json {
    Json::obj(vec![
        ("addr", Json::Str(w.addr.clone())),
        ("alive", Json::Bool(w.alive)),
        ("registered", Json::Bool(w.registered)),
        ("dispatched", Json::Int(w.dispatched as i64)),
        ("completed", Json::Int(w.completed as i64)),
        ("retries", Json::Int(w.retries as i64)),
        ("timeouts", Json::Int(w.timeouts as i64)),
        ("evictions", Json::Int(w.evictions as i64)),
        ("mean_rtt_ms", f64_to_json(w.mean_rtt_ms)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use inliner::InlineParams;
    use std::io::BufReader;

    fn frames(input: &[u8]) -> Vec<Frame> {
        let mut reader = BufReader::new(input);
        let mut out = Vec::new();
        loop {
            let f = read_frame(&mut reader);
            let eof = matches!(f, Frame::Eof);
            out.push(f);
            if eof {
                return out;
            }
        }
    }

    #[test]
    fn reads_line_frames() {
        let fs = frames(b"{\"cmd\":\"ping\"}\r\n{\"cmd\":\"list\"}\n");
        assert!(matches!(&fs[0], Frame::Line(s) if s == "{\"cmd\":\"ping\"}"));
        assert!(matches!(&fs[1], Frame::Line(s) if s == "{\"cmd\":\"list\"}"));
        assert!(matches!(&fs[2], Frame::Eof));
    }

    #[test]
    fn partial_final_line_still_delivered() {
        let fs = frames(b"{\"cmd\":\"ping\"}");
        assert!(matches!(&fs[0], Frame::Line(s) if s == "{\"cmd\":\"ping\"}"));
    }

    #[test]
    fn oversized_line_is_rejected_not_buffered() {
        let mut input = vec![b'x'; MAX_FRAME_BYTES * 3];
        input.push(b'\n');
        let mut reader = BufReader::new(&input[..]);
        assert!(matches!(read_frame(&mut reader), Frame::Oversized));
    }

    #[test]
    fn request_parsing_wants_cmd() {
        assert!(parse_request("{\"cmd\":\"status\",\"id\":4}").is_ok());
        assert!(parse_request("{}").is_err());
        assert!(parse_request("{\"cmd\":7}").is_err());
        assert!(parse_request("not json").is_err());
    }

    #[test]
    fn envelopes_have_ok_flags() {
        assert_eq!(ok_with(vec![]).get("ok"), Some(&Json::Bool(true)));
        let e = err("boom");
        assert_eq!(e.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(e.get("error").unwrap().as_str(), Some("boom"));
    }

    #[test]
    fn eval_batch_request_round_trips_losslessly() {
        let evals = vec![
            EvalRequest {
                id: 0,
                genes: vec![i64::MIN, -1, 0, 1, i64::MAX],
            },
            EvalRequest {
                id: 7,
                genes: vec![],
            },
            EvalRequest {
                id: 3,
                genes: vec![42; 64],
            },
        ];
        let frame = eval_batch_request(u64::MAX, &evals);
        // Through the actual wire bytes, not just the Json tree.
        let parsed = crate::json::parse(&frame.to_text()).unwrap();
        assert_eq!(parsed.get("cmd").and_then(Json::as_str), Some("eval_batch"));
        let (id, back) = parse_eval_batch_request(&parsed).unwrap();
        assert_eq!(id, u64::MAX);
        assert_eq!(back, evals);
    }

    #[test]
    fn eval_batch_response_round_trips_bit_exact_fitness() {
        let results = vec![
            (0usize, EvalOutcome::Fitness(0.1 + 0.2)),
            (2, EvalOutcome::Error("genes outside space".into())),
            (1, EvalOutcome::Fitness(f64::INFINITY)),
            (5, EvalOutcome::Fitness(-0.0)),
        ];
        let frame = eval_batch_response(9, &results);
        let parsed = crate::json::parse(&frame.to_text()).unwrap();
        let (id, back) = parse_eval_batch_response(&parsed).unwrap();
        assert_eq!(id, 9);
        assert_eq!(back.len(), results.len());
        for ((ia, oa), (ib, ob)) in results.iter().zip(&back) {
            assert_eq!(ia, ib);
            match (oa, ob) {
                (EvalOutcome::Fitness(a), EvalOutcome::Fitness(b)) => {
                    assert_eq!(a.to_bits(), b.to_bits(), "fitness must survive bit-exactly");
                }
                (EvalOutcome::Error(a), EvalOutcome::Error(b)) => assert_eq!(a, b),
                other => panic!("outcome kind changed in flight: {other:?}"),
            }
        }
    }

    #[test]
    fn eval_batch_error_envelope_is_a_parse_error() {
        assert!(parse_eval_batch_response(&err("no task")).is_err());
        assert!(parse_eval_batch_response(&ok_with(vec![])).is_err());
        let missing_outcome = ok_with(vec![
            ("id", crate::json::u64_to_json(1)),
            (
                "results",
                Json::Arr(vec![Json::obj(vec![("id", Json::Int(0))])]),
            ),
        ]);
        assert!(parse_eval_batch_response(&missing_outcome).is_err());
    }

    #[test]
    fn inline_genomes_keep_their_named_gene_fields() {
        let v = genome_to_json("inline", &InlineParams::jikes_default().to_genes());
        assert_eq!(v.get("genes").unwrap().as_arr().unwrap().len(), 5);
        assert!(v.get("callee_max_size").unwrap().as_i64().is_some());
        assert!(v.get("hot_callee_max_size").unwrap().as_i64().is_some());
    }

    #[test]
    fn other_problems_get_raw_genes_only() {
        let v = genome_to_json("dss", &[0, 2, 1, 4, 3, 0, 0, 2]);
        assert_eq!(v.get("genes").unwrap().as_arr().unwrap().len(), 8);
        assert!(v.get("callee_max_size").is_none());
    }
}
