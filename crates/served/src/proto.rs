//! The wire protocol: one JSON object per line, both directions.
//!
//! Requests are `{"cmd": "...", ...}`; responses are `{"ok": true, ...}`
//! or `{"ok": false, "error": "..."}`. The framing layer is deliberately
//! defensive: lines longer than [`MAX_FRAME_BYTES`] kill the connection
//! (a client that sends them is broken or hostile), while merely
//! malformed JSON gets an error response and the connection stays
//! usable.

use std::io::{BufRead, Write};

use inliner::InlineParams;

use crate::checkpoint::f64_to_json;
use crate::daemon::JobRecord;
use crate::dispatch::WorkerSnapshot;
use crate::json::{parse, Json};
use crate::metrics::MetricsSnapshot;

/// Longest request or response line the daemon will read, in bytes.
pub const MAX_FRAME_BYTES: usize = 1 << 20;

/// What became of one attempt to read a frame.
#[derive(Debug)]
pub enum Frame {
    /// A complete line (without the trailing newline).
    Line(String),
    /// Clean end of stream.
    Eof,
    /// The line exceeded [`MAX_FRAME_BYTES`]; the caller must drop the
    /// connection.
    Oversized,
    /// An I/O error (includes read timeouts on half-open connections).
    Err(std::io::Error),
}

/// Reads one newline-delimited frame, enforcing the size cap *while
/// reading* — a 100 MB line is rejected after 1 MiB, not buffered.
pub fn read_frame(reader: &mut impl BufRead) -> Frame {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let chunk = match reader.fill_buf() {
            Ok(c) => c,
            Err(e) => return Frame::Err(e),
        };
        if chunk.is_empty() {
            return if line.is_empty() {
                Frame::Eof
            } else {
                // Stream ended mid-line; treat the partial line as a frame.
                match String::from_utf8(line) {
                    Ok(s) => Frame::Line(s),
                    Err(_) => Frame::Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        "frame is not UTF-8",
                    )),
                }
            };
        }
        let newline = chunk.iter().position(|&b| b == b'\n');
        let take = newline.map_or(chunk.len(), |i| i + 1);
        if line.len() + take > MAX_FRAME_BYTES + 1 {
            reader.consume(take);
            return Frame::Oversized;
        }
        line.extend_from_slice(&chunk[..take]);
        reader.consume(take);
        if newline.is_some() {
            while line.last() == Some(&b'\n') || line.last() == Some(&b'\r') {
                line.pop();
            }
            return match String::from_utf8(line) {
                Ok(s) => Frame::Line(s),
                Err(_) => Frame::Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "frame is not UTF-8",
                )),
            };
        }
    }
}

/// Writes one response frame (a line of JSON).
///
/// # Errors
/// Propagates I/O errors.
pub fn write_frame(writer: &mut impl Write, v: &Json) -> std::io::Result<()> {
    let mut text = v.to_text();
    text.push('\n');
    writer.write_all(text.as_bytes())?;
    writer.flush()
}

/// A success envelope with extra fields.
#[must_use]
pub fn ok_with(mut fields: Vec<(&str, Json)>) -> Json {
    let mut pairs = vec![("ok", Json::Bool(true))];
    pairs.append(&mut fields);
    Json::obj(pairs)
}

/// An error envelope.
#[must_use]
pub fn err(message: impl Into<String>) -> Json {
    Json::obj(vec![
        ("ok", Json::Bool(false)),
        ("error", Json::Str(message.into())),
    ])
}

/// Parses a request line into `(cmd, body)`.
///
/// # Errors
/// Malformed JSON or a missing `cmd` field.
pub fn parse_request(line: &str) -> Result<(String, Json), String> {
    let v = parse(line)?;
    let cmd = v
        .get("cmd")
        .and_then(Json::as_str)
        .ok_or("request needs a string 'cmd' field")?
        .to_string();
    Ok((cmd, v))
}

/// Serializes tuned parameters as named genes (stable wire shape).
#[must_use]
pub fn params_to_json(params: &InlineParams) -> Json {
    let genes = params.clone().to_genes();
    Json::obj(vec![
        (
            "genes",
            Json::Arr(genes.iter().map(|&g| Json::Int(g)).collect()),
        ),
        ("callee_max_size", Json::Int(genes[0])),
        ("always_inline_size", Json::Int(genes[1])),
        ("max_inline_depth", Json::Int(genes[2])),
        ("caller_max_size", Json::Int(genes[3])),
        ("hot_callee_max_size", Json::Int(genes[4])),
    ])
}

/// Serializes a job record for `status` / `list` / `watch` responses.
#[must_use]
pub fn record_to_json(r: &JobRecord) -> Json {
    let mut pairs = vec![
        ("id", Json::Int(r.id as i64)),
        ("name", Json::Str(r.spec.name.clone())),
        ("state", Json::Str(r.state.name().into())),
        ("generation", Json::Int(r.generation as i64)),
        (
            "best_fitness",
            r.best_fitness.map_or(Json::Null, f64_to_json),
        ),
    ];
    if let Some((params, fitness)) = &r.result {
        pairs.push((
            "result",
            Json::obj(vec![
                ("params", params_to_json(params)),
                ("fitness", f64_to_json(*fitness)),
            ]),
        ));
    }
    if let Some(e) = &r.error {
        pairs.push(("error", Json::Str(e.clone())));
    }
    Json::obj(pairs)
}

/// Serializes a metrics snapshot.
#[must_use]
pub fn metrics_to_json(m: &MetricsSnapshot) -> Json {
    Json::obj(vec![
        ("uptime_secs", f64_to_json(m.uptime_secs)),
        (
            "jobs",
            Json::obj(vec![
                ("queued", Json::Int(m.jobs.queued as i64)),
                ("running", Json::Int(m.jobs.running as i64)),
                ("done", Json::Int(m.jobs.done as i64)),
                ("failed", Json::Int(m.jobs.failed as i64)),
                ("canceled", Json::Int(m.jobs.canceled as i64)),
            ]),
        ),
        ("jobs_submitted", Json::Int(m.jobs_submitted as i64)),
        ("jobs_recovered", Json::Int(m.jobs_recovered as i64)),
        ("generations", Json::Int(m.generations as i64)),
        ("generations_per_sec", f64_to_json(m.generations_per_sec)),
        ("evaluations", Json::Int(m.evaluations as i64)),
        ("cache_hits", Json::Int(m.cache_hits as i64)),
        ("cache_hit_rate", f64_to_json(m.cache_hit_rate)),
        (
            "checkpoints_written",
            Json::Int(m.checkpoints_written as i64),
        ),
        ("connections", Json::Int(m.connections as i64)),
        ("protocol_errors", Json::Int(m.protocol_errors as i64)),
        (
            "remote",
            Json::obj(vec![
                ("dispatched", Json::Int(m.remote_dispatched as i64)),
                ("completed", Json::Int(m.remote_completed as i64)),
                ("retries", Json::Int(m.remote_retries as i64)),
                ("timeouts", Json::Int(m.remote_timeouts as i64)),
                ("evictions", Json::Int(m.remote_evictions as i64)),
                ("fallback_evals", Json::Int(m.remote_fallback_evals as i64)),
            ]),
        ),
    ])
}

/// Serializes one worker's counters for the `metrics` / `workers` verbs.
#[must_use]
pub fn worker_to_json(w: &WorkerSnapshot) -> Json {
    Json::obj(vec![
        ("addr", Json::Str(w.addr.clone())),
        ("alive", Json::Bool(w.alive)),
        ("registered", Json::Bool(w.registered)),
        ("dispatched", Json::Int(w.dispatched as i64)),
        ("completed", Json::Int(w.completed as i64)),
        ("retries", Json::Int(w.retries as i64)),
        ("timeouts", Json::Int(w.timeouts as i64)),
        ("evictions", Json::Int(w.evictions as i64)),
        ("mean_rtt_ms", f64_to_json(w.mean_rtt_ms)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn frames(input: &[u8]) -> Vec<Frame> {
        let mut reader = BufReader::new(input);
        let mut out = Vec::new();
        loop {
            let f = read_frame(&mut reader);
            let eof = matches!(f, Frame::Eof);
            out.push(f);
            if eof {
                return out;
            }
        }
    }

    #[test]
    fn reads_line_frames() {
        let fs = frames(b"{\"cmd\":\"ping\"}\r\n{\"cmd\":\"list\"}\n");
        assert!(matches!(&fs[0], Frame::Line(s) if s == "{\"cmd\":\"ping\"}"));
        assert!(matches!(&fs[1], Frame::Line(s) if s == "{\"cmd\":\"list\"}"));
        assert!(matches!(&fs[2], Frame::Eof));
    }

    #[test]
    fn partial_final_line_still_delivered() {
        let fs = frames(b"{\"cmd\":\"ping\"}");
        assert!(matches!(&fs[0], Frame::Line(s) if s == "{\"cmd\":\"ping\"}"));
    }

    #[test]
    fn oversized_line_is_rejected_not_buffered() {
        let mut input = vec![b'x'; MAX_FRAME_BYTES * 3];
        input.push(b'\n');
        let mut reader = BufReader::new(&input[..]);
        assert!(matches!(read_frame(&mut reader), Frame::Oversized));
    }

    #[test]
    fn request_parsing_wants_cmd() {
        assert!(parse_request("{\"cmd\":\"status\",\"id\":4}").is_ok());
        assert!(parse_request("{}").is_err());
        assert!(parse_request("{\"cmd\":7}").is_err());
        assert!(parse_request("not json").is_err());
    }

    #[test]
    fn envelopes_have_ok_flags() {
        assert_eq!(ok_with(vec![]).get("ok"), Some(&Json::Bool(true)));
        let e = err("boom");
        assert_eq!(e.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(e.get("error").unwrap().as_str(), Some("boom"));
    }

    #[test]
    fn params_json_names_every_gene() {
        let v = params_to_json(&InlineParams::jikes_default());
        assert_eq!(v.get("genes").unwrap().as_arr().unwrap().len(), 5);
        assert!(v.get("callee_max_size").unwrap().as_i64().is_some());
        assert!(v.get("hot_callee_max_size").unwrap().as_i64().is_some());
    }
}
