//! Durable job state: per-generation checkpoints in a run directory.
//!
//! Layout under the daemon's `--dir`:
//!
//! ```text
//! <dir>/jobs/<id>/spec.json        the JobSpec as submitted
//! <dir>/jobs/<id>/checkpoint.json  GaSnapshot after the last generation
//! <dir>/jobs/<id>/online.json      OnlineSnapshot after the last epoch
//!                                  (online jobs only)
//! <dir>/jobs/<id>/result.json      written once, when the job finishes
//! <dir>/jobs/<id>/canceled         marker: don't resume this job
//! ```
//!
//! Every write goes through a temp-file + `rename` pair, so a `SIGKILL`
//! at any instant leaves either the previous complete checkpoint or the
//! new complete one — never a torn file. That, plus every strategy's
//! bit-exact [`search::StrategySnapshot`] round-trip, is what makes
//! kill-and-restart produce the same tuned parameters as an
//! uninterrupted run.
//!
//! GA checkpoints keep the original untagged [`ga::GaSnapshot`] JSON
//! shape, so run directories written before the `search` seam existed
//! still recover. Every other strategy is tagged with a `"strategy"`
//! key; a race nests its members' snapshots recursively.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use ga::{GaConfig, GaSnapshot, GeneKind, Generation};
use online::{DetectorSnapshot, EpochRow, OnlineSnapshot};
use search::{
    AnnealSnapshot, CoreSnapshot, GridSnapshot, HillSnapshot, MemberSnapshot, RaceSnapshot,
    RandomSnapshot, StrategySnapshot, WarmstartSnapshot,
};
use workloads::DriftPos;

use crate::job::{ga_config_from_json, ga_config_to_json, JobSpec};
use crate::json::{parse, u64_from_json, u64_to_json, Json};

/// Encodes an `f64` that may be non-finite (JSON has no literal for
/// those; `best_fitness` is `+inf` before the first generation).
#[must_use]
pub fn f64_to_json(x: f64) -> Json {
    if x.is_finite() {
        Json::Num(x)
    } else if x.is_nan() {
        Json::Str("nan".into())
    } else if x > 0.0 {
        Json::Str("inf".into())
    } else {
        Json::Str("-inf".into())
    }
}

/// Decodes [`f64_to_json`]'s encoding.
#[must_use]
pub fn f64_from_json(v: &Json) -> Option<f64> {
    match v {
        Json::Str(s) => match s.as_str() {
            "inf" => Some(f64::INFINITY),
            "-inf" => Some(f64::NEG_INFINITY),
            "nan" => Some(f64::NAN),
            _ => None,
        },
        _ => v.as_f64(),
    }
}

fn genome_to_json(g: &[i64]) -> Json {
    Json::Arr(g.iter().map(|&x| Json::Int(x)).collect())
}

pub(crate) fn genome_from_json(v: &Json) -> Option<Vec<i64>> {
    v.as_arr()?.iter().map(Json::as_i64).collect()
}

fn bounds_to_json(bounds: &[(i64, i64)]) -> Json {
    Json::Arr(
        bounds
            .iter()
            .map(|&(lo, hi)| Json::Arr(vec![Json::Int(lo), Json::Int(hi)]))
            .collect(),
    )
}

fn bounds_from_json(v: &Json) -> Option<Vec<(i64, i64)>> {
    v.as_arr()?
        .iter()
        .map(|pair| {
            let p = pair.as_arr()?;
            Some((p.first()?.as_i64()?, p.get(1)?.as_i64()?))
        })
        .collect()
}

/// Gene kinds as a compact code string (`"ibc…"`, one char per gene), or
/// `None` when every gene is the default [`GeneKind::Int`] — the field is
/// omitted then, so pre-kinds checkpoints keep their exact bytes and
/// legacy files (which never carry it) decode to all-Int.
fn kinds_field(kinds: &[GeneKind]) -> Option<Json> {
    if kinds.iter().all(|&k| k == GeneKind::Int) {
        None
    } else {
        Some(Json::Str(kinds.iter().map(|k| k.code()).collect()))
    }
}

fn kinds_from_json(v: Option<&Json>, n_genes: usize) -> Result<Vec<GeneKind>, String> {
    match v {
        None => Ok(vec![GeneKind::Int; n_genes]),
        Some(v) => {
            let s = v.as_str().ok_or("'kinds' must be a string of kind codes")?;
            s.chars()
                .map(|c| {
                    GeneKind::from_code(c).ok_or_else(|| format!("unknown gene kind code '{c}'"))
                })
                .collect()
        }
    }
}

fn memo_to_json(memo: &[(Vec<i64>, f64)]) -> Json {
    Json::Arr(
        memo.iter()
            .map(|(g, v)| Json::Arr(vec![genome_to_json(g), f64_to_json(*v)]))
            .collect(),
    )
}

fn memo_from_json(v: &Json) -> Option<Vec<(Vec<i64>, f64)>> {
    v.as_arr()?
        .iter()
        .map(|entry| {
            let pair = entry.as_arr()?;
            Some((
                genome_from_json(pair.first()?)?,
                f64_from_json(pair.get(1)?)?,
            ))
        })
        .collect()
}

fn scored_opt_to_json(v: &Option<(Vec<i64>, f64)>) -> Json {
    match v {
        None => Json::Null,
        Some((g, f)) => Json::Arr(vec![genome_to_json(g), f64_to_json(*f)]),
    }
}

fn scored_opt_from_json(v: &Json) -> Option<Option<(Vec<i64>, f64)>> {
    match v {
        Json::Null => Some(None),
        _ => {
            let pair = v.as_arr()?;
            Some(Some((
                genome_from_json(pair.first()?)?,
                f64_from_json(pair.get(1)?)?,
            )))
        }
    }
}

fn rng_to_json(state: &[u64; 4]) -> Json {
    Json::Arr(state.iter().map(|&w| u64_to_json(w)).collect())
}

fn rng_from_json(v: &Json) -> Option<[u64; 4]> {
    let words = v
        .as_arr()?
        .iter()
        .map(u64_from_json)
        .collect::<Option<Vec<u64>>>()?;
    words.try_into().ok()
}

/// Serializes a [`GaSnapshot`] deterministically (same state → same
/// bytes: the memo table is already sorted by `GaState::snapshot`).
#[must_use]
pub fn snapshot_to_json(s: &GaSnapshot) -> Json {
    let mut fields = vec![(
        "bounds",
        Json::Arr(
            s.bounds
                .iter()
                .map(|&(lo, hi)| Json::Arr(vec![Json::Int(lo), Json::Int(hi)]))
                .collect(),
        ),
    )];
    if let Some(k) = kinds_field(&s.kinds) {
        fields.push(("kinds", k));
    }
    fields.extend(vec![
        ("config", ga_config_to_json(&s.config)),
        (
            "rng_state",
            Json::Arr(s.rng_state.iter().map(|&w| u64_to_json(w)).collect()),
        ),
        (
            "population",
            Json::Arr(s.population.iter().map(|g| genome_to_json(g)).collect()),
        ),
        (
            "cache",
            Json::Arr(
                s.cache
                    .iter()
                    .map(|(g, v)| Json::Arr(vec![genome_to_json(g), f64_to_json(*v)]))
                    .collect(),
            ),
        ),
        ("evaluations", Json::Int(s.evaluations as i64)),
        ("cache_hits", Json::Int(s.cache_hits as i64)),
        (
            "history",
            Json::Arr(
                s.history
                    .iter()
                    .map(|gen| {
                        Json::obj(vec![
                            ("index", Json::Int(gen.index as i64)),
                            ("best_fitness", f64_to_json(gen.best_fitness)),
                            ("best_genome", genome_to_json(&gen.best_genome)),
                            ("mean_fitness", f64_to_json(gen.mean_fitness)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("best_genome", genome_to_json(&s.best_genome)),
        ("best_fitness", f64_to_json(s.best_fitness)),
        ("stagnant", Json::Int(s.stagnant as i64)),
        ("next_gen", Json::Int(s.next_gen as i64)),
        ("done", Json::Bool(s.done)),
    ]);
    Json::obj(fields)
}

/// Deserializes a snapshot. Structural validation only — semantic
/// validation (population size, genome ranges) happens in
/// `GaState::restore`.
///
/// # Errors
/// Missing or mistyped fields.
pub fn snapshot_from_json(v: &Json) -> Result<GaSnapshot, String> {
    fn field<'a>(v: &'a Json, key: &str) -> Result<&'a Json, String> {
        v.get(key)
            .ok_or_else(|| format!("checkpoint missing '{key}'"))
    }
    let bounds = field(v, "bounds")?
        .as_arr()
        .ok_or("'bounds' must be an array")?
        .iter()
        .map(|pair| {
            let p = pair.as_arr()?;
            Some((p.first()?.as_i64()?, p.get(1)?.as_i64()?))
        })
        .collect::<Option<Vec<(i64, i64)>>>()
        .ok_or("'bounds' entries must be [lo, hi] integer pairs")?;
    let kinds = kinds_from_json(v.get("kinds"), bounds.len())?;
    let config: GaConfig = ga_config_from_json(field(v, "config")?)?;
    let rng_words = field(v, "rng_state")?
        .as_arr()
        .ok_or("'rng_state' must be an array")?
        .iter()
        .map(u64_from_json)
        .collect::<Option<Vec<u64>>>()
        .ok_or("'rng_state' words must be u64s")?;
    let rng_state: [u64; 4] = rng_words
        .try_into()
        .map_err(|_| "'rng_state' must have exactly 4 words".to_string())?;
    let population = field(v, "population")?
        .as_arr()
        .ok_or("'population' must be an array")?
        .iter()
        .map(genome_from_json)
        .collect::<Option<Vec<_>>>()
        .ok_or("'population' genomes must be integer arrays")?;
    let cache = field(v, "cache")?
        .as_arr()
        .ok_or("'cache' must be an array")?
        .iter()
        .map(|entry| {
            let pair = entry.as_arr()?;
            Some((
                genome_from_json(pair.first()?)?,
                f64_from_json(pair.get(1)?)?,
            ))
        })
        .collect::<Option<Vec<_>>>()
        .ok_or("'cache' entries must be [genome, fitness] pairs")?;
    let history = field(v, "history")?
        .as_arr()
        .ok_or("'history' must be an array")?
        .iter()
        .map(|gen| {
            Some(Generation {
                index: gen.get("index")?.as_usize()?,
                best_fitness: f64_from_json(gen.get("best_fitness")?)?,
                best_genome: genome_from_json(gen.get("best_genome")?)?,
                mean_fitness: f64_from_json(gen.get("mean_fitness")?)?,
            })
        })
        .collect::<Option<Vec<_>>>()
        .ok_or("'history' entries are malformed")?;
    Ok(GaSnapshot {
        bounds,
        kinds,
        config,
        rng_state,
        population,
        cache,
        evaluations: field(v, "evaluations")?
            .as_usize()
            .ok_or("'evaluations' must be an integer")?,
        cache_hits: field(v, "cache_hits")?
            .as_usize()
            .ok_or("'cache_hits' must be an integer")?,
        history,
        best_genome: genome_from_json(field(v, "best_genome")?)
            .ok_or("'best_genome' must be an integer array")?,
        best_fitness: f64_from_json(field(v, "best_fitness")?)
            .ok_or("'best_fitness' must be a number")?,
        stagnant: field(v, "stagnant")?
            .as_usize()
            .ok_or("'stagnant' must be an integer")?,
        next_gen: field(v, "next_gen")?
            .as_usize()
            .ok_or("'next_gen' must be an integer")?,
        done: field(v, "done")?
            .as_bool()
            .ok_or("'done' must be a boolean")?,
    })
}

fn core_to_json(c: &CoreSnapshot) -> Json {
    let mut fields = vec![("bounds", bounds_to_json(&c.bounds))];
    if let Some(k) = kinds_field(&c.kinds) {
        fields.push(("kinds", k));
    }
    fields.extend(vec![
        ("config", ga_config_to_json(&c.config)),
        ("memo", memo_to_json(&c.memo)),
        ("proposed", Json::Int(c.proposed as i64)),
        ("evaluations", Json::Int(c.evaluations as i64)),
        ("cache_hits", Json::Int(c.cache_hits as i64)),
        ("best", scored_opt_to_json(&c.best)),
        ("rounds", Json::Int(c.rounds as i64)),
        ("done", Json::Bool(c.done)),
    ]);
    Json::obj(fields)
}

fn core_from_json(v: &Json) -> Result<CoreSnapshot, String> {
    fn field<'a>(v: &'a Json, key: &str) -> Result<&'a Json, String> {
        v.get(key)
            .ok_or_else(|| format!("strategy checkpoint missing '{key}'"))
    }
    let bounds = bounds_from_json(field(v, "bounds")?)
        .ok_or("'bounds' entries must be [lo, hi] integer pairs")?;
    let kinds = kinds_from_json(v.get("kinds"), bounds.len())?;
    Ok(CoreSnapshot {
        bounds,
        kinds,
        config: ga_config_from_json(field(v, "config")?)?,
        memo: memo_from_json(field(v, "memo")?)
            .ok_or("'memo' entries must be [genome, fitness] pairs")?,
        proposed: field(v, "proposed")?
            .as_usize()
            .ok_or("'proposed' must be an integer")?,
        evaluations: field(v, "evaluations")?
            .as_usize()
            .ok_or("'evaluations' must be an integer")?,
        cache_hits: field(v, "cache_hits")?
            .as_usize()
            .ok_or("'cache_hits' must be an integer")?,
        best: scored_opt_from_json(field(v, "best")?)
            .ok_or("'best' must be null or a [genome, fitness] pair")?,
        rounds: field(v, "rounds")?
            .as_usize()
            .ok_or("'rounds' must be an integer")?,
        done: field(v, "done")?
            .as_bool()
            .ok_or("'done' must be a boolean")?,
    })
}

/// Serializes any strategy's checkpoint. GA snapshots keep the legacy
/// untagged shape; everything else carries a `"strategy"` tag.
#[must_use]
pub fn strategy_snapshot_to_json(s: &StrategySnapshot) -> Json {
    let tagged = |kind: &str, mut fields: Vec<(&str, Json)>| {
        let mut all = vec![("strategy", Json::Str(kind.into()))];
        all.append(&mut fields);
        Json::obj(all)
    };
    match s {
        StrategySnapshot::Ga(s) => snapshot_to_json(s),
        StrategySnapshot::Random(s) => tagged(
            "random",
            vec![
                ("core", core_to_json(&s.core)),
                ("rng_state", rng_to_json(&s.rng_state)),
            ],
        ),
        StrategySnapshot::HillClimb(s) => tagged(
            "hillclimb",
            vec![
                ("core", core_to_json(&s.core)),
                ("rng_state", rng_to_json(&s.rng_state)),
                ("current", scored_opt_to_json(&s.current)),
                ("stagnant", Json::Int(s.stagnant as i64)),
                ("restarts", Json::Int(s.restarts as i64)),
            ],
        ),
        StrategySnapshot::Anneal(s) => tagged(
            "anneal",
            vec![
                ("core", core_to_json(&s.core)),
                ("rng_state", rng_to_json(&s.rng_state)),
                ("current", scored_opt_to_json(&s.current)),
            ],
        ),
        StrategySnapshot::Grid(s) => tagged(
            "grid",
            vec![
                ("core", core_to_json(&s.core)),
                ("window", bounds_to_json(&s.window)),
                ("cursor", Json::Int(s.cursor as i64)),
                ("level", Json::Int(s.level as i64)),
            ],
        ),
        StrategySnapshot::Warmstart(s) => tagged(
            "warmstart",
            vec![
                (
                    "seeds",
                    Json::Arr(s.seeds.iter().map(|g| genome_to_json(g)).collect()),
                ),
                ("ga", snapshot_to_json(&s.ga)),
            ],
        ),
        StrategySnapshot::Race(s) => {
            let mut fields = vec![
                ("config", ga_config_to_json(&s.config)),
                ("bounds", bounds_to_json(&s.bounds)),
            ];
            if let Some(k) = kinds_field(&s.kinds) {
                fields.push(("kinds", k));
            }
            fields.extend(vec![
                ("memo", memo_to_json(&s.memo)),
                ("evaluations", Json::Int(s.evaluations as i64)),
                ("shared_hits", Json::Int(s.shared_hits as i64)),
                ("rounds", Json::Int(s.rounds as i64)),
                ("done", Json::Bool(s.done)),
                (
                    "members",
                    Json::Arr(
                        s.members
                            .iter()
                            .map(|m| {
                                Json::obj(vec![
                                    ("name", Json::Str(m.name.clone())),
                                    ("eliminated", Json::Bool(m.eliminated)),
                                    ("stale_rounds", Json::Int(m.stale_rounds as i64)),
                                    ("snapshot", strategy_snapshot_to_json(&m.snapshot)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]);
            tagged("race", fields)
        }
    }
}

/// Deserializes [`strategy_snapshot_to_json`]'s encoding. An object
/// without a `"strategy"` tag is a legacy GA checkpoint.
///
/// # Errors
/// Missing/mistyped fields or an unknown strategy tag.
pub fn strategy_snapshot_from_json(v: &Json) -> Result<StrategySnapshot, String> {
    fn field<'a>(v: &'a Json, key: &str) -> Result<&'a Json, String> {
        v.get(key)
            .ok_or_else(|| format!("strategy checkpoint missing '{key}'"))
    }
    let Some(kind) = v.get("strategy") else {
        return Ok(StrategySnapshot::Ga(snapshot_from_json(v)?));
    };
    let kind = kind.as_str().ok_or("'strategy' must be a string")?;
    match kind {
        "random" => Ok(StrategySnapshot::Random(RandomSnapshot {
            core: core_from_json(field(v, "core")?)?,
            rng_state: rng_from_json(field(v, "rng_state")?)
                .ok_or("'rng_state' must have exactly 4 u64 words")?,
        })),
        "hillclimb" => Ok(StrategySnapshot::HillClimb(HillSnapshot {
            core: core_from_json(field(v, "core")?)?,
            rng_state: rng_from_json(field(v, "rng_state")?)
                .ok_or("'rng_state' must have exactly 4 u64 words")?,
            current: scored_opt_from_json(field(v, "current")?)
                .ok_or("'current' must be null or a [genome, fitness] pair")?,
            stagnant: field(v, "stagnant")?
                .as_usize()
                .ok_or("'stagnant' must be an integer")?,
            restarts: field(v, "restarts")?
                .as_usize()
                .ok_or("'restarts' must be an integer")?,
        })),
        "anneal" => Ok(StrategySnapshot::Anneal(AnnealSnapshot {
            core: core_from_json(field(v, "core")?)?,
            rng_state: rng_from_json(field(v, "rng_state")?)
                .ok_or("'rng_state' must have exactly 4 u64 words")?,
            current: scored_opt_from_json(field(v, "current")?)
                .ok_or("'current' must be null or a [genome, fitness] pair")?,
        })),
        "grid" => Ok(StrategySnapshot::Grid(GridSnapshot {
            core: core_from_json(field(v, "core")?)?,
            window: bounds_from_json(field(v, "window")?)
                .ok_or("'window' entries must be [lo, hi] integer pairs")?,
            cursor: field(v, "cursor")?
                .as_usize()
                .ok_or("'cursor' must be an integer")?,
            level: field(v, "level")?
                .as_usize()
                .ok_or("'level' must be an integer")?,
        })),
        "warmstart" => Ok(StrategySnapshot::Warmstart(WarmstartSnapshot {
            seeds: field(v, "seeds")?
                .as_arr()
                .ok_or("'seeds' must be an array")?
                .iter()
                .map(genome_from_json)
                .collect::<Option<Vec<_>>>()
                .ok_or("'seeds' entries must be integer genomes")?,
            ga: snapshot_from_json(field(v, "ga")?)?,
        })),
        "race" => {
            let members = field(v, "members")?
                .as_arr()
                .ok_or("'members' must be an array")?
                .iter()
                .map(|m| {
                    Ok(MemberSnapshot {
                        name: field(m, "name")?
                            .as_str()
                            .ok_or("member 'name' must be a string")?
                            .to_string(),
                        eliminated: field(m, "eliminated")?
                            .as_bool()
                            .ok_or("member 'eliminated' must be a boolean")?,
                        stale_rounds: field(m, "stale_rounds")?
                            .as_usize()
                            .ok_or("member 'stale_rounds' must be an integer")?,
                        snapshot: strategy_snapshot_from_json(field(m, "snapshot")?)?,
                    })
                })
                .collect::<Result<Vec<_>, String>>()?;
            let bounds = bounds_from_json(field(v, "bounds")?)
                .ok_or("'bounds' entries must be [lo, hi] integer pairs")?;
            let kinds = kinds_from_json(v.get("kinds"), bounds.len())?;
            Ok(StrategySnapshot::Race(RaceSnapshot {
                config: ga_config_from_json(field(v, "config")?)?,
                bounds,
                kinds,
                memo: memo_from_json(field(v, "memo")?)
                    .ok_or("'memo' entries must be [genome, fitness] pairs")?,
                evaluations: field(v, "evaluations")?
                    .as_usize()
                    .ok_or("'evaluations' must be an integer")?,
                shared_hits: field(v, "shared_hits")?
                    .as_usize()
                    .ok_or("'shared_hits' must be an integer")?,
                rounds: field(v, "rounds")?
                    .as_usize()
                    .ok_or("'rounds' must be an integer")?,
                done: field(v, "done")?
                    .as_bool()
                    .ok_or("'done' must be a boolean")?,
                members,
            }))
        }
        other => Err(format!("unknown checkpoint strategy tag '{other}'")),
    }
}

/// Serializes a finished job's deliverable: the tuned genome and
/// fitness. The on-disk shape has always been genes-based, so results
/// written by pre-problems daemons load unchanged.
#[must_use]
pub fn result_to_json(genes: &[i64], fitness: f64, generations: usize) -> Json {
    Json::obj(vec![
        ("genes", genome_to_json(genes)),
        ("fitness", f64_to_json(fitness)),
        ("generations", Json::Int(generations as i64)),
    ])
}

/// Deserializes [`result_to_json`]'s encoding.
///
/// # Errors
/// Missing or mistyped fields.
pub fn result_from_json(v: &Json) -> Result<(Vec<i64>, f64, usize), String> {
    let genes = v
        .get("genes")
        .and_then(genome_from_json)
        .ok_or("result missing integer array 'genes'")?;
    let fitness = v
        .get("fitness")
        .and_then(f64_from_json)
        .ok_or("result missing number 'fitness'")?;
    let generations = v
        .get("generations")
        .and_then(Json::as_usize)
        .ok_or("result missing integer 'generations'")?;
    Ok((genes, fitness, generations))
}

fn drift_pos_to_json(p: &DriftPos) -> Json {
    Json::Arr(vec![
        Json::Int(i64::from(p.phase)),
        Json::Int(i64::from(p.num)),
        Json::Int(i64::from(p.den)),
    ])
}

fn drift_pos_from_json(v: &Json) -> Option<DriftPos> {
    let arr = v.as_arr()?;
    let nums: Vec<u32> = arr
        .iter()
        .map(|x| x.as_usize().and_then(|n| u32::try_from(n).ok()))
        .collect::<Option<_>>()?;
    let [phase, num, den] = nums[..] else {
        return None;
    };
    (den >= 1 && num < den).then_some(DriftPos { phase, num, den })
}

fn epoch_row_to_json(r: &EpochRow) -> Json {
    Json::obj(vec![
        ("epoch", u64_to_json(r.epoch)),
        ("pos", drift_pos_to_json(&r.pos)),
        ("probe", f64_to_json(r.probe)),
        ("retuned", Json::Bool(r.retuned)),
        ("fitness", f64_to_json(r.fitness)),
    ])
}

fn epoch_row_from_json(v: &Json) -> Option<EpochRow> {
    Some(EpochRow {
        epoch: v.get("epoch").and_then(u64_from_json)?,
        pos: v.get("pos").and_then(drift_pos_from_json)?,
        probe: v.get("probe").and_then(f64_from_json)?,
        retuned: v.get("retuned").and_then(Json::as_bool)?,
        fitness: v.get("fitness").and_then(f64_from_json)?,
    })
}

/// Serializes an online-mode epoch checkpoint ([`OnlineSnapshot`]).
#[must_use]
pub fn online_snapshot_to_json(s: &OnlineSnapshot) -> Json {
    let incumbent = match &s.incumbent {
        None => Json::Null,
        Some((genes, fitness)) => Json::obj(vec![
            ("genes", genome_to_json(genes)),
            ("fitness", f64_to_json(*fitness)),
        ]),
    };
    Json::obj(vec![
        ("epoch", u64_to_json(s.epoch)),
        ("incumbent", incumbent),
        (
            "detector",
            Json::obj(vec![
                ("baseline", f64_to_json(s.detector.baseline)),
                (
                    "recent",
                    Json::Arr(s.detector.recent.iter().map(|&x| f64_to_json(x)).collect()),
                ),
            ]),
        ),
        ("retunes", u64_to_json(s.retunes)),
        (
            "detect_latencies",
            Json::Arr(s.detect_latencies.iter().map(|&l| u64_to_json(l)).collect()),
        ),
        ("evals", u64_to_json(s.evals)),
        (
            "rows",
            Json::Arr(s.rows.iter().map(epoch_row_to_json).collect()),
        ),
    ])
}

/// Deserializes [`online_snapshot_to_json`]'s encoding.
///
/// # Errors
/// Missing or mistyped fields.
pub fn online_snapshot_from_json(v: &Json) -> Result<OnlineSnapshot, String> {
    let epoch = v
        .get("epoch")
        .and_then(u64_from_json)
        .ok_or("online snapshot missing integer 'epoch'")?;
    let incumbent = match v.get("incumbent") {
        None | Some(Json::Null) => None,
        Some(inc) => Some((
            inc.get("genes")
                .and_then(genome_from_json)
                .ok_or("online incumbent missing integer array 'genes'")?,
            inc.get("fitness")
                .and_then(f64_from_json)
                .ok_or("online incumbent missing number 'fitness'")?,
        )),
    };
    let det = v
        .get("detector")
        .ok_or("online snapshot missing object 'detector'")?;
    let detector = DetectorSnapshot {
        baseline: det
            .get("baseline")
            .and_then(f64_from_json)
            .ok_or("detector missing number 'baseline'")?,
        recent: det
            .get("recent")
            .and_then(Json::as_arr)
            .ok_or("detector missing array 'recent'")?
            .iter()
            .map(f64_from_json)
            .collect::<Option<_>>()
            .ok_or("detector 'recent' entries must be numbers")?,
    };
    let retunes = v
        .get("retunes")
        .and_then(u64_from_json)
        .ok_or("online snapshot missing integer 'retunes'")?;
    let detect_latencies = v
        .get("detect_latencies")
        .and_then(Json::as_arr)
        .ok_or("online snapshot missing array 'detect_latencies'")?
        .iter()
        .map(u64_from_json)
        .collect::<Option<_>>()
        .ok_or("'detect_latencies' entries must be integers")?;
    let evals = v
        .get("evals")
        .and_then(u64_from_json)
        .ok_or("online snapshot missing integer 'evals'")?;
    let rows = v
        .get("rows")
        .and_then(Json::as_arr)
        .ok_or("online snapshot missing array 'rows'")?
        .iter()
        .map(epoch_row_from_json)
        .collect::<Option<_>>()
        .ok_or("online snapshot 'rows' entries are malformed")?;
    Ok(OnlineSnapshot {
        epoch,
        incumbent,
        detector,
        retunes,
        detect_latencies,
        evals,
        rows,
    })
}

/// A daemon run directory: owns the `jobs/` tree and all atomic writes.
#[derive(Debug, Clone)]
pub struct RunDir {
    root: PathBuf,
}

impl RunDir {
    /// Opens (creating if needed) a run directory.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, String> {
        let root = root.into();
        fs::create_dir_all(root.join("jobs"))
            .map_err(|e| format!("cannot create run dir {}: {e}", root.display()))?;
        Ok(Self { root })
    }

    /// The directory root.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The directory for one job.
    #[must_use]
    pub fn job_dir(&self, id: u64) -> PathBuf {
        self.root.join("jobs").join(id.to_string())
    }

    /// Writes `text` to `<job dir>/<name>` atomically (temp + rename).
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn write_atomic(&self, id: u64, name: &str, text: &str) -> Result<(), String> {
        let dir = self.job_dir(id);
        fs::create_dir_all(&dir).map_err(|e| format!("mkdir {}: {e}", dir.display()))?;
        let tmp = dir.join(format!(".{name}.tmp"));
        let dst = dir.join(name);
        let mut f = fs::File::create(&tmp).map_err(|e| format!("create {}: {e}", tmp.display()))?;
        f.write_all(text.as_bytes())
            .and_then(|()| f.sync_all())
            .map_err(|e| format!("write {}: {e}", tmp.display()))?;
        drop(f);
        fs::rename(&tmp, &dst).map_err(|e| format!("rename to {}: {e}", dst.display()))
    }

    fn read(&self, id: u64, name: &str) -> Option<String> {
        fs::read_to_string(self.job_dir(id).join(name)).ok()
    }

    /// Persists a job's spec (written once, at submit or recovery).
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn save_spec(&self, id: u64, spec: &JobSpec) -> Result<(), String> {
        self.write_atomic(id, "spec.json", &spec.to_json().to_text())
    }

    /// Loads a job's spec.
    #[must_use]
    pub fn load_spec(&self, id: u64) -> Option<Result<JobSpec, String>> {
        self.read(id, "spec.json").map(|t| JobSpec::from_text(&t))
    }

    /// Persists the post-round checkpoint atomically.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn save_checkpoint(&self, id: u64, snapshot: &StrategySnapshot) -> Result<(), String> {
        self.write_atomic(
            id,
            "checkpoint.json",
            &strategy_snapshot_to_json(snapshot).to_text(),
        )
    }

    /// Loads the last checkpoint, if one was written.
    #[must_use]
    pub fn load_checkpoint(&self, id: u64) -> Option<Result<StrategySnapshot, String>> {
        self.read(id, "checkpoint.json")
            .map(|t| parse(&t).and_then(|v| strategy_snapshot_from_json(&v)))
    }

    /// Persists an online job's epoch-boundary snapshot atomically.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn save_online(&self, id: u64, snapshot: &OnlineSnapshot) -> Result<(), String> {
        self.write_atomic(
            id,
            "online.json",
            &online_snapshot_to_json(snapshot).to_text(),
        )
    }

    /// Loads the last online epoch snapshot, if one was written.
    #[must_use]
    pub fn load_online(&self, id: u64) -> Option<Result<OnlineSnapshot, String>> {
        self.read(id, "online.json")
            .map(|t| parse(&t).and_then(|v| online_snapshot_from_json(&v)))
    }

    /// Persists the final result.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn save_result(
        &self,
        id: u64,
        genes: &[i64],
        fitness: f64,
        generations: usize,
    ) -> Result<(), String> {
        self.write_atomic(
            id,
            "result.json",
            &result_to_json(genes, fitness, generations).to_text(),
        )
    }

    /// Loads a finished job's result.
    #[must_use]
    pub fn load_result(&self, id: u64) -> Option<Result<(Vec<i64>, f64, usize), String>> {
        self.read(id, "result.json")
            .map(|t| parse(&t).and_then(|v| result_from_json(&v)))
    }

    /// Drops a tombstone so recovery won't requeue this job.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn mark_canceled(&self, id: u64) -> Result<(), String> {
        self.write_atomic(id, "canceled", "")
    }

    /// Whether the job carries a cancellation tombstone.
    #[must_use]
    pub fn is_canceled(&self, id: u64) -> bool {
        self.job_dir(id).join("canceled").exists()
    }

    /// Every job id with a directory on disk, ascending.
    #[must_use]
    pub fn job_ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = fs::read_dir(self.root.join("jobs"))
            .map(|entries| {
                entries
                    .filter_map(|e| e.ok()?.file_name().to_str()?.parse().ok())
                    .collect()
            })
            .unwrap_or_default();
        ids.sort_unstable();
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ga::{GaState, Ranges};
    use jit::Scenario;
    use tuner::Goal;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("served-ckpt-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn stepped_snapshot() -> GaSnapshot {
        let mut state = GaState::new(
            Ranges::new(vec![(-50, 50); 5]),
            GaConfig {
                pop_size: 6,
                generations: 10,
                threads: 1,
                seed: 7,
                stagnation_limit: None,
                ..GaConfig::default()
            },
        );
        for _ in 0..3 {
            state.step(|g| g.iter().map(|&x| (x * x) as f64).sum());
        }
        state.snapshot()
    }

    #[test]
    fn snapshot_json_roundtrip_is_exact() {
        let snap = stepped_snapshot();
        let text = snapshot_to_json(&snap).to_text();
        let back = snapshot_from_json(&parse(&text).unwrap()).unwrap();
        assert_eq!(back, snap);
        // Deterministic bytes: same snapshot, same serialization.
        assert_eq!(snapshot_to_json(&back).to_text(), text);
    }

    #[test]
    fn fresh_snapshot_with_infinite_fitness_roundtrips() {
        let state = GaState::new(
            Ranges::new(vec![(0, 9); 3]),
            GaConfig {
                pop_size: 4,
                threads: 1,
                ..GaConfig::default()
            },
        );
        let snap = state.snapshot();
        assert!(snap.best_fitness.is_infinite());
        let text = snapshot_to_json(&snap).to_text();
        let back = snapshot_from_json(&parse(&text).unwrap()).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn nonfinite_floats_encode_explicitly() {
        for (x, tag) in [
            (f64::INFINITY, "inf"),
            (f64::NEG_INFINITY, "-inf"),
            (f64::NAN, "nan"),
        ] {
            let v = f64_to_json(x);
            assert_eq!(v.as_str(), Some(tag));
            let back = f64_from_json(&v).unwrap();
            assert_eq!(back.is_nan(), x.is_nan());
            if !x.is_nan() {
                assert_eq!(back, x);
            }
        }
        assert_eq!(f64_from_json(&Json::Num(2.5)), Some(2.5));
    }

    #[test]
    fn online_snapshot_roundtrips_exactly() {
        let snap = OnlineSnapshot {
            epoch: 5,
            incumbent: Some((vec![3, -1, 40, 7, 2, 9, 1, 0], 12.625)),
            detector: DetectorSnapshot {
                baseline: 12.625,
                recent: vec![12.625, 13.5, f64::INFINITY],
            },
            retunes: 2,
            detect_latencies: vec![1, 3],
            evals: 480,
            rows: vec![
                EpochRow {
                    epoch: 0,
                    pos: DriftPos {
                        phase: 0,
                        num: 0,
                        den: 1,
                    },
                    probe: 12.625,
                    retuned: false,
                    fitness: 12.625,
                },
                EpochRow {
                    epoch: 1,
                    pos: DriftPos {
                        phase: 1,
                        num: 2,
                        den: 3,
                    },
                    probe: 14.0,
                    retuned: true,
                    fitness: 12.0,
                },
            ],
        };
        let text = online_snapshot_to_json(&snap).to_text();
        let back = online_snapshot_from_json(&parse(&text).unwrap()).unwrap();
        assert_eq!(back, snap);

        let rd = RunDir::open(tmp_dir("online")).unwrap();
        rd.save_online(9, &snap).unwrap();
        assert_eq!(rd.load_online(9).unwrap().unwrap(), snap);
        assert!(rd.load_online(8).is_none());
        fs::remove_dir_all(rd.root()).unwrap();
    }

    #[test]
    fn fresh_online_snapshot_without_incumbent_roundtrips() {
        let snap = OnlineSnapshot {
            epoch: 0,
            incumbent: None,
            detector: DetectorSnapshot {
                baseline: f64::INFINITY,
                recent: vec![],
            },
            retunes: 0,
            detect_latencies: vec![],
            evals: 0,
            rows: vec![],
        };
        let text = online_snapshot_to_json(&snap).to_text();
        let back = online_snapshot_from_json(&parse(&text).unwrap()).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn run_dir_persists_and_recovers_state() {
        let dir = tmp_dir("roundtrip");
        let rd = RunDir::open(&dir).unwrap();
        let spec = JobSpec {
            name: "t".into(),
            scenario: Scenario::Opt,
            goal: Goal::Total,
            arch: "x86-p4".into(),
            problem: "inline".into(),
            suite: vec!["db".into()],
            ga: GaConfig {
                threads: 1,
                ..GaConfig::default()
            },
            strategy: "ga".into(),
            tenant: "default".into(),
            online: None,
            drift_pos: None,
        };
        rd.save_spec(3, &spec).unwrap();
        let snap = StrategySnapshot::Ga(stepped_snapshot());
        rd.save_checkpoint(3, &snap).unwrap();
        assert_eq!(rd.load_spec(3).unwrap().unwrap(), spec);
        assert_eq!(rd.load_checkpoint(3).unwrap().unwrap(), snap);
        assert_eq!(rd.job_ids(), vec![3]);
        assert!(!rd.is_canceled(3));
        rd.mark_canceled(3).unwrap();
        assert!(rd.is_canceled(3));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn result_roundtrips() {
        let dir = tmp_dir("result");
        let rd = RunDir::open(&dir).unwrap();
        let genes = inliner::InlineParams::jikes_default().to_genes();
        rd.save_result(9, &genes, 0.875, 42).unwrap();
        let (g, f, n) = rd.load_result(9).unwrap().unwrap();
        assert_eq!(g, genes);
        assert_eq!(f.to_bits(), 0.875f64.to_bits());
        assert_eq!(n, 42);
        assert!(rd.load_result(8).is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn result_accepts_non_inline_genome_lengths() {
        // Results are genome-shaped, not InlineParams-shaped: a dss job's
        // 8-gene winner persists and loads as-is.
        let dir = tmp_dir("result-dss");
        let rd = RunDir::open(&dir).unwrap();
        let genes: Vec<i64> = vec![0, 1, 2, 3, 4, 0, 1, 2];
        rd.save_result(4, &genes, 0.5, 7).unwrap();
        let (g, _, _) = rd.load_result(4).unwrap().unwrap();
        assert_eq!(g, genes);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn atomic_write_leaves_no_tmp_behind() {
        let dir = tmp_dir("atomic");
        let rd = RunDir::open(&dir).unwrap();
        rd.write_atomic(1, "x.json", "{}").unwrap();
        let names: Vec<String> = fs::read_dir(rd.job_dir(1))
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        assert_eq!(names, vec!["x.json"]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn every_strategy_snapshot_roundtrips_through_json() {
        for spec in [
            "ga",
            "random",
            "hillclimb",
            "anneal",
            "grid",
            "warmstart",
            "race",
            "race:anneal+grid",
            "race:warmstart+random",
        ] {
            let mut s = search::build(
                spec,
                Ranges::new(vec![(1, 40), (1, 20), (1, 300)]),
                GaConfig {
                    pop_size: 6,
                    generations: 9,
                    threads: 1,
                    seed: 31,
                    stagnation_limit: None,
                    ..GaConfig::default()
                },
            )
            .unwrap();
            for _ in 0..4 {
                if s.is_done() {
                    break;
                }
                let batch = s.ask();
                let scores: Vec<f64> = batch
                    .iter()
                    .map(|g| g.iter().map(|&x| x as f64).sum())
                    .collect();
                s.tell(&batch, &scores);
            }
            let snap = s.snapshot();
            let text = strategy_snapshot_to_json(&snap).to_text();
            let back = strategy_snapshot_from_json(&parse(&text).unwrap()).unwrap();
            assert_eq!(back, snap, "{spec} snapshot JSON round-trip drifted");
            // Deterministic bytes, and the restored strategy replays the
            // exact next batch.
            assert_eq!(strategy_snapshot_to_json(&back).to_text(), text);
            let mut resumed = search::restore(back).unwrap();
            assert_eq!(resumed.ask(), s.ask(), "{spec} resumed a different batch");
        }
    }

    #[test]
    fn warmstart_checkpoint_carries_its_seeds() {
        let ranges = Ranges::new(vec![(1, 40), (1, 20), (1, 300)]);
        let cfg = GaConfig {
            pop_size: 6,
            generations: 9,
            threads: 1,
            seed: 31,
            stagnation_limit: None,
            ..GaConfig::default()
        };
        let mut s = search::build("warmstart", ranges, cfg).unwrap();
        assert_eq!(s.seed_population(&[vec![3, 7, 150], vec![40, 20, 300]]), 2);
        let batch = s.ask();
        let scores: Vec<f64> = batch
            .iter()
            .map(|g| g.iter().map(|&x| x as f64).sum())
            .collect();
        s.tell(&batch, &scores);
        let snap = s.snapshot();
        let text = strategy_snapshot_to_json(&snap).to_text();
        assert!(
            text.contains("\"strategy\":\"warmstart\"")
                || text.contains("\"strategy\": \"warmstart\"")
        );
        let back = strategy_snapshot_from_json(&parse(&text).unwrap()).unwrap();
        assert_eq!(back, snap);
        match &back {
            StrategySnapshot::Warmstart(w) => {
                assert_eq!(w.seeds, vec![vec![3, 7, 150], vec![40, 20, 300]]);
            }
            other => panic!("decoded as {}", other.kind()),
        }
        // The restored run continues bit-identically from the seeded state.
        let mut resumed = search::restore(back).unwrap();
        assert_eq!(resumed.ask(), s.ask());
    }

    #[test]
    fn untagged_checkpoint_loads_as_legacy_ga() {
        let snap = stepped_snapshot();
        let legacy_text = snapshot_to_json(&snap).to_text();
        assert!(
            !legacy_text.contains("\"strategy\""),
            "GA checkpoints must keep the pre-seam shape"
        );
        match strategy_snapshot_from_json(&parse(&legacy_text).unwrap()).unwrap() {
            StrategySnapshot::Ga(back) => assert_eq!(back, snap),
            other => panic!("legacy checkpoint decoded as {}", other.kind()),
        }
    }

    #[test]
    fn unknown_strategy_tag_is_an_error() {
        let v = parse(r#"{"strategy":"gradient"}"#).unwrap();
        let err = strategy_snapshot_from_json(&v).unwrap_err();
        assert!(err.contains("unknown checkpoint strategy tag"), "{err}");
    }

    #[test]
    fn corrupt_checkpoint_is_an_error_not_a_panic() {
        let dir = tmp_dir("corrupt");
        let rd = RunDir::open(&dir).unwrap();
        rd.write_atomic(2, "checkpoint.json", "{\"bounds\":7}")
            .unwrap();
        assert!(rd.load_checkpoint(2).unwrap().is_err());
        rd.write_atomic(2, "checkpoint.json", "not json").unwrap();
        assert!(rd.load_checkpoint(2).unwrap().is_err());
        let _ = fs::remove_dir_all(&dir);
    }
}
