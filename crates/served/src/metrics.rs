//! Lightweight daemon observability: monotonic counters on atomics.
//!
//! Workers bump counters as they drive jobs; any number of protocol
//! threads snapshot them without taking a lock. Gauges that derive from
//! the job table (queued/running/done counts) are passed in at snapshot
//! time by the daemon, which owns that table.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// The daemon's counter set. All counters are monotonic; relaxed ordering
/// is fine because readers only want eventually-consistent totals.
#[derive(Debug)]
pub struct Metrics {
    started: Instant,
    /// Jobs accepted by `submit`.
    pub jobs_submitted: AtomicU64,
    /// Jobs recovered from a run directory at startup.
    pub jobs_recovered: AtomicU64,
    /// GA generations completed across all jobs.
    pub generations: AtomicU64,
    /// Distinct fitness evaluations (GA memo-table misses) across all jobs.
    pub evaluations: AtomicU64,
    /// Fitness evaluations answered from GA memo tables.
    pub cache_hits: AtomicU64,
    /// Checkpoint files written.
    pub checkpoints_written: AtomicU64,
    /// Protocol connections accepted.
    pub connections: AtomicU64,
    /// Malformed / oversized / unparseable frames answered with an error.
    pub protocol_errors: AtomicU64,
    /// Eval requests written to remote workers (including re-sends).
    pub remote_dispatched: AtomicU64,
    /// `eval_batch` frames written to remote workers (each carries one or
    /// more eval requests).
    pub remote_batches: AtomicU64,
    /// Eval responses received from remote workers.
    pub remote_completed: AtomicU64,
    /// Eval requests re-dispatched after a worker failure.
    pub remote_retries: AtomicU64,
    /// Eval response waits that hit the request timeout.
    pub remote_timeouts: AtomicU64,
    /// Workers evicted from the pool (stale heartbeat, repeated failures,
    /// or protocol violations).
    pub remote_evictions: AtomicU64,
    /// Evaluations that fell back to the local path because no live
    /// worker answered.
    pub remote_fallback_evals: AtomicU64,
    /// Submissions and connections turned away with a structured `busy`
    /// frame (full shard queue or connection cap).
    pub busy_rejects: AtomicU64,
    /// Submissions rejected because a tenant's eval-budget quota could
    /// not cover the job's estimate.
    pub quota_rejects: AtomicU64,
    /// `watch` consumers disconnected because their frame backlog
    /// exceeded the bound.
    pub slow_watch_disconnects: AtomicU64,
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

impl Metrics {
    /// Fresh counters; the generations/sec clock starts now.
    #[must_use]
    pub fn new() -> Self {
        Self {
            started: Instant::now(),
            jobs_submitted: AtomicU64::new(0),
            jobs_recovered: AtomicU64::new(0),
            generations: AtomicU64::new(0),
            evaluations: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            checkpoints_written: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            protocol_errors: AtomicU64::new(0),
            remote_dispatched: AtomicU64::new(0),
            remote_batches: AtomicU64::new(0),
            remote_completed: AtomicU64::new(0),
            remote_retries: AtomicU64::new(0),
            remote_timeouts: AtomicU64::new(0),
            remote_evictions: AtomicU64::new(0),
            remote_fallback_evals: AtomicU64::new(0),
            busy_rejects: AtomicU64::new(0),
            quota_rejects: AtomicU64::new(0),
            slow_watch_disconnects: AtomicU64::new(0),
        }
    }

    /// Adds `n` to a counter.
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Bumps a counter by one.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// A consistent-enough copy of every counter, plus the job-table
    /// gauges supplied by the caller.
    #[must_use]
    pub fn snapshot(&self, gauges: JobGauges) -> MetricsSnapshot {
        let uptime = self.started.elapsed().as_secs_f64();
        let generations = self.generations.load(Ordering::Relaxed);
        let evaluations = self.evaluations.load(Ordering::Relaxed);
        let cache_hits = self.cache_hits.load(Ordering::Relaxed);
        let lookups = evaluations + cache_hits;
        MetricsSnapshot {
            uptime_secs: uptime,
            jobs: gauges,
            jobs_submitted: self.jobs_submitted.load(Ordering::Relaxed),
            jobs_recovered: self.jobs_recovered.load(Ordering::Relaxed),
            generations,
            generations_per_sec: if uptime > 0.0 {
                generations as f64 / uptime
            } else {
                0.0
            },
            evaluations,
            cache_hits,
            cache_hit_rate: if lookups > 0 {
                cache_hits as f64 / lookups as f64
            } else {
                0.0
            },
            checkpoints_written: self.checkpoints_written.load(Ordering::Relaxed),
            connections: self.connections.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            remote_dispatched: self.remote_dispatched.load(Ordering::Relaxed),
            remote_batches: self.remote_batches.load(Ordering::Relaxed),
            remote_completed: self.remote_completed.load(Ordering::Relaxed),
            remote_retries: self.remote_retries.load(Ordering::Relaxed),
            remote_timeouts: self.remote_timeouts.load(Ordering::Relaxed),
            remote_evictions: self.remote_evictions.load(Ordering::Relaxed),
            remote_fallback_evals: self.remote_fallback_evals.load(Ordering::Relaxed),
            busy_rejects: self.busy_rejects.load(Ordering::Relaxed),
            quota_rejects: self.quota_rejects.load(Ordering::Relaxed),
            slow_watch_disconnects: self.slow_watch_disconnects.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time job counts by state, derived from the daemon's job table.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JobGauges {
    /// Jobs waiting in the queue.
    pub queued: u64,
    /// Jobs currently on a worker.
    pub running: u64,
    /// Jobs finished successfully.
    pub done: u64,
    /// Jobs that errored out.
    pub failed: u64,
    /// Jobs canceled by request.
    pub canceled: u64,
}

/// One coherent reading of the daemon's counters.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Seconds since the daemon started.
    pub uptime_secs: f64,
    /// Job counts by state.
    pub jobs: JobGauges,
    /// Jobs accepted by `submit` since startup.
    pub jobs_submitted: u64,
    /// Jobs recovered from the run directory at startup.
    pub jobs_recovered: u64,
    /// GA generations completed.
    pub generations: u64,
    /// Generations per second of uptime.
    pub generations_per_sec: f64,
    /// Distinct fitness evaluations.
    pub evaluations: u64,
    /// Memoized fitness lookups.
    pub cache_hits: u64,
    /// `cache_hits / (cache_hits + evaluations)`, 0 when nothing ran yet.
    pub cache_hit_rate: f64,
    /// Checkpoint files written.
    pub checkpoints_written: u64,
    /// Protocol connections accepted.
    pub connections: u64,
    /// Frames answered with a protocol error.
    pub protocol_errors: u64,
    /// Eval requests written to remote workers.
    pub remote_dispatched: u64,
    /// `eval_batch` frames written to remote workers.
    pub remote_batches: u64,
    /// Eval responses received from remote workers.
    pub remote_completed: u64,
    /// Eval requests re-dispatched after worker failures.
    pub remote_retries: u64,
    /// Eval response timeouts.
    pub remote_timeouts: u64,
    /// Worker evictions.
    pub remote_evictions: u64,
    /// Evaluations answered by the local fallback path.
    pub remote_fallback_evals: u64,
    /// Structured `busy` rejects (full shard queue or connection cap).
    pub busy_rejects: u64,
    /// Quota-exceeded submission rejects.
    pub quota_rejects: u64,
    /// Slow `watch` consumers force-disconnected.
    pub slow_watch_disconnects: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_rates_derive() {
        let m = Metrics::new();
        Metrics::add(&m.evaluations, 30);
        Metrics::add(&m.cache_hits, 10);
        Metrics::bump(&m.generations);
        Metrics::bump(&m.generations);
        let s = m.snapshot(JobGauges {
            queued: 1,
            running: 2,
            ..JobGauges::default()
        });
        assert_eq!(s.evaluations, 30);
        assert_eq!(s.cache_hits, 10);
        assert!((s.cache_hit_rate - 0.25).abs() < 1e-12);
        assert_eq!(s.generations, 2);
        assert_eq!(s.jobs.queued, 1);
        assert_eq!(s.jobs.running, 2);
        assert!(s.uptime_secs >= 0.0);
    }

    #[test]
    fn empty_metrics_have_zero_rates() {
        let s = Metrics::new().snapshot(JobGauges::default());
        assert_eq!(s.cache_hit_rate, 0.0);
        assert_eq!(s.evaluations, 0);
    }
}
