//! The transport seam: every socket the daemon, dispatcher, exporter,
//! and `evald` workers touch goes through the [`Transport`] trait, so
//! the whole cluster can run either on real TCP ([`TcpTransport`], the
//! default — byte-for-byte today's behavior) or on an in-process
//! simulated network with a virtual clock (`sim::SimTransport`, in
//! `crates/sim`).
//!
//! The seam deliberately bundles the **clock** with the network:
//! `sleep` and `now_micros` live on [`Transport`] because a simulated
//! network is only deterministic if every timeout, backoff, and poll
//! interval advances the same virtual clock that delays and reorders
//! messages. Production code paths never call `std::thread::sleep`
//! directly below this seam — they call `transport.sleep(..)`, which
//! for [`TcpTransport`] *is* `std::thread::sleep`.
//!
//! [`Transport::busy_begin`] / [`Transport::busy_end`] (no-ops on TCP)
//! bracket real CPU work such as a fitness measurement: the simulated
//! clock must not jump over a timeout deadline while a worker is
//! legitimately computing, only while every thread is blocked.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::Duration;

/// A bidirectional byte stream (one TCP connection or one simulated
/// link). Framing on top is the caller's business, exactly as with
/// `TcpStream`.
pub trait NetStream: Read + Write + Send {
    /// A second handle to the same stream (read half / write half).
    ///
    /// # Errors
    /// Propagates socket errors.
    fn try_clone(&self) -> io::Result<Box<dyn NetStream>>;

    /// Sets the read timeout (`None` = block forever). Reads that hit
    /// the deadline fail with `WouldBlock` or `TimedOut`.
    ///
    /// # Errors
    /// Propagates socket errors.
    fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()>;

    /// Disables Nagle's algorithm where that means something.
    ///
    /// # Errors
    /// Propagates socket errors.
    fn set_nodelay(&self, _on: bool) -> io::Result<()> {
        Ok(())
    }
}

/// A listening endpoint.
pub trait NetListener: Send + Sync {
    /// The bound `host:port` (useful after binding port 0).
    fn local_addr(&self) -> String;

    /// Waits up to `poll` for one inbound connection. `Ok(None)` means
    /// the poll interval elapsed quietly — callers loop, re-checking
    /// their stop flags. `Err` means the listener itself is gone.
    ///
    /// # Errors
    /// Propagates accept errors.
    fn accept(&self, poll: Duration) -> io::Result<Option<Box<dyn NetStream>>>;
}

/// The network + clock a node runs on.
pub trait Transport: Send + Sync + std::fmt::Debug {
    /// Connects to `addr` (a `host:port` string), bounded by `timeout`.
    ///
    /// # Errors
    /// Resolution or connection failure.
    fn connect(&self, addr: &str, timeout: Duration) -> io::Result<Box<dyn NetStream>>;

    /// Binds a listener on `addr` (port 0 = pick a free port).
    ///
    /// # Errors
    /// Propagates bind errors.
    fn bind(&self, addr: &str) -> io::Result<Box<dyn NetListener>>;

    /// Sleeps for `d` on this transport's clock.
    fn sleep(&self, d: Duration);

    /// The transport clock, in microseconds since an arbitrary origin.
    fn now_micros(&self) -> u64;

    /// Marks the calling thread as doing real CPU work (the simulated
    /// clock must not advance past deadlines meanwhile). No-op on TCP.
    fn busy_begin(&self) {}

    /// Ends a [`Transport::busy_begin`] bracket.
    fn busy_end(&self) {}
}

/// RAII bracket for [`Transport::busy_begin`] / [`Transport::busy_end`].
pub struct BusyGuard<'a>(&'a dyn Transport);

impl Drop for BusyGuard<'_> {
    fn drop(&mut self) {
        self.0.busy_end();
    }
}

/// Brackets a stretch of real computation (e.g. one fitness
/// measurement) so a simulated clock cannot time it out.
pub fn busy(transport: &dyn Transport) -> BusyGuard<'_> {
    transport.busy_begin();
    BusyGuard(transport)
}

/// The production transport: real sockets, the real clock.
#[derive(Debug, Default, Clone, Copy)]
pub struct TcpTransport;

impl TcpTransport {
    /// The process-wide shared instance.
    #[must_use]
    pub fn shared() -> Arc<dyn Transport> {
        static ONCE: std::sync::OnceLock<Arc<dyn Transport>> = std::sync::OnceLock::new();
        Arc::clone(ONCE.get_or_init(|| Arc::new(TcpTransport)))
    }
}

/// Resolves `host:port` to a socket address.
fn resolve(addr: &str) -> io::Result<SocketAddr> {
    addr.to_socket_addrs()?.next().ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("{addr} resolves to nothing"),
        )
    })
}

impl Transport for TcpTransport {
    fn connect(&self, addr: &str, timeout: Duration) -> io::Result<Box<dyn NetStream>> {
        let sock = resolve(addr)?;
        let stream = TcpStream::connect_timeout(&sock, timeout)?;
        Ok(Box::new(stream))
    }

    fn bind(&self, addr: &str) -> io::Result<Box<dyn NetListener>> {
        let listener = TcpListener::bind(addr)?;
        // Nonblocking accept + a real sleep per quiet poll keeps the
        // accept loops responsive to their stop flags.
        listener.set_nonblocking(true)?;
        Ok(Box::new(TcpNetListener { listener }))
    }

    fn sleep(&self, d: Duration) {
        std::thread::sleep(d);
    }

    fn now_micros(&self) -> u64 {
        use std::time::{SystemTime, UNIX_EPOCH};
        SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| u64::try_from(d.as_micros()).unwrap_or(u64::MAX))
            .unwrap_or(0)
    }
}

impl NetStream for TcpStream {
    fn try_clone(&self) -> io::Result<Box<dyn NetStream>> {
        Ok(Box::new(TcpStream::try_clone(self)?))
    }

    fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        TcpStream::set_read_timeout(self, timeout)
    }

    fn set_nodelay(&self, on: bool) -> io::Result<()> {
        TcpStream::set_nodelay(self, on)
    }
}

struct TcpNetListener {
    listener: TcpListener,
}

impl NetListener for TcpNetListener {
    fn local_addr(&self) -> String {
        self.listener
            .local_addr()
            .expect("bound listener has an address")
            .to_string()
    }

    fn accept(&self, poll: Duration) -> io::Result<Option<Box<dyn NetStream>>> {
        // Poll in short slices: a connect landing mid-window is picked
        // up within ~2 ms instead of waiting out the whole `poll`
        // (sleeping it in one piece once added up to 50 ms of accept
        // latency per dispatcher connection). Callers still get their
        // full `poll` of quiet time between `None` returns, so their
        // shutdown-flag checks keep the same pace.
        const SLICE: Duration = Duration::from_millis(2);
        let mut waited = Duration::ZERO;
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    // Some platforms hand accepted sockets the listener's
                    // nonblocking flag; connection handling wants blocking.
                    let _ = stream.set_nonblocking(false);
                    return Ok(Some(Box::new(stream)));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if waited >= poll {
                        return Ok(None);
                    }
                    let step = SLICE.min(poll - waited);
                    std::thread::sleep(step);
                    waited += step;
                }
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader, Write};

    #[test]
    fn tcp_transport_round_trips_bytes() {
        let t = TcpTransport;
        let listener = t.bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr();
        let client_thread = {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut s = TcpTransport.connect(&addr, Duration::from_secs(5)).unwrap();
                s.write_all(b"hello over the seam\n").unwrap();
                s.flush().unwrap();
            })
        };
        let stream = loop {
            if let Some(s) = listener.accept(Duration::from_millis(5)).unwrap() {
                break s;
            }
        };
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut line = String::new();
        BufReader::new(stream).read_line(&mut line).unwrap();
        assert_eq!(line, "hello over the seam\n");
        client_thread.join().unwrap();
    }

    #[test]
    fn connect_to_nothing_fails() {
        let t = TcpTransport;
        assert!(t
            .connect("127.0.0.1:1", Duration::from_millis(200))
            .is_err());
        assert!(t
            .connect("not an address", Duration::from_millis(200))
            .is_err());
    }

    #[test]
    fn clock_and_sleep_move_forward() {
        let t = TcpTransport;
        let a = t.now_micros();
        t.sleep(Duration::from_millis(2));
        let b = t.now_micros();
        assert!(b > a);
        // The busy bracket is a no-op on TCP but must be callable.
        let _g = busy(&t);
    }
}
