//! Prometheus-style text exposition over HTTP.
//!
//! A deliberately tiny HTTP/1.0 server: the only route is
//! `GET /metrics`, which renders the daemon's observability registry
//! (via [`obs::render_prometheus`]) plus a hand-written block of
//! `tuned_*` series derived from the daemon's own
//! [`MetricsSnapshot`]. Anything else is a 404. Requests are served
//! inline on the accept thread — scrapes are rare and the response is
//! a single buffered write, so there is nothing to parallelize. Like
//! every other listener in the workspace, the socket comes from the
//! [`Transport`] seam, so the exporter is scrapeable inside a simulated
//! cluster too.

use std::io::{BufRead, BufReader, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::daemon::Daemon;
use crate::metrics::MetricsSnapshot;
use crate::net::{NetListener, NetStream, TcpTransport, Transport};

/// How long a scrape connection may sit idle before it is dropped.
const READ_TIMEOUT: Duration = Duration::from_secs(5);

/// Poll interval of the accept loop.
const POLL: Duration = Duration::from_millis(50);

/// The `tuned_*` series derived from the daemon's counter snapshot, in
/// Prometheus text format. Kept separate from the obs registry: these
/// counters predate it and remain the source of truth for the
/// `metrics` protocol verb.
#[must_use]
pub fn render_daemon_metrics(s: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let mut gauge = |name: &str, help: &str, value: String| {
        out.push_str(&format!(
            "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {value}\n"
        ));
    };
    gauge(
        "tuned_uptime_seconds",
        "Seconds since the daemon started.",
        format!("{:.3}", s.uptime_secs),
    );
    let jobs = [
        ("queued", s.jobs.queued),
        ("running", s.jobs.running),
        ("done", s.jobs.done),
        ("failed", s.jobs.failed),
        ("canceled", s.jobs.canceled),
    ];
    out.push_str("# HELP tuned_jobs Jobs in the table by state.\n# TYPE tuned_jobs gauge\n");
    for (state, n) in jobs {
        out.push_str(&format!("tuned_jobs{{state=\"{state}\"}} {n}\n"));
    }
    let counters = [
        (
            "tuned_jobs_submitted_total",
            "Jobs accepted by submit.",
            s.jobs_submitted,
        ),
        (
            "tuned_jobs_recovered_total",
            "Jobs recovered at startup.",
            s.jobs_recovered,
        ),
        (
            "tuned_generations_total",
            "GA generations completed.",
            s.generations,
        ),
        (
            "tuned_evaluations_total",
            "Distinct fitness evaluations.",
            s.evaluations,
        ),
        (
            "tuned_cache_hits_total",
            "Memoized fitness lookups.",
            s.cache_hits,
        ),
        (
            "tuned_checkpoints_written_total",
            "Checkpoint files written.",
            s.checkpoints_written,
        ),
        (
            "tuned_connections_total",
            "Protocol connections accepted.",
            s.connections,
        ),
        (
            "tuned_protocol_errors_total",
            "Frames answered with an error.",
            s.protocol_errors,
        ),
        (
            "tuned_remote_dispatched_total",
            "Eval requests sent to workers.",
            s.remote_dispatched,
        ),
        (
            "tuned_remote_batches_total",
            "Batched eval frames sent to workers.",
            s.remote_batches,
        ),
        (
            "tuned_remote_completed_total",
            "Eval responses from workers.",
            s.remote_completed,
        ),
        (
            "tuned_remote_retries_total",
            "Evals re-dispatched after failures.",
            s.remote_retries,
        ),
        (
            "tuned_remote_timeouts_total",
            "Eval response timeouts.",
            s.remote_timeouts,
        ),
        (
            "tuned_remote_evictions_total",
            "Workers evicted from the pool.",
            s.remote_evictions,
        ),
        (
            "tuned_busy_rejects_total",
            "Structured busy rejects (queue or connection cap).",
            s.busy_rejects,
        ),
        (
            "tuned_quota_rejects_total",
            "Submissions rejected by tenant quota.",
            s.quota_rejects,
        ),
        (
            "tuned_slow_watch_disconnects_total",
            "Slow watch consumers disconnected.",
            s.slow_watch_disconnects,
        ),
        (
            "tuned_remote_fallback_evals_total",
            "Evals served by the local fallback.",
            s.remote_fallback_evals,
        ),
    ];
    for (name, help, value) in counters {
        out.push_str(&format!(
            "# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n"
        ));
    }
    out
}

/// The full scrape body: obs registry first, daemon counters after.
#[must_use]
pub fn render_scrape(daemon: &Daemon) -> String {
    let mut body = obs::render_prometheus(&daemon.obs().snapshot());
    body.push_str(&render_daemon_metrics(&daemon.metrics_snapshot()));
    body
}

/// The `/metrics` HTTP endpoint. Owns its listener; runs until the
/// stop flag (shared with the daemon's protocol server, typically) is
/// raised.
pub struct MetricsExporter {
    listener: Box<dyn NetListener>,
    daemon: Daemon,
    stop: Arc<AtomicBool>,
}

impl MetricsExporter {
    /// Binds to `addr` over real TCP (use port 0 for an OS-assigned
    /// port).
    ///
    /// # Errors
    /// Propagates bind errors.
    pub fn bind(addr: &str, daemon: Daemon) -> Result<Self, String> {
        Self::bind_on(&TcpTransport::shared(), addr, daemon)
    }

    /// Binds to `addr` over `transport`.
    ///
    /// # Errors
    /// Propagates bind errors.
    pub fn bind_on(
        transport: &Arc<dyn Transport>,
        addr: &str,
        daemon: Daemon,
    ) -> Result<Self, String> {
        let listener = transport
            .bind(addr)
            .map_err(|e| format!("cannot bind metrics {addr}: {e}"))?;
        Ok(Self {
            listener,
            daemon,
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound `host:port` (useful after binding port 0).
    #[must_use]
    pub fn local_addr(&self) -> String {
        self.listener.local_addr()
    }

    /// A flag that makes [`MetricsExporter::serve`] return when raised.
    #[must_use]
    pub fn stop_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.stop)
    }

    /// Accepts and answers scrapes until stopped.
    ///
    /// # Errors
    /// Propagates listener failures.
    pub fn serve(&self) -> Result<(), String> {
        while !self.stop.load(Ordering::SeqCst) {
            match self.listener.accept(POLL) {
                // Scrape handling is quick; keep it on this thread.
                Ok(Some(stream)) => serve_scrape(stream, &self.daemon),
                Ok(None) => {}
                Err(e) => return Err(format!("metrics accept failed: {e}")),
            }
        }
        Ok(())
    }
}

fn serve_scrape(stream: Box<dyn NetStream>, daemon: &Daemon) {
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    if reader.read_line(&mut request_line).is_err() {
        return;
    }
    // Drain the headers; we answer and close regardless of their content.
    loop {
        let mut header = String::new();
        match reader.read_line(&mut header) {
            Ok(0) => break,
            Ok(_) if header.trim().is_empty() => break,
            Ok(_) => {}
            Err(_) => return,
        }
    }
    let mut writer = std::io::BufWriter::new(write_half);
    let mut parts = request_line.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let response = if method == "GET" && path == "/metrics" {
        let body = render_scrape(daemon);
        format!(
            "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
            body.len(),
            body
        )
    } else {
        let body = "only GET /metrics lives here\n";
        format!(
            "HTTP/1.0 404 Not Found\r\nContent-Type: text/plain\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
            body.len(),
            body
        )
    };
    let _ = writer.write_all(response.as_bytes());
    let _ = writer.flush();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::RunDir;
    use crate::daemon::DaemonConfig;
    use crate::metrics::JobGauges;
    use std::io::Read;
    use std::net::TcpStream;

    fn http_get(addr: &str, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        write!(stream, "GET {path} HTTP/1.0\r\nHost: x\r\n\r\n").unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn daemon_metrics_render_all_series() {
        let s = MetricsSnapshot {
            uptime_secs: 1.5,
            jobs: JobGauges {
                queued: 2,
                ..JobGauges::default()
            },
            jobs_submitted: 3,
            jobs_recovered: 0,
            generations: 7,
            generations_per_sec: 4.2,
            evaluations: 40,
            cache_hits: 10,
            cache_hit_rate: 0.2,
            checkpoints_written: 7,
            connections: 1,
            protocol_errors: 0,
            remote_dispatched: 0,
            remote_batches: 0,
            remote_completed: 0,
            remote_retries: 0,
            remote_timeouts: 0,
            remote_evictions: 0,
            remote_fallback_evals: 0,
            busy_rejects: 2,
            quota_rejects: 1,
            slow_watch_disconnects: 0,
        };
        let text = render_daemon_metrics(&s);
        assert!(text.contains("tuned_uptime_seconds 1.500\n"));
        assert!(text.contains("tuned_jobs{state=\"queued\"} 2\n"));
        assert!(text.contains("tuned_generations_total 7\n"));
        assert!(text.contains("# TYPE tuned_evaluations_total counter\n"));
        assert!(text.contains("tuned_busy_rejects_total 2\n"));
        assert!(text.contains("tuned_quota_rejects_total 1\n"));
    }

    #[test]
    fn scrape_endpoint_serves_metrics_and_404s_the_rest() {
        let dir = std::env::temp_dir().join(format!("expo-test-{}", std::process::id()));
        let daemon = Daemon::start(DaemonConfig::default(), RunDir::open(&dir).unwrap()).unwrap();
        daemon.obs().counter("expo_test_counter").add(5);
        let exporter = MetricsExporter::bind("127.0.0.1:0", daemon.clone()).unwrap();
        let addr = exporter.local_addr();
        let stop = exporter.stop_flag();
        let handle = std::thread::spawn(move || exporter.serve().unwrap());

        let ok = http_get(&addr, "/metrics");
        assert!(ok.starts_with("HTTP/1.0 200 OK\r\n"), "{ok}");
        assert!(ok.contains("text/plain; version=0.0.4"), "{ok}");
        assert!(ok.contains("expo_test_counter 5\n"), "{ok}");
        assert!(ok.contains("tuned_jobs{state=\"queued\"} 0\n"), "{ok}");

        let missing = http_get(&addr, "/nope");
        assert!(missing.starts_with("HTTP/1.0 404"), "{missing}");

        stop.store(true, Ordering::SeqCst);
        handle.join().unwrap();
        daemon.shutdown();
        let _ = std::fs::remove_dir_all(dir);
    }
}
