//! `tuned` — the tuning daemon and its command-line client.
//!
//! ```text
//! tuned serve  [--addr HOST:PORT] [--dir DIR] [--workers N] [--queue N]
//!              [--eval-threads N] [--worker HOST:PORT]...
//!              [--shards N] [--tenant-quota TENANT=EVALS]...
//!              [--max-connections N] [--store-path DIR]
//!              [--metrics-listen HOST:PORT] [--obs-detail]
//! tuned submit [--addr HOST:PORT] --name NAME --scenario opt|adapt
//!              --goal run|tot|bal [--arch x86-p4|ppc-g4]
//!              [--problem inline|flags|dss] [--tenant NAME]
//!              [--strategy ga|random|hillclimb|anneal|grid|race|race:A+B[+C...]]
//!              [--bench NAME]... [--pop N] [--gens N] [--seed N]
//!              [--threads N] [--stagnation N]
//!              [--online [--epochs N] [--drift step|ramp|cyclic]
//!               [--period N] [--phases N] [--drift-seed N]
//!               [--window N] [--threshold-pct F]]
//! tuned status  [--addr HOST:PORT] --id N
//! tuned watch   [--addr HOST:PORT] --id N
//! tuned list    [--addr HOST:PORT]
//! tuned cancel  [--addr HOST:PORT] --id N
//! tuned metrics [--addr HOST:PORT]
//! tuned tenants [--addr HOST:PORT]
//! tuned obs     [--addr HOST:PORT]
//! tuned store   [--addr HOST:PORT] stats|compact
//! tuned shutdown [--addr HOST:PORT]
//! ```
//!
//! `serve` prints `tuned listening on <addr>` once ready and also writes
//! the address to `<dir>/addr`, so scripts that bind port 0 can discover
//! the port. With `--metrics-listen` it additionally serves a
//! Prometheus-style `GET /metrics` endpoint and writes its address to
//! `<dir>/metrics-addr`; `--obs-detail` turns on high-frequency cost-model
//! timing histograms. `--store-path` opens (creating if absent) the
//! persistent fitness store at DIR: every evaluation is remembered
//! across restarts, repeat genomes are served from disk, and new jobs
//! warm-start from the best genomes of related past runs. `obs` dumps
//! the daemon's full observability registry (counters, gauges, latency
//! histograms, recent spans) as JSON. `store stats` / `store compact`
//! inspect and fold the running daemon's store.

use std::process::ExitCode;
use std::sync::Arc;

use ga::GaConfig;
use served::daemon::{Daemon, DaemonConfig};
use served::job::{goal_by_name, scenario_by_name, JobSpec, OnlineSpec};
use served::json::Json;
use served::{Client, MetricsExporter, RunDir, Server};
use workloads::DriftKind;

const DEFAULT_ADDR: &str = "127.0.0.1:7421";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!(
            "usage: tuned <serve|submit|status|watch|list|cancel|metrics|tenants|obs|store|shutdown> [flags]"
        );
        return ExitCode::FAILURE;
    };
    let result = match cmd.as_str() {
        "serve" => serve(&args[1..]),
        "tenants" => with_client(&args[1..], |client| {
            for t in client.tenants()? {
                println!("{}", t.to_text());
            }
            Ok(())
        }),
        "submit" => submit(&args[1..]),
        "status" => with_id(&args[1..], |client, id| {
            client.status(id).map(|j| println!("{}", j.to_text()))
        }),
        "watch" => with_id(&args[1..], |client, id| {
            client
                .watch(id, |j| println!("{}", j.to_text()))
                .map(|_| ())
        }),
        "list" => with_client(&args[1..], |client| {
            for j in client.list()? {
                println!("{}", j.to_text());
            }
            Ok(())
        }),
        "cancel" => with_id(&args[1..], |client, id| {
            client
                .cancel(id)
                .map(|was| println!("canceled (was {was})"))
        }),
        "metrics" => with_client(&args[1..], |client| {
            client.metrics().map(|m| println!("{}", m.to_text()))
        }),
        "obs" => with_client(&args[1..], |client| {
            client.obs().map(|o| println!("{}", o.to_text()))
        }),
        "store" => store(&args[1..]),
        "shutdown" => with_client(&args[1..], |client| {
            client.shutdown().map(|()| println!("daemon stopped"))
        }),
        other => Err(format!("unknown command '{other}'")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("tuned: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Pulls `--key value` flags out of an argument list.
struct Flags<'a> {
    args: &'a [String],
}

impl<'a> Flags<'a> {
    fn get(&self, key: &str) -> Option<&'a str> {
        self.args
            .windows(2)
            .rev()
            .find(|w| w[0] == key)
            .map(|w| w[1].as_str())
    }

    fn get_all(&self, key: &str) -> Vec<&'a str> {
        self.args
            .windows(2)
            .filter(|w| w[0] == key)
            .map(|w| w[1].as_str())
            .collect()
    }

    fn parse<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, String> {
        self.get(key)
            .map(|v| v.parse().map_err(|_| format!("bad value for {key}: '{v}'")))
            .transpose()
    }

    /// Presence of a bare (valueless) flag like `--online`.
    fn has(&self, key: &str) -> bool {
        self.args.iter().any(|a| a == key)
    }
}

fn serve(args: &[String]) -> Result<(), String> {
    let flags = Flags { args };
    let addr = flags.get("--addr").unwrap_or(DEFAULT_ADDR);
    let dir = flags.get("--dir").unwrap_or("tuned-run");
    let base = DaemonConfig::default();
    // The store records its own counters (hits, appends, compactions);
    // open it against the daemon's registry so `tuned obs` sees them.
    let store = flags
        .get("--store-path")
        .map(|path| {
            stored::Store::open_with(
                path,
                stored::StoreOptions {
                    obs: Arc::clone(&base.obs),
                    ..stored::StoreOptions::default()
                },
            )
            .map(Arc::new)
            .map_err(|e| format!("cannot open store at {path}: {e}"))
        })
        .transpose()?;
    // `--tenant-quota infra=50000` caps tenant `infra` at 50000
    // evaluations of admitted budget; repeat the flag per tenant.
    let tenant_quotas = flags
        .get_all("--tenant-quota")
        .into_iter()
        .map(|kv| {
            let (tenant, quota) = kv
                .split_once('=')
                .ok_or_else(|| format!("bad --tenant-quota '{kv}' (want TENANT=EVALS)"))?;
            let quota: u64 = quota
                .parse()
                .map_err(|_| format!("bad --tenant-quota evals in '{kv}'"))?;
            Ok((tenant.to_string(), quota))
        })
        .collect::<Result<Vec<_>, String>>()?;
    let config = DaemonConfig {
        workers: flags.parse("--workers")?.unwrap_or(2),
        queue_capacity: flags.parse("--queue")?.unwrap_or(64),
        eval_threads: flags.parse("--eval-threads")?.unwrap_or(base.eval_threads),
        eval_workers: flags
            .get_all("--worker")
            .into_iter()
            .map(str::to_string)
            .collect(),
        shards: flags.parse("--shards")?.unwrap_or(base.shards),
        tenant_quotas,
        max_connections: flags
            .parse("--max-connections")?
            .unwrap_or(base.max_connections),
        store,
        ..base
    };
    if config.shards == 0 {
        return Err("--shards must be at least 1".into());
    }
    let run_dir = RunDir::open(dir)?;
    let daemon = Daemon::start(config, run_dir.clone())?;
    if args.iter().any(|a| a == "--obs-detail") {
        daemon.obs().set_detailed(true);
    }
    let server = Server::bind(addr, daemon.clone())?;
    let bound = server.local_addr();
    // Scripts bind port 0 and read the actual address from this file.
    std::fs::write(run_dir.root().join("addr"), bound.to_string())
        .map_err(|e| format!("cannot write addr file: {e}"))?;
    if let Some(metrics_addr) = flags.get("--metrics-listen") {
        let exporter = MetricsExporter::bind(metrics_addr, daemon)?;
        let metrics_bound = exporter.local_addr();
        std::fs::write(
            run_dir.root().join("metrics-addr"),
            metrics_bound.to_string(),
        )
        .map_err(|e| format!("cannot write metrics-addr file: {e}"))?;
        println!("metrics on http://{metrics_bound}/metrics");
        let _ = std::thread::Builder::new()
            .name("tuned-metrics".into())
            .spawn(move || {
                if let Err(e) = exporter.serve() {
                    eprintln!("tuned: metrics endpoint died: {e}");
                }
            });
    }
    println!("tuned listening on {bound}");
    server.serve()
}

fn connect(args: &[String]) -> Result<Client, String> {
    let flags = Flags { args };
    Client::connect(flags.get("--addr").unwrap_or(DEFAULT_ADDR))
}

fn with_client(
    args: &[String],
    f: impl FnOnce(&mut Client) -> Result<(), String>,
) -> Result<(), String> {
    let mut client = connect(args)?;
    f(&mut client)
}

fn with_id(
    args: &[String],
    f: impl FnOnce(&mut Client, u64) -> Result<(), String>,
) -> Result<(), String> {
    let flags = Flags { args };
    let id = flags.parse("--id")?.ok_or("missing --id")?;
    let mut client = connect(args)?;
    f(&mut client, id)
}

fn store(args: &[String]) -> Result<(), String> {
    let op = args
        .iter()
        .find(|a| a.as_str() == "stats" || a.as_str() == "compact")
        .cloned()
        .ok_or("store needs an operation: stats|compact")?;
    with_client(args, |client| {
        let out = match op.as_str() {
            "stats" => client.store_stats()?,
            _ => client.store_compact()?,
        };
        println!("{}", out.to_text());
        Ok(())
    })
}

fn submit(args: &[String]) -> Result<(), String> {
    let flags = Flags { args };
    let base = GaConfig::default();
    let spec = JobSpec {
        name: flags.get("--name").unwrap_or("job").to_string(),
        scenario: scenario_by_name(flags.get("--scenario").ok_or("missing --scenario")?)?,
        goal: goal_by_name(flags.get("--goal").ok_or("missing --goal")?)?,
        arch: flags.get("--arch").unwrap_or("x86-p4").to_string(),
        suite: flags
            .get_all("--bench")
            .into_iter()
            .map(str::to_string)
            .collect(),
        ga: GaConfig {
            pop_size: flags.parse("--pop")?.unwrap_or(base.pop_size),
            generations: flags.parse("--gens")?.unwrap_or(base.generations),
            seed: flags.parse("--seed")?.unwrap_or(base.seed),
            threads: flags.parse("--threads")?.unwrap_or(1),
            stagnation_limit: flags.parse("--stagnation")?,
            ..base
        },
        strategy: flags.get("--strategy").unwrap_or("ga").to_string(),
        tenant: flags.get("--tenant").unwrap_or("default").to_string(),
        problem: flags.get("--problem").unwrap_or("inline").to_string(),
        online: if flags.has("--online") {
            let kind_name = flags.get("--drift").unwrap_or("step");
            Some(OnlineSpec {
                epochs: flags.parse("--epochs")?.unwrap_or(12),
                kind: DriftKind::by_name(kind_name)
                    .ok_or_else(|| format!("unknown --drift kind '{kind_name}'"))?,
                period: flags.parse("--period")?.unwrap_or(3),
                phases: flags.parse("--phases")?.unwrap_or(3),
                drift_seed: flags.parse("--drift-seed")?.unwrap_or(0),
                window: flags.parse("--window")?.unwrap_or(3),
                threshold_pct: flags.parse("--threshold-pct")?.unwrap_or(5.0),
            })
        } else {
            None
        },
        drift_pos: None,
    };
    // Validate locally (names, GA shape) before going on the wire.
    let spec = JobSpec::from_json(&spec.to_json())?;
    let mut client = connect(args)?;
    let id = client.submit(&spec)?;
    println!(
        "{}",
        Json::obj(vec![("id", Json::Int(id as i64))]).to_text()
    );
    Ok(())
}
