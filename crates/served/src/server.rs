//! The protocol front end: accepts connections and speaks the
//! line-delimited JSON protocol against a [`Daemon`].
//!
//! One thread per connection; the accept loop polls a shutdown flag so
//! `shutdown` requests (and daemon-side stops) unwind promptly. Every
//! connection gets a read timeout, so a half-open peer can stall only its
//! own thread, and only until the timeout fires. All sockets and sleeps
//! go through the [`Transport`] seam, so the same server runs unchanged
//! on the simulated network.

use std::io::{BufReader, BufWriter};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, TrySendError};
use std::sync::Arc;
use std::time::Duration;

use shard::{Reject, RejectKind};

use crate::daemon::{Daemon, SubmitError};
use crate::job::JobSpec;
use crate::json::Json;
use crate::metrics::Metrics;
use crate::net::{NetListener, NetStream, TcpTransport, Transport};
use crate::proto::{
    err, err_busy, metrics_to_json, ok_with, parse_request, read_frame, record_to_json,
    registry_to_json, shard_to_json, tenant_to_json, worker_to_json, write_frame, Frame,
};

/// How long a connection may sit idle (mid-read) before it is dropped.
/// Generous enough for an interactive client, short enough that a
/// half-open socket cannot pin a thread forever.
const READ_TIMEOUT: Duration = Duration::from_secs(30);

/// Poll interval of the accept loop and of `watch`.
const POLL: Duration = Duration::from_millis(50);

/// How many un-sent `watch` frames may pile up before the consumer is
/// declared too slow and disconnected. Progress frames are small, so
/// this bounds per-watcher memory at a few hundred KB worst case.
const WATCH_BACKLOG: usize = 64;

/// The protocol server. Owns the listener; serves until a `shutdown`
/// request arrives or [`Server::stop_flag`] is raised.
pub struct Server {
    transport: Arc<dyn Transport>,
    listener: Box<dyn NetListener>,
    daemon: Daemon,
    stop: Arc<AtomicBool>,
    /// Connections currently being served; admission closes new ones
    /// with a structured `busy` frame past the daemon's cap.
    active: Arc<AtomicUsize>,
}

/// RAII count of one served connection.
struct ConnGuard(Arc<AtomicUsize>);

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

impl Server {
    /// Binds to `addr` over real TCP (use port 0 for an OS-assigned
    /// port).
    ///
    /// # Errors
    /// Propagates bind errors.
    pub fn bind(addr: &str, daemon: Daemon) -> Result<Self, String> {
        Self::bind_on(TcpTransport::shared(), addr, daemon)
    }

    /// Binds to `addr` over `transport`.
    ///
    /// # Errors
    /// Propagates bind errors.
    pub fn bind_on(
        transport: Arc<dyn Transport>,
        addr: &str,
        daemon: Daemon,
    ) -> Result<Self, String> {
        let listener = transport
            .bind(addr)
            .map_err(|e| format!("cannot bind {addr}: {e}"))?;
        Ok(Self {
            transport,
            listener,
            daemon,
            stop: Arc::new(AtomicBool::new(false)),
            active: Arc::new(AtomicUsize::new(0)),
        })
    }

    /// The bound `host:port` (useful after binding port 0).
    #[must_use]
    pub fn local_addr(&self) -> String {
        self.listener.local_addr()
    }

    /// A flag that makes [`Server::serve`] return when raised.
    #[must_use]
    pub fn stop_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.stop)
    }

    /// Accepts and serves connections until stopped. Returns once the
    /// stop flag is up; connection threads are detached and die with
    /// their sockets.
    ///
    /// # Errors
    /// Propagates listener failures.
    pub fn serve(&self) -> Result<(), String> {
        while !self.stop.load(Ordering::SeqCst) {
            match self.listener.accept(POLL) {
                Ok(Some(stream)) => {
                    // Admission control: past the cap, answer with one
                    // structured busy frame and close — a bounded, fast
                    // reject instead of an unbounded thread pile-up.
                    let cap = self.daemon.max_connections();
                    if self.active.load(Ordering::SeqCst) >= cap {
                        Metrics::bump(&self.daemon.metrics().busy_rejects);
                        let reject = Reject::new(
                            RejectKind::Connections,
                            format!("server is at its connection cap ({cap})"),
                        );
                        let mut writer = BufWriter::new(stream);
                        let _ = write_frame(&mut writer, &err_busy(&reject));
                        continue;
                    }
                    self.active.fetch_add(1, Ordering::SeqCst);
                    let guard = ConnGuard(Arc::clone(&self.active));
                    Metrics::bump(&self.daemon.metrics().connections);
                    let daemon = self.daemon.clone();
                    let stop = Arc::clone(&self.stop);
                    let transport = Arc::clone(&self.transport);
                    let _ =
                        std::thread::Builder::new()
                            .name("tuned-conn".into())
                            .spawn(move || {
                                let _guard = guard;
                                serve_connection(stream, &daemon, &stop, &transport);
                            });
                }
                Ok(None) => {}
                Err(e) => return Err(format!("accept failed: {e}")),
            }
        }
        Ok(())
    }
}

fn serve_connection(
    stream: Box<dyn NetStream>,
    daemon: &Daemon,
    stop: &AtomicBool,
    transport: &Arc<dyn Transport>,
) {
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    let mut writer = BufWriter::new(write_half);

    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let line = match read_frame(&mut reader) {
            Frame::Line(line) => line,
            Frame::Eof => return,
            Frame::Oversized => {
                Metrics::bump(&daemon.metrics().protocol_errors);
                let _ = write_frame(&mut writer, &err("frame exceeds 1 MiB; closing"));
                return;
            }
            Frame::Err(_) => return, // timeout or broken pipe: drop it
        };
        if line.trim().is_empty() {
            continue;
        }
        let response = match parse_request(&line) {
            Ok((cmd, body)) => dispatch(&cmd, &body, daemon, &mut writer, stop, transport),
            Err(e) => {
                Metrics::bump(&daemon.metrics().protocol_errors);
                Some(err(e))
            }
        };
        match response {
            Some(v) => {
                if write_frame(&mut writer, &v).is_err() {
                    return;
                }
            }
            None => return, // dispatch already streamed / wants the connection closed
        }
    }
}

/// Handles one request. Returns `Some(response)` for the normal
/// one-frame case, or `None` when the handler streamed its own frames
/// (or wants the connection torn down).
fn dispatch(
    cmd: &str,
    body: &Json,
    daemon: &Daemon,
    writer: &mut BufWriter<Box<dyn NetStream>>,
    stop: &AtomicBool,
    transport: &Arc<dyn Transport>,
) -> Option<Json> {
    match cmd {
        "ping" => Some(ok_with(vec![("pong", Json::Bool(true))])),
        "submit" => Some(match body.get("job") {
            None => err("submit needs a 'job' object"),
            Some(job) => match JobSpec::from_json(job) {
                Err(e) => err(e),
                Ok(spec) => match daemon.submit_admit(spec) {
                    Ok(id) => ok_with(vec![("id", Json::Int(id as i64))]),
                    Err(SubmitError::Rejected(reject)) => err_busy(&reject),
                    Err(SubmitError::Internal(e)) => err(e),
                },
            },
        }),
        "status" => Some(match job_id(body) {
            Err(e) => err(e),
            Ok(id) => daemon.status(id).map_or_else(
                || err(format!("no job {id}")),
                |r| ok_with(vec![("job", record_to_json(&r))]),
            ),
        }),
        "list" => Some(ok_with(vec![(
            "jobs",
            Json::Arr(daemon.list().iter().map(record_to_json).collect()),
        )])),
        "cancel" => Some(match job_id(body).and_then(|id| daemon.cancel(id)) {
            Ok(was) => ok_with(vec![("was", Json::Str(was.name().into()))]),
            Err(e) => err(e),
        }),
        "metrics" => {
            // Per-worker, per-shard, and per-tenant rows ride inside the
            // metrics object so every consumer of `client.metrics()`
            // sees them.
            let mut m = metrics_to_json(&daemon.metrics_snapshot());
            if let Json::Obj(pairs) = &mut m {
                pairs.push((
                    "workers".into(),
                    Json::Arr(
                        daemon
                            .pool()
                            .snapshots()
                            .iter()
                            .map(worker_to_json)
                            .collect(),
                    ),
                ));
                pairs.push((
                    "shards".into(),
                    Json::Arr(daemon.shard_snapshots().iter().map(shard_to_json).collect()),
                ));
                pairs.push((
                    "tenants".into(),
                    Json::Arr(daemon.tenant_usage().iter().map(tenant_to_json).collect()),
                ));
            }
            Some(ok_with(vec![("metrics", m)]))
        }
        "tenants" => Some(ok_with(vec![(
            "tenants",
            Json::Arr(daemon.tenant_usage().iter().map(tenant_to_json).collect()),
        )])),
        "obs" => Some(ok_with(vec![(
            "obs",
            registry_to_json(&daemon.obs().snapshot()),
        )])),
        "register" => Some(match worker_addr(body) {
            Err(e) => err(e),
            Ok(addr) => {
                // One call feeds both the dispatch pool and the shard
                // directory (lease assignment, liveness).
                let new = daemon.register_worker(&addr);
                ok_with(vec![("new", Json::Bool(new))])
            }
        }),
        "heartbeat" => Some(match worker_addr(body) {
            Err(e) => err(e),
            Ok(addr) => {
                daemon.heartbeat_worker(&addr);
                ok_with(vec![])
            }
        }),
        "workers" => Some(ok_with(vec![(
            "workers",
            Json::Arr(
                daemon
                    .pool()
                    .snapshots()
                    .iter()
                    .map(worker_to_json)
                    .collect(),
            ),
        )])),
        "store" => Some(store_verb(body, daemon)),
        "watch" => watch(body, daemon, writer, stop, transport),
        "shutdown" => {
            // Acknowledge first — the daemon join below may take a while.
            let _ = write_frame(writer, &ok_with(vec![]));
            stop.store(true, Ordering::SeqCst);
            daemon.shutdown();
            None
        }
        other => {
            Metrics::bump(&daemon.metrics().protocol_errors);
            Some(err(format!("unknown cmd '{other}'")))
        }
    }
}

/// Streams one frame per job-record change until the job is terminal.
///
/// Frames go through a bounded queue to a dedicated writer thread, so a
/// consumer that stops reading can only back up [`WATCH_BACKLOG`] frames
/// of memory — past that it is disconnected (and counted in
/// `slow_watch_disconnects`) instead of pinning daemon memory while the
/// job keeps producing progress.
fn watch(
    body: &Json,
    daemon: &Daemon,
    writer: &mut BufWriter<Box<dyn NetStream>>,
    stop: &AtomicBool,
    transport: &Arc<dyn Transport>,
) -> Option<Json> {
    let id = match job_id(body) {
        Ok(id) => id,
        Err(e) => return Some(err(e)),
    };
    let Ok(write_half) = writer.get_ref().try_clone() else {
        return None;
    };
    let (tx, rx) = sync_channel::<Json>(WATCH_BACKLOG);
    let sink = std::thread::Builder::new()
        .name("tuned-watch-writer".into())
        .spawn(move || {
            let mut out = BufWriter::new(write_half);
            // Exits when the channel disconnects (watch loop done or the
            // consumer was declared slow) or the socket breaks.
            while let Ok(frame) = rx.recv() {
                if write_frame(&mut out, &frame).is_err() {
                    return;
                }
            }
        });
    let Ok(sink) = sink else {
        return None;
    };

    let mut last: Option<(String, usize)> = None;
    let mut outcome = None;
    loop {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Some(r) = daemon.status(id) else {
            outcome = Some(err(format!("no job {id}")));
            break;
        };
        let key = (r.state.name().to_string(), r.generation);
        if last.as_ref() != Some(&key) {
            last = Some(key);
            let mut fields = vec![("job", record_to_json(&r))];
            // During a distributed run, surface the remote dispatch
            // counters alongside each progress frame.
            if !daemon.pool().is_empty() {
                let m = daemon.metrics();
                let load =
                    |c: &std::sync::atomic::AtomicU64| Json::Int(c.load(Ordering::Relaxed) as i64);
                fields.push((
                    "remote",
                    Json::obj(vec![
                        ("dispatched", load(&m.remote_dispatched)),
                        ("batches", load(&m.remote_batches)),
                        ("completed", load(&m.remote_completed)),
                        ("retries", load(&m.remote_retries)),
                        ("timeouts", load(&m.remote_timeouts)),
                        ("evictions", load(&m.remote_evictions)),
                        ("fallback_evals", load(&m.remote_fallback_evals)),
                    ]),
                ));
            }
            match push_watch_frame(&tx, ok_with(fields), daemon.metrics()) {
                WatchPush::Sent => {}
                WatchPush::TooSlow => {
                    // The consumer is WATCH_BACKLOG frames behind a
                    // 20 Hz poll: cut it loose. The channel drops here;
                    // the writer thread drains what it can and exits.
                    drop(tx);
                    let _ = sink.join();
                    return None;
                }
                WatchPush::ConsumerGone => break,
            }
        }
        if r.state.is_terminal() {
            break;
        }
        transport.sleep(POLL);
    }
    // Graceful end: let every queued frame flush before the connection
    // returns to request/response mode or closes.
    drop(tx);
    let _ = sink.join();
    outcome
}

/// What became of one frame offered to a watch writer's bounded queue.
enum WatchPush {
    /// Queued for the writer thread.
    Sent,
    /// The queue is full — the consumer fell [`WATCH_BACKLOG`] frames
    /// behind and must be disconnected. Counted in
    /// `slow_watch_disconnects`.
    TooSlow,
    /// The writer thread already exited (broken socket).
    ConsumerGone,
}

fn push_watch_frame(
    tx: &std::sync::mpsc::SyncSender<Json>,
    frame: Json,
    metrics: &Metrics,
) -> WatchPush {
    match tx.try_send(frame) {
        Ok(()) => WatchPush::Sent,
        Err(TrySendError::Full(_)) => {
            Metrics::bump(&metrics.slow_watch_disconnects);
            WatchPush::TooSlow
        }
        Err(TrySendError::Disconnected(_)) => WatchPush::ConsumerGone,
    }
}

/// The `store` verbs: `stats`, `compact`, and genome-level `get`/`put`
/// so remote `evald` workers (and operators) share the daemon's
/// persistent fitness store. `get`/`put` address records by the job
/// spec — the server derives the cell fingerprint, so clients never
/// handle digests.
fn store_verb(body: &Json, daemon: &Daemon) -> Json {
    let Some(store) = daemon.store() else {
        return err("no store configured (start tuned with --store-path)");
    };
    let op = body.get("op").and_then(Json::as_str).unwrap_or("stats");
    match op {
        "stats" => {
            let s = store.stats();
            ok_with(vec![(
                "stats",
                Json::obj(vec![
                    ("records", Json::Int(s.records as i64)),
                    ("cells", Json::Int(s.cells as i64)),
                    ("wal_records", Json::Int(s.wal_records as i64)),
                    ("segments", Json::Int(s.segments as i64)),
                    ("appends", Json::Int(s.appends as i64)),
                    ("hits", Json::Int(s.hits as i64)),
                    ("misses", Json::Int(s.misses as i64)),
                    ("compactions", Json::Int(s.compactions as i64)),
                    (
                        "recovered_torn_bytes",
                        Json::Int(s.recovered_torn_bytes as i64),
                    ),
                ]),
            )])
        }
        "compact" => match store.compact() {
            Ok(r) => ok_with(vec![(
                "compaction",
                Json::obj(vec![
                    ("records", Json::Int(r.records as i64)),
                    ("folded_segments", Json::Int(r.folded_segments as i64)),
                ]),
            )]),
            Err(e) => err(e),
        },
        "get" | "put" => {
            let fp = match store_fingerprint(body) {
                Ok(fp) => fp,
                Err(e) => return err(e),
            };
            let Some(genes) = body
                .get("genes")
                .and_then(crate::checkpoint::genome_from_json)
            else {
                return err("store get/put needs an integer array 'genes'");
            };
            if op == "get" {
                return match store.get(fp.cell_digest, &genes) {
                    Some(fitness) => ok_with(vec![
                        ("found", Json::Bool(true)),
                        ("fitness", crate::checkpoint::f64_to_json(fitness)),
                    ]),
                    None => ok_with(vec![("found", Json::Bool(false))]),
                };
            }
            let Some(fitness) = body
                .get("fitness")
                .and_then(crate::checkpoint::f64_from_json)
            else {
                return err("store put needs a 'fitness' number");
            };
            match store.append(&stored::Record {
                fingerprint: fp,
                genome: genes,
                fitness,
            }) {
                Ok(fresh) => ok_with(vec![("fresh", Json::Bool(fresh))]),
                Err(e) => err(e),
            }
        }
        other => err(format!(
            "unknown store op '{other}' (known: stats, compact, get, put)"
        )),
    }
}

/// Derives the cell fingerprint of the job spec in `body.job` —
/// problem-tagged, so `evald` write-backs for a `flags` job can never
/// land in (or read from) an inlining cell.
fn store_fingerprint(body: &Json) -> Result<stored::Fingerprint, String> {
    let job = body
        .get("job")
        .ok_or("store get/put needs a 'job' object")?;
    let spec = JobSpec::from_json(job)?;
    problems::fingerprint(&spec.problem, &spec.task()?, &spec.training()?)
}

fn job_id(body: &Json) -> Result<u64, String> {
    body.get("id")
        .and_then(Json::as_u64)
        .ok_or_else(|| "request needs a numeric 'id'".to_string())
}

/// Extracts the `host:port` a worker announces itself under.
fn worker_addr(body: &Json) -> Result<String, String> {
    let addr = body
        .get("addr")
        .and_then(Json::as_str)
        .ok_or("request needs a string 'addr'")?;
    if addr.is_empty() || !addr.contains(':') {
        return Err(format!("'{addr}' is not a host:port address"));
    }
    Ok(addr.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_full_watch_queue_means_disconnect_and_a_counter_bump() {
        let metrics = Metrics::new();
        let (tx, rx) = sync_channel::<Json>(2);
        assert!(matches!(
            push_watch_frame(&tx, Json::Null, &metrics),
            WatchPush::Sent
        ));
        assert!(matches!(
            push_watch_frame(&tx, Json::Null, &metrics),
            WatchPush::Sent
        ));
        // Third frame with nobody reading: the backlog bound is hit.
        assert!(matches!(
            push_watch_frame(&tx, Json::Null, &metrics),
            WatchPush::TooSlow
        ));
        assert_eq!(
            metrics
                .slow_watch_disconnects
                .load(std::sync::atomic::Ordering::Relaxed),
            1
        );
        // A hung-up consumer is not "slow" — no counter bump.
        drop(rx);
        assert!(matches!(
            push_watch_frame(&tx, Json::Null, &metrics),
            WatchPush::ConsumerGone
        ));
        assert_eq!(
            metrics
                .slow_watch_disconnects
                .load(std::sync::atomic::Ordering::Relaxed),
            1
        );
    }
}
