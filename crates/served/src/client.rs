//! A small blocking client for the `tuned` protocol.

use std::io::{BufReader, BufWriter};
use std::sync::Arc;
use std::time::Duration;

use crate::job::JobSpec;
use crate::json::Json;
use crate::net::{NetStream, TcpTransport, Transport};
use crate::proto::{read_frame, write_frame, Frame};

/// How long a [`Client::connect`] attempt may take.
const CONNECT_TIMEOUT: Duration = Duration::from_secs(10);

/// A connected client. One request/response at a time.
pub struct Client {
    reader: BufReader<Box<dyn NetStream>>,
    writer: BufWriter<Box<dyn NetStream>>,
}

impl Client {
    /// Connects to a daemon over real TCP.
    ///
    /// # Errors
    /// Connection failures.
    pub fn connect(addr: &str) -> Result<Self, String> {
        Self::connect_on(&TcpTransport::shared(), addr)
    }

    /// Connects to a daemon over `transport` (tests pass a
    /// `sim::SimTransport`; production code uses [`Client::connect`]).
    ///
    /// # Errors
    /// Connection failures.
    pub fn connect_on(transport: &Arc<dyn Transport>, addr: &str) -> Result<Self, String> {
        let stream = transport
            .connect(addr, CONNECT_TIMEOUT)
            .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
        let _ = stream.set_nodelay(true);
        let write_half = stream
            .try_clone()
            .map_err(|e| format!("cannot clone stream: {e}"))?;
        Ok(Self {
            reader: BufReader::new(stream),
            writer: BufWriter::new(write_half),
        })
    }

    /// Sets the read timeout for responses (`None` = block forever).
    ///
    /// # Errors
    /// Propagates socket errors.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> Result<(), String> {
        self.reader
            .get_ref()
            .set_read_timeout(timeout)
            .map_err(|e| format!("cannot set timeout: {e}"))
    }

    /// Sends one request object and reads one response frame.
    ///
    /// # Errors
    /// I/O failures, a dropped connection, or an unparseable response.
    pub fn request(&mut self, v: &Json) -> Result<Json, String> {
        write_frame(&mut self.writer, v).map_err(|e| format!("send failed: {e}"))?;
        self.read_response()
    }

    /// Reads the next response frame (for streamed `watch` updates).
    ///
    /// # Errors
    /// I/O failures or an unparseable frame.
    pub fn read_response(&mut self) -> Result<Json, String> {
        match read_frame(&mut self.reader) {
            Frame::Line(line) => crate::json::parse(&line),
            Frame::Eof => Err("connection closed".into()),
            Frame::Oversized => Err("oversized response".into()),
            Frame::Err(e) => Err(format!("read failed: {e}")),
        }
    }

    /// Sends a request and unwraps the `{"ok":true}` envelope.
    ///
    /// # Errors
    /// Transport failures or an `ok:false` response (returns its
    /// `error` message).
    pub fn call(&mut self, v: &Json) -> Result<Json, String> {
        let resp = self.request(v)?;
        unwrap_ok(resp)
    }

    /// Submits a job; returns its id.
    ///
    /// # Errors
    /// Transport or daemon-side rejection.
    pub fn submit(&mut self, spec: &JobSpec) -> Result<u64, String> {
        let resp = self.call(&Json::obj(vec![
            ("cmd", Json::Str("submit".into())),
            ("job", spec.to_json()),
        ]))?;
        resp.get("id")
            .and_then(Json::as_u64)
            .ok_or_else(|| "submit response missing 'id'".into())
    }

    /// Fetches one job record.
    ///
    /// # Errors
    /// Transport failure or unknown job.
    pub fn status(&mut self, id: u64) -> Result<Json, String> {
        let resp = self.call(&Json::obj(vec![
            ("cmd", Json::Str("status".into())),
            ("id", Json::Int(id as i64)),
        ]))?;
        resp.get("job")
            .cloned()
            .ok_or_else(|| "status response missing 'job'".into())
    }

    /// Fetches every job record.
    ///
    /// # Errors
    /// Transport failure.
    pub fn list(&mut self) -> Result<Vec<Json>, String> {
        let resp = self.call(&Json::obj(vec![("cmd", Json::Str("list".into()))]))?;
        Ok(resp
            .get("jobs")
            .and_then(Json::as_arr)
            .unwrap_or_default()
            .to_vec())
    }

    /// Cancels a job; returns the state it was in.
    ///
    /// # Errors
    /// Transport failure or unknown job.
    pub fn cancel(&mut self, id: u64) -> Result<String, String> {
        let resp = self.call(&Json::obj(vec![
            ("cmd", Json::Str("cancel".into())),
            ("id", Json::Int(id as i64)),
        ]))?;
        Ok(resp
            .get("was")
            .and_then(Json::as_str)
            .unwrap_or("unknown")
            .to_string())
    }

    /// Fetches the metrics snapshot.
    ///
    /// # Errors
    /// Transport failure.
    pub fn metrics(&mut self) -> Result<Json, String> {
        let resp = self.call(&Json::obj(vec![("cmd", Json::Str("metrics".into()))]))?;
        resp.get("metrics")
            .cloned()
            .ok_or_else(|| "metrics response missing 'metrics'".into())
    }

    /// Fetches every tenant's quota accounting rows.
    ///
    /// # Errors
    /// Transport failure.
    pub fn tenants(&mut self) -> Result<Vec<Json>, String> {
        let resp = self.call(&Json::obj(vec![("cmd", Json::Str("tenants".into()))]))?;
        Ok(resp
            .get("tenants")
            .and_then(Json::as_arr)
            .unwrap_or_default()
            .to_vec())
    }

    /// Fetches the full observability registry (counters, gauges,
    /// histograms, recent spans) as JSON. Decode with
    /// [`crate::proto::registry_from_json`].
    ///
    /// # Errors
    /// Transport failure.
    pub fn obs(&mut self) -> Result<Json, String> {
        let resp = self.call(&Json::obj(vec![("cmd", Json::Str("obs".into()))]))?;
        resp.get("obs")
            .cloned()
            .ok_or_else(|| "obs response missing 'obs'".into())
    }

    /// Fetches the persistent fitness store's stats object.
    ///
    /// # Errors
    /// Transport failure or no store configured.
    pub fn store_stats(&mut self) -> Result<Json, String> {
        let resp = self.call(&Json::obj(vec![
            ("cmd", Json::Str("store".into())),
            ("op", Json::Str("stats".into())),
        ]))?;
        resp.get("stats")
            .cloned()
            .ok_or_else(|| "store response missing 'stats'".into())
    }

    /// Triggers a store compaction; returns the compaction report.
    ///
    /// # Errors
    /// Transport failure, no store configured, or compaction I/O error.
    pub fn store_compact(&mut self) -> Result<Json, String> {
        let resp = self.call(&Json::obj(vec![
            ("cmd", Json::Str("store".into())),
            ("op", Json::Str("compact".into())),
        ]))?;
        resp.get("compaction")
            .cloned()
            .ok_or_else(|| "store response missing 'compaction'".into())
    }

    /// Looks up one genome's stored fitness for the cell `spec` defines.
    ///
    /// # Errors
    /// Transport failure or no store configured.
    pub fn store_get(&mut self, spec: &JobSpec, genes: &[i64]) -> Result<Option<f64>, String> {
        let resp = self.call(&Json::obj(vec![
            ("cmd", Json::Str("store".into())),
            ("op", Json::Str("get".into())),
            ("job", spec.to_json()),
            (
                "genes",
                Json::Arr(genes.iter().map(|&g| Json::Int(g)).collect()),
            ),
        ]))?;
        if resp.get("found").and_then(Json::as_bool) != Some(true) {
            return Ok(None);
        }
        resp.get("fitness")
            .and_then(crate::checkpoint::f64_from_json)
            .map(Some)
            .ok_or_else(|| "store get response missing 'fitness'".into())
    }

    /// Records one genome's fitness for the cell `spec` defines;
    /// returns whether the record was fresh (false = already present).
    ///
    /// # Errors
    /// Transport failure, no store configured, or append I/O error.
    pub fn store_put(
        &mut self,
        spec: &JobSpec,
        genes: &[i64],
        fitness: f64,
    ) -> Result<bool, String> {
        let resp = self.call(&Json::obj(vec![
            ("cmd", Json::Str("store".into())),
            ("op", Json::Str("put".into())),
            ("job", spec.to_json()),
            (
                "genes",
                Json::Arr(genes.iter().map(|&g| Json::Int(g)).collect()),
            ),
            ("fitness", crate::checkpoint::f64_to_json(fitness)),
        ]))?;
        Ok(resp.get("fresh").and_then(Json::as_bool) == Some(true))
    }

    /// Asks the daemon to shut down gracefully.
    ///
    /// # Errors
    /// Transport failure.
    pub fn shutdown(&mut self) -> Result<(), String> {
        self.call(&Json::obj(vec![("cmd", Json::Str("shutdown".into()))]))?;
        Ok(())
    }

    /// Streams a job to completion, invoking `on_update` per update, and
    /// returns the terminal record.
    ///
    /// # Errors
    /// Transport failure or unknown job.
    pub fn watch(&mut self, id: u64, mut on_update: impl FnMut(&Json)) -> Result<Json, String> {
        write_frame(
            &mut self.writer,
            &Json::obj(vec![
                ("cmd", Json::Str("watch".into())),
                ("id", Json::Int(id as i64)),
            ]),
        )
        .map_err(|e| format!("send failed: {e}"))?;
        let mut last = Json::Null;
        loop {
            let frame = match self.read_response() {
                Ok(f) => f,
                // The server closes the connection after the terminal
                // frame; whatever we saw last is the answer.
                Err(_) if last != Json::Null => return Ok(last),
                Err(e) => return Err(e),
            };
            let job = unwrap_ok(frame)?
                .get("job")
                .cloned()
                .ok_or("watch frame missing 'job'")?;
            on_update(&job);
            let terminal = job
                .get("state")
                .and_then(Json::as_str)
                .is_some_and(|s| matches!(s, "done" | "failed" | "canceled"));
            last = job;
            if terminal {
                return Ok(last);
            }
        }
    }
}

fn unwrap_ok(resp: Json) -> Result<Json, String> {
    if resp.get("ok").and_then(Json::as_bool) == Some(true) {
        return Ok(resp);
    }
    let msg = resp
        .get("error")
        .and_then(Json::as_str)
        .unwrap_or("daemon returned ok:false")
        .to_string();
    // Structured busy frames keep their machine-readable reason in the
    // message so CLI users see "shard 0 queue full ... (busy: queue_full)".
    match resp.get("reason").and_then(Json::as_str) {
        Some(reason) if resp.get("busy").and_then(Json::as_bool) == Some(true) => {
            Err(format!("{msg} (busy: {reason})"))
        }
        _ => Err(msg),
    }
}
