//! The daemon core: a bounded job queue, a worker pool driving
//! [`tuner::Tuner`] generation-by-generation, per-generation checkpoints,
//! cancellation, graceful shutdown, and crash recovery.
//!
//! This is the paper's §3.1 GA search recast as a long-running service:
//! each job is one (scenario, goal, architecture) tuning cell, and a
//! worker advances it one generation at a time so the daemon can
//! checkpoint, cancel, or shut down between generations without losing
//! more than one generation of work.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use ga::{GaConfig, GenTiming, LocalEvaluator};
use online::OnlineState;
use problems::Problem;
use search::{Standing, Strategy};
use shard::{shard_of, Directory, DrrScheduler, QuotaAccountant, Reject, RejectKind, TenantUsage};
use workloads::DriftPos;

use crate::checkpoint::RunDir;
use crate::dispatch::{DispatchConfig, RemoteEvaluator, WorkerPool};
use crate::fitstore::StoreTier;
use crate::job::{JobSpec, JobState};
use crate::metrics::{JobGauges, Metrics, MetricsSnapshot};
use crate::net::{TcpTransport, Transport};

/// Daemon tunables.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Worker threads (concurrent jobs). The daemon always spawns at
    /// least one runner per shard (`max(workers, shards)`), so shards
    /// are never idle merely because the runner count is low.
    pub workers: usize,
    /// Maximum queued-but-not-running jobs **per shard**; admission
    /// rejects beyond this with a structured `busy` frame. (With one
    /// shard — the default — this is exactly the old global bound.)
    pub queue_capacity: usize,
    /// Independent job shards. Each job is routed by
    /// `shard::shard_of(id, shards)` and its GA state, checkpoints, and
    /// store writes are owned by that shard's runners for its lifetime.
    pub shards: usize,
    /// Per-tenant evaluation-budget quotas (tenant name → max evals
    /// committed across that tenant's jobs). Tenants not listed are
    /// unlimited.
    pub tenant_quotas: Vec<(String, u64)>,
    /// Deficit-round-robin quantum in eval-budget units (see
    /// `shard::drr`).
    pub drr_quantum: u64,
    /// Cap on concurrent protocol connections; the server answers a
    /// structured `busy` frame and disconnects beyond it.
    pub max_connections: usize,
    /// Total **local** evaluation threads shared by every concurrently
    /// running job. Without this cap, W concurrent jobs each defaulting
    /// to `available_parallelism()` GA threads oversubscribe the machine
    /// W-fold; with it, each job leases a slice of the budget for its
    /// lifetime (never less than one thread).
    pub eval_threads: usize,
    /// Statically configured `evald` worker addresses. Workers may also
    /// join at runtime via the `register` verb.
    pub eval_workers: Vec<String>,
    /// Remote-dispatch tunables.
    pub dispatch: DispatchConfig,
    /// The observability registry jobs and the dispatch layer record
    /// into. Defaults to the shared process registry (wall clock); tests
    /// inject one built on an `obs::ManualClock`.
    pub obs: Arc<obs::Registry>,
    /// The network + clock the dispatch tier runs on. Defaults to real
    /// TCP; the simulation harness injects a `sim::SimTransport`.
    pub transport: Arc<dyn Transport>,
    /// The cluster-wide persistent fitness store (`--store-path`).
    /// When set, every job reads evaluations through it, writes fresh
    /// scores behind it, and warm-starts seedable strategies from the
    /// best genomes of prior jobs on similar workloads. `None` (the
    /// default) disables persistence entirely.
    pub store: Option<Arc<stored::Store>>,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            queue_capacity: 64,
            shards: 1,
            tenant_quotas: Vec::new(),
            drr_quantum: shard::drr::DEFAULT_QUANTUM,
            max_connections: 256,
            eval_threads: std::thread::available_parallelism().map_or(1, usize::from),
            eval_workers: Vec::new(),
            dispatch: DispatchConfig::default(),
            obs: Arc::clone(obs::global()),
            transport: TcpTransport::shared(),
            store: None,
        }
    }
}

/// The shared cap on local evaluation threads (see
/// [`DaemonConfig::eval_threads`]). Leases are clamped, not queued: a job
/// that arrives with the budget exhausted still gets one thread, so the
/// worst case is `workers - 1` extra threads — not `workers × cores`.
struct ThreadBudget {
    total: usize,
    used: Mutex<usize>,
}

/// A job's slice of the thread budget; returned to the pool on drop.
struct ThreadLease<'a> {
    budget: &'a ThreadBudget,
    granted: usize,
}

impl ThreadBudget {
    fn new(total: usize) -> Self {
        Self {
            total: total.max(1),
            used: Mutex::new(0),
        }
    }

    fn lease(&self, want: usize) -> ThreadLease<'_> {
        let mut used = self.used.lock().expect("thread budget poisoned");
        let granted = want.max(1).min(self.total.saturating_sub(*used)).max(1);
        *used += granted;
        ThreadLease {
            budget: self,
            granted,
        }
    }
}

impl Drop for ThreadLease<'_> {
    fn drop(&mut self) {
        let mut used = self.budget.used.lock().expect("thread budget poisoned");
        *used = used.saturating_sub(self.granted);
    }
}

/// A job's externally visible record.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// The job id (assigned at submit, stable across restarts).
    pub id: u64,
    /// The spec as submitted.
    pub spec: JobSpec,
    /// Lifecycle state.
    pub state: JobState,
    /// Generations completed so far.
    pub generation: usize,
    /// Best fitness so far (`None` until a generation completes).
    pub best_fitness: Option<f64>,
    /// The tuned genome and its fitness, once `Done`. Decode it with the
    /// job's problem (`problems::build(&spec.problem, …).describe(…)`);
    /// for inlining jobs it is an `InlineParams` genome.
    pub result: Option<(Vec<i64>, f64)>,
    /// Failure message, if `Failed`.
    pub error: Option<String>,
    /// The latest generation's timing breakdown (`None` until a
    /// generation completes; not persisted across restarts).
    pub timing: Option<GenTiming>,
    /// Per-contender progress: one entry for a lone strategy, one per
    /// member for a racing portfolio (not persisted across restarts;
    /// repopulated once the resumed job completes a round).
    pub standings: Vec<Standing>,
    /// The shard that owns this job (`shard::shard_of(id, shards)`;
    /// stable across restarts because it depends only on the id).
    pub shard: usize,
    /// Online-mode progress, per committed epoch (`None` for offline
    /// jobs and until the first epoch commits; not persisted across
    /// restarts — repopulated when the resumed job commits an epoch).
    pub online: Option<OnlineProgress>,
}

/// One online job's live progress, surfaced on `status`/`watch` frames.
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineProgress {
    /// Committed epochs (epoch 0 is the initial tune).
    pub epoch: u64,
    /// Retunes committed so far.
    pub retunes: u64,
    /// The incumbent's probe regression over its baseline at the last
    /// committed epoch, percent — the daemon's live regret proxy.
    pub regret_pct: f64,
    /// Workload phase of the last committed epoch.
    pub phase: u32,
}

struct JobEntry {
    record: JobRecord,
    cancel: Arc<AtomicBool>,
    /// Micros (daemon clock) when the job was last enqueued, for the
    /// scheduling-delay histogram.
    enqueued_at: u64,
    /// The unspent part of the job's quota reservation; settled back to
    /// the tenant when the job leaves the system.
    reserved: u64,
}

struct JobTable {
    jobs: HashMap<u64, JobEntry>,
    /// One deficit-round-robin queue per shard.
    queues: Vec<DrrScheduler>,
    accountant: QuotaAccountant,
    next_id: u64,
}

/// A point-in-time view of one shard (for the `metrics` verb).
#[derive(Debug, Clone, Default)]
pub struct ShardSnapshot {
    pub shard: usize,
    pub queued: usize,
    pub running: usize,
    pub done: usize,
    pub failed: usize,
    pub canceled: usize,
}

/// A failed `submit_admit`: either a structured admission rejection
/// (map it to a `busy` frame) or an internal error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    Rejected(Reject),
    Internal(String),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Rejected(r) => write!(f, "{r}"),
            SubmitError::Internal(e) => write!(f, "{e}"),
        }
    }
}

struct Inner {
    config: DaemonConfig,
    run_dir: RunDir,
    jobs: Mutex<JobTable>,
    queue_cv: Condvar,
    metrics: Arc<Metrics>,
    shutdown: AtomicBool,
    budget: ThreadBudget,
    pool: Arc<WorkerPool>,
    directory: Arc<Directory>,
}

impl Inner {
    fn now_micros(&self) -> u64 {
        self.config.transport.now_micros()
    }

    fn set_depth_gauge(&self, shard: usize, depth: usize) {
        let s = shard.to_string();
        self.config
            .obs
            .gauge(&obs::labeled("shard_queue_depth", &[("shard", &s)]))
            .set(depth as i64);
    }

    /// Per-tenant budget gauges — the obs mirror of the accountant's
    /// books, refreshed wherever a tenant's used/reserved totals move
    /// (admit, per-round charge, settle).
    fn set_tenant_gauges(&self, table: &JobTable, tenant: &str) {
        let Some(u) = table.accountant.usage_of(tenant) else {
            return;
        };
        self.config
            .obs
            .gauge(&obs::labeled("tenant_evals_used", &[("tenant", tenant)]))
            .set(u.used.min(i64::MAX as u64) as i64);
        self.config
            .obs
            .gauge(&obs::labeled(
                "tenant_evals_reserved",
                &[("tenant", tenant)],
            ))
            .set(u.reserved.min(i64::MAX as u64) as i64);
    }
}

/// The tuning daemon. Cheap to clone (an `Arc` around the shared state);
/// the protocol server holds one clone per connection thread.
#[derive(Clone)]
pub struct Daemon {
    inner: Arc<Inner>,
    workers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Daemon {
    /// Starts the daemon: opens the run directory, recovers any
    /// incomplete jobs from a previous process, and spawns the worker
    /// pool.
    ///
    /// # Errors
    /// Propagates run-directory I/O errors.
    pub fn start(config: DaemonConfig, run_dir: RunDir) -> Result<Self, String> {
        assert!(config.workers >= 1, "need at least one worker");
        assert!(config.shards >= 1, "need at least one shard");
        let directory = Arc::new(Directory::new(
            config.shards,
            config.dispatch.stale_after.as_micros() as u64,
        ));
        let inner = Arc::new(Inner {
            run_dir,
            jobs: Mutex::new(JobTable {
                jobs: HashMap::new(),
                queues: (0..config.shards)
                    .map(|_| DrrScheduler::new(config.drr_quantum))
                    .collect(),
                accountant: QuotaAccountant::with_quotas(&config.tenant_quotas),
                next_id: 1,
            }),
            queue_cv: Condvar::new(),
            metrics: Arc::new(Metrics::new()),
            shutdown: AtomicBool::new(false),
            budget: ThreadBudget::new(config.eval_threads),
            pool: {
                let mut pool =
                    WorkerPool::with_workers(config.dispatch.clone(), &config.eval_workers);
                pool.set_obs(Arc::clone(&config.obs));
                pool.set_transport(Arc::clone(&config.transport));
                Arc::new(pool)
            },
            directory: Arc::clone(&directory),
            config,
        });
        // Statically configured workers seed the directory exactly like
        // a runtime registration would.
        let boot = inner.now_micros();
        for addr in &inner.config.eval_workers {
            directory.observe(addr, boot);
        }
        let daemon = Self {
            inner,
            workers: Arc::new(Mutex::new(Vec::new())),
        };
        daemon.recover()?;
        // At least one runner per shard: shards are the unit of job
        // concurrency, so a 16-shard daemon runs 16 jobs even when
        // `workers` is lower.
        let runners = daemon.inner.config.workers.max(daemon.inner.config.shards);
        let shards = daemon.inner.config.shards;
        let mut pool = daemon.workers.lock().expect("worker pool poisoned");
        for i in 0..runners {
            let inner = Arc::clone(&daemon.inner);
            let home = i % shards;
            pool.push(
                std::thread::Builder::new()
                    .name(format!("tuned-worker-{i}"))
                    .spawn(move || worker_loop(&inner, home))
                    .map_err(|e| format!("cannot spawn worker: {e}"))?,
            );
        }
        drop(pool);
        Ok(daemon)
    }

    /// Replays the run directory: finished and canceled jobs become
    /// terminal records; anything else is requeued (resuming from its
    /// checkpoint when one exists).
    fn recover(&self) -> Result<(), String> {
        let inner = &self.inner;
        let ids = inner.run_dir.job_ids();
        let now = inner.now_micros();
        let mut table = inner.jobs.lock().expect("job table poisoned");
        for id in ids {
            let Some(spec) = inner.run_dir.load_spec(id) else {
                continue; // a job dir with no spec: nothing to resume
            };
            let spec = spec.map_err(|e| format!("job {id}: corrupt spec: {e}"))?;
            // An online job's visible progress is its committed epoch
            // count (from the epoch-boundary snapshot), an offline
            // job's is its strategy checkpoint's round count.
            let generation = if spec.online.is_some() {
                inner
                    .run_dir
                    .load_online(id)
                    .and_then(Result::ok)
                    .map_or(0, |s| usize::try_from(s.epoch).unwrap_or(usize::MAX))
            } else {
                inner
                    .run_dir
                    .load_checkpoint(id)
                    .and_then(Result::ok)
                    .map_or(0, |s| s.rounds())
            };
            let (state, result, requeue) = if let Some(res) = inner.run_dir.load_result(id) {
                let (genes, fitness, _) =
                    res.map_err(|e| format!("job {id}: corrupt result: {e}"))?;
                (JobState::Done, Some((genes, fitness)), false)
            } else if inner.run_dir.is_canceled(id) {
                (JobState::Canceled, None, false)
            } else {
                (JobState::Queued, None, true)
            };
            let best_fitness = result.as_ref().map(|(_, f)| *f);
            // Re-derive the job's shard from its id: the same placement
            // the pre-restart daemon used (provided the shard count is
            // unchanged; a re-sharded daemon simply re-routes).
            let home = shard_of(id, inner.config.shards);
            let cost = spec.eval_estimate();
            let tenant = spec.tenant.clone();
            // Re-reserve the recovered job's budget. A quota rejection
            // is ignored: the job was admitted once, and dropping it on
            // restart would lose work — the invariant that matters here
            // is no lost jobs, so it runs unreserved.
            let reserved = if requeue {
                match table.accountant.admit(&tenant, cost) {
                    Ok(()) => cost,
                    Err(_) => 0,
                }
            } else {
                0
            };
            table.jobs.insert(
                id,
                JobEntry {
                    record: JobRecord {
                        id,
                        spec,
                        state,
                        generation,
                        best_fitness,
                        result,
                        error: None,
                        timing: None,
                        standings: Vec::new(),
                        shard: home,
                        online: None,
                    },
                    cancel: Arc::new(AtomicBool::new(false)),
                    enqueued_at: now,
                    reserved,
                },
            );
            if requeue {
                table.queues[home].enqueue(&tenant, id, cost);
                inner.set_depth_gauge(home, table.queues[home].len());
                inner.set_tenant_gauges(&table, &tenant);
                Metrics::bump(&inner.metrics.jobs_recovered);
            }
            table.next_id = table.next_id.max(id + 1);
        }
        drop(table);
        self.inner.queue_cv.notify_all();
        Ok(())
    }

    /// Accepts a job: persists the spec, enqueues it, and returns its id.
    ///
    /// # Errors
    /// Queue full, over quota, shutdown in progress, or run-directory
    /// I/O failure — all flattened to strings. Protocol callers use
    /// [`Daemon::submit_admit`] to keep the structured rejection.
    pub fn submit(&self, spec: JobSpec) -> Result<u64, String> {
        self.submit_admit(spec).map_err(|e| e.to_string())
    }

    /// The admission path: routes the job to its shard, checks the
    /// shard's queue depth and the tenant's quota, persists the spec,
    /// and enqueues under deficit-round-robin.
    ///
    /// # Errors
    /// [`SubmitError::Rejected`] carries the structured admission
    /// decision (`queue_full` or `quota`) for the wire's `busy` frame.
    pub fn submit_admit(&self, spec: JobSpec) -> Result<u64, SubmitError> {
        let inner = &self.inner;
        if inner.shutdown.load(Ordering::SeqCst) {
            return Err(SubmitError::Rejected(Reject::new(
                RejectKind::QueueFull,
                "daemon is shutting down",
            )));
        }
        let mut table = inner.jobs.lock().expect("job table poisoned");
        // The id is routed before it is consumed: placement must match
        // what recovery will later derive from the id alone.
        let home = shard_of(table.next_id, inner.config.shards);
        if table.queues[home].len() >= inner.config.queue_capacity {
            Metrics::bump(&inner.metrics.busy_rejects);
            return Err(SubmitError::Rejected(Reject::new(
                RejectKind::QueueFull,
                format!(
                    "shard {home} queue full ({} jobs waiting)",
                    inner.config.queue_capacity
                ),
            )));
        }
        let cost = spec.eval_estimate();
        let tenant = spec.tenant.clone();
        if let Err(reject) = table.accountant.admit(&tenant, cost) {
            Metrics::bump(&inner.metrics.quota_rejects);
            return Err(SubmitError::Rejected(reject));
        }
        let id = table.next_id;
        table.next_id += 1;
        if let Err(e) = inner.run_dir.save_spec(id, &spec) {
            // Undo the reservation: the job never entered the system.
            table.accountant.settle(&tenant, cost);
            return Err(SubmitError::Internal(e));
        }
        table.jobs.insert(
            id,
            JobEntry {
                record: JobRecord {
                    id,
                    spec,
                    state: JobState::Queued,
                    generation: 0,
                    best_fitness: None,
                    result: None,
                    error: None,
                    timing: None,
                    standings: Vec::new(),
                    shard: home,
                    online: None,
                },
                cancel: Arc::new(AtomicBool::new(false)),
                enqueued_at: inner.now_micros(),
                reserved: cost,
            },
        );
        table.queues[home].enqueue(&tenant, id, cost);
        inner.set_depth_gauge(home, table.queues[home].len());
        inner.set_tenant_gauges(&table, &tenant);
        drop(table);
        Metrics::bump(&inner.metrics.jobs_submitted);
        inner.queue_cv.notify_one();
        Ok(id)
    }

    /// One job's record.
    #[must_use]
    pub fn status(&self, id: u64) -> Option<JobRecord> {
        let table = self.inner.jobs.lock().expect("job table poisoned");
        table.jobs.get(&id).map(|e| e.record.clone())
    }

    /// Every job's record, ascending by id.
    #[must_use]
    pub fn list(&self) -> Vec<JobRecord> {
        let table = self.inner.jobs.lock().expect("job table poisoned");
        let mut records: Vec<JobRecord> = table.jobs.values().map(|e| e.record.clone()).collect();
        records.sort_by_key(|r| r.id);
        records
    }

    /// Cancels a job. Queued jobs die immediately; running jobs stop at
    /// the next generation boundary. Returns the state the job was in.
    ///
    /// # Errors
    /// Unknown id, or tombstone I/O failure.
    pub fn cancel(&self, id: u64) -> Result<JobState, String> {
        let inner = &self.inner;
        let mut table = inner.jobs.lock().expect("job table poisoned");
        let entry = table
            .jobs
            .get_mut(&id)
            .ok_or_else(|| format!("no job {id}"))?;
        let was = entry.record.state;
        match was {
            JobState::Queued => {
                entry.record.state = JobState::Canceled;
                entry.cancel.store(true, Ordering::SeqCst);
                let home = entry.record.shard;
                let tenant = entry.record.spec.tenant.clone();
                let unspent = std::mem::take(&mut entry.reserved);
                table.queues[home].remove(id);
                table.accountant.settle(&tenant, unspent);
                inner.set_depth_gauge(home, table.queues[home].len());
                inner.set_tenant_gauges(&table, &tenant);
                inner.run_dir.mark_canceled(id)?;
            }
            JobState::Running => {
                // The worker notices at the generation boundary and
                // writes the tombstone itself.
                entry.cancel.store(true, Ordering::SeqCst);
            }
            _ => {} // already terminal: cancel is a no-op
        }
        Ok(was)
    }

    /// A point-in-time metrics reading (counters + job-table gauges).
    #[must_use]
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut gauges = JobGauges::default();
        {
            let table = self.inner.jobs.lock().expect("job table poisoned");
            for e in table.jobs.values() {
                match e.record.state {
                    JobState::Queued => gauges.queued += 1,
                    JobState::Running => gauges.running += 1,
                    JobState::Done => gauges.done += 1,
                    JobState::Failed => gauges.failed += 1,
                    JobState::Canceled => gauges.canceled += 1,
                }
            }
        }
        self.inner.metrics.snapshot(gauges)
    }

    /// The daemon's counter set (for the protocol layer to bump
    /// connection/error counters).
    #[must_use]
    pub fn metrics(&self) -> &Metrics {
        self.inner.metrics.as_ref()
    }

    /// The observability registry (for the `obs` verb and the `/metrics`
    /// exposition endpoint).
    #[must_use]
    pub fn obs(&self) -> &Arc<obs::Registry> {
        &self.inner.config.obs
    }

    /// The remote-evaluator worker pool (for the `register` / `heartbeat`
    /// / `workers` verbs and metrics reporting). Sweeps stale heartbeats
    /// before returning so callers always see current health.
    #[must_use]
    pub fn pool(&self) -> &WorkerPool {
        self.inner.pool.sweep_stale(&self.inner.metrics);
        self.inner.pool.as_ref()
    }

    /// The persistent fitness store, when one is configured (for the
    /// `store` protocol verbs).
    #[must_use]
    pub fn store(&self) -> Option<&Arc<stored::Store>> {
        self.inner.config.store.as_ref()
    }

    /// How many shards this daemon runs.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.inner.config.shards
    }

    /// The server-side connection cap (structured `busy` reject above it).
    #[must_use]
    pub fn max_connections(&self) -> usize {
        self.inner.config.max_connections
    }

    /// The cluster-wide worker directory (liveness + shard leases).
    #[must_use]
    pub fn directory(&self) -> &Arc<Directory> {
        &self.inner.directory
    }

    /// Registers a worker with both the dispatch pool and the shard
    /// directory — one call per `register` frame keeps the two views of
    /// the fleet in lockstep. Returns `true` if the address was new.
    pub fn register_worker(&self, addr: &str) -> bool {
        let new = self.inner.pool.register(addr);
        self.inner.directory.observe(addr, self.inner.now_micros());
        new
    }

    /// Refreshes a worker's heartbeat in the pool and the directory
    /// (auto-registering an address neither has seen, e.g. after a
    /// daemon restart).
    pub fn heartbeat_worker(&self, addr: &str) {
        self.inner.pool.heartbeat(addr);
        self.inner.directory.observe(addr, self.inner.now_micros());
    }

    /// Per-shard queue/terminal-state gauges, one row per shard, for the
    /// `metrics` verb and the Prometheus endpoint.
    #[must_use]
    pub fn shard_snapshots(&self) -> Vec<ShardSnapshot> {
        let table = self.inner.jobs.lock().expect("job table poisoned");
        let mut rows: Vec<ShardSnapshot> = (0..self.inner.config.shards)
            .map(|shard| ShardSnapshot {
                shard,
                ..ShardSnapshot::default()
            })
            .collect();
        for e in table.jobs.values() {
            let row = &mut rows[e.record.shard];
            match e.record.state {
                JobState::Queued => row.queued += 1,
                JobState::Running => row.running += 1,
                JobState::Done => row.done += 1,
                JobState::Failed => row.failed += 1,
                JobState::Canceled => row.canceled += 1,
            }
        }
        rows
    }

    /// Every tenant's quota accounting (admissions, rejections, reserved
    /// and consumed evaluation budget), sorted by tenant name.
    #[must_use]
    pub fn tenant_usage(&self) -> Vec<TenantUsage> {
        let table = self.inner.jobs.lock().expect("job table poisoned");
        table.accountant.usage()
    }

    /// Whether shutdown has been requested.
    #[must_use]
    pub fn is_shutting_down(&self) -> bool {
        self.inner.shutdown.load(Ordering::SeqCst)
    }

    /// Graceful shutdown: stops accepting work, lets every running job
    /// checkpoint at its current generation boundary, and joins the
    /// workers. Idempotent.
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.queue_cv.notify_all();
        let mut pool = self.workers.lock().expect("worker pool poisoned");
        for handle in pool.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Claims the next queued job, blocking on the queue condvar. Runners
/// scan shards starting from their home shard (affinity) and rotate
/// through the rest (work conservation: no runner idles while any shard
/// has queued jobs). Returns `None` when the daemon is shutting down.
fn claim_next(inner: &Inner, home: usize) -> Option<(u64, JobSpec, Arc<AtomicBool>, usize)> {
    let shards = inner.config.shards;
    let mut table = inner.jobs.lock().expect("job table poisoned");
    loop {
        if inner.shutdown.load(Ordering::SeqCst) {
            return None;
        }
        let mut claimed = None;
        'scan: for k in 0..shards {
            let s = (home + k) % shards;
            while let Some((id, _tenant)) = table.queues[s].dequeue() {
                inner.set_depth_gauge(s, table.queues[s].len());
                let entry = table.jobs.get_mut(&id).expect("queued job has an entry");
                if entry.record.state != JobState::Queued {
                    continue; // canceled while queued
                }
                entry.record.state = JobState::Running;
                let delay = inner.now_micros().saturating_sub(entry.enqueued_at);
                claimed = Some((id, entry.record.spec.clone(), Arc::clone(&entry.cancel), s));
                let label = s.to_string();
                inner
                    .config
                    .obs
                    .histogram(&obs::labeled(
                        "shard_sched_delay_micros",
                        &[("shard", &label)],
                    ))
                    .record(delay);
                inner
                    .config
                    .obs
                    .histogram("sched_delay_micros")
                    .record(delay);
                break 'scan;
            }
        }
        if let Some(hit) = claimed {
            return Some(hit);
        }
        table = inner.queue_cv.wait(table).expect("job table poisoned");
    }
}

fn set_failed(inner: &Inner, id: u64, msg: String) {
    let mut table = inner.jobs.lock().expect("job table poisoned");
    if let Some(e) = table.jobs.get_mut(&id) {
        e.record.state = JobState::Failed;
        e.record.error = Some(msg);
    }
}

/// The worker loop: claim → build tuner → restore-or-start → step /
/// checkpoint until done, canceled, or shutdown.
fn worker_loop(inner: &Inner, home: usize) {
    while let Some((id, spec, cancel, shard_idx)) = claim_next(inner, home) {
        let outcome = run_job(inner, id, &spec, &cancel, shard_idx);
        // Whatever the outcome, the job has left its runner: release the
        // unspent part of its quota reservation (unless it merely parked
        // for shutdown, which keeps the job — and its budget — alive).
        let parked = inner.shutdown.load(Ordering::SeqCst)
            && matches!(
                inner
                    .jobs
                    .lock()
                    .expect("job table poisoned")
                    .jobs
                    .get(&id)
                    .map(|e| e.record.state),
                Some(JobState::Queued)
            );
        if !parked {
            let mut table = inner.jobs.lock().expect("job table poisoned");
            if let Some(e) = table.jobs.get_mut(&id) {
                let unspent = std::mem::take(&mut e.reserved);
                let tenant = e.record.spec.tenant.clone();
                table.accountant.settle(&tenant, unspent);
                inner.set_tenant_gauges(&table, &tenant);
            }
        }
        if let Err(msg) = outcome {
            set_failed(inner, id, msg);
        }
    }
}

fn run_job(
    inner: &Inner,
    id: u64,
    spec: &JobSpec,
    cancel: &AtomicBool,
    shard_idx: usize,
) -> Result<(), String> {
    if spec.online.is_some() {
        return run_online_job(inner, id, spec, cancel, shard_idx);
    }
    // Everything below this line is problem-generic: the strategy
    // searches the problem's gene space, evaluators call the problem's
    // fitness, and the store keys by the problem's tagged fingerprint.
    // One daemon therefore tunes heterogeneous problems over one pool.
    let problem = spec.build_problem()?;

    // Resume from the checkpoint when one exists and is consistent with
    // the spec; otherwise start fresh under the submitted strategy —
    // warm-started from the store's best prior genomes when both a store
    // and a seedable strategy are configured. Resumed jobs never re-seed:
    // the seeded population is already inside their checkpoint.
    let mut strategy: Box<dyn Strategy> = match inner.run_dir.load_checkpoint(id) {
        Some(Ok(snap)) => search::restore(snap).map_err(|e| format!("checkpoint rejected: {e}"))?,
        Some(Err(e)) => return Err(format!("corrupt checkpoint: {e}")),
        None => {
            let mut fresh =
                search::build(&spec.strategy, problem.space().clone(), spec.ga.clone())?;
            if let Some(store) = &inner.config.store {
                // warm_seeds only returns same-problem cells, so a dss
                // job never inherits an inlining genome.
                let seeds = store.warm_seeds(problem.fingerprint(), fresh.config().pop_size);
                let planted = fresh.seed_population(&seeds);
                if planted > 0 {
                    inner
                        .config
                        .obs
                        .counter("store_warm_seeds")
                        .add(planted as u64);
                }
            }
            fresh
        }
    };
    strategy.set_obs(Arc::clone(&inner.config.obs));

    // The store tier (pass-through when no store is configured): reads
    // answer from disk bit-exactly, fresh scores are appended. Hits and
    // misses produce identical bits, so the tier never changes results.
    let store_cell = inner
        .config
        .store
        .as_ref()
        .map(|s| (Arc::clone(s), problem.fingerprint().clone()));

    // Lease this job's slice of the shared local-eval thread budget
    // (thread count affects wall-clock only, never results, so clamping
    // is safe — and so is re-planning after a restore).
    let lease = inner.budget.lease(strategy.config().threads);
    let local = StoreTier::new(
        store_cell.clone(),
        LocalEvaluator::new(|genes: &[i64]| problem.fitness(genes), lease.granted),
    );

    // The remote tier: when the pool has workers, each round's memo
    // misses fan out over them; the problem's own fitness path is the
    // fallback for anything no live worker answers. The directory
    // filter scopes dispatch to the workers leasing this job's shard
    // (falling back to the whole fleet when the lease set is empty), so
    // thousands of jobs multiplex the shared pool without all stampeding
    // the same workers.
    let remote = StoreTier::new(store_cell, {
        let mut eval = RemoteEvaluator::new(&inner.pool, spec.to_json(), &inner.metrics, |genes| {
            problem.fitness(genes)
        });
        let directory = Arc::clone(&inner.directory);
        let transport = Arc::clone(&inner.config.transport);
        eval.set_worker_filter(Arc::new(move |addr: &str| {
            directory.allows(shard_idx, addr, transport.now_micros())
        }));
        eval
    });

    // On the pipelined remote path, the on-disk checkpoint intentionally
    // lags the strategy by one round: each round's write rides the next
    // round's in-flight evals. This flag tracks the lag so shutdown can
    // flush before parking the job back in the queue. (A lagging
    // checkpoint is still crash-safe either way — recovery replays the
    // missing round deterministically to the same bits.)
    let mut checkpoint_lags = false;
    loop {
        if cancel.load(Ordering::SeqCst) {
            inner.run_dir.mark_canceled(id)?;
            let mut table = inner.jobs.lock().expect("job table poisoned");
            if let Some(e) = table.jobs.get_mut(&id) {
                e.record.state = JobState::Canceled;
            }
            return Ok(());
        }
        if inner.shutdown.load(Ordering::SeqCst) {
            if checkpoint_lags {
                inner.run_dir.save_checkpoint(id, &strategy.snapshot())?;
                Metrics::bump(&inner.metrics.checkpoints_written);
            }
            // Leave the job Queued on disk and in the table so the next
            // process resumes it from the checkpoint just written.
            let mut table = inner.jobs.lock().expect("job table poisoned");
            if let Some(e) = table.jobs.get_mut(&id) {
                e.record.state = JobState::Queued;
            }
            return Ok(());
        }

        let evals_before = strategy.evaluations();
        let hits_before = strategy.cache_hits();
        // Checked every round so workers registering mid-job start
        // taking load at the next round boundary. The backend never
        // influences results (strategies are deterministic in their
        // seed), so flipping tiers mid-job is safe.
        let use_remote = !inner.pool.is_empty();
        let mut deferred_save_err: Option<String> = None;
        let done = if use_remote {
            // Pipelined: the batch fans out to the workers while this
            // thread writes the previous round's checkpoint — the daemon
            // never sits idle at a generation boundary, and the workers
            // never wait on local disk I/O.
            search::step_pipelined(strategy.as_mut(), &remote, |s| {
                match inner.run_dir.save_checkpoint(id, &s.snapshot()) {
                    Ok(()) => Metrics::bump(&inner.metrics.checkpoints_written),
                    Err(e) => deferred_save_err = Some(e),
                }
            })
        } else {
            // Local evaluation is real compute: hold the busy bracket so
            // a simulated clock cannot advance through it.
            let _busy = crate::net::busy(&*inner.config.transport);
            search::step_with(strategy.as_mut(), &local)
        };
        if let Some(e) = deferred_save_err {
            return Err(e);
        }
        Metrics::bump(&inner.metrics.generations);
        Metrics::add(
            &inner.metrics.evaluations,
            (strategy.evaluations() - evals_before) as u64,
        );
        Metrics::add(
            &inner.metrics.cache_hits,
            (strategy.cache_hits() - hits_before) as u64,
        );

        // Draw this round's fresh evaluations down from the tenant's
        // reservation. Cache hits stay free — they consume no worker
        // time — which is why `used` can finish under the admission
        // estimate and the leftover gets settled back at job end.
        let evals_delta = (strategy.evaluations() - evals_before) as u64;
        if evals_delta > 0 {
            {
                let mut table = inner.jobs.lock().expect("job table poisoned");
                table.accountant.charge(&spec.tenant, evals_delta);
                if let Some(e) = table.jobs.get_mut(&id) {
                    e.reserved = e.reserved.saturating_sub(evals_delta);
                }
                inner.set_tenant_gauges(&table, &spec.tenant);
            }
            let s = shard_idx.to_string();
            inner
                .config
                .obs
                .counter(&obs::labeled("shard_evals", &[("shard", &s)]))
                .add(evals_delta);
            if inner.config.store.is_some() {
                // Each fresh score is one write-behind append keyed by
                // this shard, so the same delta counts both.
                inner
                    .config
                    .obs
                    .counter(&obs::labeled("shard_store_writes", &[("shard", &s)]))
                    .add(evals_delta);
            }
        }

        if use_remote && !done {
            checkpoint_lags = true;
        } else {
            inner.run_dir.save_checkpoint(id, &strategy.snapshot())?;
            Metrics::bump(&inner.metrics.checkpoints_written);
            checkpoint_lags = false;
        }

        let best = strategy.best().map(|(_, f)| f);
        {
            let mut table = inner.jobs.lock().expect("job table poisoned");
            if let Some(e) = table.jobs.get_mut(&id) {
                e.record.generation = strategy.rounds();
                e.record.best_fitness = best;
                e.record.timing = strategy.last_timing();
                e.record.standings = strategy.standings();
            }
        }

        if done {
            let (genome, fitness) = strategy
                .best()
                .ok_or("strategy finished without evaluating anything")?;
            inner
                .run_dir
                .save_result(id, &genome, fitness, strategy.rounds())?;
            let mut table = inner.jobs.lock().expect("job table poisoned");
            if let Some(e) = table.jobs.get_mut(&id) {
                e.record.state = JobState::Done;
                e.record.result = Some((genome, fitness));
                e.record.best_fitness = Some(fitness);
            }
            return Ok(());
        }
    }
}

/// Drives one online job: the [`OnlineState`] policy from
/// `crates/online`, with the daemon's mechanics — problems built from
/// phase-pinned specs (so eval workers and store fingerprints see the
/// morphed workload), evaluation through the store tier and, when the
/// pool has workers, remote dispatch, and an epoch-boundary
/// `online.json` checkpoint. Online jobs checkpoint per *epoch*, not
/// per generation: an interrupted epoch replays deterministically from
/// the last boundary (every replay input — workload, incumbent, retune
/// seed — is a pure function of the restored state).
///
/// The policy is the same state machine `online::OnlineJob::run` drives
/// in-process, so a store-free daemon run is bit-identical to the
/// reference runner — the equivalence the sim's `--online-seeds` sweep
/// asserts under fault weather.
fn run_online_job(
    inner: &Inner,
    id: u64,
    spec: &JobSpec,
    cancel: &AtomicBool,
    shard_idx: usize,
) -> Result<(), String> {
    let online_spec = spec
        .online
        .as_ref()
        .expect("online job without an online spec");
    let mut st = match inner.run_dir.load_online(id) {
        Some(Ok(snap)) => OnlineState::restore(online_spec.config(), snap)
            .map_err(|e| format!("online checkpoint rejected: {e}"))?,
        Some(Err(e)) => return Err(format!("corrupt online checkpoint: {e}")),
        None => OnlineState::new(online_spec.config())?,
    };

    // Interruption leaves the last epoch-boundary snapshot as the
    // resume point: cancellation tombstones the job, shutdown parks it
    // back in the queue for the next process.
    let interrupt = |st: &OnlineState| -> Result<(), String> {
        if cancel.load(Ordering::SeqCst) {
            inner.run_dir.mark_canceled(id)?;
            let mut table = inner.jobs.lock().expect("job table poisoned");
            if let Some(e) = table.jobs.get_mut(&id) {
                e.record.state = JobState::Canceled;
            }
        } else {
            // The snapshot on disk is already current (written at the
            // last epoch commit); just hand the job back to the queue.
            let _ = st;
            let mut table = inner.jobs.lock().expect("job table poisoned");
            if let Some(e) = table.jobs.get_mut(&id) {
                e.record.state = JobState::Queued;
            }
        }
        Ok(())
    };

    let mut problems_by_pos: HashMap<DriftPos, Arc<dyn Problem>> = HashMap::new();
    loop {
        if cancel.load(Ordering::SeqCst) || inner.shutdown.load(Ordering::SeqCst) {
            return interrupt(&st);
        }
        if st.is_done() {
            let report = st.into_report();
            inner
                .run_dir
                .save_result(id, &report.genes, report.fitness, report.rows.len())?;
            let mut table = inner.jobs.lock().expect("job table poisoned");
            if let Some(e) = table.jobs.get_mut(&id) {
                e.record.state = JobState::Done;
                e.record.result = Some((report.genes, report.fitness));
                e.record.best_fitness = Some(report.fitness);
            }
            return Ok(());
        }

        let pos = st.pos();
        let phase_spec = spec.at_pos(pos);
        let problem = match problems_by_pos.get(&pos) {
            Some(p) => Arc::clone(p),
            None => {
                let p = phase_spec.build_problem()?;
                problems_by_pos.insert(pos, Arc::clone(&p));
                p
            }
        };

        let evals_before = st.evals();
        let mut regret_pct = 0.0;
        if st.needs_initial_tune() {
            let Some((genes, fitness, evals)) = online_tune(
                inner,
                &phase_spec,
                &problem,
                None,
                spec.ga.seed,
                cancel,
                shard_idx,
            )?
            else {
                return interrupt(&st);
            };
            st.note_evals(evals);
            st.install(genes, fitness);
        } else {
            let incumbent: Vec<i64> = st
                .incumbent()
                .map(|(g, _)| g.to_vec())
                .expect("incumbent exists");
            let probe = {
                // A probe is real local compute, like local evaluation.
                let _busy = crate::net::busy(&*inner.config.transport);
                problem.fitness(&incumbent)
            };
            let triggered = st.observe_probe(probe);
            regret_pct = st.regression_pct();
            if triggered {
                let seed = st.retune_seed(spec.ga.seed);
                let Some((genes, fitness, evals)) = online_tune(
                    inner,
                    &phase_spec,
                    &problem,
                    Some(&incumbent),
                    seed,
                    cancel,
                    shard_idx,
                )?
                else {
                    // Mid-epoch interruption: drop the open epoch; the
                    // restore replays it from its probe.
                    return interrupt(&st);
                };
                st.note_evals(evals);
                st.commit(Some((genes, fitness)));
                inner.config.obs.counter("online_retunes").add(1);
                if let Some(latency) = st.detect_latencies().last() {
                    inner
                        .config
                        .obs
                        .histogram("drift_detect_latency")
                        .record(*latency);
                }
            } else {
                st.commit(None);
            }
        }

        // Epoch committed: charge the tenant for the epoch's fresh
        // evaluations, checkpoint, and publish progress (the record's
        // `generation` is the committed epoch, so `watch` emits one
        // frame per epoch).
        let evals_delta = st.evals() - evals_before;
        if evals_delta > 0 {
            let mut table = inner.jobs.lock().expect("job table poisoned");
            table.accountant.charge(&spec.tenant, evals_delta);
            if let Some(e) = table.jobs.get_mut(&id) {
                e.reserved = e.reserved.saturating_sub(evals_delta);
            }
            inner.set_tenant_gauges(&table, &spec.tenant);
            drop(table);
            let s = shard_idx.to_string();
            inner
                .config
                .obs
                .counter(&obs::labeled("shard_evals", &[("shard", &s)]))
                .add(evals_delta);
        }
        Metrics::bump(&inner.metrics.generations);
        Metrics::add(&inner.metrics.evaluations, evals_delta);
        inner.run_dir.save_online(id, &st.snapshot())?;
        Metrics::bump(&inner.metrics.checkpoints_written);
        inner
            .config
            .obs
            .gauge("online_regret_pct")
            .set(regret_pct.round() as i64);
        {
            let mut table = inner.jobs.lock().expect("job table poisoned");
            if let Some(e) = table.jobs.get_mut(&id) {
                e.record.generation = usize::try_from(st.epoch()).unwrap_or(usize::MAX);
                e.record.best_fitness = st.incumbent().map(|(_, f)| f);
                e.record.online = Some(OnlineProgress {
                    epoch: st.epoch(),
                    retunes: st.retunes(),
                    regret_pct,
                    phase: pos.phase,
                });
            }
        }
    }
}

/// One tune to completion inside an online epoch, mirroring the
/// reference runner's tuning step (`online::OnlineJob`): `warmstart`
/// seeded with the incumbent (plus nearest-fingerprint store cells)
/// when retuning, the submitted strategy for the initial tune. Returns
/// `None` when interrupted by cancellation or shutdown.
#[allow(clippy::too_many_arguments)]
fn online_tune(
    inner: &Inner,
    phase_spec: &JobSpec,
    problem: &Arc<dyn Problem>,
    incumbent: Option<&[i64]>,
    seed: u64,
    cancel: &AtomicBool,
    shard_idx: usize,
) -> Result<Option<(Vec<i64>, f64, u64)>, String> {
    let kind = if incumbent.is_some() {
        "warmstart"
    } else {
        phase_spec.strategy.as_str()
    };
    let cfg = GaConfig {
        seed,
        ..phase_spec.ga.clone()
    };
    let mut strategy = search::build(kind, problem.space().clone(), cfg)?;
    let mut seeds: Vec<Vec<i64>> = incumbent.map(<[i64]>::to_vec).into_iter().collect();
    if let Some(store) = &inner.config.store {
        let want = phase_spec.ga.pop_size.saturating_sub(seeds.len());
        seeds.extend(store.warm_seeds(problem.fingerprint(), want));
    }
    if !seeds.is_empty() {
        let planted = strategy.seed_population(&seeds);
        if planted > incumbent.iter().len() {
            inner
                .config
                .obs
                .counter("store_warm_seeds")
                .add((planted - incumbent.iter().len()) as u64);
        }
    }
    strategy.set_obs(Arc::clone(&inner.config.obs));

    let store_cell = inner
        .config
        .store
        .as_ref()
        .map(|s| (Arc::clone(s), problem.fingerprint().clone()));
    let lease = inner.budget.lease(strategy.config().threads);
    let local = StoreTier::new(store_cell.clone(), {
        let problem = Arc::clone(problem);
        LocalEvaluator::new(move |genes: &[i64]| problem.fitness(genes), lease.granted)
    });
    // The remote tier evaluates against the *phase-pinned* spec: the
    // worker rebuilds the morphed suite from `drift_pos`, so its
    // problem cache naturally splits per phase.
    let remote = StoreTier::new(store_cell, {
        let problem = Arc::clone(problem);
        let mut eval = RemoteEvaluator::new(
            &inner.pool,
            phase_spec.to_json(),
            &inner.metrics,
            move |genes| problem.fitness(genes),
        );
        let directory = Arc::clone(&inner.directory);
        let transport = Arc::clone(&inner.config.transport);
        eval.set_worker_filter(Arc::new(move |addr: &str| {
            directory.allows(shard_idx, addr, transport.now_micros())
        }));
        eval
    });

    loop {
        if cancel.load(Ordering::SeqCst) || inner.shutdown.load(Ordering::SeqCst) {
            return Ok(None);
        }
        let done = if inner.pool.is_empty() {
            let _busy = crate::net::busy(&*inner.config.transport);
            search::step_with(strategy.as_mut(), &local)
        } else {
            search::step_with(strategy.as_mut(), &remote)
        };
        if done {
            break;
        }
    }
    let (genes, fitness) = strategy
        .best()
        .ok_or("online tune finished with no best genome")?;
    Ok(Some((genes, fitness, strategy.evaluations() as u64)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use jit::Scenario;
    use std::path::PathBuf;
    use tuner::{Goal, Tuner};

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("served-daemon-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn tiny_spec(seed: u64) -> JobSpec {
        JobSpec {
            name: "Opt:Tot".into(),
            scenario: Scenario::Opt,
            goal: Goal::Total,
            arch: "x86-p4".into(),
            problem: "inline".into(),
            suite: vec!["db".into()],
            ga: GaConfig {
                pop_size: 6,
                generations: 3,
                threads: 1,
                seed,
                stagnation_limit: None,
                ..GaConfig::default()
            },
            strategy: "ga".into(),
            tenant: "default".into(),
            online: None,
            drift_pos: None,
        }
    }

    fn online_spec(seed: u64) -> JobSpec {
        let mut spec = tiny_spec(seed);
        spec.name = "online".into();
        spec.online = Some(crate::job::OnlineSpec {
            epochs: 5,
            kind: workloads::DriftKind::Step,
            period: 2,
            phases: 2,
            drift_seed: 11,
            window: 1,
            threshold_pct: 2.0,
        });
        spec
    }

    /// The in-process reference run this spec must bit-match (the spec
    /// carries no `drift_pos`, so `training()` is the unmorphed base).
    fn reference_run(spec: &JobSpec) -> online::OnlineReport {
        online::OnlineJob {
            problem: spec.problem.clone(),
            task: spec.task().unwrap(),
            base: spec.training().unwrap(),
            adapt: spec.adapt_cfg(),
            ga: spec.ga.clone(),
            strategy: spec.strategy.clone(),
            online: spec.online.as_ref().unwrap().config(),
        }
        .run(None)
        .unwrap()
    }

    fn wait_terminal(d: &Daemon, id: u64) -> JobRecord {
        for _ in 0..600 {
            let r = d.status(id).expect("job exists");
            if r.state.is_terminal() {
                return r;
            }
            std::thread::sleep(std::time::Duration::from_millis(50));
        }
        panic!("job {id} never reached a terminal state");
    }

    #[test]
    fn thread_budget_clamps_and_releases() {
        let b = ThreadBudget::new(4);
        let l1 = b.lease(3);
        assert_eq!(l1.granted, 3);
        let l2 = b.lease(3);
        assert_eq!(l2.granted, 1, "clamped to the remaining budget");
        let l3 = b.lease(5);
        assert_eq!(l3.granted, 1, "an exhausted budget still grants one");
        drop(l1);
        let l4 = b.lease(5);
        assert_eq!(l4.granted, 2, "released threads are reusable");
        drop(l2);
        drop(l3);
        drop(l4);
        assert_eq!(b.lease(99).granted, 4);
    }

    #[test]
    fn runs_a_job_to_completion() {
        let dir = tmp_dir("complete");
        let d = Daemon::start(DaemonConfig::default(), RunDir::open(&dir).unwrap()).unwrap();
        let id = d.submit(tiny_spec(1)).unwrap();
        let r = wait_terminal(&d, id);
        assert_eq!(r.state, JobState::Done);
        assert_eq!(r.generation, 3);
        let (genes, fitness) = r.result.unwrap();
        assert!(fitness.is_finite());
        assert_eq!(genes.len(), 5);
        let snap = d.metrics_snapshot();
        assert_eq!(snap.jobs.done, 1);
        assert!(snap.generations >= 3);
        assert!(snap.checkpoints_written >= 3);
        d.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn daemon_result_matches_inprocess_tuner() {
        let dir = tmp_dir("match");
        let spec = tiny_spec(77);
        let expected = Tuner::new(
            spec.task().unwrap(),
            spec.training().unwrap(),
            spec.adapt_cfg(),
        )
        .tune(spec.ga.clone());

        let d = Daemon::start(DaemonConfig::default(), RunDir::open(&dir).unwrap()).unwrap();
        let id = d.submit(spec).unwrap();
        let r = wait_terminal(&d, id);
        let (genes, fitness) = r.result.unwrap();
        assert_eq!(genes, expected.params.to_genes());
        assert_eq!(fitness.to_bits(), expected.fitness.to_bits());
        d.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn runs_a_race_job_with_standings() {
        let dir = tmp_dir("race");
        let d = Daemon::start(DaemonConfig::default(), RunDir::open(&dir).unwrap()).unwrap();
        let spec = JobSpec {
            strategy: "race:ga+random+grid".into(),
            ..tiny_spec(11)
        };
        let id = d.submit(spec).unwrap();
        let r = wait_terminal(&d, id);
        assert_eq!(r.state, JobState::Done);
        let (genes, fitness) = r.result.unwrap();
        assert!(fitness.is_finite());
        assert_eq!(genes.len(), 5);
        assert_eq!(r.standings.len(), 3, "one standing per race member");
        assert!(r.standings.iter().any(|s| s.name == "random"));
        d.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn daemon_strategy_job_matches_inprocess_search() {
        let dir = tmp_dir("strategy-match");
        let spec = JobSpec {
            strategy: "hillclimb".into(),
            ..tiny_spec(23)
        };
        let t = Tuner::new(
            spec.task().unwrap(),
            spec.training().unwrap(),
            spec.adapt_cfg(),
        );
        let mut expected = t.start_strategy(&spec.strategy, spec.ga.clone()).unwrap();
        while !t.step_strategy(expected.as_mut()) {}
        let (eg, ef) = expected.best().unwrap();

        let d = Daemon::start(DaemonConfig::default(), RunDir::open(&dir).unwrap()).unwrap();
        let id = d.submit(spec).unwrap();
        let r = wait_terminal(&d, id);
        let (genes, fitness) = r.result.unwrap();
        assert_eq!(genes, eg);
        assert_eq!(fitness.to_bits(), ef.to_bits());
        d.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_tier_preserves_results_and_feeds_warmstart() {
        let dir = tmp_dir("store");
        let store_dir = dir.join("store");

        // Reference: the same job without any store.
        let expected = {
            let spec = tiny_spec(55);
            Tuner::new(
                spec.task().unwrap(),
                spec.training().unwrap(),
                spec.adapt_cfg(),
            )
            .tune(spec.ga.clone())
        };

        let obs = Arc::new(obs::Registry::new());
        let store = stored::Store::open_with(
            &store_dir,
            stored::StoreOptions {
                obs: Arc::clone(&obs),
                ..stored::StoreOptions::default()
            },
        )
        .unwrap();
        let d = Daemon::start(
            DaemonConfig {
                store: Some(Arc::new(store)),
                obs: Arc::clone(&obs),
                ..DaemonConfig::default()
            },
            RunDir::open(dir.join("run1")).unwrap(),
        )
        .unwrap();

        // First run populates the store and must match the store-free
        // result bit for bit.
        let id = d.submit(tiny_spec(55)).unwrap();
        let r = wait_terminal(&d, id);
        let (genes, fitness) = r.result.unwrap();
        assert_eq!(genes, expected.params.to_genes());
        assert_eq!(fitness.to_bits(), expected.fitness.to_bits());

        // A second identical job is answered largely from the store.
        let misses_before = obs.snapshot().counter("store_misses");
        let id2 = d.submit(tiny_spec(55)).unwrap();
        let r2 = wait_terminal(&d, id2);
        let (genes2, fitness2) = r2.result.unwrap();
        assert_eq!(genes2, expected.params.to_genes());
        assert_eq!(fitness2.to_bits(), expected.fitness.to_bits());
        let snap = obs.snapshot();
        assert!(snap.counter("store_hits") > 0, "rerun must hit the store");
        assert_eq!(
            snap.counter("store_misses"),
            misses_before,
            "an identical rerun should be fully store-served"
        );

        // A warmstart job on the same cell is seeded from the store.
        let id3 = d
            .submit(JobSpec {
                strategy: "warmstart".into(),
                ..tiny_spec(56)
            })
            .unwrap();
        let r3 = wait_terminal(&d, id3);
        assert_eq!(r3.state, JobState::Done);
        assert!(
            obs.snapshot().counter("store_warm_seeds") > 0,
            "the warmstart job must be seeded from prior records"
        );
        d.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn one_daemon_tunes_heterogeneous_problems() {
        // The tentpole scenario: inlining, flags and dss jobs in one
        // queue, one worker pool — and each daemon result bit-matches an
        // in-process search over the same problem.
        let dir = tmp_dir("hetero");
        let d = Daemon::start(DaemonConfig::default(), RunDir::open(&dir).unwrap()).unwrap();
        let mut ids = Vec::new();
        for problem in problems::KNOWN {
            let spec = JobSpec {
                problem: (*problem).to_string(),
                ..tiny_spec(91)
            };
            ids.push((problem, d.submit(spec).unwrap()));
        }
        for (problem, id) in ids {
            let r = wait_terminal(&d, id);
            assert_eq!(r.state, JobState::Done, "{problem}: {:?}", r.error);
            let (genes, fitness) = r.result.unwrap();
            assert!(fitness.is_finite());

            let spec = JobSpec {
                problem: (*problem).to_string(),
                ..tiny_spec(91)
            };
            let p = spec.build_problem().unwrap();
            assert_eq!(genes.len(), p.space().len(), "{problem} genome arity");
            assert!(p.space().contains(&genes), "{problem} result out of space");
            let mut expected =
                search::build(&spec.strategy, p.space().clone(), spec.ga.clone()).unwrap();
            let backend = LocalEvaluator::new(|g: &[i64]| p.fitness(g), 1);
            while !search::step_with(expected.as_mut(), &backend) {}
            let (eg, ef) = expected.best().unwrap();
            assert_eq!(genes, eg, "{problem} drifted from in-process search");
            assert_eq!(fitness.to_bits(), ef.to_bits(), "{problem} fitness bits");
        }
        d.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cancel_queued_job_never_runs() {
        let dir = tmp_dir("cancel");
        // One worker busy with a long job keeps the second job queued.
        let d = Daemon::start(
            DaemonConfig {
                workers: 1,
                queue_capacity: 8,
                ..DaemonConfig::default()
            },
            RunDir::open(&dir).unwrap(),
        )
        .unwrap();
        let long = JobSpec {
            ga: GaConfig {
                generations: 60,
                ..tiny_spec(5).ga
            },
            ..tiny_spec(5)
        };
        let a = d.submit(long).unwrap();
        let b = d.submit(tiny_spec(6)).unwrap();
        let was = d.cancel(b).unwrap();
        assert_eq!(was, JobState::Queued);
        assert_eq!(d.status(b).unwrap().state, JobState::Canceled);
        let _ = d.cancel(a); // running or queued; stop it for the join
        d.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn queue_capacity_rejects_excess() {
        let dir = tmp_dir("capacity");
        let d = Daemon::start(
            DaemonConfig {
                workers: 1,
                queue_capacity: 1,
                ..DaemonConfig::default()
            },
            RunDir::open(&dir).unwrap(),
        )
        .unwrap();
        // Fill: one running + one queued, the next must bounce. Submit
        // fast enough that the worker can't drain — use long jobs.
        let long = || JobSpec {
            ga: GaConfig {
                generations: 100,
                ..tiny_spec(9).ga
            },
            ..tiny_spec(9)
        };
        let mut rejected = false;
        for _ in 0..4 {
            if d.submit(long()).is_err() {
                rejected = true;
                break;
            }
        }
        assert!(rejected, "queue never filled");
        for r in d.list() {
            let _ = d.cancel(r.id);
        }
        d.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shutdown_checkpoints_and_restart_resumes() {
        let dir = tmp_dir("restart");
        let spec = tiny_spec(31);
        let expected = Tuner::new(
            spec.task().unwrap(),
            spec.training().unwrap(),
            spec.adapt_cfg(),
        )
        .tune(spec.ga.clone());

        // First daemon: submit and shut down almost immediately — the job
        // parks at whatever generation it reached.
        let d1 = Daemon::start(DaemonConfig::default(), RunDir::open(&dir).unwrap()).unwrap();
        let id = d1.submit(spec).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(30));
        d1.shutdown();

        // Second daemon: recovery requeues and finishes the job.
        let d2 = Daemon::start(DaemonConfig::default(), RunDir::open(&dir).unwrap()).unwrap();
        let r = wait_terminal(&d2, id);
        assert_eq!(r.state, JobState::Done);
        let (genes, fitness) = r.result.unwrap();
        assert_eq!(genes, expected.params.to_genes());
        assert_eq!(fitness.to_bits(), expected.fitness.to_bits());
        d2.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn online_job_matches_reference_runner() {
        let dir = tmp_dir("online");
        let spec = online_spec(7);
        let expected = reference_run(&spec);
        let d = Daemon::start(DaemonConfig::default(), RunDir::open(&dir).unwrap()).unwrap();
        let id = d.submit(spec).unwrap();
        let r = wait_terminal(&d, id);
        assert_eq!(r.state, JobState::Done);
        let (genes, fitness) = r.result.unwrap();
        assert_eq!(genes, expected.genes);
        assert_eq!(fitness.to_bits(), expected.fitness.to_bits());
        assert_eq!(r.generation, 5, "one frame per committed epoch");
        let o = r.online.expect("online progress populated");
        assert_eq!(o.epoch, 5);
        assert_eq!(o.retunes, expected.retunes);
        // The epoch-boundary snapshot on disk is the finished run's.
        let snap = RunDir::open(&dir)
            .unwrap()
            .load_online(id)
            .unwrap()
            .unwrap();
        assert_eq!(snap.epoch, 5);
        assert_eq!(snap.rows.len(), 5);
        assert_eq!(snap.retunes, expected.retunes);
        d.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn online_shutdown_and_restart_resumes_bit_identically() {
        let dir = tmp_dir("online-restart");
        let spec = online_spec(13);
        let expected = reference_run(&spec);

        // First daemon: park the online job mid-run (whatever epoch it
        // reached — possibly none).
        let d1 = Daemon::start(DaemonConfig::default(), RunDir::open(&dir).unwrap()).unwrap();
        let id = d1.submit(spec).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(40));
        d1.shutdown();

        // Second daemon: recovery replays the interrupted epoch from
        // the last boundary and finishes to the reference bits.
        let d2 = Daemon::start(DaemonConfig::default(), RunDir::open(&dir).unwrap()).unwrap();
        let r = wait_terminal(&d2, id);
        assert_eq!(r.state, JobState::Done);
        let (genes, fitness) = r.result.unwrap();
        assert_eq!(genes, expected.genes);
        assert_eq!(fitness.to_bits(), expected.fitness.to_bits());
        d2.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_skips_done_and_canceled_jobs() {
        let dir = tmp_dir("skip");
        let d1 = Daemon::start(DaemonConfig::default(), RunDir::open(&dir).unwrap()).unwrap();
        let done_id = d1.submit(tiny_spec(2)).unwrap();
        wait_terminal(&d1, done_id);
        let canceled_id = d1.submit(tiny_spec(3)).unwrap();
        let _ = d1.cancel(canceled_id);
        // Wait for the cancel (or a photo-finish completion) to land so
        // the job is terminal on disk before the restart.
        wait_terminal(&d1, canceled_id);
        d1.shutdown();

        let d2 = Daemon::start(DaemonConfig::default(), RunDir::open(&dir).unwrap()).unwrap();
        assert_eq!(d2.status(done_id).unwrap().state, JobState::Done);
        let st = d2.status(canceled_id).unwrap().state;
        assert!(
            st == JobState::Canceled || st == JobState::Done,
            "canceled job must stay terminal after restart, got {st:?}"
        );
        assert_eq!(d2.metrics_snapshot().jobs_recovered, 0);
        d2.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
