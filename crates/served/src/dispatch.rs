//! The remote-evaluation dispatch layer: a [`WorkerPool`] of `evald`
//! processes and a [`RemoteEvaluator`] that fans a GA generation's
//! cache-miss evaluations out over them.
//!
//! The paper's GA spends essentially all of its time in fitness
//! measurement (§4 — hours of repeated benchmark runs per tuning cell),
//! so this is the tier that scales horizontally. Design constraints:
//!
//! * **Bit-identical to local.** Fitness is a pure function of the genome
//!   and results merge into the GA memo table keyed by genome, so the
//!   assignment of genomes to workers — and any amount of retrying,
//!   failover, batching or local fallback — cannot change the search
//!   trajectory.
//! * **Production robustness.** Per-batch timeouts, capped exponential
//!   backoff on reconnects, eviction of workers that send garbage
//!   (malformed / oversized frames, unknown or duplicate ids, per-item
//!   errors) or keep failing health checks, re-dispatch of work orphaned
//!   by a dead worker at batch granularity, and bounded
//!   outstanding-work-per-worker backpressure
//!   ([`DispatchConfig::max_inflight`]).
//! * **One round-trip per batch.** All genomes claimed by a worker ride
//!   in a single `eval_batch` frame and come back in a single response
//!   frame with per-genome results, so the link RTT is paid once per
//!   batch instead of once per genome. Batch size adapts to the link: a
//!   per-worker RTT model ([`Worker::batch_target`]) claims small
//!   batches on fast links (better load balance across workers) and
//!   large batches when the round-trip dominates the per-eval cost.
//! * **Graceful degradation.** Genomes no live worker could answer are
//!   evaluated through the caller-supplied local fallback, so a job
//!   finishes even if every worker dies mid-generation.
//!
//! Every socket, sleep, and clock read goes through the
//! [`crate::net::Transport`] seam, so the identical dispatch logic runs
//! on real TCP in production and on the simulated network (virtual
//! clock, seeded faults) under `crates/sim`.
//!
//! The wire conversation with one worker (line-delimited JSON, the same
//! framing as the `tuned` protocol):
//!
//! ```text
//! → {"cmd":"task","job":{...JobSpec...}}       once per connection
//! ← {"ok":true}
//! → {"cmd":"eval_batch","id":"1",
//!    "evals":[{"id":0,"genes":[23,...]},...]}  one frame per batch
//! ← {"ok":true,"id":"1",
//!    "results":[{"id":0,"fitness":0.94...},
//!               {"id":3,"error":"..."}]}       per-genome outcomes
//! ```
//!
//! Partial-failure semantics: delivered fitness entries are committed
//! (they are real measurements of a pure function); a per-item error,
//! an unknown or duplicate id, or a batch-id mismatch evicts the worker
//! and re-queues whatever it had not answered; a timeout or connection
//! death re-queues the whole unanswered remainder as a transient
//! failure. Either way no genome is lost and none is committed twice —
//! [`BatchLedger`] enforces exactly-once resolution.

use std::collections::{HashMap, VecDeque};
use std::io::{BufReader, BufWriter};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use ga::{Evaluator, Genome, PendingScores, PipelinedEvaluator, ReadyScores};

use crate::json::Json;
use crate::metrics::Metrics;
use crate::net::{NetStream, TcpTransport, Transport};
use crate::proto::{
    eval_batch_request, parse_eval_batch_response, read_frame, write_frame, EvalOutcome,
    EvalRequest, Frame,
};

/// Dispatcher tunables.
#[derive(Debug, Clone)]
pub struct DispatchConfig {
    /// Connect timeout per attempt.
    pub connect_timeout: Duration,
    /// How long to wait for one eval's worth of response before declaring
    /// a timeout; a batch of `n` gets `n ×` this as its read deadline.
    pub request_timeout: Duration,
    /// First retry backoff; doubles per consecutive failure.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
    /// Consecutive transient failures (connect errors, timeouts, dropped
    /// connections) before a worker is evicted from the pool.
    pub max_consecutive_failures: u32,
    /// Maximum genomes outstanding on one worker connection — the
    /// backpressure bound and the adaptive batch-size ceiling. Higher
    /// values amortize the round-trip better over slow links; lower
    /// values spread a small generation more evenly.
    pub max_inflight: usize,
    /// A registered (heartbeating) worker whose last heartbeat is older
    /// than this is considered gone and evicted. Statically configured
    /// workers are exempt — they never heartbeat.
    pub stale_after: Duration,
    /// How long a dispatch thread with nothing left to claim dozes
    /// before re-checking the queue (work re-appears there when another
    /// worker times out and its claims are re-dispatched).
    pub idle_poll: Duration,
    /// **Test hook.** When `false`, work claimed by a failing worker is
    /// silently dropped instead of returned to the queue — the exact
    /// lost-work bug class the simulation sweep exists to catch. Never
    /// disable outside a harness proving the harness.
    pub redispatch: bool,
}

impl Default for DispatchConfig {
    fn default() -> Self {
        Self {
            connect_timeout: Duration::from_secs(2),
            request_timeout: Duration::from_secs(10),
            backoff_base: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(2),
            max_consecutive_failures: 3,
            max_inflight: 8,
            stale_after: Duration::from_secs(10),
            idle_poll: Duration::from_millis(2),
            redispatch: true,
        }
    }
}

/// One worker's counter values (mirrored into the daemon-wide
/// [`Metrics`] aggregates as they are bumped).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct WorkerCounters {
    /// Eval requests written to this worker (including re-sends).
    pub dispatched: u64,
    /// Eval results successfully received.
    pub completed: u64,
    /// Requests returned to the queue after a failure on this worker.
    pub retries: u64,
    /// Batch waits that hit the read deadline.
    pub timeouts: u64,
    /// Times this worker was evicted from the live set.
    pub evictions: u64,
    /// Accumulated batch round-trip latency, microseconds. One batch
    /// contributes its RTT once, so `rtt_micros / completed` is the
    /// amortized per-eval latency.
    pub rtt_micros: u64,
}

/// Per-worker monotonic counters behind one lock, so related fields
/// (e.g. `completed` and `rtt_micros`) always move — and are read —
/// together. Independent atomics here once let a `metrics` reply observe
/// `completed` bumped but `rtt_micros` not yet, skewing the derived mean
/// RTT; a locked [`WorkerStats::update`] makes every snapshot a
/// consistent point in time.
#[derive(Debug, Default)]
pub struct WorkerStats {
    inner: Mutex<WorkerCounters>,
}

impl WorkerStats {
    /// Applies one atomic multi-field update.
    pub fn update(&self, f: impl FnOnce(&mut WorkerCounters)) {
        f(&mut self.inner.lock().expect("worker stats poisoned"));
    }

    /// A consistent point-in-time copy of every counter.
    #[must_use]
    pub fn read(&self) -> WorkerCounters {
        *self.inner.lock().expect("worker stats poisoned")
    }
}

/// The per-worker RTT model behind adaptive batch sizing. Two EWMAs:
/// the fixed per-round-trip overhead (estimated from the `task`
/// handshake, which does no evaluation work) and the per-item
/// evaluation cost (estimated from completed batches). The target batch
/// size is the smallest batch whose useful work amortizes the overhead
/// [`AMORTIZE`]-fold — so a localhost link with millisecond evals claims
/// one genome at a time (perfect load balance across workers), while a
/// high-latency link claims up to `max_inflight` (the round-trip is
/// paid once either way).
#[derive(Debug, Default)]
struct BatchTuner {
    /// EWMA of the fixed per-RPC overhead (micros); 0 until a handshake
    /// has been timed.
    overhead_micros: f64,
    /// EWMA of the per-item evaluation cost (micros).
    item_micros: f64,
    /// Whether any completed batch has primed `item_micros`. Unprimed,
    /// the target stays at `max_inflight` — the pre-adaptive behavior.
    primed: bool,
}

/// EWMA smoothing factor for the RTT model: new observations count 40%.
const EWMA_ALPHA: f64 = 0.4;

/// Target ratio of per-batch evaluation work to fixed RPC overhead: a
/// batch should carry at least this many overheads' worth of work.
const AMORTIZE: f64 = 8.0;

impl BatchTuner {
    fn note_handshake(&mut self, rtt_micros: u64) {
        let r = rtt_micros as f64;
        self.overhead_micros = if self.overhead_micros == 0.0 {
            r
        } else {
            EWMA_ALPHA * r + (1.0 - EWMA_ALPHA) * self.overhead_micros
        };
    }

    fn note_batch(&mut self, len: u64, rtt_micros: u64) {
        if len == 0 {
            return;
        }
        let per_item = ((rtt_micros as f64 - self.overhead_micros) / len as f64).max(1.0);
        self.item_micros = if self.primed {
            EWMA_ALPHA * per_item + (1.0 - EWMA_ALPHA) * self.item_micros
        } else {
            per_item
        };
        self.primed = true;
    }

    fn target(&self, max_inflight: usize) -> usize {
        let cap = max_inflight.max(1);
        if !self.primed {
            return cap;
        }
        let ideal = (AMORTIZE * self.overhead_micros / self.item_micros).ceil();
        if !ideal.is_finite() {
            return cap;
        }
        // f64→usize casts saturate, so huge ideals clamp to `cap`.
        (ideal as usize).clamp(1, cap)
    }
}

/// One worker endpoint and its health. Liveness timestamps are
/// transport-clock micros supplied by the pool, so a simulated run's
/// staleness sweeps follow the virtual clock.
#[derive(Debug)]
pub struct Worker {
    /// The `host:port` the worker's eval server listens on.
    pub addr: String,
    /// Whether the worker announced itself via `register` (and is
    /// therefore expected to heartbeat) or came from static config.
    pub registered: bool,
    /// Counters.
    pub stats: WorkerStats,
    alive: AtomicBool,
    last_seen: AtomicU64,
    tuner: Mutex<BatchTuner>,
}

impl Worker {
    /// A standalone worker handle (pools build their own via
    /// [`WorkerPool::add`]; tests exercise counter semantics directly).
    #[must_use]
    pub fn new(addr: String, registered: bool) -> Self {
        Self {
            addr,
            registered,
            stats: WorkerStats::default(),
            alive: AtomicBool::new(true),
            last_seen: AtomicU64::new(0),
            tuner: Mutex::new(BatchTuner::default()),
        }
    }

    /// Whether the worker is currently in the live set.
    #[must_use]
    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::SeqCst)
    }

    /// Records proof of life (heartbeat received, or a response arrived)
    /// at transport time `now` (micros).
    pub fn touch_at(&self, now: u64) {
        self.last_seen.fetch_max(now, Ordering::SeqCst);
    }

    fn seen_within(&self, now: u64, window: Duration) -> bool {
        let age = now.saturating_sub(self.last_seen.load(Ordering::SeqCst));
        age <= window.as_micros() as u64
    }

    /// Removes the worker from the live set, bumping eviction counters
    /// exactly once per transition.
    pub fn evict(&self, metrics: &Metrics, reg: &obs::Registry) {
        if self.alive.swap(false, Ordering::SeqCst) {
            self.stats.update(|s| s.evictions += 1);
            Metrics::bump(&metrics.remote_evictions);
            reg.counter(&obs::labeled(
                "dispatch_evictions",
                &[("worker", &self.addr)],
            ))
            .inc();
        }
    }

    fn revive_at(&self, now: u64) {
        self.touch_at(now);
        self.alive.store(true, Ordering::SeqCst);
    }

    /// Feeds the RTT model a timed `task` handshake (a round-trip that
    /// does no evaluation work — the fixed per-RPC overhead).
    pub fn note_handshake_rtt(&self, rtt_micros: u64) {
        self.tuner
            .lock()
            .expect("batch tuner poisoned")
            .note_handshake(rtt_micros);
    }

    /// Feeds the RTT model one completed batch of `len` evals that took
    /// `rtt_micros` end to end.
    pub fn note_batch_rtt(&self, len: u64, rtt_micros: u64) {
        self.tuner
            .lock()
            .expect("batch tuner poisoned")
            .note_batch(len, rtt_micros);
    }

    /// The adaptive batch size for this worker: always within
    /// `[1, max_inflight]` (treating `max_inflight == 0` as 1), and
    /// exactly `max_inflight` until the first completed batch primes
    /// the RTT model.
    #[must_use]
    pub fn batch_target(&self, max_inflight: usize) -> usize {
        self.tuner
            .lock()
            .expect("batch tuner poisoned")
            .target(max_inflight)
    }

    /// A plain-data copy of the worker's state for the `metrics` verb.
    /// All counters come from **one** locked read, so derived values
    /// (mean RTT) can never mix fields from different instants.
    #[must_use]
    pub fn snapshot(&self) -> WorkerSnapshot {
        let s = self.stats.read();
        WorkerSnapshot {
            addr: self.addr.clone(),
            alive: self.is_alive(),
            registered: self.registered,
            dispatched: s.dispatched,
            completed: s.completed,
            retries: s.retries,
            timeouts: s.timeouts,
            evictions: s.evictions,
            mean_rtt_ms: if s.completed > 0 {
                s.rtt_micros as f64 / s.completed as f64 / 1000.0
            } else {
                0.0
            },
        }
    }
}

/// A point-in-time copy of one worker's counters.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerSnapshot {
    /// Worker address.
    pub addr: String,
    /// Whether the worker is in the live set.
    pub alive: bool,
    /// Self-registered (heartbeating) vs. statically configured.
    pub registered: bool,
    /// Requests written to the worker.
    pub dispatched: u64,
    /// Results received.
    pub completed: u64,
    /// Requests re-dispatched after a failure here.
    pub retries: u64,
    /// Batch-timeout events.
    pub timeouts: u64,
    /// Eviction events.
    pub evictions: u64,
    /// Mean per-eval latency (batch RTT amortized over its evals),
    /// milliseconds.
    pub mean_rtt_ms: f64,
}

/// The shared registry of evaluator workers: static config entries plus
/// anything that `register`ed at runtime.
pub struct WorkerPool {
    config: DispatchConfig,
    workers: Mutex<Vec<Arc<Worker>>>,
    obs: Arc<obs::Registry>,
    transport: Arc<dyn Transport>,
}

impl WorkerPool {
    /// An empty pool recording into the process-wide obs registry,
    /// dialing over real TCP.
    #[must_use]
    pub fn new(config: DispatchConfig) -> Self {
        Self {
            config,
            workers: Mutex::new(Vec::new()),
            obs: Arc::clone(obs::global()),
            transport: TcpTransport::shared(),
        }
    }

    /// Redirects the pool's latency histograms and event counters to
    /// `registry` (tests inject one built on a `ManualClock`).
    pub fn set_obs(&mut self, registry: Arc<obs::Registry>) {
        self.obs = registry;
    }

    /// The registry this pool records into.
    #[must_use]
    pub fn obs(&self) -> &Arc<obs::Registry> {
        &self.obs
    }

    /// Redirects the pool's sockets, sleeps, and liveness clock to
    /// `transport` (the sim harness injects its simulated network).
    pub fn set_transport(&mut self, transport: Arc<dyn Transport>) {
        self.transport = transport;
    }

    /// The transport this pool dials over.
    #[must_use]
    pub fn transport(&self) -> &Arc<dyn Transport> {
        &self.transport
    }

    /// A pool pre-seeded with statically configured worker addresses.
    #[must_use]
    pub fn with_workers(config: DispatchConfig, addrs: &[String]) -> Self {
        let pool = Self::new(config);
        for a in addrs {
            pool.add(a, false);
        }
        pool
    }

    /// The dispatch tunables.
    #[must_use]
    pub fn config(&self) -> &DispatchConfig {
        &self.config
    }

    /// Adds (or revives) a worker. Returns `true` if the address was new.
    pub fn add(&self, addr: &str, registered: bool) -> bool {
        let now = self.transport.now_micros();
        let mut workers = self.workers.lock().expect("worker pool poisoned");
        if let Some(w) = workers.iter().find(|w| w.addr == addr) {
            w.revive_at(now);
            return false;
        }
        let w = Worker::new(addr.to_string(), registered);
        w.touch_at(now);
        workers.push(Arc::new(w));
        true
    }

    /// Handles a `register` announcement from a worker process.
    pub fn register(&self, addr: &str) -> bool {
        self.add(addr, true)
    }

    /// Handles a heartbeat: refreshes (auto-registering an address the
    /// pool has never seen, e.g. after a daemon restart).
    pub fn heartbeat(&self, addr: &str) {
        self.add(addr, true);
    }

    /// Whether the pool has no workers at all (live or dead).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.workers
            .lock()
            .expect("worker pool poisoned")
            .is_empty()
    }

    /// Every worker, in registration order.
    #[must_use]
    pub fn all(&self) -> Vec<Arc<Worker>> {
        self.workers.lock().expect("worker pool poisoned").clone()
    }

    /// The live workers.
    #[must_use]
    pub fn live(&self) -> Vec<Arc<Worker>> {
        self.all().into_iter().filter(|w| w.is_alive()).collect()
    }

    /// Point-in-time counters for every worker.
    #[must_use]
    pub fn snapshots(&self) -> Vec<WorkerSnapshot> {
        self.all().iter().map(|w| w.snapshot()).collect()
    }

    /// Health check: evicts registered workers whose heartbeat went
    /// stale. Static workers are exempt (they never heartbeat; request
    /// failures evict them instead).
    pub fn sweep_stale(&self, metrics: &Metrics) {
        let now = self.transport.now_micros();
        for w in self.all() {
            if w.registered && w.is_alive() && !w.seen_within(now, self.config.stale_after) {
                w.evict(metrics, &self.obs);
            }
        }
    }

    /// Health check: pings evicted workers and revives any that answer —
    /// a worker that restarts on the same address rejoins the pool
    /// without re-registering.
    pub fn probe_dead(&self) {
        for w in self.all() {
            if !w.is_alive() && ping(&w.addr, &self.config, &*self.transport) {
                w.revive_at(self.transport.now_micros());
            }
        }
    }
}

/// A quick liveness probe: connect and exchange a `ping`.
fn ping(addr: &str, cfg: &DispatchConfig, transport: &dyn Transport) -> bool {
    let Ok(stream) = transport.connect(addr, cfg.connect_timeout) else {
        return false;
    };
    let _ = stream.set_read_timeout(Some(cfg.connect_timeout));
    let Ok(read_half) = stream.try_clone() else {
        return false;
    };
    let mut writer = BufWriter::new(stream);
    if write_frame(
        &mut writer,
        &Json::obj(vec![("cmd", Json::Str("ping".into()))]),
    )
    .is_err()
    {
        return false;
    }
    drop(writer);
    let mut reader = BufReader::new(read_half);
    match read_frame(&mut reader) {
        Frame::Line(line) => {
            crate::json::parse(&line)
                .ok()
                .and_then(|v| v.get("ok").and_then(Json::as_bool))
                == Some(true)
        }
        _ => false,
    }
}

/// What one attempt to read an `eval_batch` response produced.
enum RecvBatch {
    /// A parsed response: `(batch id, per-item outcomes)`.
    Ok(u64, Vec<(usize, EvalOutcome)>),
    /// The read hit the batch deadline; outstanding work should be
    /// re-dispatched.
    Timeout,
    /// The connection died (EOF or I/O error) — worker crash or restart.
    Closed,
    /// The worker sent garbage (malformed JSON, an oversized frame, an
    /// error envelope): grounds for immediate eviction.
    Violation,
}

/// One connection to a worker's eval server.
struct Conn {
    reader: BufReader<Box<dyn NetStream>>,
    writer: BufWriter<Box<dyn NetStream>>,
    /// Batch ids already used on this connection. Monotonic over the
    /// connection's whole life — which, with the warm per-job cache,
    /// spans generations — so a duplicated response to an old batch
    /// still sitting in the stream is recognizably stale (id below the
    /// current batch) instead of colliding with a fresh batch's id.
    seq: u64,
}

impl Conn {
    /// Connects and performs the `task` handshake.
    fn open(
        addr: &str,
        task: &Json,
        cfg: &DispatchConfig,
        transport: &dyn Transport,
    ) -> Result<Self, String> {
        let stream = transport
            .connect(addr, cfg.connect_timeout)
            .map_err(|e| format!("connect {addr}: {e}"))?;
        stream
            .set_read_timeout(Some(cfg.request_timeout))
            .map_err(|e| format!("set timeout: {e}"))?;
        let _ = stream.set_nodelay(true);
        let write_half = stream.try_clone().map_err(|e| format!("clone: {e}"))?;
        let mut conn = Self {
            reader: BufReader::new(stream),
            writer: BufWriter::new(write_half),
            seq: 0,
        };
        let hello = Json::obj(vec![
            ("cmd", Json::Str("task".into())),
            ("job", task.clone()),
        ]);
        write_frame(&mut conn.writer, &hello).map_err(|e| format!("task send: {e}"))?;
        match read_frame(&mut conn.reader) {
            Frame::Line(line) => {
                let ok = crate::json::parse(&line)
                    .ok()
                    .and_then(|v| v.get("ok").and_then(Json::as_bool))
                    == Some(true);
                if ok {
                    Ok(conn)
                } else {
                    Err("task handshake rejected".into())
                }
            }
            Frame::Eof => Err("connection closed during handshake".into()),
            Frame::Oversized => Err("oversized handshake response".into()),
            Frame::Err(e) => Err(format!("handshake read: {e}")),
        }
    }

    /// Stretches the read deadline to cover a whole batch: `n` evals get
    /// `n ×` the single-request timeout.
    fn set_batch_deadline(&self, cfg: &DispatchConfig, n: usize) {
        let deadline = cfg.request_timeout.saturating_mul(n.max(1) as u32);
        let _ = self.reader.get_ref().set_read_timeout(Some(deadline));
    }

    /// Writes one `eval_batch` request frame under the connection's next
    /// batch id, and returns that id for matching the response.
    fn send_batch(&mut self, evals: &[EvalRequest]) -> std::io::Result<u64> {
        self.seq += 1;
        write_frame(&mut self.writer, &eval_batch_request(self.seq, evals))?;
        Ok(self.seq)
    }

    /// Reads one `eval_batch` response frame. `transport` brackets the
    /// parse as busy (a no-op on TCP): the blocking read itself must
    /// stay unbracketed — it is what virtual time advances *through* —
    /// but once the frame is in hand, decoding it is dispatcher compute
    /// a simulated clock must not jump over.
    fn recv_batch(&mut self, transport: &dyn Transport) -> RecvBatch {
        match read_frame(&mut self.reader) {
            Frame::Line(line) => {
                let _busy = crate::net::busy(transport);
                let Ok(v) = crate::json::parse(&line) else {
                    return RecvBatch::Violation;
                };
                match parse_eval_batch_response(&v) {
                    Ok((id, results)) => RecvBatch::Ok(id, results),
                    Err(_) => RecvBatch::Violation,
                }
            }
            Frame::Eof => RecvBatch::Closed,
            Frame::Oversized => RecvBatch::Violation,
            Frame::Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                RecvBatch::Timeout
            }
            Frame::Err(_) => RecvBatch::Closed,
        }
    }
}

/// The exactly-once bookkeeping for one generation's worth of
/// evaluations: a queue of genome indices awaiting dispatch, a result
/// slot per genome, and the unresolved count. Public so the dispatch
/// property suite can drive arbitrary claim / re-queue / resolve
/// interleavings against the no-loss / no-double-commit invariants the
/// worker threads rely on.
pub struct BatchLedger {
    /// Indices awaiting dispatch (re-dispatched work returns here).
    queue: Mutex<VecDeque<usize>>,
    /// `results[i]` is the fitness of genome `i` once known.
    results: Mutex<Vec<Option<f64>>>,
    /// Unresolved genome count; worker threads exit when it hits zero.
    remaining: AtomicUsize,
    /// Transport-clock micros when the generation was enqueued (feeds
    /// the batch fill-time histogram).
    enqueued_at: u64,
}

impl BatchLedger {
    /// A ledger for `n` genomes, all awaiting dispatch.
    #[must_use]
    pub fn new(n: usize, enqueued_at: u64) -> Self {
        Self {
            queue: Mutex::new((0..n).collect()),
            results: Mutex::new(vec![None; n]),
            remaining: AtomicUsize::new(n),
            enqueued_at,
        }
    }

    /// Claims up to `max` queued indices for one batch RPC.
    #[must_use]
    pub fn claim(&self, max: usize) -> Vec<usize> {
        let mut q = self.queue.lock().expect("batch queue poisoned");
        let take = max.min(q.len());
        q.drain(..take).collect()
    }

    /// Returns indices to the queue for another worker to claim.
    pub fn requeue(&self, idxs: &[usize]) {
        let mut q = self.queue.lock().expect("batch queue poisoned");
        for &i in idxs {
            q.push_back(i);
        }
    }

    /// Commits one result. Returns `false` — and changes nothing — if
    /// the slot was already resolved, so a duplicated or re-dispatched
    /// answer can never double-commit or double-decrement.
    pub fn resolve(&self, idx: usize, fitness: f64) -> bool {
        let mut r = self.results.lock().expect("batch results poisoned");
        if r[idx].is_some() {
            return false;
        }
        r[idx] = Some(fitness);
        self.remaining.fetch_sub(1, Ordering::SeqCst);
        true
    }

    /// Unresolved genome count.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.remaining.load(Ordering::SeqCst)
    }

    /// When the generation was enqueued (transport micros).
    #[must_use]
    pub fn enqueued_at(&self) -> u64 {
        self.enqueued_at
    }

    /// Consumes the ledger; `results[i]` is `None` for any genome no
    /// worker answered (the caller falls back to local evaluation).
    #[must_use]
    pub fn into_results(self) -> Vec<Option<f64>> {
        self.results.into_inner().expect("batch results poisoned")
    }
}

/// A [`ga::Evaluator`] that fans batches out over a [`WorkerPool`],
/// falling back to a local fitness function for anything the pool could
/// not answer. Also a [`ga::PipelinedEvaluator`]: `begin` runs the
/// dispatch fan-out on a coordinator thread so the caller can overlap
/// its own work (proposing the next generation, writing a checkpoint)
/// with the in-flight round-trips.
pub struct RemoteEvaluator<'a> {
    pool: Arc<WorkerPool>,
    task: Json,
    metrics: Arc<Metrics>,
    fallback: Box<dyn Fn(&[i64]) -> f64 + Sync + 'a>,
    /// Warm connections carried across generations, keyed by worker
    /// address. A fresh connect plus `task` handshake per generation
    /// once dominated small-generation round-trips (the listener's
    /// accept poll alone added tens of milliseconds); reusing the
    /// task-bound connection makes the steady-state dispatch cost one
    /// batch round-trip. Scoped per evaluator — and therefore per job —
    /// so a connection's task binding always matches the batches sent
    /// on it. Dropped (closing the sockets) with the evaluator.
    conns: Arc<Mutex<HashMap<String, Conn>>>,
    /// Optional address filter scoping fan-out to a subset of the live
    /// pool (the shard directory's lease view). `None` uses every live
    /// worker.
    filter: Option<WorkerFilter>,
}

/// An address predicate restricting which live workers a generation may
/// dispatch to. Re-checked every generation, so lease changes (worker
/// churn, starvation rebalancing) take effect at round boundaries.
pub type WorkerFilter = Arc<dyn Fn(&str) -> bool + Send + Sync>;

impl<'a> RemoteEvaluator<'a> {
    /// Builds an evaluator for one job. `task` is the job-spec JSON sent
    /// to each worker in the per-connection `task` handshake; `fallback`
    /// is the local fitness path (must compute the same pure function the
    /// workers do).
    pub fn new(
        pool: &Arc<WorkerPool>,
        task: Json,
        metrics: &Arc<Metrics>,
        fallback: impl Fn(&[i64]) -> f64 + Sync + 'a,
    ) -> Self {
        Self {
            pool: Arc::clone(pool),
            task,
            metrics: Arc::clone(metrics),
            fallback: Box::new(fallback),
            conns: Arc::new(Mutex::new(HashMap::new())),
            filter: None,
        }
    }

    /// Installs a worker-address filter (the shard lease view). If the
    /// filter rejects every live worker the generation falls back to the
    /// whole live pool — dispatch stays work-conserving even when the
    /// directory and the pool disagree about liveness.
    pub fn set_worker_filter(&mut self, filter: WorkerFilter) {
        self.filter = Some(filter);
    }
}

/// Runs one generation's dispatch fan-out to completion: one scoped
/// worker thread per live pool member, all claiming from one
/// [`BatchLedger`]. Returns the per-genome results (`None` where no
/// worker answered).
fn dispatch_generation(
    pool: &WorkerPool,
    task: &Json,
    metrics: &Metrics,
    genomes: &[Genome],
    conns: &Mutex<HashMap<String, Conn>>,
    filter: Option<&WorkerFilter>,
) -> Vec<Option<f64>> {
    pool.sweep_stale(metrics);
    pool.probe_dead();
    let workers = pool.live();
    let workers = match filter {
        Some(f) => {
            let kept: Vec<_> = workers.iter().filter(|w| f(&w.addr)).cloned().collect();
            // An over-strict filter (directory aged everyone out) must
            // not strand the round on the local fallback path.
            if kept.is_empty() {
                workers
            } else {
                kept
            }
        }
        None => workers,
    };
    let ledger = BatchLedger::new(genomes.len(), pool.transport().now_micros());
    if !workers.is_empty() {
        std::thread::scope(|scope| {
            for w in &workers {
                let ledger = &ledger;
                // Each worker's warm connection (if last generation kept
                // one) rides into its driver and back out on healthy exit.
                let cached = conns.lock().expect("conn cache poisoned").remove(&w.addr);
                scope.spawn(move || {
                    let kept = drive_worker(
                        w,
                        ledger,
                        genomes,
                        task,
                        pool.config(),
                        metrics,
                        pool.obs(),
                        pool.transport(),
                        cached,
                    );
                    if let Some(c) = kept {
                        conns
                            .lock()
                            .expect("conn cache poisoned")
                            .insert(w.addr.clone(), c);
                    }
                });
            }
        });
    }
    ledger.into_results()
}

/// The handle for one in-flight generation: joins the coordinator
/// thread, then fills any unanswered slot through the local fallback.
struct PendingRemote<'e, 'a> {
    eval: &'e RemoteEvaluator<'a>,
    genomes: Arc<Vec<Genome>>,
    handle: std::thread::JoinHandle<Vec<Option<f64>>>,
}

impl PendingScores for PendingRemote<'_, '_> {
    fn wait(self: Box<Self>) -> Vec<f64> {
        let results = match self.handle.join() {
            Ok(r) => r,
            Err(panic) => std::panic::resume_unwind(panic),
        };
        results
            .into_iter()
            .enumerate()
            .map(|(i, r)| {
                r.unwrap_or_else(|| {
                    Metrics::bump(&self.eval.metrics.remote_fallback_evals);
                    self.eval
                        .pool
                        .obs()
                        .counter("dispatch_fallback_evals")
                        .inc();
                    // Fallback fitness is real compute: hold the busy
                    // bracket so a simulated clock can't advance past
                    // request deadlines elsewhere while we measure.
                    let _busy = crate::net::busy(&**self.eval.pool.transport());
                    (self.eval.fallback)(&self.genomes[i])
                })
            })
            .collect()
    }
}

impl Evaluator for RemoteEvaluator<'_> {
    fn evaluate(&self, genomes: &[Genome]) -> Vec<f64> {
        self.begin(genomes).wait()
    }
}

impl PipelinedEvaluator for RemoteEvaluator<'_> {
    fn begin<'s>(&'s self, genomes: &[Genome]) -> Box<dyn PendingScores + 's> {
        if genomes.is_empty() {
            return Box::new(ReadyScores(Vec::new()));
        }
        let genomes = Arc::new(genomes.to_vec());
        let pool = Arc::clone(&self.pool);
        let task = self.task.clone();
        let metrics = Arc::clone(&self.metrics);
        let conns = Arc::clone(&self.conns);
        let filter = self.filter.clone();
        let thread_genomes = Arc::clone(&genomes);
        let handle = std::thread::Builder::new()
            .name("dispatch-coordinator".into())
            .spawn(move || {
                dispatch_generation(
                    &pool,
                    &task,
                    &metrics,
                    &thread_genomes,
                    &conns,
                    filter.as_ref(),
                )
            })
            .expect("spawn dispatch coordinator");
        Box::new(PendingRemote {
            eval: self,
            genomes,
            handle,
        })
    }
}

/// Returns claimed-but-unresolved indices to the queue and counts them as
/// retries against this worker. With the [`DispatchConfig::redispatch`]
/// test hook off, the work is dropped on the floor instead — the lost-work
/// bug the simulation sweep must be able to catch.
fn requeue(
    ledger: &BatchLedger,
    idxs: &[usize],
    worker: &Worker,
    cfg: &DispatchConfig,
    metrics: &Metrics,
    reg: &obs::Registry,
) {
    if idxs.is_empty() {
        return;
    }
    worker.stats.update(|s| s.retries += idxs.len() as u64);
    Metrics::add(&metrics.remote_retries, idxs.len() as u64);
    reg.counter(&obs::labeled(
        "dispatch_retries",
        &[("worker", &worker.addr)],
    ))
    .add(idxs.len() as u64);
    if !cfg.redispatch {
        return;
    }
    ledger.requeue(idxs);
}

/// One worker's dispatch loop for one generation: claim up to the
/// adaptive batch target, send the whole claim as one `eval_batch`
/// frame, commit the per-genome results from the single response; on
/// transient failure (timeout, dead connection) back off exponentially
/// (capped) and re-dispatch; on protocol violation (garbage, batch-id
/// mismatch, unknown/duplicate ids, per-item errors) evict and exit.
/// Every exit path returns outstanding work to the queue first, and
/// records the worker's pipeline occupancy (percent of wall time spent
/// with a batch on the wire) on the way out.
///
/// `cached` is the worker's warm connection from the previous
/// generation, if any; a healthy exit hands the live connection back
/// for the next one. Failure and eviction paths return `None` — the
/// socket is dropped and the next generation reconnects.
#[allow(clippy::too_many_arguments, clippy::too_many_lines)]
fn drive_worker(
    worker: &Worker,
    ledger: &BatchLedger,
    genomes: &[Genome],
    task: &Json,
    cfg: &DispatchConfig,
    metrics: &Metrics,
    reg: &obs::Registry,
    transport: &Arc<dyn Transport>,
    cached: Option<Conn>,
) -> Option<Conn> {
    let started_at = reg.now_micros();
    let mut busy_micros: u64 = 0;
    let kept = drive_worker_inner(
        worker,
        ledger,
        genomes,
        task,
        cfg,
        metrics,
        reg,
        transport,
        cached,
        &mut busy_micros,
    );
    // Pipeline occupancy: the share of this worker's wall time spent
    // with a batch actually on the wire. Low occupancy means the worker
    // idled — e.g. one greedy peer drained the queue. Skipped when a
    // frozen test clock makes the window zero-width.
    let elapsed = reg.now_micros().saturating_sub(started_at);
    if elapsed > 0 {
        reg.histogram(&obs::labeled(
            "dispatch_pipeline_occupancy_pct",
            &[("worker", &worker.addr)],
        ))
        .record(busy_micros.saturating_mul(100) / elapsed);
    }
    kept
}

#[allow(clippy::too_many_arguments, clippy::too_many_lines)]
fn drive_worker_inner(
    worker: &Worker,
    ledger: &BatchLedger,
    genomes: &[Genome],
    task: &Json,
    cfg: &DispatchConfig,
    metrics: &Metrics,
    reg: &obs::Registry,
    transport: &Arc<dyn Transport>,
    cached: Option<Conn>,
    busy_micros: &mut u64,
) -> Option<Conn> {
    let worker_label: [(&str, &str); 1] = [("worker", &worker.addr)];
    let rpc_latency = reg.histogram(&obs::labeled("rpc_latency_micros", &worker_label));
    let batch_sizes = reg.histogram(&obs::labeled("dispatch_batch_size", &worker_label));
    let batch_fill = reg.histogram(&obs::labeled("dispatch_batch_fill_micros", &worker_label));
    let backoffs = reg.counter(&obs::labeled("dispatch_backoffs", &worker_label));
    let stale_batches = reg.counter(&obs::labeled("dispatch_stale_batches", &worker_label));
    let mut conn: Option<Conn> = cached;
    let mut consecutive: u32 = 0;
    let mut backoff = cfg.backoff_base;
    loop {
        if ledger.remaining() == 0 {
            return conn;
        }
        // Claim up to the adaptive batch target (≤ max_inflight, the
        // backpressure bound).
        let claimed = ledger.claim(worker.batch_target(cfg.max_inflight));
        if claimed.is_empty() {
            // Everything is in flight on other workers; wait for either
            // completion or a timeout re-dispatch.
            transport.sleep(cfg.idle_poll);
            continue;
        }
        // How long this work sat queued before a worker picked it up.
        batch_fill.record(reg.now_micros().saturating_sub(ledger.enqueued_at()));

        // Transient-failure bookkeeping, shared by every retry path.
        let mut transient = |conn: &mut Option<Conn>, pending: &[usize]| -> bool {
            *conn = None;
            requeue(ledger, pending, worker, cfg, metrics, reg);
            consecutive += 1;
            if consecutive >= cfg.max_consecutive_failures {
                worker.evict(metrics, reg);
                return true; // exit the loop
            }
            backoffs.inc();
            transport.sleep(backoff);
            backoff = (backoff * 2).min(cfg.backoff_cap);
            false
        };

        // Ensure a connection (with the task handshake done). The timed
        // handshake doubles as the RTT model's overhead probe.
        if conn.is_none() {
            let handshake_started = reg.now_micros();
            match Conn::open(&worker.addr, task, cfg, &**transport) {
                Ok(c) => {
                    worker.note_handshake_rtt(reg.now_micros().saturating_sub(handshake_started));
                    conn = Some(c);
                }
                Err(_) => {
                    if transient(&mut conn, &claimed) {
                        return None;
                    }
                    continue;
                }
            }
        }

        // One frame out, one frame back, for the whole claim. RTT reads
        // the registry clock so deterministic tests (ManualClock) see
        // exact latencies.
        let started;
        let sent = {
            // Serializing and writing the frame is dispatcher compute:
            // hold the transport's busy bracket (a no-op on TCP) so a
            // simulated clock cannot advance while this thread is
            // runnable but descheduled by a loaded host.
            let _busy = crate::net::busy(&**transport);
            let evals: Vec<EvalRequest> = claimed
                .iter()
                .map(|&i| EvalRequest {
                    id: i,
                    genes: genomes[i].clone(),
                })
                .collect();
            worker
                .stats
                .update(|s| s.dispatched += claimed.len() as u64);
            Metrics::add(&metrics.remote_dispatched, claimed.len() as u64);
            Metrics::bump(&metrics.remote_batches);
            started = reg.now_micros();
            conn.as_mut().expect("connection exists").send_batch(&evals)
        };
        let expected = match sent {
            Ok(id) => id,
            Err(_) => {
                if transient(&mut conn, &claimed) {
                    return None;
                }
                continue;
            }
        };

        let live = conn.as_mut().expect("connection exists");
        live.set_batch_deadline(cfg, claimed.len());
        let mut pending = claimed;
        // A warm connection can carry a straggler: a link-level
        // duplicate of a response to an *earlier* batch, delivered after
        // that batch already committed. Its id is below `expected`
        // (ids are monotonic per connection), so discard it and keep
        // reading for the current batch — it is the network's fault,
        // not the worker's.
        let received = loop {
            let r = live.recv_batch(&**transport);
            if let RecvBatch::Ok(id, _) = &r {
                if *id < expected {
                    stale_batches.inc();
                    continue;
                }
            }
            break r;
        };
        match received {
            RecvBatch::Ok(batch_id, results) => {
                // Committing results is compute too: same bracket, so
                // the commit-to-next-claim stretch adds no virtual time.
                let _busy = crate::net::busy(&**transport);
                let rtt = reg.now_micros().saturating_sub(started);
                *busy_micros += rtt;
                // Commit delivered fitnesses first — they are real
                // measurements of a pure function and stand regardless
                // of what else the response got wrong.
                let mut violation = batch_id != expected;
                let mut delivered: u64 = 0;
                if !violation {
                    for (id, outcome) in results {
                        let Some(pos) = pending.iter().position(|&i| i == id) else {
                            // An id we never sent (or already answered
                            // in this batch): protocol violation.
                            violation = true;
                            break;
                        };
                        match outcome {
                            EvalOutcome::Fitness(fitness) => {
                                pending.swap_remove(pos);
                                if ledger.resolve(id, fitness) {
                                    delivered += 1;
                                    Metrics::bump(&metrics.remote_completed);
                                }
                            }
                            EvalOutcome::Error(_) => {
                                // The worker could not evaluate a genome
                                // every healthy worker can: evict, and
                                // leave the item pending for re-dispatch.
                                violation = true;
                                break;
                            }
                        }
                    }
                }
                if delivered > 0 {
                    rpc_latency.record(rtt);
                    batch_sizes.record(delivered);
                    worker.stats.update(|s| {
                        s.completed += delivered;
                        s.rtt_micros += rtt;
                    });
                    worker.note_batch_rtt(delivered, rtt);
                    worker.touch_at(transport.now_micros());
                }
                if violation || !pending.is_empty() {
                    // A batch-id mismatch, a bogus id, a per-item error,
                    // or silently omitted answers: this worker cannot be
                    // trusted with re-sends.
                    worker.evict(metrics, reg);
                    requeue(ledger, &pending, worker, cfg, metrics, reg);
                    return None;
                }
                consecutive = 0;
                backoff = cfg.backoff_base;
            }
            RecvBatch::Timeout => {
                worker.stats.update(|s| s.timeouts += 1);
                Metrics::bump(&metrics.remote_timeouts);
                reg.counter(&obs::labeled("dispatch_timeouts", &worker_label))
                    .inc();
                if transient(&mut conn, &pending) {
                    return None;
                }
            }
            RecvBatch::Closed => {
                if transient(&mut conn, &pending) {
                    return None;
                }
            }
            RecvBatch::Violation => {
                worker.evict(metrics, reg);
                requeue(ledger, &pending, worker, cfg, metrics, reg);
                return None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_cfg() -> DispatchConfig {
        DispatchConfig {
            connect_timeout: Duration::from_millis(200),
            request_timeout: Duration::from_millis(300),
            backoff_base: Duration::from_millis(5),
            backoff_cap: Duration::from_millis(20),
            stale_after: Duration::from_millis(100),
            ..DispatchConfig::default()
        }
    }

    #[test]
    fn pool_add_register_heartbeat() {
        let pool = WorkerPool::new(fast_cfg());
        assert!(pool.is_empty());
        assert!(pool.register("127.0.0.1:9"));
        assert!(!pool.register("127.0.0.1:9"), "re-register is a refresh");
        pool.heartbeat("127.0.0.1:10");
        assert_eq!(pool.all().len(), 2);
        assert_eq!(pool.live().len(), 2);
        assert!(pool.all().iter().all(|w| w.registered));
    }

    #[test]
    fn static_workers_are_not_swept() {
        let metrics = Metrics::new();
        let pool = WorkerPool::with_workers(fast_cfg(), &["127.0.0.1:9".into()]);
        std::thread::sleep(Duration::from_millis(150));
        pool.sweep_stale(&metrics);
        assert_eq!(pool.live().len(), 1);
    }

    #[test]
    fn stale_registered_worker_is_evicted_and_heartbeat_revives() {
        let metrics = Metrics::new();
        let pool = WorkerPool::new(fast_cfg());
        pool.register("127.0.0.1:9");
        std::thread::sleep(Duration::from_millis(150));
        pool.sweep_stale(&metrics);
        assert!(pool.live().is_empty());
        assert_eq!(metrics.remote_evictions.load(Ordering::Relaxed), 1);
        pool.heartbeat("127.0.0.1:9");
        assert_eq!(pool.live().len(), 1);
        assert_eq!(pool.all().len(), 1, "revival must not duplicate");
    }

    #[test]
    fn eviction_counts_once_per_transition() {
        let metrics = Metrics::new();
        let reg = obs::Registry::new();
        let w = Worker::new("x:1".into(), false);
        w.evict(&metrics, &reg);
        w.evict(&metrics, &reg);
        assert_eq!(w.stats.read().evictions, 1);
        assert_eq!(
            reg.snapshot().counter("dispatch_evictions{worker=\"x:1\"}"),
            1
        );
        assert!(!w.is_alive());
    }

    #[test]
    fn worker_liveness_follows_the_supplied_clock() {
        let w = Worker::new("x:1".into(), true);
        w.touch_at(1_000_000);
        assert!(w.seen_within(1_050_000, Duration::from_millis(100)));
        assert!(!w.seen_within(1_200_001, Duration::from_millis(100)));
        // touch_at never moves the clock backwards.
        w.touch_at(500_000);
        assert!(w.seen_within(1_050_000, Duration::from_millis(100)));
    }

    #[test]
    fn worker_snapshot_derives_mean_rtt() {
        let w = Worker::new("x:1".into(), true);
        w.stats.update(|s| {
            s.completed += 4;
            s.rtt_micros += 8000;
        });
        let s = w.snapshot();
        assert_eq!(s.addr, "x:1");
        assert!(s.registered);
        assert!((s.mean_rtt_ms - 2.0).abs() < 1e-9);
    }

    #[test]
    fn unprimed_batch_target_is_max_inflight() {
        let w = Worker::new("x:1".into(), false);
        assert_eq!(w.batch_target(8), 8);
        assert_eq!(w.batch_target(1), 1);
        assert_eq!(w.batch_target(0), 1, "zero max_inflight clamps to one");
    }

    #[test]
    fn fast_link_with_slow_evals_shrinks_batches_to_one() {
        // Localhost-shaped: ~100µs round-trip overhead, ~30ms per eval.
        // One eval amortizes the overhead 300-fold already, so the
        // target drops to 1 and the queue load-balances per genome.
        let w = Worker::new("x:1".into(), false);
        w.note_handshake_rtt(100);
        w.note_batch_rtt(8, 100 + 8 * 30_000);
        assert_eq!(w.batch_target(8), 1);
    }

    #[test]
    fn slow_link_with_fast_evals_grows_batches_to_the_cap() {
        // WAN-shaped: 200ms round trips, microsecond evals. The
        // overhead dominates, so batches grow to max_inflight.
        let w = Worker::new("x:1".into(), false);
        w.note_handshake_rtt(200_000);
        w.note_batch_rtt(8, 200_000 + 8 * 50);
        assert_eq!(w.batch_target(8), 8);
        assert_eq!(w.batch_target(64), 64);
    }

    #[test]
    fn batch_target_stays_within_bounds_as_the_model_moves() {
        let w = Worker::new("x:1".into(), false);
        for (hs, len, rtt) in [
            (0u64, 1u64, 0u64),
            (u64::MAX, 1, u64::MAX),
            (50, 8, 40),
            (1_000_000, 4, 3),
            (3, 64, 9_000_000),
        ] {
            w.note_handshake_rtt(hs);
            w.note_batch_rtt(len, rtt);
            for max_inflight in [0usize, 1, 2, 8, 1024] {
                let t = w.batch_target(max_inflight);
                assert!(t >= 1, "target {t} below 1");
                assert!(
                    t <= max_inflight.max(1),
                    "target {t} above cap {max_inflight}"
                );
            }
        }
    }

    #[test]
    fn ledger_resolve_is_exactly_once() {
        let ledger = BatchLedger::new(3, 0);
        assert_eq!(ledger.remaining(), 3);
        assert!(ledger.resolve(1, 0.5));
        assert!(!ledger.resolve(1, 9.9), "double-commit must be refused");
        assert_eq!(ledger.remaining(), 2);
        let claimed = ledger.claim(8);
        assert_eq!(claimed, vec![0, 1, 2]);
        ledger.requeue(&[0, 2]);
        assert_eq!(ledger.claim(1), vec![0]);
        assert!(ledger.resolve(0, 1.0));
        assert!(ledger.resolve(2, 2.0));
        assert_eq!(ledger.remaining(), 0);
        let results = ledger.into_results();
        assert_eq!(results[0], Some(1.0));
        assert_eq!(results[1], Some(0.5), "first commit wins");
        assert_eq!(results[2], Some(2.0));
    }

    #[test]
    fn unreachable_pool_falls_back_to_local() {
        let metrics = Arc::new(Metrics::new());
        // A port nothing listens on: connect fails fast, worker evicts,
        // and every genome lands on the fallback path.
        let pool = Arc::new(WorkerPool::with_workers(
            fast_cfg(),
            &["127.0.0.1:1".into()],
        ));
        let eval = RemoteEvaluator::new(&pool, Json::Null, &metrics, |g| g[0] as f64 * 2.0);
        let scores = eval.evaluate(&[vec![3], vec![5]]);
        assert_eq!(scores, vec![6.0, 10.0]);
        assert_eq!(metrics.remote_fallback_evals.load(Ordering::Relaxed), 2);
        assert!(metrics.remote_evictions.load(Ordering::Relaxed) >= 1);
        assert!(pool.live().is_empty());
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let metrics = Arc::new(Metrics::new());
        let pool = Arc::new(WorkerPool::new(fast_cfg()));
        let eval = RemoteEvaluator::new(&pool, Json::Null, &metrics, |_| 0.0);
        assert!(eval.evaluate(&[]).is_empty());
        assert!(eval.begin(&[]).wait().is_empty());
    }
}
