//! The remote-evaluation dispatch layer: a [`WorkerPool`] of `evald`
//! processes and a [`RemoteEvaluator`] that fans a GA generation's
//! cache-miss evaluations out over them.
//!
//! The paper's GA spends essentially all of its time in fitness
//! measurement (§4 — hours of repeated benchmark runs per tuning cell),
//! so this is the tier that scales horizontally. Design constraints:
//!
//! * **Bit-identical to local.** Fitness is a pure function of the genome
//!   and results merge into the GA memo table keyed by genome, so the
//!   assignment of genomes to workers — and any amount of retrying,
//!   failover or local fallback — cannot change the search trajectory.
//! * **Production robustness.** Per-request timeouts, capped exponential
//!   backoff on reconnects, eviction of workers that send garbage
//!   (malformed / oversized frames) or keep failing health checks,
//!   re-dispatch of work orphaned by a dead worker, and bounded
//!   outstanding-requests-per-worker backpressure
//!   ([`DispatchConfig::max_inflight`]).
//! * **Graceful degradation.** Genomes no live worker could answer are
//!   evaluated through the caller-supplied local fallback, so a job
//!   finishes even if every worker dies mid-generation.
//!
//! Every socket, sleep, and clock read goes through the
//! [`crate::net::Transport`] seam, so the identical dispatch logic runs
//! on real TCP in production and on the simulated network (virtual
//! clock, seeded faults) under `crates/sim`.
//!
//! The wire conversation with one worker (line-delimited JSON, the same
//! framing as the `tuned` protocol):
//!
//! ```text
//! → {"cmd":"task","job":{...JobSpec...}}       once per connection
//! ← {"ok":true}
//! → {"cmd":"eval","id":7,"genes":[23,7,5,...]}  pipelined, ≤ max_inflight
//! ← {"ok":true,"id":7,"fitness":0.9482...}
//! ```

use std::collections::VecDeque;
use std::io::{BufReader, BufWriter, Write as _};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use ga::{Evaluator, Genome};

use crate::checkpoint::f64_from_json;
use crate::json::Json;
use crate::metrics::Metrics;
use crate::net::{NetStream, TcpTransport, Transport};
use crate::proto::{read_frame, write_frame, Frame};

/// Dispatcher tunables.
#[derive(Debug, Clone)]
pub struct DispatchConfig {
    /// Connect timeout per attempt.
    pub connect_timeout: Duration,
    /// How long to wait for one eval response before declaring a timeout
    /// and re-dispatching the outstanding work.
    pub request_timeout: Duration,
    /// First retry backoff; doubles per consecutive failure.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
    /// Consecutive transient failures (connect errors, timeouts, dropped
    /// connections) before a worker is evicted from the pool.
    pub max_consecutive_failures: u32,
    /// Maximum eval requests in flight on one worker connection — the
    /// backpressure bound. Higher values pipeline better over slow links;
    /// lower values spread a small generation more evenly.
    pub max_inflight: usize,
    /// A registered (heartbeating) worker whose last heartbeat is older
    /// than this is considered gone and evicted. Statically configured
    /// workers are exempt — they never heartbeat.
    pub stale_after: Duration,
    /// How long a dispatch thread with nothing left to claim dozes
    /// before re-checking the queue (work re-appears there when another
    /// worker times out and its claims are re-dispatched).
    pub idle_poll: Duration,
    /// **Test hook.** When `false`, work claimed by a failing worker is
    /// silently dropped instead of returned to the queue — the exact
    /// lost-work bug class the simulation sweep exists to catch. Never
    /// disable outside a harness proving the harness.
    pub redispatch: bool,
}

impl Default for DispatchConfig {
    fn default() -> Self {
        Self {
            connect_timeout: Duration::from_secs(2),
            request_timeout: Duration::from_secs(10),
            backoff_base: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(2),
            max_consecutive_failures: 3,
            max_inflight: 8,
            stale_after: Duration::from_secs(10),
            idle_poll: Duration::from_millis(2),
            redispatch: true,
        }
    }
}

/// One worker's counter values (mirrored into the daemon-wide
/// [`Metrics`] aggregates as they are bumped).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct WorkerCounters {
    /// Eval requests written to this worker (including re-sends).
    pub dispatched: u64,
    /// Eval responses successfully received.
    pub completed: u64,
    /// Requests returned to the queue after a failure on this worker.
    pub retries: u64,
    /// Response waits that hit the request timeout.
    pub timeouts: u64,
    /// Times this worker was evicted from the live set.
    pub evictions: u64,
    /// Accumulated dispatch-to-response latency, microseconds.
    pub rtt_micros: u64,
}

/// Per-worker monotonic counters behind one lock, so related fields
/// (e.g. `completed` and `rtt_micros`) always move — and are read —
/// together. Independent atomics here once let a `metrics` reply observe
/// `completed` bumped but `rtt_micros` not yet, skewing the derived mean
/// RTT; a locked [`WorkerStats::update`] makes every snapshot a
/// consistent point in time.
#[derive(Debug, Default)]
pub struct WorkerStats {
    inner: Mutex<WorkerCounters>,
}

impl WorkerStats {
    /// Applies one atomic multi-field update.
    pub fn update(&self, f: impl FnOnce(&mut WorkerCounters)) {
        f(&mut self.inner.lock().expect("worker stats poisoned"));
    }

    /// A consistent point-in-time copy of every counter.
    #[must_use]
    pub fn read(&self) -> WorkerCounters {
        *self.inner.lock().expect("worker stats poisoned")
    }
}

/// One worker endpoint and its health. Liveness timestamps are
/// transport-clock micros supplied by the pool, so a simulated run's
/// staleness sweeps follow the virtual clock.
#[derive(Debug)]
pub struct Worker {
    /// The `host:port` the worker's eval server listens on.
    pub addr: String,
    /// Whether the worker announced itself via `register` (and is
    /// therefore expected to heartbeat) or came from static config.
    pub registered: bool,
    /// Counters.
    pub stats: WorkerStats,
    alive: AtomicBool,
    last_seen: AtomicU64,
}

impl Worker {
    /// A standalone worker handle (pools build their own via
    /// [`WorkerPool::add`]; tests exercise counter semantics directly).
    #[must_use]
    pub fn new(addr: String, registered: bool) -> Self {
        Self {
            addr,
            registered,
            stats: WorkerStats::default(),
            alive: AtomicBool::new(true),
            last_seen: AtomicU64::new(0),
        }
    }

    /// Whether the worker is currently in the live set.
    #[must_use]
    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::SeqCst)
    }

    /// Records proof of life (heartbeat received, or a response arrived)
    /// at transport time `now` (micros).
    pub fn touch_at(&self, now: u64) {
        self.last_seen.fetch_max(now, Ordering::SeqCst);
    }

    fn seen_within(&self, now: u64, window: Duration) -> bool {
        let age = now.saturating_sub(self.last_seen.load(Ordering::SeqCst));
        age <= window.as_micros() as u64
    }

    /// Removes the worker from the live set, bumping eviction counters
    /// exactly once per transition.
    pub fn evict(&self, metrics: &Metrics, reg: &obs::Registry) {
        if self.alive.swap(false, Ordering::SeqCst) {
            self.stats.update(|s| s.evictions += 1);
            Metrics::bump(&metrics.remote_evictions);
            reg.counter(&obs::labeled(
                "dispatch_evictions",
                &[("worker", &self.addr)],
            ))
            .inc();
        }
    }

    fn revive_at(&self, now: u64) {
        self.touch_at(now);
        self.alive.store(true, Ordering::SeqCst);
    }

    /// A plain-data copy of the worker's state for the `metrics` verb.
    /// All counters come from **one** locked read, so derived values
    /// (mean RTT) can never mix fields from different instants.
    #[must_use]
    pub fn snapshot(&self) -> WorkerSnapshot {
        let s = self.stats.read();
        WorkerSnapshot {
            addr: self.addr.clone(),
            alive: self.is_alive(),
            registered: self.registered,
            dispatched: s.dispatched,
            completed: s.completed,
            retries: s.retries,
            timeouts: s.timeouts,
            evictions: s.evictions,
            mean_rtt_ms: if s.completed > 0 {
                s.rtt_micros as f64 / s.completed as f64 / 1000.0
            } else {
                0.0
            },
        }
    }
}

/// A point-in-time copy of one worker's counters.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerSnapshot {
    /// Worker address.
    pub addr: String,
    /// Whether the worker is in the live set.
    pub alive: bool,
    /// Self-registered (heartbeating) vs. statically configured.
    pub registered: bool,
    /// Requests written to the worker.
    pub dispatched: u64,
    /// Responses received.
    pub completed: u64,
    /// Requests re-dispatched after a failure here.
    pub retries: u64,
    /// Request-timeout events.
    pub timeouts: u64,
    /// Eviction events.
    pub evictions: u64,
    /// Mean dispatch-to-response latency, milliseconds.
    pub mean_rtt_ms: f64,
}

/// The shared registry of evaluator workers: static config entries plus
/// anything that `register`ed at runtime.
pub struct WorkerPool {
    config: DispatchConfig,
    workers: Mutex<Vec<Arc<Worker>>>,
    obs: Arc<obs::Registry>,
    transport: Arc<dyn Transport>,
}

impl WorkerPool {
    /// An empty pool recording into the process-wide obs registry,
    /// dialing over real TCP.
    #[must_use]
    pub fn new(config: DispatchConfig) -> Self {
        Self {
            config,
            workers: Mutex::new(Vec::new()),
            obs: Arc::clone(obs::global()),
            transport: TcpTransport::shared(),
        }
    }

    /// Redirects the pool's latency histograms and event counters to
    /// `registry` (tests inject one built on a `ManualClock`).
    pub fn set_obs(&mut self, registry: Arc<obs::Registry>) {
        self.obs = registry;
    }

    /// The registry this pool records into.
    #[must_use]
    pub fn obs(&self) -> &Arc<obs::Registry> {
        &self.obs
    }

    /// Redirects the pool's sockets, sleeps, and liveness clock to
    /// `transport` (the sim harness injects its simulated network).
    pub fn set_transport(&mut self, transport: Arc<dyn Transport>) {
        self.transport = transport;
    }

    /// The transport this pool dials over.
    #[must_use]
    pub fn transport(&self) -> &Arc<dyn Transport> {
        &self.transport
    }

    /// A pool pre-seeded with statically configured worker addresses.
    #[must_use]
    pub fn with_workers(config: DispatchConfig, addrs: &[String]) -> Self {
        let pool = Self::new(config);
        for a in addrs {
            pool.add(a, false);
        }
        pool
    }

    /// The dispatch tunables.
    #[must_use]
    pub fn config(&self) -> &DispatchConfig {
        &self.config
    }

    /// Adds (or revives) a worker. Returns `true` if the address was new.
    pub fn add(&self, addr: &str, registered: bool) -> bool {
        let now = self.transport.now_micros();
        let mut workers = self.workers.lock().expect("worker pool poisoned");
        if let Some(w) = workers.iter().find(|w| w.addr == addr) {
            w.revive_at(now);
            return false;
        }
        let w = Worker::new(addr.to_string(), registered);
        w.touch_at(now);
        workers.push(Arc::new(w));
        true
    }

    /// Handles a `register` announcement from a worker process.
    pub fn register(&self, addr: &str) -> bool {
        self.add(addr, true)
    }

    /// Handles a heartbeat: refreshes (auto-registering an address the
    /// pool has never seen, e.g. after a daemon restart).
    pub fn heartbeat(&self, addr: &str) {
        self.add(addr, true);
    }

    /// Whether the pool has no workers at all (live or dead).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.workers
            .lock()
            .expect("worker pool poisoned")
            .is_empty()
    }

    /// Every worker, in registration order.
    #[must_use]
    pub fn all(&self) -> Vec<Arc<Worker>> {
        self.workers.lock().expect("worker pool poisoned").clone()
    }

    /// The live workers.
    #[must_use]
    pub fn live(&self) -> Vec<Arc<Worker>> {
        self.all().into_iter().filter(|w| w.is_alive()).collect()
    }

    /// Point-in-time counters for every worker.
    #[must_use]
    pub fn snapshots(&self) -> Vec<WorkerSnapshot> {
        self.all().iter().map(|w| w.snapshot()).collect()
    }

    /// Health check: evicts registered workers whose heartbeat went
    /// stale. Static workers are exempt (they never heartbeat; request
    /// failures evict them instead).
    pub fn sweep_stale(&self, metrics: &Metrics) {
        let now = self.transport.now_micros();
        for w in self.all() {
            if w.registered && w.is_alive() && !w.seen_within(now, self.config.stale_after) {
                w.evict(metrics, &self.obs);
            }
        }
    }

    /// Health check: pings evicted workers and revives any that answer —
    /// a worker that restarts on the same address rejoins the pool
    /// without re-registering.
    pub fn probe_dead(&self) {
        for w in self.all() {
            if !w.is_alive() && ping(&w.addr, &self.config, &*self.transport) {
                w.revive_at(self.transport.now_micros());
            }
        }
    }
}

/// A quick liveness probe: connect and exchange a `ping`.
fn ping(addr: &str, cfg: &DispatchConfig, transport: &dyn Transport) -> bool {
    let Ok(stream) = transport.connect(addr, cfg.connect_timeout) else {
        return false;
    };
    let _ = stream.set_read_timeout(Some(cfg.connect_timeout));
    let Ok(read_half) = stream.try_clone() else {
        return false;
    };
    let mut writer = BufWriter::new(stream);
    if write_frame(
        &mut writer,
        &Json::obj(vec![("cmd", Json::Str("ping".into()))]),
    )
    .is_err()
    {
        return false;
    }
    drop(writer);
    let mut reader = BufReader::new(read_half);
    match read_frame(&mut reader) {
        Frame::Line(line) => {
            crate::json::parse(&line)
                .ok()
                .and_then(|v| v.get("ok").and_then(Json::as_bool))
                == Some(true)
        }
        _ => false,
    }
}

/// What one attempt to read an eval response produced.
enum Recv {
    /// `(request id, fitness)`.
    Ok(usize, f64),
    /// The read timed out; outstanding work should be re-dispatched.
    Timeout,
    /// The connection died (EOF or I/O error) — worker crash or restart.
    Closed,
    /// The worker sent garbage (malformed JSON, an oversized frame, an
    /// error envelope, an unknown id): grounds for immediate eviction.
    Violation,
}

/// One pipelined connection to a worker's eval server.
struct Conn {
    reader: BufReader<Box<dyn NetStream>>,
    writer: BufWriter<Box<dyn NetStream>>,
}

impl Conn {
    /// Connects and performs the `task` handshake.
    fn open(
        addr: &str,
        task: &Json,
        cfg: &DispatchConfig,
        transport: &dyn Transport,
    ) -> Result<Self, String> {
        let stream = transport
            .connect(addr, cfg.connect_timeout)
            .map_err(|e| format!("connect {addr}: {e}"))?;
        stream
            .set_read_timeout(Some(cfg.request_timeout))
            .map_err(|e| format!("set timeout: {e}"))?;
        let _ = stream.set_nodelay(true);
        let write_half = stream.try_clone().map_err(|e| format!("clone: {e}"))?;
        let mut conn = Self {
            reader: BufReader::new(stream),
            writer: BufWriter::new(write_half),
        };
        let hello = Json::obj(vec![
            ("cmd", Json::Str("task".into())),
            ("job", task.clone()),
        ]);
        write_frame(&mut conn.writer, &hello).map_err(|e| format!("task send: {e}"))?;
        match read_frame(&mut conn.reader) {
            Frame::Line(line) => {
                let ok = crate::json::parse(&line)
                    .ok()
                    .and_then(|v| v.get("ok").and_then(Json::as_bool))
                    == Some(true);
                if ok {
                    Ok(conn)
                } else {
                    Err("task handshake rejected".into())
                }
            }
            Frame::Eof => Err("connection closed during handshake".into()),
            Frame::Oversized => Err("oversized handshake response".into()),
            Frame::Err(e) => Err(format!("handshake read: {e}")),
        }
    }

    /// Writes one eval request (flushes immediately — requests are tiny).
    fn send_eval(&mut self, id: usize, genes: &[i64]) -> std::io::Result<()> {
        let req = Json::obj(vec![
            ("cmd", Json::Str("eval".into())),
            ("id", Json::Int(id as i64)),
            (
                "genes",
                Json::Arr(genes.iter().map(|&g| Json::Int(g)).collect()),
            ),
        ]);
        let mut text = req.to_text();
        text.push('\n');
        self.writer.write_all(text.as_bytes())?;
        self.writer.flush()
    }

    /// Reads one eval response.
    fn recv(&mut self) -> Recv {
        match read_frame(&mut self.reader) {
            Frame::Line(line) => {
                let Ok(v) = crate::json::parse(&line) else {
                    return Recv::Violation;
                };
                if v.get("ok").and_then(Json::as_bool) != Some(true) {
                    return Recv::Violation;
                }
                match (
                    v.get("id").and_then(Json::as_usize),
                    v.get("fitness").and_then(f64_from_json),
                ) {
                    (Some(id), Some(fitness)) => Recv::Ok(id, fitness),
                    _ => Recv::Violation,
                }
            }
            Frame::Eof => Recv::Closed,
            Frame::Oversized => Recv::Violation,
            Frame::Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                Recv::Timeout
            }
            Frame::Err(_) => Recv::Closed,
        }
    }
}

/// The shared state of one in-flight generation batch.
struct Batch<'g> {
    genomes: &'g [Genome],
    /// Indices awaiting dispatch (re-dispatched work returns here).
    queue: Mutex<VecDeque<usize>>,
    /// `results[i]` is the fitness of `genomes[i]` once known.
    results: Mutex<Vec<Option<f64>>>,
    /// Unresolved genome count; worker threads exit when it hits zero.
    remaining: AtomicUsize,
}

/// A [`ga::Evaluator`] that fans batches out over a [`WorkerPool`],
/// falling back to a local fitness function for anything the pool could
/// not answer.
pub struct RemoteEvaluator<'a> {
    pool: &'a WorkerPool,
    task: Json,
    metrics: &'a Metrics,
    fallback: Box<dyn Fn(&[i64]) -> f64 + Sync + 'a>,
}

impl<'a> RemoteEvaluator<'a> {
    /// Builds an evaluator for one job. `task` is the job-spec JSON sent
    /// to each worker in the per-connection `task` handshake; `fallback`
    /// is the local fitness path (must compute the same pure function the
    /// workers do).
    pub fn new(
        pool: &'a WorkerPool,
        task: Json,
        metrics: &'a Metrics,
        fallback: impl Fn(&[i64]) -> f64 + Sync + 'a,
    ) -> Self {
        Self {
            pool,
            task,
            metrics,
            fallback: Box::new(fallback),
        }
    }
}

impl Evaluator for RemoteEvaluator<'_> {
    fn evaluate(&self, genomes: &[Genome]) -> Vec<f64> {
        if genomes.is_empty() {
            return Vec::new();
        }
        self.pool.sweep_stale(self.metrics);
        self.pool.probe_dead();
        let workers = self.pool.live();
        let batch = Batch {
            genomes,
            queue: Mutex::new((0..genomes.len()).collect()),
            results: Mutex::new(vec![None; genomes.len()]),
            remaining: AtomicUsize::new(genomes.len()),
        };
        if !workers.is_empty() {
            std::thread::scope(|scope| {
                for w in &workers {
                    let batch = &batch;
                    scope.spawn(move || {
                        drive_worker(
                            w,
                            batch,
                            &self.task,
                            self.pool.config(),
                            self.metrics,
                            self.pool.obs(),
                            self.pool.transport(),
                        );
                    });
                }
            });
        }
        let results = batch.results.into_inner().expect("batch results poisoned");
        results
            .into_iter()
            .enumerate()
            .map(|(i, r)| {
                r.unwrap_or_else(|| {
                    Metrics::bump(&self.metrics.remote_fallback_evals);
                    self.pool.obs().counter("dispatch_fallback_evals").inc();
                    // Fallback fitness is real compute: hold the busy
                    // bracket so a simulated clock can't advance past
                    // request deadlines elsewhere while we measure.
                    let _busy = crate::net::busy(&**self.pool.transport());
                    (self.fallback)(&genomes[i])
                })
            })
            .collect()
    }
}

/// Returns claimed-but-unresolved indices to the queue and counts them as
/// retries against this worker. With the [`DispatchConfig::redispatch`]
/// test hook off, the work is dropped on the floor instead — the lost-work
/// bug the simulation sweep must be able to catch.
fn requeue(
    batch: &Batch,
    idxs: &[usize],
    worker: &Worker,
    cfg: &DispatchConfig,
    metrics: &Metrics,
    reg: &obs::Registry,
) {
    if idxs.is_empty() {
        return;
    }
    worker.stats.update(|s| s.retries += idxs.len() as u64);
    Metrics::add(&metrics.remote_retries, idxs.len() as u64);
    reg.counter(&obs::labeled(
        "dispatch_retries",
        &[("worker", &worker.addr)],
    ))
    .add(idxs.len() as u64);
    if !cfg.redispatch {
        return;
    }
    let mut q = batch.queue.lock().expect("batch queue poisoned");
    for &i in idxs {
        q.push_back(i);
    }
}

/// One worker's dispatch loop for one batch: claim up to `max_inflight`
/// genomes, pipeline them over the connection, collect responses; on
/// transient failure back off (exponentially, capped) and re-dispatch; on
/// protocol violation or repeated failure, evict and exit. Every exit
/// path returns outstanding work to the queue first.
#[allow(clippy::too_many_lines)]
fn drive_worker(
    worker: &Worker,
    batch: &Batch,
    task: &Json,
    cfg: &DispatchConfig,
    metrics: &Metrics,
    reg: &obs::Registry,
    transport: &Arc<dyn Transport>,
) {
    let worker_label: [(&str, &str); 1] = [("worker", &worker.addr)];
    let rpc_latency = reg.histogram(&obs::labeled("rpc_latency_micros", &worker_label));
    let backoffs = reg.counter(&obs::labeled("dispatch_backoffs", &worker_label));
    let mut conn: Option<Conn> = None;
    let mut consecutive: u32 = 0;
    let mut backoff = cfg.backoff_base;
    loop {
        if batch.remaining.load(Ordering::SeqCst) == 0 {
            return;
        }
        // Claim up to max_inflight indices (the backpressure bound).
        let claimed: Vec<usize> = {
            let mut q = batch.queue.lock().expect("batch queue poisoned");
            let take = cfg.max_inflight.min(q.len());
            q.drain(..take).collect()
        };
        if claimed.is_empty() {
            // Everything is in flight on other workers; wait for either
            // completion or a timeout re-dispatch.
            transport.sleep(cfg.idle_poll);
            continue;
        }

        // Transient-failure bookkeeping, shared by every retry path.
        let mut transient = |conn: &mut Option<Conn>, pending: &[usize]| -> bool {
            *conn = None;
            requeue(batch, pending, worker, cfg, metrics, reg);
            consecutive += 1;
            if consecutive >= cfg.max_consecutive_failures {
                worker.evict(metrics, reg);
                return true; // exit the loop
            }
            backoffs.inc();
            transport.sleep(backoff);
            backoff = (backoff * 2).min(cfg.backoff_cap);
            false
        };

        // Ensure a connection (with the task handshake done).
        if conn.is_none() {
            match Conn::open(&worker.addr, task, cfg, &**transport) {
                Ok(c) => conn = Some(c),
                Err(_) => {
                    if transient(&mut conn, &claimed) {
                        return;
                    }
                    continue;
                }
            }
        }

        // Pipeline the claimed requests. RTT reads the registry clock so
        // deterministic tests (ManualClock) see exact latencies.
        let started = reg.now_micros();
        let mut send_failed = false;
        for &i in &claimed {
            worker.stats.update(|s| s.dispatched += 1);
            Metrics::bump(&metrics.remote_dispatched);
            if conn
                .as_mut()
                .expect("connection exists")
                .send_eval(i, &batch.genomes[i])
                .is_err()
            {
                send_failed = true;
                break;
            }
        }
        if send_failed {
            if transient(&mut conn, &claimed) {
                return;
            }
            continue;
        }

        // Collect the responses.
        let mut pending = claimed;
        while !pending.is_empty() {
            match conn.as_mut().expect("connection exists").recv() {
                Recv::Ok(id, fitness) => {
                    let Some(pos) = pending.iter().position(|&i| i == id) else {
                        // An id we never sent: protocol violation.
                        worker.evict(metrics, reg);
                        requeue(batch, &pending, worker, cfg, metrics, reg);
                        return;
                    };
                    pending.swap_remove(pos);
                    batch.results.lock().expect("batch results poisoned")[id] = Some(fitness);
                    batch.remaining.fetch_sub(1, Ordering::SeqCst);
                    let rtt = reg.now_micros().saturating_sub(started);
                    worker.stats.update(|s| {
                        s.completed += 1;
                        s.rtt_micros += rtt;
                    });
                    Metrics::bump(&metrics.remote_completed);
                    rpc_latency.record(rtt);
                    worker.touch_at(transport.now_micros());
                }
                Recv::Timeout => {
                    worker.stats.update(|s| s.timeouts += 1);
                    Metrics::bump(&metrics.remote_timeouts);
                    reg.counter(&obs::labeled("dispatch_timeouts", &worker_label))
                        .inc();
                    if transient(&mut conn, &pending) {
                        return;
                    }
                    pending.clear();
                }
                Recv::Closed => {
                    if transient(&mut conn, &pending) {
                        return;
                    }
                    pending.clear();
                }
                Recv::Violation => {
                    worker.evict(metrics, reg);
                    requeue(batch, &pending, worker, cfg, metrics, reg);
                    return;
                }
            }
        }
        if conn.is_some() {
            // The whole claimed set succeeded: reset the failure window.
            consecutive = 0;
            backoff = cfg.backoff_base;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_cfg() -> DispatchConfig {
        DispatchConfig {
            connect_timeout: Duration::from_millis(200),
            request_timeout: Duration::from_millis(300),
            backoff_base: Duration::from_millis(5),
            backoff_cap: Duration::from_millis(20),
            stale_after: Duration::from_millis(100),
            ..DispatchConfig::default()
        }
    }

    #[test]
    fn pool_add_register_heartbeat() {
        let pool = WorkerPool::new(fast_cfg());
        assert!(pool.is_empty());
        assert!(pool.register("127.0.0.1:9"));
        assert!(!pool.register("127.0.0.1:9"), "re-register is a refresh");
        pool.heartbeat("127.0.0.1:10");
        assert_eq!(pool.all().len(), 2);
        assert_eq!(pool.live().len(), 2);
        assert!(pool.all().iter().all(|w| w.registered));
    }

    #[test]
    fn static_workers_are_not_swept() {
        let metrics = Metrics::new();
        let pool = WorkerPool::with_workers(fast_cfg(), &["127.0.0.1:9".into()]);
        std::thread::sleep(Duration::from_millis(150));
        pool.sweep_stale(&metrics);
        assert_eq!(pool.live().len(), 1);
    }

    #[test]
    fn stale_registered_worker_is_evicted_and_heartbeat_revives() {
        let metrics = Metrics::new();
        let pool = WorkerPool::new(fast_cfg());
        pool.register("127.0.0.1:9");
        std::thread::sleep(Duration::from_millis(150));
        pool.sweep_stale(&metrics);
        assert!(pool.live().is_empty());
        assert_eq!(metrics.remote_evictions.load(Ordering::Relaxed), 1);
        pool.heartbeat("127.0.0.1:9");
        assert_eq!(pool.live().len(), 1);
        assert_eq!(pool.all().len(), 1, "revival must not duplicate");
    }

    #[test]
    fn eviction_counts_once_per_transition() {
        let metrics = Metrics::new();
        let reg = obs::Registry::new();
        let w = Worker::new("x:1".into(), false);
        w.evict(&metrics, &reg);
        w.evict(&metrics, &reg);
        assert_eq!(w.stats.read().evictions, 1);
        assert_eq!(
            reg.snapshot().counter("dispatch_evictions{worker=\"x:1\"}"),
            1
        );
        assert!(!w.is_alive());
    }

    #[test]
    fn worker_liveness_follows_the_supplied_clock() {
        let w = Worker::new("x:1".into(), true);
        w.touch_at(1_000_000);
        assert!(w.seen_within(1_050_000, Duration::from_millis(100)));
        assert!(!w.seen_within(1_200_001, Duration::from_millis(100)));
        // touch_at never moves the clock backwards.
        w.touch_at(500_000);
        assert!(w.seen_within(1_050_000, Duration::from_millis(100)));
    }

    #[test]
    fn worker_snapshot_derives_mean_rtt() {
        let w = Worker::new("x:1".into(), true);
        w.stats.update(|s| {
            s.completed += 4;
            s.rtt_micros += 8000;
        });
        let s = w.snapshot();
        assert_eq!(s.addr, "x:1");
        assert!(s.registered);
        assert!((s.mean_rtt_ms - 2.0).abs() < 1e-9);
    }

    #[test]
    fn unreachable_pool_falls_back_to_local() {
        let metrics = Metrics::new();
        // A port nothing listens on: connect fails fast, worker evicts,
        // and every genome lands on the fallback path.
        let pool = WorkerPool::with_workers(fast_cfg(), &["127.0.0.1:1".into()]);
        let eval = RemoteEvaluator::new(&pool, Json::Null, &metrics, |g| g[0] as f64 * 2.0);
        let scores = eval.evaluate(&[vec![3], vec![5]]);
        assert_eq!(scores, vec![6.0, 10.0]);
        assert_eq!(metrics.remote_fallback_evals.load(Ordering::Relaxed), 2);
        assert!(metrics.remote_evictions.load(Ordering::Relaxed) >= 1);
        assert!(pool.live().is_empty());
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let metrics = Metrics::new();
        let pool = WorkerPool::new(fast_cfg());
        let eval = RemoteEvaluator::new(&pool, Json::Null, &metrics, |_| 0.0);
        assert!(eval.evaluate(&[]).is_empty());
    }
}
