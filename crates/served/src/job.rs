//! The job model: what a client submits and what the daemon tracks.
//!
//! A [`JobSpec`] names a tuning cell exactly like the paper's Table 4 —
//! (scenario, goal, architecture) — plus the training suite and the
//! [`GaConfig`] driving the search. Specs serialize to the hand-rolled
//! [`crate::json`] form used both on the wire and in the run directory.

use ga::{CrossoverKind, GaConfig};
use jit::{AdaptConfig, ArchModel, Scenario};
use online::{DetectorConfig, OnlineConfig};
use tuner::{Goal, TuningTask};
use workloads::{benchmark_by_name, specjvm98, Benchmark, DriftKind, DriftPos, DriftSchedule};

use crate::json::{parse, u64_from_json, u64_to_json, Json};

/// The online re-tuning section of a [`JobSpec`]: the drift schedule
/// the workload follows and the detector that decides when to retune.
/// Legacy specs carry no `online` key and deserialize with the mode
/// off ([`JobSpec::online`] = `None`).
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineSpec {
    /// Total epochs (epoch 0 is the initial tune).
    pub epochs: u64,
    /// Drift schedule shape (`step` / `ramp` / `cyclic`).
    pub kind: DriftKind,
    /// Epochs per drift phase.
    pub period: u32,
    /// Distinct workload phases (phase 0 is the unmorphed suite).
    pub phases: u32,
    /// Seed of the workload morph streams.
    pub drift_seed: u64,
    /// Drift-detector probe window.
    pub window: usize,
    /// Drift-detector regression threshold, percent over baseline.
    pub threshold_pct: f64,
}

impl OnlineSpec {
    /// The drift schedule this spec describes.
    #[must_use]
    pub fn schedule(&self) -> DriftSchedule {
        DriftSchedule {
            kind: self.kind,
            period: self.period,
            phases: self.phases,
            seed: self.drift_seed,
        }
    }

    /// The full online policy configuration.
    #[must_use]
    pub fn config(&self) -> OnlineConfig {
        OnlineConfig {
            epochs: self.epochs,
            schedule: self.schedule(),
            detector: DetectorConfig {
                window: self.window,
                threshold_pct: self.threshold_pct,
            },
        }
    }

    /// Serializes the section.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("epochs", u64_to_json(self.epochs)),
            ("kind", Json::Str(self.kind.name().into())),
            ("period", Json::Int(i64::from(self.period))),
            ("phases", Json::Int(i64::from(self.phases))),
            ("drift_seed", u64_to_json(self.drift_seed)),
            ("window", Json::Int(self.window as i64)),
            ("threshold_pct", Json::Num(self.threshold_pct)),
        ])
    }

    /// Deserializes and validates the section.
    ///
    /// # Errors
    /// Missing/mistyped fields or degenerate values.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        let epochs = v
            .get("epochs")
            .and_then(u64_from_json)
            .ok_or("'online' needs integer 'epochs'")?;
        if epochs == 0 || epochs > 100_000 {
            return Err("'online.epochs' must be 1..=100000".into());
        }
        let kind_name = v
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("'online' needs a string 'kind'")?;
        let kind = DriftKind::by_name(kind_name)
            .ok_or_else(|| format!("unknown drift kind '{kind_name}' (use step|ramp|cyclic)"))?;
        let get_u32 = |key: &str, dflt: u32| -> Result<u32, String> {
            match v.get(key) {
                None | Some(Json::Null) => Ok(dflt),
                Some(x) => x
                    .as_usize()
                    .and_then(|n| u32::try_from(n).ok())
                    .ok_or(format!("'online.{key}' must be an integer")),
            }
        };
        let period = get_u32("period", 3)?;
        let phases = get_u32("phases", 3)?;
        if period == 0 || phases == 0 {
            return Err("'online.period' and 'online.phases' must be >= 1".into());
        }
        let drift_seed = match v.get("drift_seed") {
            None | Some(Json::Null) => 0,
            Some(x) => u64_from_json(x).ok_or("'online.drift_seed' must be a u64")?,
        };
        let window = match v.get("window") {
            None | Some(Json::Null) => DetectorConfig::default().window,
            Some(x) => x.as_usize().ok_or("'online.window' must be an integer")?,
        };
        if window == 0 || window > 64 {
            return Err("'online.window' must be 1..=64".into());
        }
        let threshold_pct = match v.get("threshold_pct") {
            None | Some(Json::Null) => DetectorConfig::default().threshold_pct,
            Some(x) => x
                .as_f64()
                .ok_or("'online.threshold_pct' must be a number")?,
        };
        if !(threshold_pct > 0.0) || !threshold_pct.is_finite() {
            return Err("'online.threshold_pct' must be a positive finite percentage".into());
        }
        Ok(Self {
            epochs,
            kind,
            period,
            phases,
            drift_seed,
            window,
            threshold_pct,
        })
    }
}

/// What a client submits: one tuning job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Display name, e.g. `"Opt:Tot"`.
    pub name: String,
    /// Compilation scenario.
    pub scenario: Scenario,
    /// Optimization goal.
    pub goal: Goal,
    /// Architecture preset name: `"x86-p4"` or `"ppc-g4"`.
    pub arch: String,
    /// Problem id (see [`problems::KNOWN`]): `"inline"` (the default,
    /// and what every pre-problems spec deserializes to), `"flags"`, or
    /// `"dss"`.
    pub problem: String,
    /// Training-suite benchmark names; empty means the full SPECjvm98
    /// suite (the paper's training set).
    pub suite: Vec<String>,
    /// GA configuration (the seed makes the whole job deterministic).
    pub ga: GaConfig,
    /// Search strategy spec (see [`search::build`]): `"ga"` (the
    /// default), `"random"`, `"hillclimb"`, `"anneal"`, `"grid"`, or a
    /// racing portfolio like `"race"` / `"race:ga+random+grid"`.
    pub strategy: String,
    /// Owning tenant for quota accounting and fair scheduling. Specs
    /// written before the shard subsystem carry no `tenant` key and
    /// deserialize to [`shard::DEFAULT_TENANT`].
    pub tenant: String,
    /// Online re-tuning mode: `Some` runs the job as a drifting-workload
    /// epoch loop with detection-triggered warm retunes; `None` (every
    /// legacy spec) is a plain offline tune.
    pub online: Option<OnlineSpec>,
    /// The workload position the suite is materialized at. Internal
    /// plumbing for per-epoch evaluation (`JobSpec::at_pos`): the
    /// daemon sends position-pinned specs to eval workers so their
    /// problem caches split per phase. `None` means phase 0.
    pub drift_pos: Option<DriftPos>,
}

impl JobSpec {
    /// Resolves the named architecture preset.
    ///
    /// # Errors
    /// Unknown architecture name.
    pub fn arch_model(&self) -> Result<ArchModel, String> {
        arch_by_name(&self.arch)
    }

    /// Builds the [`TuningTask`] this spec describes.
    ///
    /// # Errors
    /// Unknown architecture name.
    pub fn task(&self) -> Result<TuningTask, String> {
        Ok(TuningTask {
            name: self.name.clone(),
            scenario: self.scenario,
            goal: self.goal,
            arch: self.arch_model()?,
        })
    }

    /// Materializes the training suite — morphed to this spec's
    /// workload position when the job is online and pinned to one
    /// (`drift_pos`), so everything downstream (problem construction,
    /// store fingerprints, worker problem caches) sees the phase's
    /// workload without knowing about drift.
    ///
    /// # Errors
    /// Unknown benchmark name, or an explicitly empty suite.
    pub fn training(&self) -> Result<Vec<Benchmark>, String> {
        let base: Vec<Benchmark> = if self.suite.is_empty() {
            specjvm98()
        } else {
            self.suite
                .iter()
                .map(|name| {
                    benchmark_by_name(name).ok_or_else(|| format!("unknown benchmark '{name}'"))
                })
                .collect::<Result<_, _>>()?
        };
        match (&self.online, &self.drift_pos) {
            (Some(online), Some(pos)) => Ok(online.schedule().suite_for(&base, pos)),
            _ => Ok(base),
        }
    }

    /// A clone of this spec pinned to workload position `pos` — what
    /// the online runner evaluates one epoch against, locally and on
    /// eval workers.
    #[must_use]
    pub fn at_pos(&self, pos: DriftPos) -> Self {
        Self {
            drift_pos: Some(pos),
            ..self.clone()
        }
    }

    /// The adaptive-system model configuration (fixed: it models the VM,
    /// not the heuristic being tuned — see `jit::AdaptConfig`).
    #[must_use]
    pub fn adapt_cfg(&self) -> AdaptConfig {
        AdaptConfig::default()
    }

    /// Materializes the problem this spec tunes.
    ///
    /// # Errors
    /// Unknown problem/arch/benchmark names.
    pub fn build_problem(&self) -> Result<std::sync::Arc<dyn problems::Problem>, String> {
        problems::build(
            &self.problem,
            &self.task()?,
            &self.training()?,
            self.adapt_cfg(),
        )
    }

    /// Serializes the spec. The `online` and `drift_pos` keys are
    /// emitted only when set, so offline specs serialize byte-identically
    /// to every earlier release.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("name", Json::Str(self.name.clone())),
            ("scenario", Json::Str(scenario_name(self.scenario).into())),
            ("goal", Json::Str(self.goal.label().into())),
            ("arch", Json::Str(self.arch.clone())),
            ("problem", Json::Str(self.problem.clone())),
            (
                "suite",
                Json::Arr(self.suite.iter().map(|s| Json::Str(s.clone())).collect()),
            ),
            ("ga", ga_config_to_json(&self.ga)),
            ("strategy", Json::Str(self.strategy.clone())),
            ("tenant", Json::Str(self.tenant.clone())),
        ];
        if let Some(online) = &self.online {
            fields.push(("online", online.to_json()));
        }
        if let Some(pos) = &self.drift_pos {
            fields.push((
                "drift_pos",
                Json::Arr(vec![
                    Json::Int(i64::from(pos.phase)),
                    Json::Int(i64::from(pos.num)),
                    Json::Int(i64::from(pos.den)),
                ]),
            ));
        }
        Json::obj(fields)
    }

    /// Upper bound on the evaluations this job can spend: every search
    /// strategy — racing portfolios included — works under the shared
    /// proposal budget of `pop_size * generations` (see `search::core`),
    /// so this is the reservation the quota accountant holds during the
    /// job's lifetime.
    #[must_use]
    pub fn eval_estimate(&self) -> u64 {
        let budget = (self.ga.pop_size as u64).saturating_mul(self.ga.generations as u64);
        match &self.online {
            None => budget,
            // Online: one probe per epoch, plus the initial tune, plus
            // one warm retune per workload boundary (the detector only
            // fires on regression, and a retuned incumbent holds its
            // phase, so boundaries bound the steady-state retune count).
            Some(online) => {
                let tunes = 1 + online.schedule().boundaries(online.epochs);
                online.epochs.saturating_add(tunes.saturating_mul(budget))
            }
        }
    }

    /// Deserializes a spec and validates every referenced name, so a bad
    /// submit fails at the protocol layer rather than on a worker.
    ///
    /// # Errors
    /// Missing/mistyped fields or unknown scenario/goal/arch/benchmark
    /// names.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        let name = v
            .get("name")
            .and_then(Json::as_str)
            .ok_or("job needs a string 'name'")?
            .to_string();
        let scenario = scenario_by_name(
            v.get("scenario")
                .and_then(Json::as_str)
                .ok_or("job needs a string 'scenario'")?,
        )?;
        let goal = goal_by_name(
            v.get("goal")
                .and_then(Json::as_str)
                .ok_or("job needs a string 'goal'")?,
        )?;
        let arch = v
            .get("arch")
            .and_then(Json::as_str)
            .ok_or("job needs a string 'arch'")?
            .to_string();
        arch_by_name(&arch)?;
        // Specs written before the problems subsystem carry no "problem"
        // key; they are inlining jobs by definition.
        let problem = match v.get("problem") {
            None | Some(Json::Null) => "inline".to_string(),
            Some(p) => p.as_str().ok_or("'problem' must be a string")?.to_string(),
        };
        if !problems::is_known(&problem) {
            return Err(format!(
                "unknown problem '{problem}' (use {})",
                problems::KNOWN.join("|")
            ));
        }
        let suite = match v.get("suite") {
            None | Some(Json::Null) => Vec::new(),
            Some(s) => s
                .as_arr()
                .ok_or("'suite' must be an array of benchmark names")?
                .iter()
                .map(|b| {
                    b.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| "suite entries must be strings".to_string())
                })
                .collect::<Result<Vec<_>, _>>()?,
        };
        for b in &suite {
            if benchmark_by_name(b).is_none() {
                return Err(format!("unknown benchmark '{b}'"));
            }
        }
        let ga = match v.get("ga") {
            None | Some(Json::Null) => GaConfig::default(),
            Some(g) => ga_config_from_json(g)?,
        };
        if ga.pop_size < 2 || ga.elitism >= ga.pop_size || ga.threads == 0 || ga.generations == 0 {
            return Err("degenerate GA config (pop_size >= 2, elitism < pop_size, threads >= 1, generations >= 1)".into());
        }
        let strategy = match v.get("strategy") {
            None | Some(Json::Null) => "ga".to_string(),
            Some(s) => s.as_str().ok_or("'strategy' must be a string")?.to_string(),
        };
        search::validate_spec(&strategy)?;
        // Specs written before the shard subsystem carry no "tenant"
        // key; they belong to the default tenant.
        let tenant = match v.get("tenant") {
            None | Some(Json::Null) => shard::DEFAULT_TENANT.to_string(),
            Some(t) => t.as_str().ok_or("'tenant' must be a string")?.to_string(),
        };
        if tenant.is_empty() || tenant.len() > 64 {
            return Err("'tenant' must be 1..=64 characters".into());
        }
        // Specs written before the online subsystem carry no "online"
        // key; they are plain offline tunes.
        let online = match v.get("online") {
            None | Some(Json::Null) => None,
            Some(o) => Some(OnlineSpec::from_json(o)?),
        };
        let drift_pos = match v.get("drift_pos") {
            None | Some(Json::Null) => None,
            Some(p) => {
                let arr = p
                    .as_arr()
                    .ok_or("'drift_pos' must be a [phase, num, den] array")?;
                let nums: Vec<u32> = arr
                    .iter()
                    .map(|x| {
                        x.as_usize()
                            .and_then(|n| u32::try_from(n).ok())
                            .ok_or_else(|| "'drift_pos' entries must be integers".to_string())
                    })
                    .collect::<Result<_, _>>()?;
                let [phase, num, den] = nums[..] else {
                    return Err("'drift_pos' must have exactly 3 entries".into());
                };
                let online = online
                    .as_ref()
                    .ok_or("'drift_pos' requires an 'online' section")?;
                if den == 0 || num >= den || phase >= online.phases {
                    return Err("'drift_pos' out of range for the online schedule".into());
                }
                Some(DriftPos { phase, num, den })
            }
        };
        Ok(Self {
            name,
            scenario,
            goal,
            arch,
            problem,
            suite,
            ga,
            strategy,
            tenant,
            online,
            drift_pos,
        })
    }

    /// Parses a spec from JSON text.
    ///
    /// # Errors
    /// Propagates parse and validation errors.
    pub fn from_text(text: &str) -> Result<Self, String> {
        Self::from_json(&parse(text)?)
    }
}

/// Job lifecycle states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Waiting in the queue (also: recovered and waiting to resume).
    Queued,
    /// On a worker thread.
    Running,
    /// Finished; a result is available.
    Done,
    /// Errored out; see the job's `error` field.
    Failed,
    /// Canceled by request.
    Canceled,
}

impl JobState {
    /// Stable wire name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Canceled => "canceled",
        }
    }

    /// Whether the state is terminal.
    #[must_use]
    pub fn is_terminal(self) -> bool {
        matches!(self, JobState::Done | JobState::Failed | JobState::Canceled)
    }
}

/// Scenario wire names (`"opt"` / `"adapt"`).
#[must_use]
pub fn scenario_name(s: Scenario) -> &'static str {
    match s {
        Scenario::Opt => "opt",
        Scenario::Adapt => "adapt",
    }
}

/// Parses a scenario wire name.
///
/// # Errors
/// Unknown name.
pub fn scenario_by_name(name: &str) -> Result<Scenario, String> {
    match name {
        "opt" | "Opt" => Ok(Scenario::Opt),
        "adapt" | "Adapt" => Ok(Scenario::Adapt),
        _ => Err(format!("unknown scenario '{name}' (use opt|adapt)")),
    }
}

/// Parses a goal wire name (the paper's `Run`/`Tot`/`Bal` labels,
/// case-insensitive).
///
/// # Errors
/// Unknown name.
pub fn goal_by_name(name: &str) -> Result<Goal, String> {
    match name.to_ascii_lowercase().as_str() {
        "run" | "running" => Ok(Goal::Running),
        "tot" | "total" => Ok(Goal::Total),
        "bal" | "balance" => Ok(Goal::Balance),
        _ => Err(format!("unknown goal '{name}' (use run|tot|bal)")),
    }
}

/// Resolves an architecture preset by its `ArchModel::name`.
///
/// # Errors
/// Unknown name.
pub fn arch_by_name(name: &str) -> Result<ArchModel, String> {
    match name {
        "x86-p4" => Ok(ArchModel::pentium4()),
        "ppc-g4" => Ok(ArchModel::powerpc_g4()),
        _ => Err(format!("unknown arch '{name}' (use x86-p4|ppc-g4)")),
    }
}

/// Serializes a [`GaConfig`].
#[must_use]
pub fn ga_config_to_json(c: &GaConfig) -> Json {
    Json::obj(vec![
        ("pop_size", Json::Int(c.pop_size as i64)),
        ("generations", Json::Int(c.generations as i64)),
        ("tournament_size", Json::Int(c.tournament_size as i64)),
        ("crossover_prob", Json::Num(c.crossover_prob)),
        ("crossover_kind", Json::Str(c.crossover_kind.name().into())),
        ("mutation_prob", Json::Num(c.mutation_prob)),
        ("elitism", Json::Int(c.elitism as i64)),
        ("seed", u64_to_json(c.seed)),
        (
            "stagnation_limit",
            c.stagnation_limit
                .map_or(Json::Null, |l| Json::Int(l as i64)),
        ),
        ("threads", Json::Int(c.threads as i64)),
    ])
}

/// Deserializes a [`GaConfig`]; absent fields take the defaults.
///
/// # Errors
/// Mistyped fields.
pub fn ga_config_from_json(v: &Json) -> Result<GaConfig, String> {
    let d = GaConfig::default();
    let get_usize = |key: &str, dflt: usize| -> Result<usize, String> {
        match v.get(key) {
            None | Some(Json::Null) => Ok(dflt),
            Some(x) => x.as_usize().ok_or(format!("'{key}' must be an integer")),
        }
    };
    let get_f64 = |key: &str, dflt: f64| -> Result<f64, String> {
        match v.get(key) {
            None | Some(Json::Null) => Ok(dflt),
            Some(x) => x.as_f64().ok_or(format!("'{key}' must be a number")),
        }
    };
    let crossover_kind = match v.get("crossover_kind") {
        None | Some(Json::Null) => d.crossover_kind,
        Some(x) => {
            let name = x.as_str().ok_or("'crossover_kind' must be a string")?;
            CrossoverKind::from_name(name)
                .ok_or_else(|| format!("unknown crossover kind '{name}'"))?
        }
    };
    let seed = match v.get("seed") {
        None | Some(Json::Null) => d.seed,
        Some(x) => u64_from_json(x).ok_or("'seed' must be a u64 (number or decimal string)")?,
    };
    let stagnation_limit = match v.get("stagnation_limit") {
        None => d.stagnation_limit,
        Some(Json::Null) => None,
        Some(x) => Some(
            x.as_usize()
                .ok_or("'stagnation_limit' must be an integer or null")?,
        ),
    };
    Ok(GaConfig {
        pop_size: get_usize("pop_size", d.pop_size)?,
        generations: get_usize("generations", d.generations)?,
        tournament_size: get_usize("tournament_size", d.tournament_size)?,
        crossover_prob: get_f64("crossover_prob", d.crossover_prob)?,
        crossover_kind,
        mutation_prob: get_f64("mutation_prob", d.mutation_prob)?,
        elitism: get_usize("elitism", d.elitism)?,
        seed,
        stagnation_limit,
        threads: get_usize("threads", 1)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> JobSpec {
        JobSpec {
            name: "Opt:Tot".into(),
            scenario: Scenario::Opt,
            goal: Goal::Total,
            arch: "x86-p4".into(),
            problem: "inline".into(),
            suite: vec!["db".into(), "jess".into()],
            ga: GaConfig {
                pop_size: 8,
                generations: 10,
                threads: 1,
                seed: u64::MAX - 3,
                stagnation_limit: None,
                ..GaConfig::default()
            },
            strategy: "ga".into(),
            tenant: "default".into(),
            online: None,
            drift_pos: None,
        }
    }

    fn online_section() -> OnlineSpec {
        OnlineSpec {
            epochs: 9,
            kind: DriftKind::Step,
            period: 3,
            phases: 3,
            drift_seed: 17,
            window: 2,
            threshold_pct: 5.0,
        }
    }

    #[test]
    fn spec_roundtrips_through_json() {
        let s = spec();
        let text = s.to_json().to_text();
        let back = JobSpec::from_text(&text).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn online_spec_roundtrips_through_json() {
        let mut s = spec();
        s.online = Some(online_section());
        s.drift_pos = Some(DriftPos {
            phase: 1,
            num: 1,
            den: 3,
        });
        let back = JobSpec::from_text(&s.to_json().to_text()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn offline_spec_serialization_is_unchanged() {
        let s = spec();
        let text = s.to_json().to_text();
        assert!(
            !text.contains("online") && !text.contains("drift_pos"),
            "offline specs must serialize without online keys: {text}"
        );
    }

    #[test]
    fn legacy_spec_defaults_online_off() {
        let s =
            JobSpec::from_text(r#"{"name":"j","scenario":"adapt","goal":"bal","arch":"ppc-g4"}"#)
                .unwrap();
        assert!(s.online.is_none(), "legacy specs must load with online off");
        assert!(s.drift_pos.is_none());
    }

    #[test]
    fn online_section_rejects_degenerate_values() {
        for bad in [
            r#"{"epochs":0,"kind":"step"}"#,
            r#"{"epochs":5,"kind":"sine"}"#,
            r#"{"epochs":5,"kind":"step","period":0}"#,
            r#"{"epochs":5,"kind":"step","window":0}"#,
            r#"{"epochs":5,"kind":"step","threshold_pct":-3.0}"#,
            r#"{"kind":"step"}"#,
        ] {
            let v = crate::json::parse(bad).unwrap();
            assert!(OnlineSpec::from_json(&v).is_err(), "{bad}");
        }
    }

    #[test]
    fn drift_pos_requires_online_and_validates_range() {
        let base = r#"{"name":"j","scenario":"opt","goal":"tot","arch":"x86-p4"#;
        let no_online = format!(r#"{base}","drift_pos":[0,0,1]}}"#);
        assert!(JobSpec::from_text(&no_online).is_err());
        let out_of_range = format!(
            r#"{base}","online":{{"epochs":5,"kind":"step","phases":2}},"drift_pos":[7,0,1]}}"#
        );
        assert!(JobSpec::from_text(&out_of_range).is_err());
    }

    #[test]
    fn at_pos_pins_the_suite_to_a_phase() {
        let mut s = spec();
        s.online = Some(online_section());
        let base = s.training().unwrap();
        let phase0 = s.at_pos(DriftPos::at_phase(0));
        assert_eq!(phase0.training().unwrap()[0].spec, base[0].spec);
        let phase2 = s.at_pos(DriftPos::at_phase(2));
        assert_ne!(
            phase2.training().unwrap()[0].spec,
            base[0].spec,
            "a later phase must morph the suite"
        );
        // The pinned spec round-trips the wire (what eval workers see).
        let back = JobSpec::from_text(&phase2.to_json().to_text()).unwrap();
        assert_eq!(back, phase2);
    }

    #[test]
    fn online_eval_estimate_covers_probes_and_boundary_retunes() {
        let mut s = spec();
        assert_eq!(s.eval_estimate(), 80);
        s.online = Some(online_section());
        // Step, 9 epochs, period 3, 3 phases: boundaries at 3 and 6.
        // 9 probes + (1 initial + 2 retunes) * 80.
        assert_eq!(s.eval_estimate(), 9 + 3 * 80);
    }

    #[test]
    fn spec_defaults_apply() {
        let s =
            JobSpec::from_text(r#"{"name":"j","scenario":"adapt","goal":"bal","arch":"ppc-g4"}"#)
                .unwrap();
        assert!(s.suite.is_empty());
        assert_eq!(s.training().unwrap().len(), specjvm98().len());
        assert_eq!(s.ga.pop_size, GaConfig::default().pop_size);
        assert_eq!(s.ga.threads, 1, "daemon jobs default to one eval thread");
        assert_eq!(s.strategy, "ga", "absent strategy defaults to the GA");
        assert_eq!(s.problem, "inline", "pre-problems specs are inlining jobs");
        assert_eq!(
            s.tenant, "default",
            "pre-shard specs land on the default tenant"
        );
    }

    #[test]
    fn tenant_roundtrips_and_rejects_degenerate_names() {
        let mut s = spec();
        s.tenant = "acme".into();
        let back = JobSpec::from_text(&s.to_json().to_text()).unwrap();
        assert_eq!(back.tenant, "acme");
        for bad in [
            r#"{"name":"j","scenario":"opt","goal":"tot","arch":"x86-p4","tenant":""}"#,
            r#"{"name":"j","scenario":"opt","goal":"tot","arch":"x86-p4","tenant":7}"#,
        ] {
            assert!(JobSpec::from_text(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn eval_estimate_is_the_shared_proposal_budget() {
        let mut s = spec();
        assert_eq!(s.eval_estimate(), 80, "pop 8 x 10 generations");
        // Races share the same budget as a lone strategy, so the
        // estimate does not scale with member count.
        s.strategy = "race:ga+random".into();
        assert_eq!(s.eval_estimate(), 80);
    }

    #[test]
    fn spec_accepts_every_known_problem() {
        for id in problems::KNOWN {
            let text = format!(
                r#"{{"name":"j","scenario":"opt","goal":"tot","arch":"x86-p4","problem":"{id}"}}"#
            );
            let s = JobSpec::from_text(&text).unwrap();
            assert_eq!(&s.problem, id);
            let p = s.build_problem().unwrap();
            assert_eq!(&p.id(), id);
        }
    }

    #[test]
    fn spec_rejects_unknown_problem() {
        let err = JobSpec::from_text(
            r#"{"name":"j","scenario":"opt","goal":"tot","arch":"x86-p4","problem":"gradient"}"#,
        )
        .unwrap_err();
        assert!(err.contains("unknown problem"), "{err}");
    }

    #[test]
    fn spec_accepts_known_strategies() {
        for good in [
            "ga",
            "random",
            "hillclimb",
            "anneal",
            "grid",
            "race",
            "race:ga+grid",
        ] {
            let text = format!(
                r#"{{"name":"j","scenario":"opt","goal":"tot","arch":"x86-p4","strategy":"{good}"}}"#
            );
            let s = JobSpec::from_text(&text).unwrap();
            assert_eq!(s.strategy, good);
        }
    }

    #[test]
    fn spec_rejects_unknown_strategy() {
        let err = JobSpec::from_text(
            r#"{"name":"j","scenario":"opt","goal":"tot","arch":"x86-p4","strategy":"gradient"}"#,
        )
        .unwrap_err();
        assert!(err.contains("unknown strategy"), "{err}");
    }

    #[test]
    fn spec_rejects_unknown_names() {
        for bad in [
            r#"{"name":"j","scenario":"jitless","goal":"tot","arch":"x86-p4"}"#,
            r#"{"name":"j","scenario":"opt","goal":"speed","arch":"x86-p4"}"#,
            r#"{"name":"j","scenario":"opt","goal":"tot","arch":"sparc"}"#,
            r#"{"name":"j","scenario":"opt","goal":"tot","arch":"x86-p4","suite":["nope"]}"#,
            r#"{"name":"j","scenario":"opt","goal":"tot","arch":"x86-p4","ga":{"pop_size":1}}"#,
        ] {
            assert!(JobSpec::from_text(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn spec_builds_task_and_training() {
        let s = spec();
        let task = s.task().unwrap();
        assert_eq!(task.arch.name, "x86-p4");
        assert_eq!(task.goal, Goal::Total);
        let training = s.training().unwrap();
        assert_eq!(training.len(), 2);
        assert_eq!(training[0].name(), "db");
    }

    #[test]
    fn job_state_names_are_stable() {
        assert_eq!(JobState::Queued.name(), "queued");
        assert!(JobState::Done.is_terminal());
        assert!(!JobState::Running.is_terminal());
    }

    #[test]
    fn ga_seed_survives_u64_range() {
        let s = spec();
        let back = JobSpec::from_text(&s.to_json().to_text()).unwrap();
        assert_eq!(back.ga.seed, u64::MAX - 3);
    }
}
