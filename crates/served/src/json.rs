//! A small hand-rolled JSON module.
//!
//! The workspace must build and test with **no network access**, so the
//! daemon cannot lean on serde. This module implements exactly the JSON
//! the `tuned` checkpoint files and wire protocol need:
//!
//! * a [`Json`] tree with a distinct [`Json::Int`] variant so `i64` gene
//!   values and counters round-trip exactly (numbers with no fraction or
//!   exponent parse as integers);
//! * float formatting via Rust's shortest-roundtrip `{:?}`, so every
//!   finite `f64` — fitness values included — survives a print/parse
//!   round trip *bit-identically* (non-finite values are not valid JSON;
//!   encode them explicitly, see [`crate::checkpoint`]);
//! * objects as ordered `(key, value)` vectors: serialization is
//!   deterministic, which keeps checkpoint bytes stable;
//! * a recursive-descent parser with a depth limit, suitable for frames
//!   received from untrusted sockets.

use std::fmt::Write as _;

/// Maximum nesting depth the parser accepts (stack-overflow guard for
/// frames from untrusted connections).
const MAX_DEPTH: usize = 64;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number that lexed as an integer and fits `i64`.
    Int(i64),
    /// Any other number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order (duplicate keys: last one wins on
    /// lookup, all are serialized).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs.
    #[must_use]
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Object field lookup (last occurrence wins).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// This value as an `i64` (integers only — floats don't silently
    /// truncate).
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// This value as a `u64` (a non-negative integer).
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// This value as a `usize`.
    #[must_use]
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|v| usize::try_from(v).ok())
    }

    /// This value as an `f64` (accepts integers too).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            Json::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The element vector, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes to compact JSON text (no whitespace), deterministically.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Num(x) => {
                assert!(x.is_finite(), "non-finite f64 {x} is not valid JSON");
                // `{:?}` prints the shortest string that parses back to the
                // identical f64 — and always includes a `.` or exponent, so
                // it re-parses as Num, never as Int.
                let _ = write!(out, "{x:?}");
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document. The whole input must be one value (trailing
/// whitespace allowed).
///
/// # Errors
/// Returns a message with a byte offset on malformed input.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", char::from(b), self.pos))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH}"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(format!("unexpected byte 0x{b:02x} at offset {}", self.pos)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err("unterminated string".into());
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err("unterminated escape".into());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pairs: decode when a high surrogate
                            // is followed by \uXXXX low surrogate.
                            let c = if (0xd800..0xdc00).contains(&code) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    let combined = 0x10000
                                        + ((code - 0xd800) << 10)
                                        + (low.wrapping_sub(0xdc00) & 0x3ff);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| {
                                format!("invalid \\u escape ending at byte {}", self.pos)
                            })?);
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos - 1)),
                    }
                }
                _ if b < 0x20 => return Err(format!("raw control byte at {}", self.pos - 1)),
                _ => {
                    // Re-walk UTF-8: back up and take the full char.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| format!("invalid UTF-8 at byte {start}"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".into());
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| format!("invalid \\u escape at byte {}", self.pos))?;
        let code =
            u32::from_str_radix(hex, 16).map_err(|_| format!("bad hex at byte {}", self.pos))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number '{text}' at byte {start}"))
    }
}

/// Encodes a `u64` losslessly (JSON numbers round-trip through `f64` in
/// many readers; a decimal string never loses bits).
#[must_use]
pub fn u64_to_json(v: u64) -> Json {
    Json::Str(v.to_string())
}

/// Decodes a `u64` written by [`u64_to_json`] (also accepts a plain
/// non-negative integer).
#[must_use]
pub fn u64_from_json(v: &Json) -> Option<u64> {
    match v {
        Json::Str(s) => s.parse().ok(),
        _ => v.as_u64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_scalars() {
        for text in ["null", "true", "false", "0", "-17", "3.25", "\"hi\""] {
            let v = parse(text).unwrap();
            assert_eq!(parse(&v.to_text()).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn integers_stay_integers() {
        assert_eq!(parse("42").unwrap(), Json::Int(42));
        assert_eq!(parse("-9223372036854775808").unwrap(), Json::Int(i64::MIN));
        assert_eq!(parse("4.0").unwrap(), Json::Num(4.0));
        assert_eq!(Json::Int(7).as_f64(), Some(7.0));
        assert_eq!(Json::Num(7.5).as_i64(), None);
    }

    #[test]
    fn f64_roundtrip_is_bit_exact() {
        for x in [
            0.1,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            f64::MAX,
            -2.2250738585072014e-308,
            9007199254740993.0,
            1.0000000000000002,
        ] {
            let text = Json::Num(x).to_text();
            let back = parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{text}");
        }
    }

    #[test]
    fn u64_helper_is_lossless() {
        for v in [0, 1, u64::MAX, (1 << 53) + 1] {
            assert_eq!(u64_from_json(&u64_to_json(v)), Some(v));
        }
        assert_eq!(u64_from_json(&Json::Int(12)), Some(12));
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "line\none\t\"quoted\" \\ back ünïcode \u{1}";
        let text = Json::Str(s.to_string()).to_text();
        assert_eq!(parse(&text).unwrap(), Json::Str(s.to_string()));
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(
            parse(r#""\ud83d\ude00""#).unwrap(),
            Json::Str("😀".to_string())
        );
    }

    #[test]
    fn nested_structures_roundtrip() {
        let text = r#"{"a":[1,2,{"b":null}],"c":{"d":true},"e":"x"}"#;
        let v = parse(text).unwrap();
        assert_eq!(v.to_text(), text);
        assert_eq!(v.get("c").unwrap().get("d"), Some(&Json::Bool(true)));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "", "{", "[1,", "tru", "{\"a\"}", "{\"a\":}", "\"\\x\"", "01x", "[1]]", "nullx",
            "\u{7}",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn rejects_deep_nesting() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn object_lookup_last_wins() {
        let v = parse(r#"{"k":1,"k":2}"#).unwrap();
        assert_eq!(v.get("k"), Some(&Json::Int(2)));
    }
}
