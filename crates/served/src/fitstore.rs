//! The persistent fitness store as an evaluation tier.
//!
//! [`StoreTier`] wraps any [`Evaluator`] in a read-through/write-behind
//! cache backed by a cluster-wide [`stored::Store`]: genomes the store
//! already holds for this cell are answered from disk (bit-exact —
//! fitness is a pure function of the record key, so a hit *is* the
//! number the inner evaluator would have produced), misses fall through
//! to the wrapped backend, and every fresh score is appended to the
//! store before the batch returns. Because hits and misses produce
//! identical bits, inserting this tier can never change a search
//! trajectory — it only changes how much compute the trajectory costs.
//!
//! With no store configured the tier is a transparent pass-through, so
//! the daemon builds it unconditionally.

use ga::{Evaluator, Genome, PendingScores, PipelinedEvaluator};
use std::sync::Arc;
use stored::{Fingerprint, Record, Store};

/// A read-through/write-behind store tier over an evaluation backend.
pub struct StoreTier<E> {
    tier: Option<(Arc<Store>, Fingerprint)>,
    inner: E,
}

impl<E: Evaluator> StoreTier<E> {
    /// Wraps `inner`. `tier` is the store plus the job's cell
    /// fingerprint; `None` makes the wrapper a pass-through.
    pub fn new(tier: Option<(Arc<Store>, Fingerprint)>, inner: E) -> Self {
        StoreTier { tier, inner }
    }
}

impl<E: Evaluator> Evaluator for StoreTier<E> {
    fn evaluate(&self, genomes: &[Genome]) -> Vec<f64> {
        let Some((store, fp)) = &self.tier else {
            return self.inner.evaluate(genomes);
        };
        let mut out = vec![f64::NAN; genomes.len()];
        let mut miss_at = Vec::new();
        let mut misses = Vec::new();
        for (i, g) in genomes.iter().enumerate() {
            match store.get(fp.cell_digest, g) {
                Some(fitness) => out[i] = fitness,
                None => {
                    miss_at.push(i);
                    misses.push(g.clone());
                }
            }
        }
        if !misses.is_empty() {
            let scores = self.inner.evaluate(&misses);
            for (slot, (genome, &fitness)) in miss_at.into_iter().zip(misses.iter().zip(&scores)) {
                out[slot] = fitness;
                // Append failures (disk full, store torn down mid-job)
                // must not fail the evaluation: the score is already in
                // hand, the store just misses one record.
                let _ = store.append(&Record {
                    fingerprint: fp.clone(),
                    genome: genome.clone(),
                    fitness,
                });
            }
        }
        out
    }
}

/// The in-flight handle for a pipelined [`StoreTier`] batch: store hits
/// are already in `out`, the misses ride the inner backend's pending
/// handle, and `wait` merges and writes behind — the same sequence
/// [`StoreTier::evaluate`] runs synchronously.
struct StorePending<'s, E> {
    tier: &'s StoreTier<E>,
    out: Vec<f64>,
    miss_at: Vec<usize>,
    misses: Vec<Genome>,
    pending: Box<dyn PendingScores + 's>,
}

impl<E: Evaluator> PendingScores for StorePending<'_, E> {
    fn wait(self: Box<Self>) -> Vec<f64> {
        let Self {
            tier,
            mut out,
            miss_at,
            misses,
            pending,
        } = *self;
        let scores = pending.wait();
        let (store, fp) = tier.tier.as_ref().expect("pending batch implies a store");
        for (slot, (genome, &fitness)) in miss_at.into_iter().zip(misses.iter().zip(&scores)) {
            out[slot] = fitness;
            let _ = store.append(&Record {
                fingerprint: fp.clone(),
                genome: genome.clone(),
                fitness,
            });
        }
        out
    }
}

impl<E: PipelinedEvaluator> PipelinedEvaluator for StoreTier<E> {
    fn begin<'s>(&'s self, genomes: &[Genome]) -> Box<dyn PendingScores + 's> {
        let Some((store, fp)) = &self.tier else {
            return self.inner.begin(genomes);
        };
        let mut out = vec![f64::NAN; genomes.len()];
        let mut miss_at = Vec::new();
        let mut misses = Vec::new();
        for (i, g) in genomes.iter().enumerate() {
            match store.get(fp.cell_digest, g) {
                Some(fitness) => out[i] = fitness,
                None => {
                    miss_at.push(i);
                    misses.push(g.clone());
                }
            }
        }
        let pending = self.inner.begin(&misses);
        Box::new(StorePending {
            tier: self,
            out,
            miss_at,
            misses,
            pending,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ga::LocalEvaluator;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("served-fitstore-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn fp(cell: u64) -> Fingerprint {
        Fingerprint {
            cell_digest: cell,
            arch: "x86-p4".into(),
            features: vec![0.0; stored::FEATURES],
            problem: "inline".into(),
        }
    }

    #[test]
    fn pass_through_without_a_store() {
        let tier = StoreTier::new(None, LocalEvaluator::new(|g: &[i64]| g[0] as f64, 1));
        assert_eq!(tier.evaluate(&[vec![7], vec![9]]), vec![7.0, 9.0]);
    }

    #[test]
    fn second_batch_is_served_from_the_store() {
        let dir = tmp_dir("hits");
        let store = Arc::new(Store::open(&dir).unwrap());
        let calls = AtomicUsize::new(0);
        let inner = LocalEvaluator::new(
            |g: &[i64]| {
                calls.fetch_add(1, Ordering::SeqCst);
                g[0] as f64 * 0.5
            },
            1,
        );
        let tier = StoreTier::new(Some((Arc::clone(&store), fp(1))), inner);
        let first = tier.evaluate(&[vec![4], vec![6]]);
        assert_eq!(calls.load(Ordering::SeqCst), 2);
        let second = tier.evaluate(&[vec![6], vec![4], vec![8]]);
        assert_eq!(
            calls.load(Ordering::SeqCst),
            3,
            "only the new genome computes"
        );
        assert_eq!(second[0].to_bits(), first[1].to_bits());
        assert_eq!(second[1].to_bits(), first[0].to_bits());
        assert_eq!(second[2], 4.0);
        drop(tier);
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn pipelined_tier_matches_synchronous_bit_for_bit() {
        let dir = tmp_dir("pipe");
        let store = Arc::new(Store::open(&dir).unwrap());
        let inner = LocalEvaluator::new(|g: &[i64]| g[0] as f64 * 0.25 + 0.1, 1);
        let tier = StoreTier::new(Some((Arc::clone(&store), fp(3))), inner);
        let genomes = [vec![1], vec![2], vec![3]];
        // First pass via begin/wait populates the store.
        let piped = tier.begin(&genomes).wait();
        // Second pass mixes hits with a fresh miss; both paths agree.
        let mixed = [vec![2], vec![9], vec![1]];
        let a = tier.begin(&mixed).wait();
        let b = tier.evaluate(&mixed);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        assert_eq!(piped[1].to_bits(), a[0].to_bits(), "hit must be bit-exact");
        drop(tier);
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cells_do_not_cross_contaminate() {
        let dir = tmp_dir("cells");
        let store = Arc::new(Store::open(&dir).unwrap());
        let a = StoreTier::new(
            Some((Arc::clone(&store), fp(1))),
            LocalEvaluator::new(|_: &[i64]| 1.0, 1),
        );
        let b = StoreTier::new(
            Some((Arc::clone(&store), fp(2))),
            LocalEvaluator::new(|_: &[i64]| 2.0, 1),
        );
        assert_eq!(a.evaluate(&[vec![5]]), vec![1.0]);
        assert_eq!(
            b.evaluate(&[vec![5]]),
            vec![2.0],
            "cell 2 must not see cell 1's record for the same genome"
        );
        drop((a, b));
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
