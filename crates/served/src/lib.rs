//! `served` — the persistent tuning service behind the `tuned` binary.
//!
//! The paper tunes inlining heuristics with a genetic algorithm whose
//! fitness function executes whole benchmarks (§3.1) — searches are
//! hours-to-days long in the real system. This crate wraps the
//! workspace's [`tuner::Tuner`] in the operational shell such a search
//! needs:
//!
//! * [`daemon`] — a bounded job queue and a worker pool that drive the GA
//!   **one generation at a time** via `ga::GaState`, with per-job
//!   cancellation and graceful shutdown;
//! * [`checkpoint`] — an atomic (temp-file + rename) checkpoint of the
//!   complete search state after every generation, and crash recovery
//!   that resumes incomplete jobs bit-identically after a `SIGKILL`;
//! * [`server`] / [`client`] / [`proto`] — a line-delimited JSON protocol
//!   over TCP (`submit`, `status`, `list`, `cancel`, `metrics`, `watch`,
//!   `shutdown`, plus `register` / `heartbeat` / `workers` for the
//!   remote-evaluator tier) with defensive framing;
//! * [`dispatch`] — the distributed-evaluation tier: a [`WorkerPool`] of
//!   `evald` processes and a [`RemoteEvaluator`] (a `ga::Evaluator`) that
//!   fans generation batches out with timeouts, capped-exponential-backoff
//!   retries, eviction of misbehaving workers, re-dispatch of orphaned
//!   work, and a local fallback — bit-identical to in-process runs;
//! * [`metrics`] — live counters: jobs by state, fitness evaluations,
//!   memo-table hit rate, generations per second;
//! * [`expo`] — a Prometheus-style text exposition of the `obs`
//!   observability registry plus the daemon counters, served over a
//!   tiny `GET /metrics` HTTP endpoint;
//! * [`json`] — the hand-rolled JSON layer (the workspace builds with no
//!   external crates; floats round-trip bit-exactly);
//! * [`net`] — the transport seam: every socket and every sleep below
//!   this crate goes through [`net::Transport`], so the whole cluster
//!   runs identically on real TCP ([`net::TcpTransport`], the default)
//!   or on the deterministic simulated network in `crates/sim`.
//!
//! Everything is plain `std`: threads, `Mutex`/`Condvar`, `TcpListener`.

pub mod checkpoint;
pub mod client;
pub mod daemon;
pub mod dispatch;
pub mod expo;
pub mod fitstore;
pub mod job;
pub mod json;
pub mod metrics;
pub mod net;
pub mod proto;
pub mod server;

pub use checkpoint::RunDir;
pub use client::Client;
pub use daemon::{Daemon, DaemonConfig, JobRecord, ShardSnapshot, SubmitError};
pub use dispatch::{
    DispatchConfig, RemoteEvaluator, Worker, WorkerFilter, WorkerPool, WorkerSnapshot,
};
pub use expo::MetricsExporter;
pub use job::{JobSpec, JobState};
pub use metrics::{JobGauges, Metrics, MetricsSnapshot};
pub use net::{NetListener, NetStream, TcpTransport, Transport};
pub use server::Server;
