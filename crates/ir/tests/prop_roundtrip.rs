// Gated: needs the crates.io `proptest` crate (see the `proptest`
// feature note in this crate's Cargo.toml).
#![cfg(feature = "proptest")]

//! Property test: the pretty-printer/parser pair is a faithful
//! serialization — print→parse is the identity on arbitrary programs.

use proptest::prelude::*;

use ir::parse::parse_program;
use ir::pretty::program_to_string;
use ir::testgen::{random_program, GenConfig};
use simrng::Rng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn print_parse_is_identity(seed in any::<u64>(), n_methods in 1u32..14, branches in any::<bool>()) {
        let mut rng = Rng::seed_from_u64(seed);
        let cfg = GenConfig {
            n_methods,
            branches,
            ..GenConfig::default()
        };
        let p = random_program(&mut rng, &cfg);
        let text = program_to_string(&p);
        let q = parse_program(&text).map_err(|e| {
            TestCaseError::fail(format!("{e}\n--- text ---\n{text}"))
        })?;
        prop_assert_eq!(p, q);
    }

    #[test]
    fn parse_never_panics_on_mutilated_input(seed in any::<u64>(), cut in any::<prop::sample::Index>()) {
        let mut rng = Rng::seed_from_u64(seed);
        let p = random_program(&mut rng, &GenConfig::default());
        let text = program_to_string(&p);
        // Truncate at an arbitrary char boundary: must error or parse, never panic.
        let idx = cut.index(text.len().max(1));
        let truncated = &text[..text.floor_char_boundary(idx)];
        let _ = parse_program(truncated);
    }
}
