//! Whole-program statistics: size distributions, call-graph shape, and
//! dynamic-profile summaries.
//!
//! Used by the `experiments inspect` command and by the workload
//! calibration tests to check that synthetic benchmarks land in the
//! intended structural bands.

use crate::callgraph::CallGraph;
use crate::freq::analyze;
use crate::program::Program;
use crate::size::method_size;

/// Percentile summary of a sample (computed by sorting; exact for our
/// sizes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Percentiles {
    /// Minimum.
    pub min: f64,
    /// 10th percentile.
    pub p10: f64,
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
}

/// Computes percentiles of a non-empty sample.
///
/// Returns all-zero percentiles for an empty sample.
#[must_use]
pub fn percentiles(values: &[f64]) -> Percentiles {
    if values.is_empty() {
        return Percentiles {
            min: 0.0,
            p10: 0.0,
            p50: 0.0,
            p90: 0.0,
            p99: 0.0,
            max: 0.0,
            mean: 0.0,
        };
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let at =
        |q: f64| sorted[((q * (sorted.len() - 1) as f64).round() as usize).min(sorted.len() - 1)];
    Percentiles {
        min: sorted[0],
        p10: at(0.10),
        p50: at(0.50),
        p90: at(0.90),
        p99: at(0.99),
        max: *sorted.last().expect("non-empty"),
        mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
    }
}

/// Structural and dynamic statistics of a program.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramStats {
    /// Method count.
    pub n_methods: usize,
    /// Methods reachable from the entry.
    pub n_reachable: usize,
    /// Syntactic call sites.
    pub n_call_sites: usize,
    /// Deduplicated call edges.
    pub n_call_edges: usize,
    /// Methods involved in recursion.
    pub n_recursive: usize,
    /// Estimated-size distribution over all methods.
    pub sizes: Percentiles,
    /// Share of methods with estimated size < 11 (the default
    /// always-inline band).
    pub tiny_fraction: f64,
    /// Share of methods with estimated size ≤ 23 (the default
    /// callee-max band).
    pub inlinable_fraction: f64,
    /// Total estimated size (size units).
    pub total_size: u64,
    /// Dynamic calls per entry invocation (from the frequency analysis).
    pub dynamic_calls: f64,
    /// Per-method entry-count distribution (reachable methods only).
    pub entries: Percentiles,
    /// Whether the frequency analysis converged.
    pub freq_converged: bool,
}

/// Computes [`ProgramStats`].
#[must_use]
pub fn program_stats(program: &Program) -> ProgramStats {
    let sizes_raw: Vec<f64> = program
        .methods
        .iter()
        .map(|m| f64::from(method_size(m)))
        .collect();
    let graph = CallGraph::build(program);
    let fa = analyze(program, 1.0);
    let reachable = program.reachable();
    let entries_raw: Vec<f64> = reachable.iter().map(|m| fa.entry_count(*m)).collect();
    let n = program.methods.len().max(1) as f64;
    ProgramStats {
        n_methods: program.methods.len(),
        n_reachable: reachable.len(),
        n_call_sites: program.call_site_count(),
        n_call_edges: graph.edge_count(),
        n_recursive: graph.recursive_set().len(),
        sizes: percentiles(&sizes_raw),
        tiny_fraction: sizes_raw.iter().filter(|&&s| s < 11.0).count() as f64 / n,
        inlinable_fraction: sizes_raw.iter().filter(|&&s| s <= 23.0).count() as f64 / n,
        total_size: sizes_raw.iter().map(|&s| s as u64).sum(),
        dynamic_calls: fa.total_dynamic_calls(),
        entries: percentiles(&entries_raw),
        freq_converged: fa.converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::demo_program;

    #[test]
    fn percentiles_of_known_sample() {
        let v: Vec<f64> = (1..=100).map(f64::from).collect();
        let p = percentiles(&v);
        assert_eq!(p.min, 1.0);
        assert_eq!(p.max, 100.0);
        assert!((p.p50 - 50.0).abs() <= 1.0);
        assert!((p.p90 - 90.0).abs() <= 1.0);
        assert!((p.mean - 50.5).abs() < 1e-9);
    }

    #[test]
    fn percentiles_of_empty_sample_are_zero() {
        let p = percentiles(&[]);
        assert_eq!(p.max, 0.0);
        assert_eq!(p.mean, 0.0);
    }

    #[test]
    fn demo_program_stats() {
        let s = program_stats(&demo_program());
        assert_eq!(s.n_methods, 2);
        assert_eq!(s.n_reachable, 2);
        assert_eq!(s.n_call_sites, 1);
        assert_eq!(s.n_recursive, 0);
        assert!(s.freq_converged);
        assert!((s.dynamic_calls - 10.0).abs() < 1e-9);
        assert!(s.tiny_fraction > 0.0, "inc is tiny");
    }

    #[test]
    fn fractions_are_probabilities() {
        let s = program_stats(&demo_program());
        assert!((0.0..=1.0).contains(&s.tiny_fraction));
        assert!((0.0..=1.0).contains(&s.inlinable_fraction));
        assert!(s.inlinable_fraction >= s.tiny_fraction);
    }
}
