//! A reference interpreter giving the IR concrete semantics.
//!
//! The interpreter exists to make correctness claims *testable*: the inliner
//! must preserve interpreter results exactly (return value, heap contents,
//! and invariant-op count), which the property tests in
//! `inlinetune-inline` verify on thousands of random programs.
//!
//! Cost evaluation never interprets — the JIT simulator uses the analytic
//! frequency analysis — so the interpreter favours clarity over speed.
//!
//! ## Fuel accounting
//!
//! `fuel_used` counts *semantic steps*: every non-`Mov` op, every loop
//! iteration and every branch evaluation. `Mov` ops are excluded because the
//! inliner introduces argument/return plumbing `Mov`s; with this accounting,
//! fuel consumption is invariant under inlining, so a fuel limit can never
//! make an inlined program diverge from its original.

use crate::method::MethodId;
use crate::op::{OpKind, Operand};
use crate::program::Program;
use crate::stmt::Stmt;

/// Resource limits for a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InterpLimits {
    /// Maximum semantic steps (see module docs).
    pub fuel: u64,
    /// Maximum call depth.
    pub max_depth: u32,
}

impl Default for InterpLimits {
    fn default() -> Self {
        Self {
            fuel: 50_000_000,
            max_depth: 256,
        }
    }
}

/// Why a run stopped without producing a value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpError {
    /// The fuel limit was reached.
    OutOfFuel,
    /// The call-depth limit was reached.
    DepthExceeded,
    /// Wrong number of arguments supplied to the invoked method.
    ArgCountMismatch {
        /// Arguments supplied.
        got: usize,
        /// Parameters expected.
        want: usize,
    },
}

impl std::fmt::Display for InterpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InterpError::OutOfFuel => write!(f, "out of fuel"),
            InterpError::DepthExceeded => write!(f, "call depth exceeded"),
            InterpError::ArgCountMismatch { got, want } => {
                write!(f, "argument count mismatch: got {got}, want {want}")
            }
        }
    }
}

impl std::error::Error for InterpError {}

/// The observable outcome of a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunOutput {
    /// The entry method's return value.
    pub value: i64,
    /// Semantic steps consumed (invariant under inlining).
    pub fuel_used: u64,
    /// All ops executed, including `Mov`s (NOT invariant under inlining).
    pub ops_executed: u64,
    /// Dynamic calls executed (decreases under inlining).
    pub calls_executed: u64,
    /// FNV-1a digest of the final heap (order-sensitive).
    pub heap_digest: u64,
}

struct Interp<'p> {
    program: &'p Program,
    heap: Vec<i64>,
    fuel_left: u64,
    fuel_budget: u64,
    ops_executed: u64,
    calls_executed: u64,
    max_depth: u32,
}

impl<'p> Interp<'p> {
    fn burn(&mut self, n: u64) -> Result<(), InterpError> {
        if self.fuel_left < n {
            self.fuel_left = 0;
            return Err(InterpError::OutOfFuel);
        }
        self.fuel_left -= n;
        Ok(())
    }

    fn heap_index(&self, addr: i64) -> usize {
        (addr.rem_euclid(self.heap.len() as i64)) as usize
    }

    fn exec_body(
        &mut self,
        body: &[Stmt],
        regs: &mut [i64],
        depth: u32,
    ) -> Result<(), InterpError> {
        for stmt in body {
            match stmt {
                Stmt::Op(o) => {
                    self.ops_executed += 1;
                    let a = eval(o.a, regs);
                    let b = eval(o.b, regs);
                    match o.op {
                        OpKind::Mov => {
                            // Plumbing: free (see module docs).
                            regs[o.dst.0 as usize] = a;
                        }
                        OpKind::Load => {
                            self.burn(1)?;
                            let idx = self.heap_index(a);
                            regs[o.dst.0 as usize] = self.heap[idx];
                        }
                        OpKind::Store => {
                            self.burn(1)?;
                            let idx = self.heap_index(a);
                            self.heap[idx] = b;
                        }
                        op => {
                            self.burn(1)?;
                            regs[o.dst.0 as usize] = op.eval_pure(a, b);
                        }
                    }
                }
                Stmt::Call(c) => {
                    let args: Vec<i64> = c.args.iter().map(|a| eval(*a, regs)).collect();
                    let v = self.invoke(c.callee, &args, depth + 1)?;
                    self.calls_executed += 1;
                    if let Some(d) = c.dst {
                        regs[d.0 as usize] = v;
                    }
                }
                Stmt::Loop { trips, body } => {
                    for _ in 0..*trips {
                        self.burn(1)?; // loop-iteration step
                        self.exec_body(body, regs, depth)?;
                    }
                }
                Stmt::If {
                    cond,
                    then_b,
                    else_b,
                    ..
                } => {
                    self.burn(1)?; // branch evaluation step
                    let taken = eval(*cond, regs) & 1 != 0;
                    let arm = if taken { then_b } else { else_b };
                    self.exec_body(arm, regs, depth)?;
                }
            }
        }
        Ok(())
    }

    fn invoke(&mut self, id: MethodId, args: &[i64], depth: u32) -> Result<i64, InterpError> {
        if depth > self.max_depth {
            return Err(InterpError::DepthExceeded);
        }
        let m = self.program.method(id);
        if args.len() != m.n_params as usize {
            return Err(InterpError::ArgCountMismatch {
                got: args.len(),
                want: m.n_params as usize,
            });
        }
        let mut regs = vec![0i64; m.n_regs as usize];
        regs[..args.len()].copy_from_slice(args);
        self.exec_body(&m.body, &mut regs, depth)?;
        Ok(eval(m.ret, &regs))
    }
}

#[inline]
fn eval(o: Operand, regs: &[i64]) -> i64 {
    match o {
        Operand::Reg(r) => regs[r.0 as usize],
        Operand::Imm(v) => v,
    }
}

/// Deterministic initial heap contents: a SplitMix64-style mix of the slot
/// index, so programs observe rich, reproducible initial state.
#[must_use]
pub fn initial_heap(size: u32) -> Vec<i64> {
    (0..size as u64)
        .map(|i| {
            let mut z = i.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            (z ^ (z >> 31)) as i64
        })
        .collect()
}

fn fnv1a_heap(heap: &[i64]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &v in heap {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Runs a program's entry method with the given arguments.
///
/// # Errors
/// Returns an [`InterpError`] on fuel/depth exhaustion or arity mismatch.
pub fn run(
    program: &Program,
    args: &[i64],
    limits: &InterpLimits,
) -> Result<RunOutput, InterpError> {
    run_method(program, program.entry, args, limits)
}

/// Runs an arbitrary method of the program (the entry-point variant used by
/// equivalence tests that compare individual transformed methods).
///
/// # Errors
/// Returns an [`InterpError`] on fuel/depth exhaustion or arity mismatch.
pub fn run_method(
    program: &Program,
    method: MethodId,
    args: &[i64],
    limits: &InterpLimits,
) -> Result<RunOutput, InterpError> {
    let mut interp = Interp {
        program,
        heap: initial_heap(program.heap_size),
        fuel_left: limits.fuel,
        fuel_budget: limits.fuel,
        ops_executed: 0,
        calls_executed: 0,
        max_depth: limits.max_depth,
    };
    let value = interp.invoke(method, args, 0)?;
    Ok(RunOutput {
        value,
        fuel_used: interp.fuel_budget - interp.fuel_left,
        ops_executed: interp.ops_executed,
        calls_executed: interp.calls_executed,
        heap_digest: fnv1a_heap(&interp.heap),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{MethodBuilder, ProgramBuilder};
    use crate::op::{OpKind, Reg};

    fn limits() -> InterpLimits {
        InterpLimits::default()
    }

    #[test]
    fn arithmetic_and_return() {
        let mut pb = ProgramBuilder::new("t");
        let mut m = MethodBuilder::new("main", 0);
        let a = m.op(OpKind::Mov, 6i64, 0i64);
        let b = m.op(OpKind::Mul, a, 7i64);
        m.ret(b);
        let id = pb.add(m);
        pb.entry(id);
        let p = pb.build().unwrap();
        assert_eq!(run(&p, &[], &limits()).unwrap().value, 42);
    }

    #[test]
    fn loops_iterate_exactly() {
        let mut pb = ProgramBuilder::new("t");
        let mut m = MethodBuilder::new("main", 0);
        let acc = m.op(OpKind::Mov, 0i64, 0i64);
        m.begin_loop(100);
        m.op_into(OpKind::Add, acc, acc, 3i64);
        m.end();
        m.ret(acc);
        let id = pb.add(m);
        pb.entry(id);
        let p = pb.build().unwrap();
        assert_eq!(run(&p, &[], &limits()).unwrap().value, 300);
    }

    #[test]
    fn branch_takes_odd_condition() {
        let mk = |cond_val: i64| {
            let mut pb = ProgramBuilder::new("t");
            let mut m = MethodBuilder::new("main", 0);
            let c = m.op(OpKind::Mov, cond_val, 0i64);
            let out = m.op(OpKind::Mov, 0i64, 0i64);
            m.begin_if(c, 0.5);
            m.op_into(OpKind::Mov, out, 111i64, 0i64);
            m.begin_else();
            m.op_into(OpKind::Mov, out, 222i64, 0i64);
            m.end();
            m.ret(out);
            let id = pb.add(m);
            pb.entry(id);
            pb.build().unwrap()
        };
        assert_eq!(run(&mk(3), &[], &limits()).unwrap().value, 111);
        assert_eq!(run(&mk(4), &[], &limits()).unwrap().value, 222);
    }

    #[test]
    fn heap_store_then_load_roundtrips() {
        let mut pb = ProgramBuilder::new("t");
        let mut m = MethodBuilder::new("main", 0);
        let addr = m.op(OpKind::Mov, 5i64, 0i64);
        m.op_into(OpKind::Store, Reg(0), addr, 1234i64);
        let v = m.op(OpKind::Load, addr, 0i64);
        m.ret(v);
        let id = pb.add(m);
        pb.entry(id);
        let p = pb.build().unwrap();
        assert_eq!(run(&p, &[], &limits()).unwrap().value, 1234);
    }

    #[test]
    fn heap_addresses_wrap_negative() {
        let mut pb = ProgramBuilder::new("t");
        let mut m = MethodBuilder::new("main", 0);
        // Store at -1 == heap_size - 1.
        let addr = m.op(OpKind::Mov, -1i64, 0i64);
        m.op_into(OpKind::Store, Reg(0), addr, 9i64);
        let pos = m.op(OpKind::Mov, (1 << 16) - 1i64, 0i64);
        let v = m.op(OpKind::Load, pos, 0i64);
        m.ret(v);
        let id = pb.add(m);
        pb.entry(id);
        let p = pb.build().unwrap();
        assert_eq!(run(&p, &[], &limits()).unwrap().value, 9);
    }

    #[test]
    fn calls_pass_args_and_return() {
        let mut pb = ProgramBuilder::new("t");
        let mut add = MethodBuilder::new("add", 2);
        let s = add.op(OpKind::Add, add.param(0), add.param(1));
        add.ret(s);
        let add_id = pb.add(add);
        let mut m = MethodBuilder::new("main", 0);
        let site = pb.fresh_site();
        let v = m
            .call(site, add_id, vec![40i64.into(), 2i64.into()], true)
            .unwrap();
        m.ret(v);
        let id = pb.add(m);
        pb.entry(id);
        let p = pb.build().unwrap();
        let out = run(&p, &[], &limits()).unwrap();
        assert_eq!(out.value, 42);
        assert_eq!(out.calls_executed, 1);
    }

    #[test]
    fn fuel_limit_enforced() {
        let mut pb = ProgramBuilder::new("t");
        let mut m = MethodBuilder::new("main", 0);
        let acc = m.op(OpKind::Mov, 0i64, 0i64);
        m.begin_loop(1000);
        m.op_into(OpKind::Add, acc, acc, 1i64);
        m.end();
        m.ret(acc);
        let id = pb.add(m);
        pb.entry(id);
        let p = pb.build().unwrap();
        let err = run(
            &p,
            &[],
            &InterpLimits {
                fuel: 10,
                max_depth: 8,
            },
        )
        .unwrap_err();
        assert_eq!(err, InterpError::OutOfFuel);
    }

    #[test]
    fn depth_limit_enforced() {
        let mut pb = ProgramBuilder::new("t");
        let rec_id = pb.declare();
        let mut rec = MethodBuilder::new("rec", 1);
        let arg = rec.param(0);
        let site = pb.fresh_site();
        // Unconditional recursion.
        rec.call(site, rec_id, vec![arg.into()], false);
        rec.ret(arg);
        pb.define(rec_id, rec);
        let mut m = MethodBuilder::new("main", 0);
        let s = pb.fresh_site();
        m.call(s, rec_id, vec![0i64.into()], false);
        m.ret(0i64);
        let id = pb.add(m);
        pb.entry(id);
        let p = pb.build().unwrap();
        let err = run(
            &p,
            &[],
            &InterpLimits {
                fuel: 1_000_000,
                max_depth: 16,
            },
        )
        .unwrap_err();
        assert_eq!(err, InterpError::DepthExceeded);
    }

    #[test]
    fn mov_is_fuel_free_but_counted_as_op() {
        let mut pb = ProgramBuilder::new("t");
        let mut m = MethodBuilder::new("main", 0);
        let a = m.op(OpKind::Mov, 1i64, 0i64);
        let b = m.op(OpKind::Add, a, 1i64);
        m.ret(b);
        let id = pb.add(m);
        pb.entry(id);
        let p = pb.build().unwrap();
        let out = run(&p, &[], &limits()).unwrap();
        assert_eq!(out.ops_executed, 2);
        assert_eq!(out.fuel_used, 1); // only the Add burns fuel
    }

    #[test]
    fn initial_heap_is_deterministic_and_nonzero() {
        let h1 = initial_heap(128);
        let h2 = initial_heap(128);
        assert_eq!(h1, h2);
        assert!(h1.iter().any(|&v| v != 0));
    }

    #[test]
    fn digest_reflects_heap_changes() {
        let mut pb = ProgramBuilder::new("t");
        let mut m = MethodBuilder::new("main", 0);
        m.op_into(OpKind::Store, Reg(0), 3i64, 77i64);
        m.ret(0i64);
        let id = pb.add(m);
        pb.entry(id);
        let p = pb.build().unwrap();
        let mut p2 = p.clone();
        p2.methods[0].body.clear();
        let d1 = run(&p, &[], &limits()).unwrap().heap_digest;
        let d2 = run(&p2, &[], &limits()).unwrap().heap_digest;
        assert_ne!(d1, d2);
    }
}
