//! Plain-text pretty printer for methods and programs.
//!
//! The format round-trips through [`crate::parse::parse_program`]
//! (probabilities print via `f64`'s shortest-round-trip `Display`), so it
//! doubles as the IR's serialized form.

use std::fmt::Write as _;

use crate::method::Method;
use crate::program::Program;
use crate::size::method_size;
use crate::stmt::Stmt;

/// Renders a method as indented text.
#[must_use]
pub fn method_to_string(m: &Method) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "method {} \"{}\" (params={}, regs={}, est_size={})",
        m.id,
        m.name,
        m.n_params,
        m.n_regs,
        method_size(m)
    );
    write_body(&mut out, &m.body, 1);
    let _ = writeln!(out, "  return {}", m.ret);
    out
}

/// Renders a whole program.
#[must_use]
pub fn program_to_string(p: &Program) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "program \"{}\" (methods={}, entry={}, heap={})",
        p.name,
        p.method_count(),
        p.entry,
        p.heap_size
    );
    for m in &p.methods {
        out.push_str(&method_to_string(m));
    }
    out
}

fn write_body(out: &mut String, body: &[Stmt], indent: usize) {
    let pad = "  ".repeat(indent);
    for stmt in body {
        match stmt {
            Stmt::Op(o) => {
                let _ = writeln!(
                    out,
                    "{pad}{} {} <- {}, {}",
                    o.op.mnemonic(),
                    o.dst,
                    o.a,
                    o.b
                );
            }
            Stmt::Call(c) => {
                let args: Vec<String> = c.args.iter().map(ToString::to_string).collect();
                let dst = c.dst.map_or_else(|| "_".to_string(), |d| d.to_string());
                let _ = writeln!(
                    out,
                    "{pad}call {} <- {}({}) @{}",
                    dst,
                    c.callee,
                    args.join(", "),
                    c.site
                );
            }
            Stmt::Loop { trips, body } => {
                let _ = writeln!(out, "{pad}loop x{trips} {{");
                write_body(out, body, indent + 1);
                let _ = writeln!(out, "{pad}}}");
            }
            Stmt::If {
                cond,
                prob_true,
                then_b,
                else_b,
            } => {
                let _ = writeln!(out, "{pad}if {cond} (p={prob_true}) {{");
                write_body(out, then_b, indent + 1);
                if else_b.is_empty() {
                    let _ = writeln!(out, "{pad}}}");
                } else {
                    let _ = writeln!(out, "{pad}}} else {{");
                    write_body(out, else_b, indent + 1);
                    let _ = writeln!(out, "{pad}}}");
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::demo_program;

    #[test]
    fn printer_mentions_every_method() {
        let p = demo_program();
        let text = program_to_string(&p);
        assert!(text.contains("\"inc\""));
        assert!(text.contains("\"main\""));
        assert!(text.contains("loop x10"));
        assert!(text.contains("call"));
    }

    #[test]
    fn printer_shows_else_arm_only_when_present() {
        let p = demo_program();
        let text = program_to_string(&p);
        assert!(!text.contains("else"));
    }
}
