//! Static size estimation — the analog of Jikes RVM's "estimated number of
//! machine instructions that will be generated for the method".
//!
//! Every threshold in the paper's heuristic (`CALLEE_MAX_SIZE`,
//! `ALWAYS_INLINE_SIZE`, `CALLER_MAX_SIZE`, `HOT_CALLEE_MAX_SIZE`) compares
//! against this estimate, so its calibration fixes the meaning of the
//! parameter ranges in Table 1 of the paper. The weights below are chosen so
//! that typical synthetic methods land in the same numeric bands as Jikes
//! methods: accessors ≈ 2–6, small helpers ≈ 10–30, large generated methods
//! in the hundreds to low thousands.

use crate::method::Method;
use crate::stmt::Stmt;

/// Estimated machine instructions for the call sequence itself (spill,
/// branch-and-link, frame setup): the fixed part of a call's expansion.
pub const CALL_BASE_WEIGHT: u32 = 2;

/// Per-argument marshalling cost of a call.
pub const CALL_ARG_WEIGHT: u32 = 1;

/// Cost of moving the return value into place when the result is used.
pub const CALL_RET_WEIGHT: u32 = 1;

/// Loop header overhead (init, test, back edge).
pub const LOOP_WEIGHT: u32 = 2;

/// Branch overhead (compare + conditional jump).
pub const IF_WEIGHT: u32 = 2;

/// Per-method prologue/epilogue instructions.
pub const METHOD_OVERHEAD: u32 = 2;

/// Estimated size of a single statement including everything nested in it.
#[must_use]
pub fn stmt_size(stmt: &Stmt) -> u32 {
    match stmt {
        Stmt::Op(o) => o.op.size_weight(),
        Stmt::Call(c) => call_stmt_size(c.args.len(), c.dst.is_some()),
        Stmt::Loop { body, .. } => LOOP_WEIGHT + body_size(body),
        Stmt::If { then_b, else_b, .. } => IF_WEIGHT + body_size(then_b) + body_size(else_b),
    }
}

/// Estimated expansion of a call statement left *not* inlined.
#[must_use]
pub fn call_stmt_size(n_args: usize, has_dst: bool) -> u32 {
    CALL_BASE_WEIGHT + CALL_ARG_WEIGHT * n_args as u32 + if has_dst { CALL_RET_WEIGHT } else { 0 }
}

/// Estimated size of a statement list.
#[must_use]
pub fn body_size(body: &[Stmt]) -> u32 {
    body.iter().map(stmt_size).sum()
}

/// Estimated size of a whole method (body + prologue/epilogue).
///
/// This is the `calleeSize` / `callerSize` quantity of the paper's Fig. 3.
#[must_use]
pub fn method_size(m: &Method) -> u32 {
    METHOD_OVERHEAD + body_size(&m.body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::method::MethodId;
    use crate::op::{OpKind, Reg};
    use crate::stmt::CallSiteId;

    #[test]
    fn op_sizes_accumulate() {
        let body = vec![
            Stmt::op(OpKind::Add, Reg(0), Reg(0), 1i64),  // 1
            Stmt::op(OpKind::Load, Reg(1), Reg(0), 0i64), // 2
        ];
        assert_eq!(body_size(&body), 3);
    }

    #[test]
    fn call_size_depends_on_arity_and_result() {
        assert_eq!(call_stmt_size(0, false), 2);
        assert_eq!(call_stmt_size(2, true), 2 + 2 + 1);
        let c = Stmt::call(
            CallSiteId(0),
            MethodId(1),
            vec![Reg(0).into()],
            Some(Reg(1)),
        );
        assert_eq!(stmt_size(&c), 4);
    }

    #[test]
    fn loop_size_counts_body_once() {
        // Static size is independent of the trip count.
        let mk = |trips| Stmt::Loop {
            trips,
            body: vec![Stmt::op(OpKind::Add, Reg(0), Reg(0), 1i64)],
        };
        assert_eq!(stmt_size(&mk(1)), stmt_size(&mk(1000)));
        assert_eq!(stmt_size(&mk(5)), LOOP_WEIGHT + 1);
    }

    #[test]
    fn if_size_counts_both_arms() {
        let s = Stmt::If {
            cond: Reg(0).into(),
            prob_true: 0.5,
            then_b: vec![Stmt::op(OpKind::Add, Reg(0), Reg(0), 1i64)],
            else_b: vec![Stmt::op(OpKind::Mul, Reg(0), Reg(0), 2i64)],
        };
        assert_eq!(stmt_size(&s), IF_WEIGHT + 2);
    }

    #[test]
    fn accessor_method_is_tiny() {
        // A getter: one load + return. Must fall below typical
        // ALWAYS_INLINE_SIZE values (default 11 in Jikes).
        let m = Method {
            id: MethodId(0),
            name: "getX".into(),
            n_params: 1,
            n_regs: 2,
            body: vec![Stmt::op(OpKind::Load, Reg(1), Reg(0), 0i64)],
            ret: Reg(1).into(),
        };
        assert!(method_size(&m) < 11, "accessor size {}", method_size(&m));
    }
}
