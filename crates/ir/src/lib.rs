//! A bytecode-like intermediate representation for the `inlinetune` JIT
//! simulator.
//!
//! This crate is the substrate that stands in for Java bytecode / the Jikes
//! RVM HIR in the reproduction of *Automatic Tuning of Inlining Heuristics*
//! (Cavazos & O'Boyle, SC 2005). It provides:
//!
//! * a structured IR ([`Stmt`], [`Method`], [`Program`]) — straight-line
//!   integer/fixed-point operations, fixed-trip loops, profile-annotated
//!   branches, and call sites;
//! * a register-machine **interpreter** ([`interp`]) giving the IR real
//!   semantics, so that the inlining transformation can be *proven*
//!   semantics-preserving by testing;
//! * **size estimation** ([`size`]) mirroring Jikes RVM's "estimated machine
//!   instructions" — the quantity all heuristic thresholds compare against;
//! * **frequency analysis** ([`freq`]) — analytic per-method entry counts and
//!   per-call-site execution counts, the profile data the adaptive system and
//!   the cost model consume;
//! * **call-graph** utilities ([`callgraph`]) including Tarjan SCCs for
//!   recursion detection;
//! * a fluent [`builder`] used by the synthetic workload generators and
//!   tests, plus a [`pretty`] printer and a structural [`validate`] pass.
//!
//! Methods use a flat register file: parameters arrive in registers
//! `0..n_params`, the body is a statement tree (no early returns — the
//! method's value is the `ret` operand evaluated after the body), and all
//! operations are total (no traps), which keeps inlining a pure tree splice.

pub mod builder;
pub mod callgraph;
pub mod freq;
pub mod interp;
pub mod method;
pub mod op;
pub mod parse;
pub mod pretty;
pub mod program;
pub mod size;
pub mod stats;
pub mod stmt;
pub mod testgen;
pub mod validate;

pub use builder::{MethodBuilder, ProgramBuilder};
pub use method::{Method, MethodId};
pub use op::{CostClass, OpKind, Operand, Reg};
pub use program::Program;
pub use stmt::{CallSiteId, CallStmt, OpStmt, Stmt};
