//! Whole programs: a method table, an entry point and a heap size.

use crate::method::{Method, MethodId};
use crate::stmt::{visit_body, Stmt};

/// A whole program: the unit the JIT simulator compiles and runs.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Program name (benchmark name in the workload suites).
    pub name: String,
    /// Method table; `methods[i].id == MethodId(i)`.
    pub methods: Vec<Method>,
    /// The entry method (the benchmark's `main`); invoked once per
    /// benchmark iteration.
    pub entry: MethodId,
    /// Size of the shared heap array the `Load`/`Store` ops address
    /// (addresses are wrapped modulo this). Must be non-zero.
    pub heap_size: u32,
}

impl Program {
    /// Looks up a method by id.
    ///
    /// # Panics
    /// Panics if the id is out of range (a validated program never does).
    #[must_use]
    pub fn method(&self, id: MethodId) -> &Method {
        &self.methods[id.index()]
    }

    /// Mutable lookup.
    ///
    /// # Panics
    /// Panics if the id is out of range.
    pub fn method_mut(&mut self, id: MethodId) -> &mut Method {
        &mut self.methods[id.index()]
    }

    /// Number of methods.
    #[must_use]
    pub fn method_count(&self) -> usize {
        self.methods.len()
    }

    /// Total statement count over all methods.
    #[must_use]
    pub fn total_stmts(&self) -> usize {
        self.methods.iter().map(Method::stmt_count).sum()
    }

    /// The number of distinct call sites in the program (syntactic, before
    /// any inlining).
    #[must_use]
    pub fn call_site_count(&self) -> usize {
        self.methods.iter().map(Method::call_site_count).sum()
    }

    /// The set of methods reachable from the entry point, in discovery
    /// (BFS) order. Methods outside this set are never invoked and never
    /// compiled — the JIT simulator compiles lazily, like a real VM.
    #[must_use]
    pub fn reachable(&self) -> Vec<MethodId> {
        let mut seen = vec![false; self.methods.len()];
        let mut order = Vec::new();
        let mut queue = std::collections::VecDeque::new();
        if self.entry.index() < self.methods.len() {
            seen[self.entry.index()] = true;
            queue.push_back(self.entry);
        }
        while let Some(m) = queue.pop_front() {
            order.push(m);
            visit_body(&self.methods[m.index()].body, &mut |s| {
                if let Stmt::Call(c) = s {
                    if c.callee.index() < self.methods.len() && !seen[c.callee.index()] {
                        seen[c.callee.index()] = true;
                        queue.push_back(c.callee);
                    }
                }
            });
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{OpKind, Reg};
    use crate::stmt::CallSiteId;

    fn tiny() -> Program {
        let m0 = Method {
            id: MethodId(0),
            name: "main".into(),
            n_params: 0,
            n_regs: 2,
            body: vec![
                Stmt::op(OpKind::Mov, Reg(0), 5i64, 0i64),
                Stmt::call(
                    CallSiteId(0),
                    MethodId(1),
                    vec![Reg(0).into()],
                    Some(Reg(1)),
                ),
            ],
            ret: Reg(1).into(),
        };
        let m1 = Method {
            id: MethodId(1),
            name: "inc".into(),
            n_params: 1,
            n_regs: 2,
            body: vec![Stmt::op(OpKind::Add, Reg(1), Reg(0), 1i64)],
            ret: Reg(1).into(),
        };
        let m2 = Method {
            id: MethodId(2),
            name: "dead".into(),
            n_params: 0,
            n_regs: 1,
            body: vec![],
            ret: 0i64.into(),
        };
        Program {
            name: "tiny".into(),
            methods: vec![m0, m1, m2],
            entry: MethodId(0),
            heap_size: 16,
        }
    }

    #[test]
    fn reachable_excludes_dead_methods() {
        let p = tiny();
        let r = p.reachable();
        assert_eq!(r, vec![MethodId(0), MethodId(1)]);
    }

    #[test]
    fn counts() {
        let p = tiny();
        assert_eq!(p.method_count(), 3);
        assert_eq!(p.total_stmts(), 3);
        assert_eq!(p.call_site_count(), 1);
    }

    #[test]
    fn method_lookup_roundtrip() {
        let p = tiny();
        assert_eq!(p.method(MethodId(1)).name, "inc");
    }
}
