//! Primitive operations, operands and registers.

/// A virtual register index within a method's frame.
///
/// Registers are method-local; inlining renames the callee's registers by a
/// fixed offset into the caller's (grown) frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u16);

impl std::fmt::Display for Reg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// An operand: either a register or an immediate constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// Read a register of the current frame.
    Reg(Reg),
    /// A literal value.
    Imm(i64),
}

impl Operand {
    /// The register read by this operand, if any.
    #[must_use]
    pub fn reg(self) -> Option<Reg> {
        match self {
            Operand::Reg(r) => Some(r),
            Operand::Imm(_) => None,
        }
    }
}

impl std::fmt::Display for Operand {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(v) => write!(f, "#{v}"),
        }
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}

impl From<i64> for Operand {
    fn from(v: i64) -> Self {
        Operand::Imm(v)
    }
}

/// Cost classes: the execution-cost model in `inlinetune-jit` assigns a
/// per-architecture cycle cost to each class rather than to each op.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CostClass {
    /// Simple integer ALU op (add, xor, …) — 1 "unit" on most machines.
    IntAlu,
    /// Integer multiply — several cycles.
    IntMul,
    /// Memory access (load/store to the program heap).
    Mem,
    /// Fixed-point "floating" arithmetic — models FP latency.
    Float,
}

/// The primitive operation kinds.
///
/// All operations are **total**: wrapping arithmetic, masked shifts, and
/// division-free, so the interpreter never traps and inlining never has to
/// reason about exceptional control flow (the Jikes heuristic does not
/// either — exceptions are handled elsewhere in the RVM).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// `dst = a` (register/immediate move). Inserted by the inliner for
    /// argument and return-value plumbing.
    Mov,
    /// `dst = a + b` (wrapping).
    Add,
    /// `dst = a - b` (wrapping).
    Sub,
    /// `dst = a * b` (wrapping).
    Mul,
    /// `dst = a ^ b`.
    Xor,
    /// `dst = a & b`.
    And,
    /// `dst = a | b`.
    Or,
    /// `dst = a << (b & 63)` (wrapping shift).
    Shl,
    /// `dst = a >> (b & 63)` (arithmetic).
    Shr,
    /// `dst = min(a, b)`.
    Min,
    /// `dst = max(a, b)`.
    Max,
    /// `dst = heap[a mod H]` — load from the program heap.
    Load,
    /// `heap[a mod H] = b` — store to the program heap (`dst` unused).
    Store,
    /// Fixed-point multiply: `dst = (a * b) >> 16` (on 128-bit intermediate);
    /// stands in for floating-point multiply in compute kernels.
    FMul,
    /// Fixed-point add (same as Add but costed as [`CostClass::Float`]);
    /// stands in for floating-point add.
    FAdd,
}

impl OpKind {
    /// The cost class the JIT cost model uses for this op.
    #[must_use]
    pub fn cost_class(self) -> CostClass {
        match self {
            OpKind::Mov
            | OpKind::Add
            | OpKind::Sub
            | OpKind::Xor
            | OpKind::And
            | OpKind::Or
            | OpKind::Shl
            | OpKind::Shr
            | OpKind::Min
            | OpKind::Max => CostClass::IntAlu,
            OpKind::Mul => CostClass::IntMul,
            OpKind::Load | OpKind::Store => CostClass::Mem,
            OpKind::FMul | OpKind::FAdd => CostClass::Float,
        }
    }

    /// Estimated number of machine instructions this op expands to — the
    /// unit of Jikes RVM's "estimated size" that all inlining thresholds
    /// (`CALLEE_MAX_SIZE` etc.) are compared against.
    #[must_use]
    pub fn size_weight(self) -> u32 {
        match self {
            OpKind::Mov => 1,
            OpKind::Add
            | OpKind::Sub
            | OpKind::Xor
            | OpKind::And
            | OpKind::Or
            | OpKind::Shl
            | OpKind::Shr => 1,
            OpKind::Min | OpKind::Max => 2,
            OpKind::Mul => 1,
            OpKind::Load | OpKind::Store => 2,
            OpKind::FMul | OpKind::FAdd => 2,
        }
    }

    /// Whether this op writes `dst`.
    #[must_use]
    pub fn writes_dst(self) -> bool {
        !matches!(self, OpKind::Store)
    }

    /// Evaluates the op on concrete values (heap handled by the caller —
    /// this covers the pure ops; `Load`/`Store` are interpreted in
    /// [`crate::interp`]).
    ///
    /// # Panics
    /// Panics (debug builds) if called on `Load`/`Store`.
    #[must_use]
    pub fn eval_pure(self, a: i64, b: i64) -> i64 {
        match self {
            OpKind::Mov => a,
            OpKind::Add => a.wrapping_add(b),
            OpKind::Sub => a.wrapping_sub(b),
            OpKind::Mul => a.wrapping_mul(b),
            OpKind::Xor => a ^ b,
            OpKind::And => a & b,
            OpKind::Or => a | b,
            OpKind::Shl => a.wrapping_shl((b & 63) as u32),
            OpKind::Shr => a.wrapping_shr((b & 63) as u32),
            OpKind::Min => a.min(b),
            OpKind::Max => a.max(b),
            OpKind::FMul => (((a as i128) * (b as i128)) >> 16) as i64,
            OpKind::FAdd => a.wrapping_add(b),
            OpKind::Load | OpKind::Store => {
                debug_assert!(false, "eval_pure on memory op");
                0
            }
        }
    }

    /// All op kinds, for exhaustive tests and random generation.
    pub const ALL: [OpKind; 15] = [
        OpKind::Mov,
        OpKind::Add,
        OpKind::Sub,
        OpKind::Mul,
        OpKind::Xor,
        OpKind::And,
        OpKind::Or,
        OpKind::Shl,
        OpKind::Shr,
        OpKind::Min,
        OpKind::Max,
        OpKind::Load,
        OpKind::Store,
        OpKind::FMul,
        OpKind::FAdd,
    ];

    /// Short mnemonic for the pretty printer.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            OpKind::Mov => "mov",
            OpKind::Add => "add",
            OpKind::Sub => "sub",
            OpKind::Mul => "mul",
            OpKind::Xor => "xor",
            OpKind::And => "and",
            OpKind::Or => "or",
            OpKind::Shl => "shl",
            OpKind::Shr => "shr",
            OpKind::Min => "min",
            OpKind::Max => "max",
            OpKind::Load => "load",
            OpKind::Store => "store",
            OpKind::FMul => "fmul",
            OpKind::FAdd => "fadd",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_pure_wrapping_behaviour() {
        assert_eq!(OpKind::Add.eval_pure(i64::MAX, 1), i64::MIN);
        assert_eq!(OpKind::Sub.eval_pure(i64::MIN, 1), i64::MAX);
        assert_eq!(OpKind::Mul.eval_pure(i64::MAX, 2), -2);
    }

    #[test]
    fn eval_pure_shifts_mask_amount() {
        assert_eq!(OpKind::Shl.eval_pure(1, 64), 1); // 64 & 63 == 0
        assert_eq!(OpKind::Shl.eval_pure(1, 65), 2);
        assert_eq!(OpKind::Shr.eval_pure(-8, 1), -4); // arithmetic shift
    }

    #[test]
    fn eval_pure_minmax() {
        assert_eq!(OpKind::Min.eval_pure(3, -5), -5);
        assert_eq!(OpKind::Max.eval_pure(3, -5), 3);
    }

    #[test]
    fn fmul_is_fixed_point() {
        // 2.0 * 3.0 in 48.16 fixed point = 6.0
        let two = 2i64 << 16;
        let three = 3i64 << 16;
        assert_eq!(OpKind::FMul.eval_pure(two, three), 6i64 << 16);
    }

    #[test]
    fn every_op_has_positive_size_weight() {
        for op in OpKind::ALL {
            assert!(op.size_weight() >= 1, "{op:?}");
        }
    }

    #[test]
    fn store_does_not_write_dst() {
        for op in OpKind::ALL {
            assert_eq!(op.writes_dst(), op != OpKind::Store, "{op:?}");
        }
    }

    #[test]
    fn cost_classes_are_as_documented() {
        assert_eq!(OpKind::Add.cost_class(), CostClass::IntAlu);
        assert_eq!(OpKind::Mul.cost_class(), CostClass::IntMul);
        assert_eq!(OpKind::Load.cost_class(), CostClass::Mem);
        assert_eq!(OpKind::FMul.cost_class(), CostClass::Float);
    }

    #[test]
    fn operand_conversions() {
        let o: Operand = Reg(3).into();
        assert_eq!(o.reg(), Some(Reg(3)));
        let i: Operand = 42i64.into();
        assert_eq!(i.reg(), None);
        assert_eq!(format!("{o} {i}"), "r3 #42");
    }
}
