//! Fluent builders for programs and methods.
//!
//! The builders centralize the fiddly invariants — call-site id uniqueness,
//! register-frame sizing, argument-count checking — so workload generators
//! and tests can construct valid programs tersely. `ProgramBuilder::build`
//! runs full validation and fails loudly on any inconsistency.

use crate::method::{Method, MethodId};
use crate::op::{OpKind, Operand, Reg};
use crate::program::Program;
use crate::stmt::{CallSiteId, Stmt};
use crate::validate::{check_unique_sites, validate, ValidationError};

/// Builds a [`Program`] method by method.
#[derive(Debug)]
pub struct ProgramBuilder {
    name: String,
    methods: Vec<Method>,
    entry: Option<MethodId>,
    heap_size: u32,
    next_site: u32,
}

impl ProgramBuilder {
    /// Starts a program with the given name and default heap size (64Ki
    /// slots).
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            methods: Vec::new(),
            entry: None,
            heap_size: 1 << 16,
            next_site: 0,
        }
    }

    /// Sets the heap size in slots.
    #[must_use]
    pub fn heap_size(mut self, slots: u32) -> Self {
        self.heap_size = slots;
        self
    }

    /// Reserves the next method id without building it yet (useful for
    /// (mutually) recursive programs where a method must be referenced
    /// before it is defined).
    pub fn declare(&mut self) -> MethodId {
        let id = MethodId(self.methods.len() as u32);
        self.methods.push(Method {
            id,
            name: format!("declared{}", id.0),
            n_params: 0,
            n_regs: 1,
            body: Vec::new(),
            ret: Operand::Imm(0),
        });
        id
    }

    /// Returns a fresh, program-unique call-site id.
    pub fn fresh_site(&mut self) -> CallSiteId {
        let s = CallSiteId(self.next_site);
        self.next_site += 1;
        s
    }

    /// Adds a finished method, assigning it the next id. Returns the id.
    pub fn add(&mut self, mb: MethodBuilder) -> MethodId {
        let id = MethodId(self.methods.len() as u32);
        self.methods.push(mb.finish(id));
        id
    }

    /// Replaces a previously [`declare`](Self::declare)d method's definition.
    pub fn define(&mut self, id: MethodId, mb: MethodBuilder) {
        self.methods[id.index()] = mb.finish(id);
    }

    /// Marks the entry method.
    pub fn entry(&mut self, id: MethodId) {
        self.entry = Some(id);
    }

    /// Finishes and validates the program.
    ///
    /// # Errors
    /// Returns every structural inconsistency found (bad callee ids,
    /// register overflows, arity mismatches, duplicate call sites, missing
    /// entry, …).
    pub fn build(self) -> Result<Program, Vec<ValidationError>> {
        let entry = match self.entry {
            Some(e) => e,
            None => {
                return Err(vec![ValidationError::NoEntry]);
            }
        };
        let program = Program {
            name: self.name,
            methods: self.methods,
            entry,
            heap_size: self.heap_size.max(1),
        };
        let mut errors = validate(&program);
        errors.extend(check_unique_sites(&program));
        if errors.is_empty() {
            Ok(program)
        } else {
            Err(errors)
        }
    }
}

/// Builds one method's body with automatic register-frame sizing.
#[derive(Debug, Clone)]
pub struct MethodBuilder {
    name: String,
    n_params: u16,
    body: Vec<Stmt>,
    ret: Operand,
    // Statement stack for nested loop/if construction.
    nesting: Vec<Vec<Stmt>>,
    pending: Vec<PendingBlock>,
    next_reg: u16,
}

#[derive(Debug, Clone)]
enum PendingBlock {
    Loop {
        trips: u32,
    },
    IfThen {
        cond: Operand,
        prob_true: f64,
    },
    IfElse {
        cond: Operand,
        prob_true: f64,
        then_b: Vec<Stmt>,
    },
}

impl MethodBuilder {
    /// Starts a method with `n_params` parameters (arriving in registers
    /// `0..n_params`).
    #[must_use]
    pub fn new(name: impl Into<String>, n_params: u16) -> Self {
        Self {
            name: name.into(),
            n_params,
            body: Vec::new(),
            ret: Operand::Imm(0),
            nesting: Vec::new(),
            pending: Vec::new(),
            next_reg: n_params,
        }
    }

    /// Allocates a fresh register.
    pub fn reg(&mut self) -> Reg {
        let r = Reg(self.next_reg);
        self.next_reg = self
            .next_reg
            .checked_add(1)
            .expect("register frame overflow");
        r
    }

    /// The `i`-th parameter register.
    ///
    /// # Panics
    /// Panics if `i >= n_params`.
    #[must_use]
    pub fn param(&self, i: u16) -> Reg {
        assert!(i < self.n_params, "param {i} out of range");
        Reg(i)
    }

    fn push(&mut self, s: Stmt) {
        match self.nesting.last_mut() {
            Some(block) => block.push(s),
            None => self.body.push(s),
        }
    }

    /// Emits `dst = op(a, b)` into a fresh register and returns it.
    pub fn op(&mut self, op: OpKind, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        let dst = self.reg();
        self.push(Stmt::op(op, dst, a, b));
        dst
    }

    /// Emits `dst = op(a, b)` into an existing register.
    pub fn op_into(&mut self, op: OpKind, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) {
        self.push(Stmt::op(op, dst, a, b));
    }

    /// Emits a call; the result (if `want_result`) lands in a fresh register.
    pub fn call(
        &mut self,
        site: CallSiteId,
        callee: MethodId,
        args: Vec<Operand>,
        want_result: bool,
    ) -> Option<Reg> {
        let dst = if want_result { Some(self.reg()) } else { None };
        self.push(Stmt::call(site, callee, args, dst));
        dst
    }

    /// Opens a counted loop; statements emitted until [`end`](Self::end) go
    /// into its body.
    pub fn begin_loop(&mut self, trips: u32) {
        self.pending.push(PendingBlock::Loop { trips });
        self.nesting.push(Vec::new());
    }

    /// Opens the `then` arm of a branch.
    pub fn begin_if(&mut self, cond: impl Into<Operand>, prob_true: f64) {
        self.pending.push(PendingBlock::IfThen {
            cond: cond.into(),
            prob_true,
        });
        self.nesting.push(Vec::new());
    }

    /// Switches from the `then` arm to the `else` arm.
    ///
    /// # Panics
    /// Panics if no `if` is open.
    pub fn begin_else(&mut self) {
        let then_b = self.nesting.pop().expect("begin_else with no open block");
        match self.pending.pop() {
            Some(PendingBlock::IfThen { cond, prob_true }) => {
                self.pending.push(PendingBlock::IfElse {
                    cond,
                    prob_true,
                    then_b,
                });
                self.nesting.push(Vec::new());
            }
            other => panic!("begin_else after {other:?}"),
        }
    }

    /// Closes the innermost open loop or branch.
    ///
    /// # Panics
    /// Panics if nothing is open.
    pub fn end(&mut self) {
        let block = self.nesting.pop().expect("end with no open block");
        let stmt = match self.pending.pop().expect("end with no pending block") {
            PendingBlock::Loop { trips } => Stmt::Loop { trips, body: block },
            PendingBlock::IfThen { cond, prob_true } => Stmt::If {
                cond,
                prob_true,
                then_b: block,
                else_b: Vec::new(),
            },
            PendingBlock::IfElse {
                cond,
                prob_true,
                then_b,
            } => Stmt::If {
                cond,
                prob_true,
                then_b,
                else_b: block,
            },
        };
        self.push(stmt);
    }

    /// Sets the method's return operand.
    pub fn ret(&mut self, v: impl Into<Operand>) {
        self.ret = v.into();
    }

    /// Number of registers allocated so far.
    #[must_use]
    pub fn regs_used(&self) -> u16 {
        self.next_reg
    }

    fn finish(self, id: MethodId) -> Method {
        assert!(
            self.nesting.is_empty() && self.pending.is_empty(),
            "method {} finished with unclosed blocks",
            self.name
        );
        let mut n_regs = self.next_reg.max(self.n_params).max(1);
        // Cover any register mentioned directly (tests may hand-place regs).
        let body_max = self.body.iter().filter_map(Stmt::max_reg).max();
        if let Some(m) = body_max {
            n_regs = n_regs.max(m + 1);
        }
        if let Some(r) = self.ret.reg() {
            n_regs = n_regs.max(r.0 + 1);
        }
        Method {
            id,
            name: self.name,
            n_params: self.n_params,
            n_regs,
            body: self.body,
            ret: self.ret,
        }
    }
}

/// Builds the smallest interesting program: `main` loops calling `inc`.
///
/// Used by doc examples, benches and smoke tests.
#[must_use]
pub fn demo_program() -> Program {
    let mut pb = ProgramBuilder::new("demo");
    let mut inc = MethodBuilder::new("inc", 1);
    let r = inc.op(OpKind::Add, inc.param(0), 1i64);
    inc.ret(r);
    let inc_id = pb.add(inc);

    let mut main = MethodBuilder::new("main", 0);
    let acc = main.op(OpKind::Mov, 0i64, 0i64);
    main.begin_loop(10);
    let site = pb.fresh_site();
    let v = main.call(site, inc_id, vec![acc.into()], true).unwrap();
    main.op_into(OpKind::Mov, acc, v, 0i64);
    main.end();
    main.ret(acc);
    let main_id = pb.add(main);
    pb.entry(main_id);
    pb.build().expect("demo program must validate")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{run, InterpLimits};

    #[test]
    fn demo_program_builds_and_runs() {
        let p = demo_program();
        let out = run(&p, &[], &InterpLimits::default()).expect("runs");
        assert_eq!(out.value, 10);
    }

    #[test]
    fn builder_assigns_unique_site_ids() {
        let mut pb = ProgramBuilder::new("x");
        let a = pb.fresh_site();
        let b = pb.fresh_site();
        assert_ne!(a, b);
    }

    #[test]
    fn nested_blocks_close_properly() {
        let mut mb = MethodBuilder::new("nest", 0);
        let c = mb.op(OpKind::Mov, 3i64, 0i64);
        mb.begin_loop(2);
        mb.begin_if(c, 0.5);
        mb.op(OpKind::Add, c, 1i64);
        mb.begin_else();
        mb.op(OpKind::Sub, c, 1i64);
        mb.end(); // if
        mb.end(); // loop
        mb.ret(c);
        let m = mb.finish(MethodId(0));
        assert_eq!(m.body.len(), 2);
        match &m.body[1] {
            Stmt::Loop { body, .. } => match &body[0] {
                Stmt::If { then_b, else_b, .. } => {
                    assert_eq!(then_b.len(), 1);
                    assert_eq!(else_b.len(), 1);
                }
                other => panic!("expected if, got {other:?}"),
            },
            other => panic!("expected loop, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "unclosed blocks")]
    fn unclosed_block_panics() {
        let mut mb = MethodBuilder::new("bad", 0);
        mb.begin_loop(2);
        let _ = mb.finish(MethodId(0));
    }

    #[test]
    fn build_requires_entry() {
        let pb = ProgramBuilder::new("noentry");
        let err = pb.build().unwrap_err();
        assert!(matches!(err[0], ValidationError::NoEntry));
    }

    #[test]
    fn declare_then_define_supports_recursion() {
        let mut pb = ProgramBuilder::new("rec");
        let rec_id = pb.declare();
        let mut rec = MethodBuilder::new("rec", 1);
        // if (p0 odd-ish) recurse(p0 >> 1)
        let arg = rec.param(0);
        rec.begin_if(arg, 0.5);
        let half = rec.op(OpKind::Shr, arg, 1i64);
        let site = pb.fresh_site();
        rec.call(site, rec_id, vec![half.into()], false);
        rec.end();
        rec.ret(arg);
        pb.define(rec_id, rec);

        let mut main = MethodBuilder::new("main", 0);
        let s2 = pb.fresh_site();
        let v = main.call(s2, rec_id, vec![Operand::Imm(5)], true).unwrap();
        main.ret(v);
        let main_id = pb.add(main);
        pb.entry(main_id);
        let p = pb.build().expect("recursive program validates");
        assert_eq!(p.method_count(), 2);
    }
}
