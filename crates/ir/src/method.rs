//! Methods: the unit of compilation, inlining and profiling.

use crate::op::Operand;
use crate::stmt::{call_sites, stmt_count, Stmt};

/// Identity of a method within a [`crate::Program`] (an index into
/// `Program::methods`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MethodId(pub u32);

impl MethodId {
    /// The index this id denotes.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for MethodId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// A method: parameters, a register frame, a structured body and a return
/// operand.
///
/// There are no early returns: the return value is `ret`, evaluated after
/// the body completes. This mirrors a single-exit canonical form and makes
/// inlining a pure statement-list substitution.
#[derive(Debug, Clone, PartialEq)]
pub struct Method {
    /// This method's id (must equal its index in the owning program).
    pub id: MethodId,
    /// Human-readable name (used by the pretty printer and reports).
    pub name: String,
    /// Number of parameters; arguments arrive in registers `0..n_params`.
    pub n_params: u16,
    /// Total registers in the frame; must be `>= n_params` and cover every
    /// register mentioned in the body.
    pub n_regs: u16,
    /// The body.
    pub body: Vec<Stmt>,
    /// The value returned to the caller.
    pub ret: Operand,
}

impl Method {
    /// Total statement count (including nested).
    #[must_use]
    pub fn stmt_count(&self) -> usize {
        stmt_count(&self.body)
    }

    /// Number of syntactic call sites in the body.
    #[must_use]
    pub fn call_site_count(&self) -> usize {
        call_sites(&self.body).len()
    }

    /// Ids of methods this method calls directly (with duplicates).
    #[must_use]
    pub fn callees(&self) -> Vec<MethodId> {
        call_sites(&self.body).iter().map(|c| c.callee).collect()
    }

    /// Whether the body mentions no call statements at all (a leaf method).
    #[must_use]
    pub fn is_leaf(&self) -> bool {
        self.call_site_count() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{OpKind, Reg};
    use crate::stmt::CallSiteId;

    fn leaf() -> Method {
        Method {
            id: MethodId(0),
            name: "leaf".into(),
            n_params: 1,
            n_regs: 2,
            body: vec![Stmt::op(OpKind::Add, Reg(1), Reg(0), 1i64)],
            ret: Reg(1).into(),
        }
    }

    #[test]
    fn leaf_detection() {
        let m = leaf();
        assert!(m.is_leaf());
        assert_eq!(m.stmt_count(), 1);
        assert!(m.callees().is_empty());
    }

    #[test]
    fn callees_reports_duplicates() {
        let mut m = leaf();
        m.body
            .push(Stmt::call(CallSiteId(0), MethodId(2), vec![], None));
        m.body
            .push(Stmt::call(CallSiteId(1), MethodId(2), vec![], None));
        assert_eq!(m.callees(), vec![MethodId(2), MethodId(2)]);
        assert!(!m.is_leaf());
    }
}
