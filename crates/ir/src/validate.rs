//! Structural validation of programs.
//!
//! A validated program upholds every invariant the interpreter, the inliner
//! and the cost model rely on, so those components can index fearlessly.

use std::collections::HashMap;

use crate::method::MethodId;
use crate::op::Operand;
use crate::program::Program;
use crate::stmt::{visit_body, CallSiteId, Stmt};

/// A structural inconsistency in a [`Program`].
#[derive(Debug, Clone, PartialEq)]
pub enum ValidationError {
    /// The builder was finished without an entry point.
    NoEntry,
    /// `methods[i].id != MethodId(i)`.
    MisnumberedMethod {
        /// Index in the method table.
        index: usize,
        /// The id stored there.
        found: MethodId,
    },
    /// The entry id is out of range.
    EntryOutOfRange {
        /// The offending entry id.
        entry: MethodId,
    },
    /// The entry method takes parameters (it is invoked with none).
    EntryHasParams {
        /// The entry id.
        entry: MethodId,
        /// Its parameter count.
        n_params: u16,
    },
    /// A call targets a method id outside the table.
    BadCallee {
        /// Method containing the call.
        in_method: MethodId,
        /// The missing callee.
        callee: MethodId,
    },
    /// A call passes the wrong number of arguments.
    ArityMismatch {
        /// Method containing the call.
        in_method: MethodId,
        /// The callee.
        callee: MethodId,
        /// Arguments at the site.
        got: usize,
        /// The callee's `n_params`.
        want: usize,
    },
    /// A statement mentions a register outside the method frame.
    RegOutOfRange {
        /// The method.
        in_method: MethodId,
        /// The register index.
        reg: u16,
        /// The frame size.
        n_regs: u16,
    },
    /// `n_params > n_regs`.
    FrameTooSmall {
        /// The method.
        method: MethodId,
    },
    /// The same call-site id appears at two syntactic sites (only an error
    /// for freshly *built* programs: the inliner clones callee bodies, so
    /// post-inlining programs legitimately repeat site ids).
    DuplicateSite {
        /// The duplicated id.
        site: CallSiteId,
    },
    /// A branch probability is outside `[0, 1]` or not finite.
    BadProbability {
        /// The method.
        in_method: MethodId,
        /// The offending value.
        prob: f64,
    },
    /// The heap size is zero.
    ZeroHeap,
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidationError::NoEntry => write!(f, "no entry method set"),
            ValidationError::MisnumberedMethod { index, found } => {
                write!(f, "method at index {index} has id {found}")
            }
            ValidationError::EntryOutOfRange { entry } => {
                write!(f, "entry {entry} out of range")
            }
            ValidationError::EntryHasParams { entry, n_params } => {
                write!(f, "entry {entry} takes {n_params} params")
            }
            ValidationError::BadCallee { in_method, callee } => {
                write!(f, "{in_method} calls nonexistent {callee}")
            }
            ValidationError::ArityMismatch {
                in_method,
                callee,
                got,
                want,
            } => write!(
                f,
                "{in_method} calls {callee} with {got} args, expects {want}"
            ),
            ValidationError::RegOutOfRange {
                in_method,
                reg,
                n_regs,
            } => write!(f, "{in_method} uses r{reg} but frame has {n_regs}"),
            ValidationError::FrameTooSmall { method } => {
                write!(f, "{method}: n_params exceeds n_regs")
            }
            ValidationError::DuplicateSite { site } => {
                write!(f, "call-site id {site} used at multiple sites")
            }
            ValidationError::BadProbability { in_method, prob } => {
                write!(f, "{in_method} has branch probability {prob}")
            }
            ValidationError::ZeroHeap => write!(f, "heap_size is zero"),
        }
    }
}

impl std::error::Error for ValidationError {}

/// Checks that every call-site id occurs at most once syntactically.
///
/// This holds for freshly built programs (the builder hands out fresh ids)
/// but NOT after inlining, which clones callee bodies together with their
/// site ids so profile data keys keep working. [`validate`] therefore does
/// not include this check; `ProgramBuilder::build` runs both.
#[must_use]
pub fn check_unique_sites(program: &Program) -> Vec<ValidationError> {
    let mut sites_seen: HashMap<CallSiteId, u32> = HashMap::new();
    for m in &program.methods {
        visit_body(&m.body, &mut |s| {
            if let Stmt::Call(c) = s {
                *sites_seen.entry(c.site).or_insert(0) += 1;
            }
        });
    }
    let mut errors: Vec<ValidationError> = sites_seen
        .into_iter()
        .filter(|&(_, count)| count > 1)
        .map(|(site, _)| ValidationError::DuplicateSite { site })
        .collect();
    errors.sort_by_key(|e| match e {
        ValidationError::DuplicateSite { site } => site.0,
        _ => 0,
    });
    errors
}

/// Validates a program's structure, returning every inconsistency found
/// (empty = valid). Does not require call-site-id uniqueness — see
/// [`check_unique_sites`].
#[must_use]
pub fn validate(program: &Program) -> Vec<ValidationError> {
    let mut errors = Vec::new();
    let n = program.methods.len();

    if program.heap_size == 0 {
        errors.push(ValidationError::ZeroHeap);
    }
    if program.entry.index() >= n {
        errors.push(ValidationError::EntryOutOfRange {
            entry: program.entry,
        });
    } else if program.methods[program.entry.index()].n_params != 0 {
        // Entry may take parameters only if the harness supplies them; the
        // benchmark runner invokes entries with no arguments, so flag it.
        errors.push(ValidationError::EntryHasParams {
            entry: program.entry,
            n_params: program.methods[program.entry.index()].n_params,
        });
    }

    for (i, m) in program.methods.iter().enumerate() {
        if m.id.index() != i {
            errors.push(ValidationError::MisnumberedMethod {
                index: i,
                found: m.id,
            });
        }
        if m.n_params > m.n_regs {
            errors.push(ValidationError::FrameTooSmall { method: m.id });
        }
        let check_reg = |errors: &mut Vec<ValidationError>, r: u16| {
            if r >= m.n_regs {
                errors.push(ValidationError::RegOutOfRange {
                    in_method: m.id,
                    reg: r,
                    n_regs: m.n_regs,
                });
            }
        };
        let check_operand = |errors: &mut Vec<ValidationError>, o: Operand| {
            if let Some(r) = o.reg() {
                if r.0 >= m.n_regs {
                    errors.push(ValidationError::RegOutOfRange {
                        in_method: m.id,
                        reg: r.0,
                        n_regs: m.n_regs,
                    });
                }
            }
        };
        check_operand(&mut errors, m.ret);
        visit_body(&m.body, &mut |s| match s {
            Stmt::Op(o) => {
                check_reg(&mut errors, o.dst.0);
                check_operand(&mut errors, o.a);
                check_operand(&mut errors, o.b);
            }
            Stmt::Call(c) => {
                if let Some(d) = c.dst {
                    check_reg(&mut errors, d.0);
                }
                for a in &c.args {
                    check_operand(&mut errors, *a);
                }
                if c.callee.index() >= n {
                    errors.push(ValidationError::BadCallee {
                        in_method: m.id,
                        callee: c.callee,
                    });
                } else {
                    let want = program.methods[c.callee.index()].n_params as usize;
                    if c.args.len() != want {
                        errors.push(ValidationError::ArityMismatch {
                            in_method: m.id,
                            callee: c.callee,
                            got: c.args.len(),
                            want,
                        });
                    }
                }
            }
            Stmt::Loop { .. } => {}
            Stmt::If {
                cond, prob_true, ..
            } => {
                check_operand(&mut errors, *cond);
                if !prob_true.is_finite() || !(0.0..=1.0).contains(prob_true) {
                    errors.push(ValidationError::BadProbability {
                        in_method: m.id,
                        prob: *prob_true,
                    });
                }
            }
        });
    }

    errors
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::method::Method;
    use crate::op::{OpKind, Reg};

    fn base() -> Program {
        Program {
            name: "v".into(),
            methods: vec![Method {
                id: MethodId(0),
                name: "main".into(),
                n_params: 0,
                n_regs: 2,
                body: vec![Stmt::op(OpKind::Add, Reg(1), Reg(0), 1i64)],
                ret: Reg(1).into(),
            }],
            entry: MethodId(0),
            heap_size: 8,
        }
    }

    #[test]
    fn valid_program_has_no_errors() {
        assert!(validate(&base()).is_empty());
    }

    #[test]
    fn detects_reg_out_of_range() {
        let mut p = base();
        p.methods[0]
            .body
            .push(Stmt::op(OpKind::Add, Reg(9), Reg(0), 0i64));
        let errs = validate(&p);
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidationError::RegOutOfRange { reg: 9, .. })));
    }

    #[test]
    fn detects_bad_callee_and_arity() {
        let mut p = base();
        p.methods[0]
            .body
            .push(Stmt::call(CallSiteId(0), MethodId(9), vec![], None));
        p.methods[0].body.push(Stmt::call(
            CallSiteId(1),
            MethodId(0),
            vec![Reg(0).into()],
            None,
        ));
        let errs = validate(&p);
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidationError::BadCallee { .. })));
        assert!(errs.iter().any(|e| matches!(
            e,
            ValidationError::ArityMismatch {
                got: 1,
                want: 0,
                ..
            }
        )));
    }

    #[test]
    fn detects_duplicate_sites() {
        let mut p = base();
        p.methods[0]
            .body
            .push(Stmt::call(CallSiteId(5), MethodId(0), vec![], None));
        p.methods[0]
            .body
            .push(Stmt::call(CallSiteId(5), MethodId(0), vec![], None));
        let errs = check_unique_sites(&p);
        assert!(errs.iter().any(|e| matches!(
            e,
            ValidationError::DuplicateSite {
                site: CallSiteId(5)
            }
        )));
        assert!(validate(&p).is_empty(), "validate must tolerate duplicates");
    }

    #[test]
    fn detects_bad_probability() {
        let mut p = base();
        p.methods[0].body.push(Stmt::If {
            cond: Reg(0).into(),
            prob_true: 1.5,
            then_b: vec![],
            else_b: vec![],
        });
        assert!(validate(&p)
            .iter()
            .any(|e| matches!(e, ValidationError::BadProbability { .. })));
    }

    #[test]
    fn detects_entry_with_params_and_zero_heap() {
        let mut p = base();
        p.methods[0].n_params = 1;
        p.heap_size = 0;
        let errs = validate(&p);
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidationError::EntryHasParams { .. })));
        assert!(errs.iter().any(|e| matches!(e, ValidationError::ZeroHeap)));
    }

    #[test]
    fn detects_misnumbered_method() {
        let mut p = base();
        p.methods[0].id = MethodId(3);
        assert!(validate(&p)
            .iter()
            .any(|e| matches!(e, ValidationError::MisnumberedMethod { .. })));
    }
}
