//! Parser for the [`crate::pretty`] text format.
//!
//! Together with the pretty printer this gives programs a stable
//! serialized form: `parse_program(program_to_string(p)) == p` (verified
//! by round-trip property tests). Used to dump and reload workloads, to
//! write golden tests, and by the `custom_workload` example's file mode.
//!
//! The grammar is line-oriented:
//!
//! ```text
//! program "NAME" (methods=N, entry=mE, heap=H)
//! method mI "NAME" (params=P, regs=R, est_size=S)
//!   OP rD <- A, B
//!   call rD <- mC(A, ...) @csK        (or: call _ <- ...)
//!   loop xT {
//!     ...
//!   }
//!   if A (p=0.25) {
//!     ...
//!   } else {
//!     ...
//!   }
//!   return A
//! ```
//!
//! where operands are `rN` (register) or `#V` (immediate), and `est_size`
//! is informational (recomputed, not trusted).

use crate::method::{Method, MethodId};
use crate::op::{OpKind, Operand, Reg};
use crate::program::Program;
use crate::stmt::{CallSiteId, CallStmt, OpStmt, Stmt};

/// A parse failure, with the 1-based line it occurred on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    lines: Vec<&'a str>,
    pos: usize,
}

type PResult<T> = Result<T, ParseError>;

impl<'a> Parser<'a> {
    fn err<T>(&self, message: impl Into<String>) -> PResult<T> {
        Err(ParseError {
            line: self.pos.min(self.lines.len()),
            message: message.into(),
        })
    }

    /// The next non-empty line, trimmed, without consuming it.
    fn peek(&mut self) -> Option<&'a str> {
        while self.pos < self.lines.len() && self.lines[self.pos].trim().is_empty() {
            self.pos += 1;
        }
        self.lines.get(self.pos).map(|l| l.trim())
    }

    fn next_line(&mut self) -> Option<&'a str> {
        let line = self.peek()?;
        self.pos += 1;
        Some(line)
    }
}

fn parse_quoted(s: &str) -> Option<(String, &str)> {
    let rest = s.strip_prefix('"')?;
    let end = rest.find('"')?;
    Some((rest[..end].to_string(), &rest[end + 1..]))
}

fn parse_u32_field(text: &str, key: &str) -> Option<u32> {
    // `key` includes its separator, e.g. "entry=m" or "heap=".
    let idx = text.find(key)?;
    let after = &text[idx + key.len()..];
    let digits: String = after.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

fn parse_operand(s: &str) -> Option<Operand> {
    let s = s.trim();
    if let Some(v) = s.strip_prefix('#') {
        return v.parse::<i64>().ok().map(Operand::Imm);
    }
    if let Some(r) = s.strip_prefix('r') {
        return r.parse::<u16>().ok().map(|n| Operand::Reg(Reg(n)));
    }
    None
}

fn parse_reg(s: &str) -> Option<Reg> {
    match parse_operand(s)? {
        Operand::Reg(r) => Some(r),
        Operand::Imm(_) => None,
    }
}

fn mnemonic_to_op(m: &str) -> Option<OpKind> {
    OpKind::ALL.into_iter().find(|op| op.mnemonic() == m)
}

/// Parses a whole program from the pretty-printer format.
///
/// # Errors
/// Returns a [`ParseError`] naming the offending line; the parsed program
/// is *not* validated — run [`crate::validate::validate`] if the input is
/// untrusted.
pub fn parse_program(text: &str) -> PResult<Program> {
    let mut p = Parser {
        lines: text.lines().collect(),
        pos: 0,
    };
    let header = match p.next_line() {
        Some(h) => h,
        None => return p.err("empty input"),
    };
    let rest = match header.strip_prefix("program ") {
        Some(r) => r,
        None => return p.err("expected `program \"NAME\" (...)`"),
    };
    let (name, meta) = match parse_quoted(rest) {
        Some(x) => x,
        None => return p.err("expected quoted program name"),
    };
    let entry = match parse_u32_field(meta, "entry=m") {
        Some(e) => MethodId(e),
        None => return p.err("missing entry=mN"),
    };
    let heap_size = match parse_u32_field(meta, "heap=") {
        Some(h) => h,
        None => return p.err("missing heap=N"),
    };

    let mut methods = Vec::new();
    while let Some(line) = p.peek() {
        if line.starts_with("method ") {
            methods.push(parse_method(&mut p)?);
        } else {
            return p.err(format!("unexpected line: {line}"));
        }
    }
    Ok(Program {
        name,
        methods,
        entry,
        heap_size,
    })
}

fn parse_method(p: &mut Parser<'_>) -> PResult<Method> {
    let line = p.next_line().expect("peeked");
    let rest = match line.strip_prefix("method m") {
        Some(r) => r,
        None => return p.err("expected method header"),
    };
    let id_digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    let id = match id_digits.parse::<u32>() {
        Ok(v) => MethodId(v),
        Err(_) => return p.err("bad method id"),
    };
    let after_id = &rest[id_digits.len()..];
    let (name, meta) = match parse_quoted(after_id.trim_start()) {
        Some(x) => x,
        None => return p.err("expected quoted method name"),
    };
    let n_params = match parse_u32_field(meta, "params=") {
        Some(v) if v <= u32::from(u16::MAX) => v as u16,
        _ => return p.err("missing/bad params="),
    };
    let n_regs = match parse_u32_field(meta, "regs=") {
        Some(v) if v <= u32::from(u16::MAX) => v as u16,
        _ => return p.err("missing/bad regs="),
    };
    let (body, terminator) = parse_block(p, &["return "])?;
    let ret_text = match terminator {
        Some(t) => t,
        None => return p.err("method body ended without `return`"),
    };
    let ret = match parse_operand(ret_text.trim_start_matches("return ").trim()) {
        Some(o) => o,
        None => return p.err("bad return operand"),
    };
    Ok(Method {
        id,
        name,
        n_params,
        n_regs,
        body,
        ret,
    })
}

/// Parses statements until one of `terminators` (line returned) or a `}` /
/// `} else {` (handled by callers via the returned terminator line).
fn parse_block<'a>(
    p: &mut Parser<'a>,
    terminators: &[&str],
) -> PResult<(Vec<Stmt>, Option<&'a str>)> {
    let mut out = Vec::new();
    while let Some(line) = p.peek() {
        if terminators.iter().any(|t| line.starts_with(t)) || line == "}" || line == "} else {" {
            if terminators.iter().any(|t| line.starts_with(t)) {
                p.pos += 1;
                return Ok((out, Some(line)));
            }
            return Ok((out, None)); // caller consumes the brace
        }
        if line.starts_with("method ") || line.starts_with("program ") {
            return Ok((out, None));
        }
        out.push(parse_stmt(p)?);
    }
    Ok((out, None))
}

fn parse_stmt(p: &mut Parser<'_>) -> PResult<Stmt> {
    let line = p.next_line().expect("peeked by caller");
    if let Some(rest) = line.strip_prefix("loop x") {
        let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
        let trips: u32 = match digits.parse() {
            Ok(t) => t,
            Err(_) => return p.err("bad loop trip count"),
        };
        if !rest[digits.len()..].trim_start().starts_with('{') {
            return p.err("expected `{` after loop header");
        }
        let (body, _) = parse_block(p, &[])?;
        match p.next_line() {
            Some("}") => Ok(Stmt::Loop { trips, body }),
            _ => p.err("expected `}` closing loop"),
        }
    } else if let Some(rest) = line.strip_prefix("if ") {
        // `if A (p=0.25) {`
        let open = match rest.find('(') {
            Some(i) => i,
            None => return p.err("expected `(p=..)` in if"),
        };
        let cond = match parse_operand(&rest[..open]) {
            Some(c) => c,
            None => return p.err("bad if condition operand"),
        };
        let close = match rest.find(')') {
            Some(i) => i,
            None => return p.err("unclosed probability"),
        };
        let prob_text = rest[open + 1..close].trim_start_matches("p=");
        let prob_true: f64 = match prob_text.parse() {
            Ok(v) => v,
            Err(_) => return p.err("bad branch probability"),
        };
        let (then_b, _) = parse_block(p, &[])?;
        let closer = p.next_line();
        match closer {
            Some("} else {") => {
                let (else_b, _) = parse_block(p, &[])?;
                match p.next_line() {
                    Some("}") => Ok(Stmt::If {
                        cond,
                        prob_true,
                        then_b,
                        else_b,
                    }),
                    _ => p.err("expected `}` closing else"),
                }
            }
            Some("}") => Ok(Stmt::If {
                cond,
                prob_true,
                then_b,
                else_b: Vec::new(),
            }),
            _ => p.err("expected `}` or `} else {` closing if"),
        }
    } else if let Some(rest) = line.strip_prefix("call ") {
        // `call rD <- mC(args) @csK` or `call _ <- mC(args) @csK`
        let arrow = match rest.find("<-") {
            Some(i) => i,
            None => return p.err("expected `<-` in call"),
        };
        let dst_text = rest[..arrow].trim();
        let dst = if dst_text == "_" {
            None
        } else {
            match parse_reg(dst_text) {
                Some(r) => Some(r),
                None => return p.err("bad call destination"),
            }
        };
        let rest = rest[arrow + 2..].trim();
        let rest = match rest.strip_prefix('m') {
            Some(r) => r,
            None => return p.err("expected callee `mN`"),
        };
        let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
        let callee = match digits.parse::<u32>() {
            Ok(c) => MethodId(c),
            Err(_) => return p.err("bad callee id"),
        };
        let rest = &rest[digits.len()..];
        let open = match rest.find('(') {
            Some(i) => i,
            None => return p.err("expected `(` after callee"),
        };
        let close = match rest.find(')') {
            Some(i) => i,
            None => return p.err("unclosed argument list"),
        };
        let args_text = &rest[open + 1..close];
        let mut args = Vec::new();
        for a in args_text.split(',') {
            let a = a.trim();
            if a.is_empty() {
                continue;
            }
            match parse_operand(a) {
                Some(o) => args.push(o),
                None => return p.err(format!("bad call argument `{a}`")),
            }
        }
        let site_text = rest[close + 1..].trim();
        let site_digits = match site_text.strip_prefix("@cs") {
            Some(d) => d,
            None => return p.err("expected `@csK` site id"),
        };
        let site = match site_digits.parse::<u32>() {
            Ok(s) => CallSiteId(s),
            Err(_) => return p.err("bad site id"),
        };
        Ok(Stmt::Call(CallStmt {
            site,
            callee,
            args,
            dst,
        }))
    } else {
        // `OP rD <- A, B`
        let mut parts = line.splitn(2, ' ');
        let mnem = parts.next().unwrap_or("");
        let op = match mnemonic_to_op(mnem) {
            Some(o) => o,
            None => return p.err(format!("unknown statement `{line}`")),
        };
        let rest = parts.next().unwrap_or("");
        let arrow = match rest.find("<-") {
            Some(i) => i,
            None => return p.err("expected `<-` in op"),
        };
        let dst = match parse_reg(rest[..arrow].trim()) {
            Some(r) => r,
            None => return p.err("bad op destination"),
        };
        let operands = rest[arrow + 2..].trim();
        let comma = match operands.find(',') {
            Some(i) => i,
            None => return p.err("expected two comma-separated operands"),
        };
        let a = match parse_operand(&operands[..comma]) {
            Some(o) => o,
            None => return p.err("bad first operand"),
        };
        let b = match parse_operand(&operands[comma + 1..]) {
            Some(o) => o,
            None => return p.err("bad second operand"),
        };
        Ok(Stmt::Op(OpStmt { op, dst, a, b }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::demo_program;
    use crate::pretty::program_to_string;
    use crate::testgen::{random_program, GenConfig};
    use simrng::Rng;

    #[test]
    fn demo_program_round_trips() {
        let p = demo_program();
        let text = program_to_string(&p);
        let q = parse_program(&text).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn random_programs_round_trip() {
        let mut rng = Rng::seed_from_u64(21);
        for case in 0..40 {
            let p = random_program(&mut rng, &GenConfig::default());
            let text = program_to_string(&p);
            let q = parse_program(&text).unwrap_or_else(|e| panic!("case {case}: {e}\n{text}"));
            assert_eq!(p, q, "case {case}");
        }
    }

    #[test]
    fn branch_probabilities_survive_with_printed_precision() {
        // The printer rounds p to 2 decimals; parse must accept it.
        let text = "program \"t\" (methods=1, entry=m0, heap=8)\n\
                    method m0 \"main\" (params=0, regs=2, est_size=0)\n\
                    \u{20} if r0 (p=0.25) {\n\
                    \u{20}   add r1 <- r0, #1\n\
                    \u{20} }\n\
                    \u{20} return r1\n";
        let p = parse_program(text).unwrap();
        match &p.methods[0].body[0] {
            Stmt::If { prob_true, .. } => assert!((prob_true - 0.25).abs() < 1e-12),
            other => panic!("expected if, got {other:?}"),
        }
    }

    #[test]
    fn errors_carry_line_numbers() {
        let text = "program \"t\" (methods=1, entry=m0, heap=8)\n\
                    method m0 \"main\" (params=0, regs=1, est_size=0)\n\
                    \u{20} frobnicate r0 <- r0, #1\n\
                    \u{20} return r0\n";
        let err = parse_program(text).unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.message.contains("unknown statement"), "{err}");
    }

    #[test]
    fn rejects_garbage_header() {
        assert!(parse_program("").is_err());
        assert!(parse_program("porgram \"x\"").is_err());
        assert!(parse_program("program \"x\" (entry=q)").is_err());
    }

    #[test]
    fn call_without_result_round_trips() {
        let text = "program \"t\" (methods=2, entry=m1, heap=8)\n\
                    method m0 \"f\" (params=0, regs=1, est_size=0)\n\
                    \u{20} return #0\n\
                    method m1 \"main\" (params=0, regs=1, est_size=0)\n\
                    \u{20} call _ <- m0() @cs0\n\
                    \u{20} return #0\n";
        let p = parse_program(text).unwrap();
        let text2 = program_to_string(&p);
        let q = parse_program(&text2).unwrap();
        assert_eq!(p, q);
        assert_eq!(p.methods[1].call_site_count(), 1);
    }
}
