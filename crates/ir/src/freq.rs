//! Analytic execution-frequency analysis.
//!
//! This module computes, without interpreting a single instruction:
//!
//! * **local** profiles: for each method, the expected number of executions
//!   of each statement *per entry to the method* (products of enclosing loop
//!   trip counts and branch probabilities), broken down into dynamic op
//!   counts per [`CostClass`] and per-call-site frequencies;
//! * **global** profiles: absolute per-method entry counts and absolute
//!   per-call-site execution counts for one invocation of the program entry
//!   point, obtained by solving the linear system
//!   `entries = e0 + Fᵀ·entries` with damped fixed-point iteration
//!   (recursive programs converge because recursive calls sit under
//!   probability-< 1 branches; a divergence guard reports failure instead of
//!   looping forever).
//!
//! The JIT cost model runs the local analysis on *post-inlining* bodies and
//! the global analysis on whatever program state it is costing; the adaptive
//! system's hot-call-site test uses the global site counts of the original
//! program, exactly like an edge profile in Jikes RVM.

use std::collections::BTreeMap;

use crate::method::MethodId;
use crate::op::CostClass;
use crate::program::Program;
use crate::stmt::{CallSiteId, Stmt};

/// Number of cost classes (indexable via [`class_index`]).
pub const N_COST_CLASSES: usize = 4;

/// Maps a [`CostClass`] to a dense index.
#[must_use]
pub fn class_index(c: CostClass) -> usize {
    match c {
        CostClass::IntAlu => 0,
        CostClass::IntMul => 1,
        CostClass::Mem => 2,
        CostClass::Float => 3,
    }
}

/// A call site as seen by the local analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalSite {
    /// The site's stable id.
    pub site: CallSiteId,
    /// The called method.
    pub callee: MethodId,
    /// Number of arguments at the site.
    pub n_args: usize,
    /// Expected executions of this site per entry to the enclosing method.
    pub freq_per_entry: f64,
}

/// Per-method local dynamic profile (per single entry to the method).
#[derive(Debug, Clone, PartialEq)]
pub struct MethodLocal {
    /// Dynamic op-unit counts per entry, by cost class. Loop headers and
    /// branch tests contribute to the `IntAlu` class (one unit per dynamic
    /// evaluation).
    pub ops_per_entry: [f64; N_COST_CLASSES],
    /// Call sites with their per-entry frequencies.
    pub sites: Vec<LocalSite>,
    /// Total dynamic calls per entry (sum of site frequencies).
    pub calls_per_entry: f64,
}

impl MethodLocal {
    /// Total dynamic op units per entry (all classes).
    #[must_use]
    pub fn total_ops_per_entry(&self) -> f64 {
        self.ops_per_entry.iter().sum()
    }
}

/// Computes the local profile of a statement list.
#[must_use]
pub fn local_profile(body: &[Stmt]) -> MethodLocal {
    let mut out = MethodLocal {
        ops_per_entry: [0.0; N_COST_CLASSES],
        sites: Vec::new(),
        calls_per_entry: 0.0,
    };
    walk(body, 1.0, &mut out);
    out.calls_per_entry = out.sites.iter().map(|s| s.freq_per_entry).sum();
    out
}

fn walk(body: &[Stmt], mult: f64, out: &mut MethodLocal) {
    for stmt in body {
        match stmt {
            Stmt::Op(o) => {
                out.ops_per_entry[class_index(o.op.cost_class())] += mult;
            }
            Stmt::Call(c) => {
                out.sites.push(LocalSite {
                    site: c.site,
                    callee: c.callee,
                    n_args: c.args.len(),
                    freq_per_entry: mult,
                });
            }
            Stmt::Loop { trips, body } => {
                // Header evaluated once per iteration plus loop setup.
                out.ops_per_entry[class_index(CostClass::IntAlu)] +=
                    mult * (1.0 + f64::from(*trips));
                walk(body, mult * f64::from(*trips), out);
            }
            Stmt::If {
                prob_true,
                then_b,
                else_b,
                ..
            } => {
                let p = prob_true.clamp(0.0, 1.0);
                out.ops_per_entry[class_index(CostClass::IntAlu)] += mult;
                walk(then_b, mult * p, out);
                walk(else_b, mult * (1.0 - p), out);
            }
        }
    }
}

/// Result of the global frequency analysis.
#[derive(Debug, Clone)]
pub struct FreqAnalysis {
    /// Absolute entry count per method (indexed by `MethodId`) for one
    /// invocation of the program entry.
    pub entries: Vec<f64>,
    /// Absolute execution count per call site. Ordered by site id so that
    /// summations over it are bit-deterministic.
    pub site_counts: BTreeMap<CallSiteId, f64>,
    /// Whether the fixed-point iteration converged (false means the program
    /// has effectively unbounded recursion under the profile annotations;
    /// counts were capped).
    pub converged: bool,
    /// Per-method local profiles (indexed by `MethodId`).
    pub locals: Vec<MethodLocal>,
}

impl FreqAnalysis {
    /// Entry count of a method.
    #[must_use]
    pub fn entry_count(&self, m: MethodId) -> f64 {
        self.entries[m.index()]
    }

    /// Absolute execution count of a site (0 if never executed).
    #[must_use]
    pub fn site_count(&self, s: CallSiteId) -> f64 {
        self.site_counts.get(&s).copied().unwrap_or(0.0)
    }

    /// Total dynamic (non-inlined) calls executed across the program.
    #[must_use]
    pub fn total_dynamic_calls(&self) -> f64 {
        self.site_counts.values().sum()
    }
}

/// Iteration cap for the global fixed point.
const MAX_ITERS: usize = 1000;
/// Convergence threshold on the max relative change of any entry count.
const EPS: f64 = 1e-10;
/// Entry counts are capped here to keep divergent inputs finite.
const ENTRY_CAP: f64 = 1e18;

/// Runs the global frequency analysis on a program.
///
/// `entry_weight` is the number of times the entry method is invoked (one
/// benchmark "iteration" is `entry_weight = 1`).
#[must_use]
pub fn analyze(program: &Program, entry_weight: f64) -> FreqAnalysis {
    let n = program.methods.len();
    let locals: Vec<MethodLocal> = program
        .methods
        .iter()
        .map(|m| local_profile(&m.body))
        .collect();

    let mut entries = vec![0.0f64; n];
    let mut converged = false;
    if program.entry.index() < n {
        // Jacobi iteration on `entries = e0 + Fᵀ·entries`: each pass applies
        // the call matrix to the previous iterate. A call chain of depth d
        // settles in d passes; damped recursion (spectral radius < 1)
        // converges geometrically thereafter.
        entries[program.entry.index()] = entry_weight;
        for _ in 0..MAX_ITERS {
            let mut next = vec![0.0f64; n];
            next[program.entry.index()] = entry_weight;
            for (mi, local) in locals.iter().enumerate() {
                let em = entries[mi];
                if em == 0.0 {
                    continue;
                }
                for site in &local.sites {
                    if site.callee.index() < n {
                        next[site.callee.index()] =
                            (next[site.callee.index()] + em * site.freq_per_entry).min(ENTRY_CAP);
                    }
                }
            }
            let max_rel = entries
                .iter()
                .zip(&next)
                .map(|(a, b)| {
                    let denom = a.abs().max(b.abs()).max(1e-300);
                    (a - b).abs() / denom
                })
                .fold(0.0f64, f64::max);
            entries = next;
            if max_rel < EPS {
                converged = true;
                break;
            }
        }
    } else {
        converged = true;
    }

    let mut site_counts = BTreeMap::new();
    for (mi, local) in locals.iter().enumerate() {
        let em = entries[mi];
        for site in &local.sites {
            *site_counts.entry(site.site).or_insert(0.0) += em * site.freq_per_entry;
        }
    }

    FreqAnalysis {
        entries,
        site_counts,
        converged,
        locals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::method::Method;
    use crate::op::{OpKind, Reg};

    fn method(id: u32, body: Vec<Stmt>) -> Method {
        let max_reg = body.iter().filter_map(Stmt::max_reg).max().unwrap_or(0);
        Method {
            id: MethodId(id),
            name: format!("m{id}"),
            n_params: 0,
            n_regs: max_reg + 1,
            body,
            ret: 0i64.into(),
        }
    }

    fn program(methods: Vec<Method>) -> Program {
        Program {
            name: "t".into(),
            methods,
            entry: MethodId(0),
            heap_size: 8,
        }
    }

    #[test]
    fn local_profile_multiplies_loops() {
        let body = vec![Stmt::Loop {
            trips: 10,
            body: vec![
                Stmt::op(OpKind::Add, Reg(0), Reg(0), 1i64),
                Stmt::Loop {
                    trips: 4,
                    body: vec![Stmt::op(OpKind::Mul, Reg(1), Reg(0), 3i64)],
                },
            ],
        }];
        let p = local_profile(&body);
        assert_eq!(p.ops_per_entry[class_index(CostClass::IntMul)], 40.0);
        // Adds: 10 body adds + loop-header units (outer 11, inner 10*(1+4)=50).
        assert_eq!(
            p.ops_per_entry[class_index(CostClass::IntAlu)],
            10.0 + 11.0 + 50.0
        );
    }

    #[test]
    fn local_profile_weights_branches() {
        let body = vec![Stmt::If {
            cond: Reg(0).into(),
            prob_true: 0.25,
            then_b: vec![Stmt::call(CallSiteId(7), MethodId(1), vec![], None)],
            else_b: vec![Stmt::op(OpKind::Add, Reg(0), Reg(0), 1i64)],
        }];
        let p = local_profile(&body);
        assert_eq!(p.sites.len(), 1);
        assert!((p.sites[0].freq_per_entry - 0.25).abs() < 1e-12);
        assert!((p.ops_per_entry[class_index(CostClass::IntAlu)] - (1.0 + 0.75)).abs() < 1e-12);
        assert!((p.calls_per_entry - 0.25).abs() < 1e-12);
    }

    #[test]
    fn global_counts_chain() {
        // main calls a 3x in a loop; a calls b once.
        let main = method(
            0,
            vec![Stmt::Loop {
                trips: 3,
                body: vec![Stmt::call(CallSiteId(0), MethodId(1), vec![], None)],
            }],
        );
        let a = method(
            1,
            vec![Stmt::call(CallSiteId(1), MethodId(2), vec![], None)],
        );
        let b = method(2, vec![Stmt::op(OpKind::Add, Reg(0), Reg(0), 1i64)]);
        let fa = analyze(&program(vec![main, a, b]), 1.0);
        assert!(fa.converged);
        assert!((fa.entry_count(MethodId(1)) - 3.0).abs() < 1e-9);
        assert!((fa.entry_count(MethodId(2)) - 3.0).abs() < 1e-9);
        assert!((fa.site_count(CallSiteId(1)) - 3.0).abs() < 1e-9);
        assert!((fa.total_dynamic_calls() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn entry_weight_scales_everything() {
        let main = method(
            0,
            vec![Stmt::call(CallSiteId(0), MethodId(1), vec![], None)],
        );
        let a = method(1, vec![]);
        let p = program(vec![main, a]);
        let f1 = analyze(&p, 1.0);
        let f5 = analyze(&p, 5.0);
        assert!((f5.entry_count(MethodId(1)) - 5.0 * f1.entry_count(MethodId(1))).abs() < 1e-9);
    }

    #[test]
    fn damped_recursion_converges() {
        // m1 calls itself with probability 0.5: expected entries = 2.
        let main = method(
            0,
            vec![Stmt::call(CallSiteId(0), MethodId(1), vec![], None)],
        );
        let rec = method(
            1,
            vec![Stmt::If {
                cond: Reg(0).into(),
                prob_true: 0.5,
                then_b: vec![Stmt::call(CallSiteId(1), MethodId(1), vec![], None)],
                else_b: vec![],
            }],
        );
        let fa = analyze(&program(vec![main, rec]), 1.0);
        assert!(fa.converged);
        assert!((fa.entry_count(MethodId(1)) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn undamped_recursion_reports_divergence() {
        // m1 always calls itself: counts blow up; we must not hang and must
        // flag non-convergence.
        let main = method(
            0,
            vec![Stmt::call(CallSiteId(0), MethodId(1), vec![], None)],
        );
        let rec = method(
            1,
            vec![Stmt::call(CallSiteId(1), MethodId(1), vec![], None)],
        );
        let fa = analyze(&program(vec![main, rec]), 1.0);
        assert!(!fa.converged);
        assert!(fa.entry_count(MethodId(1)).is_finite());
    }

    #[test]
    fn unreachable_methods_have_zero_entries() {
        let main = method(0, vec![]);
        let dead = method(1, vec![Stmt::op(OpKind::Add, Reg(0), Reg(0), 1i64)]);
        let fa = analyze(&program(vec![main, dead]), 1.0);
        assert_eq!(fa.entry_count(MethodId(1)), 0.0);
    }
}
