//! Random valid-program generation for property-based testing.
//!
//! Used by the property tests of `inlinetune-inline` (semantic preservation
//! of inlining) and `inlinetune-jit` (cost-model invariants). The generator
//! produces *terminating* programs by construction: methods only call
//! methods with strictly larger ids (a DAG call graph), loop trip counts are
//! bounded, and bodies are small — so the interpreter can run thousands of
//! cases per second.
//!
//! This is deliberately distinct from `inlinetune-workloads`: workloads are
//! calibrated models of real benchmarks; this module maximizes structural
//! diversity per unit of interpretation time.

use simrng::Rng;

use crate::builder::{MethodBuilder, ProgramBuilder};
use crate::method::MethodId;
use crate::op::OpKind;
use crate::program::Program;

/// Tuning knobs for the random generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenConfig {
    /// Number of methods (≥ 1).
    pub n_methods: u32,
    /// Maximum statements per block.
    pub max_block_stmts: u32,
    /// Maximum nesting depth of loops/branches.
    pub max_nesting: u32,
    /// Maximum loop trip count.
    pub max_trips: u32,
    /// Maximum parameters per method.
    pub max_params: u16,
    /// Probability that a statement slot becomes a call (when callees
    /// exist).
    pub call_prob: f64,
    /// Probability that a statement slot becomes a loop/if (subject to
    /// nesting).
    pub block_prob: f64,
    /// Whether to generate `If` statements at all. Branch-free programs
    /// (`false`) have *exact* analytic execution frequencies, which the
    /// cross-validation tests in `inlinetune-jit` exploit: the frequency
    /// analysis must then agree with the interpreter to the last call.
    pub branches: bool,
}

impl Default for GenConfig {
    fn default() -> Self {
        Self {
            n_methods: 8,
            max_block_stmts: 6,
            max_nesting: 3,
            max_trips: 5,
            max_params: 3,
            call_prob: 0.3,
            block_prob: 0.25,
            branches: true,
        }
    }
}

/// Ops eligible for random generation (all of them).
const GEN_OPS: [OpKind; 14] = [
    OpKind::Add,
    OpKind::Sub,
    OpKind::Mul,
    OpKind::Xor,
    OpKind::And,
    OpKind::Or,
    OpKind::Shl,
    OpKind::Shr,
    OpKind::Min,
    OpKind::Max,
    OpKind::Load,
    OpKind::Store,
    OpKind::FMul,
    OpKind::FAdd,
];

/// Generates a random valid program.
///
/// The call graph is a DAG over method ids (method `i` may only call
/// methods `> i`), so every run terminates; the entry point is method 0.
#[must_use]
pub fn random_program(rng: &mut Rng, cfg: &GenConfig) -> Program {
    let n = cfg.n_methods.max(1);
    let mut pb = ProgramBuilder::new(format!("gen{n}"));
    pb = pb.heap_size(256);

    // Declare all methods first so ids exist; parameter counts fixed now so
    // call sites can be generated with correct arity.
    let mut ids = Vec::with_capacity(n as usize);
    let mut param_counts = Vec::with_capacity(n as usize);
    for i in 0..n {
        ids.push(pb.declare());
        let params = if i == 0 {
            0 // the entry takes no arguments
        } else {
            rng.range_usize(0, cfg.max_params as usize) as u16
        };
        param_counts.push(params);
    }

    for i in 0..n {
        let mut mb = MethodBuilder::new(format!("g{i}"), param_counts[i as usize]);
        // Seed a couple of registers so operand choices always exist.
        let mut live: Vec<crate::op::Reg> =
            (0..param_counts[i as usize]).map(crate::op::Reg).collect();
        let c0 = mb.op(OpKind::Mov, rng.range_i64(-8, 8), 0i64);
        live.push(c0);

        gen_block(
            rng,
            cfg,
            &mut pb,
            &mut mb,
            &mut live,
            i,
            &ids,
            &param_counts,
            0,
        );

        let ret = *rng.choose(&live);
        mb.ret(ret);
        pb.define(ids[i as usize], mb);
    }

    pb.entry(ids[0]);
    pb.build().expect("generated program must validate")
}

#[allow(clippy::too_many_arguments)]
fn gen_block(
    rng: &mut Rng,
    cfg: &GenConfig,
    pb: &mut ProgramBuilder,
    mb: &mut MethodBuilder,
    live: &mut Vec<crate::op::Reg>,
    method_index: u32,
    ids: &[MethodId],
    param_counts: &[u16],
    nesting: u32,
) {
    let n_stmts = rng.range_usize(1, cfg.max_block_stmts as usize);
    for _ in 0..n_stmts {
        let has_callees = (method_index as usize) + 1 < ids.len();
        let roll = rng.f64();
        if has_callees && roll < cfg.call_prob {
            // Random call to a later method.
            let callee_idx = rng.range_usize(method_index as usize + 1, ids.len() - 1);
            let callee = ids[callee_idx];
            let argc = param_counts[callee_idx] as usize;
            let args = (0..argc)
                .map(|_| {
                    if rng.chance(0.7) {
                        (*rng.choose(live)).into()
                    } else {
                        rng.range_i64(-16, 16).into()
                    }
                })
                .collect();
            let site = pb.fresh_site();
            if let Some(r) = mb.call(site, callee, args, rng.chance(0.8)) {
                live.push(r);
            }
        } else if nesting < cfg.max_nesting && roll < cfg.call_prob + cfg.block_prob {
            if !cfg.branches || rng.chance(0.5) {
                let trips = rng.range_usize(0, cfg.max_trips as usize) as u32;
                mb.begin_loop(trips);
                gen_block(
                    rng,
                    cfg,
                    pb,
                    mb,
                    live,
                    method_index,
                    ids,
                    param_counts,
                    nesting + 1,
                );
                mb.end();
            } else {
                let cond = *rng.choose(live);
                let prob = rng.f64();
                mb.begin_if(cond, prob);
                gen_block(
                    rng,
                    cfg,
                    pb,
                    mb,
                    live,
                    method_index,
                    ids,
                    param_counts,
                    nesting + 1,
                );
                if rng.chance(0.5) {
                    mb.begin_else();
                    gen_block(
                        rng,
                        cfg,
                        pb,
                        mb,
                        live,
                        method_index,
                        ids,
                        param_counts,
                        nesting + 1,
                    );
                }
                mb.end();
            }
        } else {
            let op = *rng.choose(&GEN_OPS);
            let a: crate::op::Operand = if rng.chance(0.8) {
                (*rng.choose(live)).into()
            } else {
                rng.range_i64(-64, 64).into()
            };
            let b: crate::op::Operand = if rng.chance(0.8) {
                (*rng.choose(live)).into()
            } else {
                rng.range_i64(-64, 64).into()
            };
            let r = mb.op(op, a, b);
            live.push(r);
        }
        // Keep the live set bounded so register frames stay small.
        if live.len() > 24 {
            let keep = live.len() - 24;
            live.drain(0..keep);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{run, InterpLimits};
    use crate::validate::validate;

    #[test]
    fn generated_programs_validate_and_run() {
        let mut rng = Rng::seed_from_u64(7);
        for case in 0..50 {
            let p = random_program(&mut rng, &GenConfig::default());
            assert!(validate(&p).is_empty(), "case {case} invalid");
            let out = run(&p, &[], &InterpLimits::default());
            assert!(out.is_ok(), "case {case} failed: {out:?}");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenConfig::default();
        let a = random_program(&mut Rng::seed_from_u64(42), &cfg);
        let b = random_program(&mut Rng::seed_from_u64(42), &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = GenConfig::default();
        let a = random_program(&mut Rng::seed_from_u64(1), &cfg);
        let b = random_program(&mut Rng::seed_from_u64(2), &cfg);
        assert_ne!(a, b);
    }

    #[test]
    fn respects_method_count() {
        let cfg = GenConfig {
            n_methods: 17,
            ..GenConfig::default()
        };
        let p = random_program(&mut Rng::seed_from_u64(3), &cfg);
        assert_eq!(p.method_count(), 17);
    }

    #[test]
    fn call_graph_is_a_dag() {
        let mut rng = Rng::seed_from_u64(4);
        let p = random_program(&mut rng, &GenConfig::default());
        for m in &p.methods {
            for callee in m.callees() {
                assert!(callee.0 > m.id.0, "{} calls {}", m.id, callee);
            }
        }
    }
}
