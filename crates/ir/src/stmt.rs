//! The statement tree: the body of a method.

use crate::method::MethodId;
use crate::op::{OpKind, Operand, Reg};

/// Identity of a call site.
///
/// Call-site ids are assigned at program-construction time and are **stable
/// under inlining**: when the inliner splices a callee body into a caller,
/// the copies of the callee's own call sites keep their original ids, so
/// profile data (hotness) recorded against a site applies to every inlined
/// copy — exactly how Jikes RVM's edge profile keys work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CallSiteId(pub u32);

impl std::fmt::Display for CallSiteId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cs{}", self.0)
    }
}

/// A primitive operation statement: `dst = op(a, b)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct OpStmt {
    /// Operation kind.
    pub op: OpKind,
    /// Destination register (ignored for `Store`).
    pub dst: Reg,
    /// First operand.
    pub a: Operand,
    /// Second operand (ignored for `Mov`).
    pub b: Operand,
}

/// A call statement: `dst = callee(args…)`.
#[derive(Debug, Clone, PartialEq)]
pub struct CallStmt {
    /// Stable call-site identity (see [`CallSiteId`]).
    pub site: CallSiteId,
    /// The invoked method.
    pub callee: MethodId,
    /// Actual arguments; length must equal the callee's `n_params`.
    pub args: Vec<Operand>,
    /// Where the return value goes, if used.
    pub dst: Option<Reg>,
}

/// A statement: the IR is structured (no gotos), which keeps frequency
/// analysis compositional and inlining a pure subtree substitution.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// A primitive operation.
    Op(OpStmt),
    /// A call site.
    Call(CallStmt),
    /// A counted loop: `body` executes exactly `trips` times.
    Loop {
        /// Static trip count (profile-known, as in trace-based JIT models).
        trips: u32,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// A two-way branch. `cond` is evaluated by the interpreter (taken when
    /// odd); `prob_true` is the *profile annotation* used by frequency
    /// analysis — like a JIT's edge profile, it is an estimate and need not
    /// match the concrete execution.
    If {
        /// Branch condition operand (semantics: taken iff value is odd).
        cond: Operand,
        /// Profile-estimated probability that the branch is taken, in
        /// `[0, 1]`.
        prob_true: f64,
        /// Taken arm.
        then_b: Vec<Stmt>,
        /// Fall-through arm.
        else_b: Vec<Stmt>,
    },
}

impl Stmt {
    /// Convenience constructor for an op statement.
    #[must_use]
    pub fn op(op: OpKind, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) -> Self {
        Stmt::Op(OpStmt {
            op,
            dst,
            a: a.into(),
            b: b.into(),
        })
    }

    /// Convenience constructor for a call statement.
    #[must_use]
    pub fn call(site: CallSiteId, callee: MethodId, args: Vec<Operand>, dst: Option<Reg>) -> Self {
        Stmt::Call(CallStmt {
            site,
            callee,
            args,
            dst,
        })
    }

    /// Depth-first visit of this statement and all nested statements.
    pub fn visit<'a>(&'a self, f: &mut impl FnMut(&'a Stmt)) {
        f(self);
        match self {
            Stmt::Op(_) | Stmt::Call(_) => {}
            Stmt::Loop { body, .. } => {
                for s in body {
                    s.visit(f);
                }
            }
            Stmt::If { then_b, else_b, .. } => {
                for s in then_b.iter().chain(else_b) {
                    s.visit(f);
                }
            }
        }
    }

    /// Mutable depth-first visit.
    pub fn visit_mut(&mut self, f: &mut impl FnMut(&mut Stmt)) {
        f(self);
        match self {
            Stmt::Op(_) | Stmt::Call(_) => {}
            Stmt::Loop { body, .. } => {
                for s in body {
                    s.visit_mut(f);
                }
            }
            Stmt::If { then_b, else_b, .. } => {
                for s in then_b.iter_mut().chain(else_b.iter_mut()) {
                    s.visit_mut(f);
                }
            }
        }
    }

    /// Maximum register index mentioned by this statement subtree, if any.
    #[must_use]
    pub fn max_reg(&self) -> Option<u16> {
        let mut max: Option<u16> = None;
        let mut bump = |r: Reg| {
            max = Some(max.map_or(r.0, |m| m.max(r.0)));
        };
        self.visit(&mut |s| match s {
            Stmt::Op(o) => {
                bump(o.dst);
                if let Some(r) = o.a.reg() {
                    bump(r);
                }
                if let Some(r) = o.b.reg() {
                    bump(r);
                }
            }
            Stmt::Call(c) => {
                if let Some(d) = c.dst {
                    bump(d);
                }
                for a in &c.args {
                    if let Some(r) = a.reg() {
                        bump(r);
                    }
                }
            }
            Stmt::Loop { .. } => {}
            Stmt::If { cond, .. } => {
                if let Some(r) = cond.reg() {
                    bump(r);
                }
            }
        });
        max
    }
}

/// Iterates over every statement in a body (depth first).
pub fn visit_body<'a>(body: &'a [Stmt], f: &mut impl FnMut(&'a Stmt)) {
    for s in body {
        s.visit(f);
    }
}

/// Counts all statements in a body, including nested ones.
#[must_use]
pub fn stmt_count(body: &[Stmt]) -> usize {
    let mut n = 0;
    visit_body(body, &mut |_| n += 1);
    n
}

/// Collects the call statements in a body (depth first order).
#[must_use]
pub fn call_sites(body: &[Stmt]) -> Vec<&CallStmt> {
    let mut out = Vec::new();
    visit_body(body, &mut |s| {
        if let Stmt::Call(c) = s {
            out.push(c);
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_body() -> Vec<Stmt> {
        vec![
            Stmt::op(OpKind::Add, Reg(2), Reg(0), Reg(1)),
            Stmt::Loop {
                trips: 3,
                body: vec![
                    Stmt::op(OpKind::Mul, Reg(3), Reg(2), 7i64),
                    Stmt::call(
                        CallSiteId(0),
                        MethodId(1),
                        vec![Reg(3).into()],
                        Some(Reg(4)),
                    ),
                ],
            },
            Stmt::If {
                cond: Operand::Reg(Reg(4)),
                prob_true: 0.25,
                then_b: vec![Stmt::op(OpKind::Xor, Reg(5), Reg(4), 1i64)],
                else_b: vec![],
            },
        ]
    }

    #[test]
    fn stmt_count_includes_nested() {
        assert_eq!(stmt_count(&sample_body()), 6);
    }

    #[test]
    fn call_sites_found_in_order() {
        let body = sample_body();
        let calls = call_sites(&body);
        assert_eq!(calls.len(), 1);
        assert_eq!(calls[0].site, CallSiteId(0));
        assert_eq!(calls[0].callee, MethodId(1));
    }

    #[test]
    fn max_reg_spans_subtree() {
        let body = sample_body();
        let max = body.iter().filter_map(Stmt::max_reg).max();
        assert_eq!(max, Some(5));
    }

    #[test]
    fn visit_mut_can_rewrite() {
        let mut body = sample_body();
        for s in &mut body {
            s.visit_mut(&mut |s| {
                if let Stmt::Loop { trips, .. } = s {
                    *trips = 10;
                }
            });
        }
        let mut seen = 0;
        visit_body(&body, &mut |s| {
            if let Stmt::Loop { trips, .. } = s {
                assert_eq!(*trips, 10);
                seen += 1;
            }
        });
        assert_eq!(seen, 1);
    }
}
