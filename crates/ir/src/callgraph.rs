//! Call-graph construction and analysis (successors, Tarjan SCCs,
//! reverse-topological order).
//!
//! The inliner uses SCC information to recognize (mutually) recursive
//! methods; the optimizing compiler processes methods in reverse topological
//! order of the condensation so callee bodies are final before callers
//! consider inlining them (a bottom-up inlining pass, as in Jikes RVM's
//! static inline oracle).

use std::collections::HashSet;

use crate::method::MethodId;
use crate::program::Program;
use crate::stmt::{visit_body, Stmt};

/// An adjacency-list call graph over the methods of a program.
#[derive(Debug, Clone)]
pub struct CallGraph {
    /// `succ[i]` = deduplicated callees of method `i`.
    succ: Vec<Vec<MethodId>>,
}

impl CallGraph {
    /// Builds the call graph of a program (edges deduplicated).
    #[must_use]
    pub fn build(program: &Program) -> Self {
        let n = program.methods.len();
        let mut succ = vec![Vec::new(); n];
        for (i, m) in program.methods.iter().enumerate() {
            let mut seen = HashSet::new();
            visit_body(&m.body, &mut |s| {
                if let Stmt::Call(c) = s {
                    if c.callee.index() < n && seen.insert(c.callee) {
                        succ[i].push(c.callee);
                    }
                }
            });
        }
        Self { succ }
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.succ.len()
    }

    /// Whether the graph has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.succ.is_empty()
    }

    /// Direct callees of a method (deduplicated).
    #[must_use]
    pub fn callees(&self, m: MethodId) -> &[MethodId] {
        &self.succ[m.index()]
    }

    /// Total number of (deduplicated) call edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.succ.iter().map(Vec::len).sum()
    }

    /// Strongly connected components via Tarjan's algorithm (iterative, so
    /// deep call chains cannot overflow the native stack). Components are
    /// returned in **reverse topological order**: every edge leaving a
    /// component points to an *earlier* component in the returned list.
    #[must_use]
    pub fn sccs(&self) -> Vec<Vec<MethodId>> {
        let n = self.succ.len();
        const UNVISITED: usize = usize::MAX;
        let mut index = vec![UNVISITED; n];
        let mut lowlink = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut next_index = 0usize;
        let mut components: Vec<Vec<MethodId>> = Vec::new();

        // Explicit DFS frames: (node, next-successor position).
        let mut frames: Vec<(usize, usize)> = Vec::new();
        for start in 0..n {
            if index[start] != UNVISITED {
                continue;
            }
            frames.push((start, 0));
            index[start] = next_index;
            lowlink[start] = next_index;
            next_index += 1;
            stack.push(start);
            on_stack[start] = true;

            while let Some(&mut (v, ref mut pos)) = frames.last_mut() {
                if *pos < self.succ[v].len() {
                    let w = self.succ[v][*pos].index();
                    *pos += 1;
                    if index[w] == UNVISITED {
                        index[w] = next_index;
                        lowlink[w] = next_index;
                        next_index += 1;
                        stack.push(w);
                        on_stack[w] = true;
                        frames.push((w, 0));
                    } else if on_stack[w] {
                        lowlink[v] = lowlink[v].min(index[w]);
                    }
                } else {
                    frames.pop();
                    if let Some(&mut (parent, _)) = frames.last_mut() {
                        lowlink[parent] = lowlink[parent].min(lowlink[v]);
                    }
                    if lowlink[v] == index[v] {
                        let mut comp = Vec::new();
                        loop {
                            let w = stack.pop().expect("tarjan stack underflow");
                            on_stack[w] = false;
                            comp.push(MethodId(w as u32));
                            if w == v {
                                break;
                            }
                        }
                        components.push(comp);
                    }
                }
            }
        }
        components
    }

    /// The set of methods that participate in recursion: members of an SCC
    /// of size > 1, or methods with a direct self-edge.
    #[must_use]
    pub fn recursive_set(&self) -> HashSet<MethodId> {
        let mut out = HashSet::new();
        for comp in self.sccs() {
            if comp.len() > 1 {
                out.extend(comp.iter().copied());
            } else {
                let m = comp[0];
                if self.succ[m.index()].contains(&m) {
                    out.insert(m);
                }
            }
        }
        out
    }

    /// Methods in bottom-up (callees-before-callers) order. Within a cycle
    /// the relative order is arbitrary but deterministic.
    #[must_use]
    pub fn bottom_up_order(&self) -> Vec<MethodId> {
        self.sccs().into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::method::Method;
    use crate::stmt::CallSiteId;

    fn calls(id: u32, callees: &[u32]) -> Method {
        Method {
            id: MethodId(id),
            name: format!("m{id}"),
            n_params: 0,
            n_regs: 1,
            body: callees
                .iter()
                .enumerate()
                .map(|(k, &c)| {
                    Stmt::call(CallSiteId(id * 100 + k as u32), MethodId(c), vec![], None)
                })
                .collect(),
            ret: 0i64.into(),
        }
    }

    fn prog(methods: Vec<Method>) -> Program {
        Program {
            name: "cg".into(),
            methods,
            entry: MethodId(0),
            heap_size: 8,
        }
    }

    #[test]
    fn edges_are_deduplicated() {
        let p = prog(vec![calls(0, &[1, 1, 1]), calls(1, &[])]);
        let g = CallGraph::build(&p);
        assert_eq!(g.callees(MethodId(0)), &[MethodId(1)]);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn sccs_of_dag_are_singletons_in_reverse_topo_order() {
        // 0 -> 1 -> 2 and 0 -> 2.
        let p = prog(vec![calls(0, &[1, 2]), calls(1, &[2]), calls(2, &[])]);
        let g = CallGraph::build(&p);
        let sccs = g.sccs();
        assert_eq!(sccs.len(), 3);
        // Reverse topological: 2 before 1 before 0.
        let pos = |m: u32| sccs.iter().position(|c| c.contains(&MethodId(m))).unwrap();
        assert!(pos(2) < pos(1));
        assert!(pos(1) < pos(0));
    }

    #[test]
    fn mutual_recursion_is_one_component() {
        // 0 -> 1 <-> 2, plus 2 -> 3.
        let p = prog(vec![
            calls(0, &[1]),
            calls(1, &[2]),
            calls(2, &[1, 3]),
            calls(3, &[]),
        ]);
        let g = CallGraph::build(&p);
        let sccs = g.sccs();
        let big: Vec<_> = sccs.iter().filter(|c| c.len() > 1).collect();
        assert_eq!(big.len(), 1);
        let mut ids: Vec<u32> = big[0].iter().map(|m| m.0).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 2]);
        let rec = g.recursive_set();
        assert!(rec.contains(&MethodId(1)) && rec.contains(&MethodId(2)));
        assert!(!rec.contains(&MethodId(0)) && !rec.contains(&MethodId(3)));
    }

    #[test]
    fn self_loop_is_recursive() {
        let p = prog(vec![calls(0, &[0])]);
        let g = CallGraph::build(&p);
        assert!(g.recursive_set().contains(&MethodId(0)));
    }

    #[test]
    fn bottom_up_order_puts_callees_first() {
        let p = prog(vec![calls(0, &[1]), calls(1, &[2]), calls(2, &[])]);
        let g = CallGraph::build(&p);
        let order = g.bottom_up_order();
        assert_eq!(order, vec![MethodId(2), MethodId(1), MethodId(0)]);
    }

    #[test]
    fn deep_chain_does_not_overflow() {
        // 10_000-deep chain exercises the iterative Tarjan.
        let n = 10_000u32;
        let methods: Vec<Method> = (0..n)
            .map(|i| {
                if i + 1 < n {
                    calls(i, &[i + 1])
                } else {
                    calls(i, &[])
                }
            })
            .collect();
        let g = CallGraph::build(&prog(methods));
        assert_eq!(g.sccs().len(), n as usize);
    }
}
