//! The in-process reference runner: one thread, local evaluation.
//!
//! [`OnlineJob::run`] is the executable definition of what an online
//! job computes. The daemon's online job runner drives the exact same
//! [`OnlineState`] policy through its evaluator tiers (store, remote
//! workers), so a store-free daemon run must produce bit-identical
//! results to [`OnlineJob::run`] with no store — that equivalence is
//! what the sim's `--online-seeds` sweep asserts under fault weather.
//!
//! [`OnlineJob::run_frozen`] (tune once, never retune) and
//! [`OnlineJob::oracle`] (offline tune against every distinct workload
//! position, budget-matched) bracket the online mode from below and
//! above for the regret study in `experiments online`.

use std::collections::HashMap;
use std::sync::Arc;

use ga::{GaConfig, LocalEvaluator};
use jit::AdaptConfig;
use problems::Problem;
use stored::Store;
use tuner::TuningTask;
use workloads::{Benchmark, DriftPos};

use crate::report::OnlineReport;
use crate::state::{OnlineConfig, OnlineState};

/// A fully-specified online tuning job.
#[derive(Clone)]
pub struct OnlineJob {
    /// Problem id (`"inline"`, `"flags"`, `"dss"`).
    pub problem: String,
    /// The (scenario, goal, arch) tuning cell.
    pub task: TuningTask,
    /// The base (phase-0) training suite the schedule morphs.
    pub base: Vec<Benchmark>,
    /// Adaptive-VM model configuration.
    pub adapt: AdaptConfig,
    /// GA budget; `pop_size * generations` per tune, seed the root of
    /// every tuning stream.
    pub ga: GaConfig,
    /// Strategy of the *initial* tune (retunes always use `warmstart`).
    pub strategy: String,
    /// Epoch horizon, drift schedule, detector knobs.
    pub online: OnlineConfig,
}

impl OnlineJob {
    /// Builds the problem as the workload looks at `pos`.
    ///
    /// # Errors
    /// Unknown problem id or an empty suite.
    pub fn problem_at(&self, pos: &DriftPos) -> Result<Arc<dyn Problem>, String> {
        let suite = self.online.schedule.suite_for(&self.base, pos);
        problems::build(&self.problem, &self.task, &suite, self.adapt.clone())
    }

    /// Runs the online policy to completion with local evaluation,
    /// optionally warm-seeding every tune from `store`.
    ///
    /// # Errors
    /// Problem construction or strategy errors.
    pub fn run(&self, store: Option<&Store>) -> Result<OnlineReport, String> {
        let st = self.drive(OnlineState::new(self.online.clone())?, store, None)?;
        Ok(st.into_report())
    }

    /// Resumes a run from a restored state (the daemon's recovery
    /// path, and the replay tests' way of proving it bit-identical).
    ///
    /// # Errors
    /// Problem construction or strategy errors.
    pub fn resume(
        &self,
        state: OnlineState,
        store: Option<&Store>,
    ) -> Result<OnlineReport, String> {
        let st = self.drive(state, store, None)?;
        Ok(st.into_report())
    }

    /// Runs up to (but not into) `epoch` and returns the checkpoint
    /// snapshot a daemon would persist there.
    ///
    /// # Errors
    /// Problem construction or strategy errors.
    pub fn snapshot_at(
        &self,
        epoch: u64,
        store: Option<&Store>,
    ) -> Result<crate::state::OnlineSnapshot, String> {
        let st = self.drive(OnlineState::new(self.online.clone())?, store, Some(epoch))?;
        Ok(st.snapshot())
    }

    /// The frozen-incumbent control: tunes once at epoch 0 and then
    /// only probes — what the regret study compares online against.
    ///
    /// # Errors
    /// Problem construction or strategy errors.
    pub fn run_frozen(&self) -> Result<OnlineReport, String> {
        let mut cfg = self.online.clone();
        cfg.detector.threshold_pct = f64::INFINITY;
        let frozen = Self {
            online: cfg.clone(),
            ..self.clone()
        };
        let st = frozen.drive(OnlineState::new(cfg)?, None, None)?;
        Ok(st.into_report())
    }

    /// The per-epoch oracle: a budget-matched offline tune against each
    /// distinct workload position, evaluated lazily and cached.
    ///
    /// # Errors
    /// Problem construction or strategy errors.
    pub fn oracle(&self) -> Result<Vec<f64>, String> {
        let mut best: HashMap<DriftPos, f64> = HashMap::new();
        let mut out = Vec::with_capacity(usize::try_from(self.online.epochs).unwrap_or(0));
        for epoch in 0..self.online.epochs {
            let pos = self.online.schedule.pos_at(epoch);
            let fitness = match best.get(&pos) {
                Some(f) => *f,
                None => {
                    let problem = self.problem_at(&pos)?;
                    let (_, f, _) = self.tune(&problem, None, None, self.ga.seed)?;
                    best.insert(pos, f);
                    f
                }
            };
            out.push(fitness);
        }
        Ok(out)
    }

    fn drive(
        &self,
        mut st: OnlineState,
        store: Option<&Store>,
        stop_at: Option<u64>,
    ) -> Result<OnlineState, String> {
        let mut problems_by_pos: HashMap<DriftPos, Arc<dyn Problem>> = HashMap::new();
        while !st.is_done() {
            if stop_at.is_some_and(|e| st.epoch() >= e) {
                break;
            }
            let pos = st.pos();
            let problem = match problems_by_pos.get(&pos) {
                Some(p) => Arc::clone(p),
                None => {
                    let p = self.problem_at(&pos)?;
                    problems_by_pos.insert(pos, Arc::clone(&p));
                    p
                }
            };
            if st.needs_initial_tune() {
                let (genes, fitness, evals) = self.tune(&problem, None, store, self.ga.seed)?;
                st.note_evals(evals);
                st.install(genes, fitness);
                continue;
            }
            let incumbent: Vec<i64> = st
                .incumbent()
                .map(|(g, _)| g.to_vec())
                .expect("incumbent exists");
            let probe = problem.fitness(&incumbent);
            if st.observe_probe(probe) {
                let seed = st.retune_seed(self.ga.seed);
                let (genes, fitness, evals) = self.tune(&problem, Some(&incumbent), store, seed)?;
                st.note_evals(evals);
                st.commit(Some((genes, fitness)));
            } else {
                st.commit(None);
            }
        }
        Ok(st)
    }

    /// One tune to completion. `incumbent` switches the strategy to
    /// `warmstart` seeded with the incumbent first and any
    /// nearest-fingerprint store cells after it.
    fn tune(
        &self,
        problem: &Arc<dyn Problem>,
        incumbent: Option<&[i64]>,
        store: Option<&Store>,
        seed: u64,
    ) -> Result<(Vec<i64>, f64, u64), String> {
        let kind = if incumbent.is_some() {
            "warmstart"
        } else {
            self.strategy.as_str()
        };
        let cfg = GaConfig {
            seed,
            threads: 1,
            ..self.ga.clone()
        };
        let mut strategy = search::build(kind, problem.space().clone(), cfg)?;
        let mut seeds: Vec<Vec<i64>> = incumbent.map(|g| g.to_vec()).into_iter().collect();
        if let Some(store) = store {
            let want = self.ga.pop_size.saturating_sub(seeds.len());
            seeds.extend(store.warm_seeds(problem.fingerprint(), want));
        }
        if !seeds.is_empty() {
            strategy.seed_population(&seeds);
        }
        let eval = LocalEvaluator::new(|genes: &[i64]| problem.fitness(genes), 1);
        while !search::step_with(strategy.as_mut(), &eval) {}
        let (genes, fitness) = strategy.best().ok_or("tune finished with no best genome")?;
        Ok((genes, fitness, strategy.evaluations() as u64))
    }
}
