//! Online adaptive re-tuning under workload drift.
//!
//! The paper tunes inlining heuristics *offline* against a fixed suite.
//! This crate adds the missing operating mode: the workload drifts
//! (phased hotness/call-graph shifts from [`workloads::drift`]), a
//! [`DriftDetector`] watches the incumbent genome's fitness for
//! sustained regression, and each detection triggers a *warm retune*
//! through the existing `search`/`stored` stack — a `warmstart`
//! strategy seeded from the incumbent plus nearest-fingerprint store
//! cells — installing a new incumbent for the shifted workload.
//!
//! Structure:
//!
//! * [`detect`] — the windowed median-regression detector (plain-data
//!   snapshots, proptest-pinned trigger guarantees);
//! * [`state`] — [`OnlineState`], the whole policy as one pure state
//!   machine shared by the daemon and the reference runner;
//! * [`runner`] — [`OnlineJob`], the in-process reference execution
//!   plus the frozen-incumbent control and the per-phase oracle;
//! * [`report`] — per-epoch rows, regret-vs-oracle, and the
//!   bounded-regret invariants the sim sweep asserts per seed.

pub mod detect;
pub mod report;
pub mod runner;
pub mod state;

pub use detect::{DetectorConfig, DetectorSnapshot, DriftDetector};
pub use report::{EpochRow, OnlineReport};
pub use runner::OnlineJob;
pub use state::{OnlineConfig, OnlineSnapshot, OnlineState};
