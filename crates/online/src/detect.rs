//! Windowed drift detection over the incumbent genome's fitness.
//!
//! The detector watches the incumbent's probe fitness (lower is better)
//! against a baseline set when the incumbent was installed. It holds a
//! rolling window of the last `window` probes and triggers when the
//! *median* of that window regresses more than `threshold_pct` percent
//! over the baseline. Using the median (not the latest probe) makes a
//! single noisy probe harmless while guaranteeing a sustained step is
//! caught within `window` probes — the two properties the proptest
//! suite pins down.
//!
//! The detector is plain data: [`DriftDetector::snapshot`] /
//! [`DriftDetector::restore`] round-trip its entire state bit-exactly,
//! so an online job checkpointed at an epoch boundary resumes with the
//! same trigger decisions it would have made uninterrupted.

/// Detector tuning knobs (part of the online job spec).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectorConfig {
    /// Rolling probe window (≥ 1). A sustained regression triggers
    /// within this many probes; anything shorter can be absorbed.
    pub window: usize,
    /// Relative regression (percent over baseline) that counts as
    /// drift. `INFINITY` disables the detector (frozen incumbent).
    pub threshold_pct: f64,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        Self {
            window: 3,
            threshold_pct: 5.0,
        }
    }
}

/// Plain-data detector state for checkpoints.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectorSnapshot {
    /// Baseline fitness (the incumbent's score when installed).
    pub baseline: f64,
    /// The rolling probe window, oldest first (≤ `window` entries).
    pub recent: Vec<f64>,
}

/// Windowed median-regression drift detector.
#[derive(Debug, Clone)]
pub struct DriftDetector {
    cfg: DetectorConfig,
    baseline: f64,
    recent: Vec<f64>,
}

impl DriftDetector {
    /// A detector with `baseline` as the incumbent's reference fitness.
    #[must_use]
    pub fn new(cfg: DetectorConfig, baseline: f64) -> Self {
        Self {
            cfg,
            baseline,
            recent: Vec::new(),
        }
    }

    /// Re-baselines after a retune: the new incumbent's fitness becomes
    /// the reference and the probe window is cleared.
    pub fn reset(&mut self, baseline: f64) {
        self.baseline = baseline;
        self.recent.clear();
    }

    /// Feeds one probe. Returns `true` when the window median has
    /// regressed more than the threshold over the baseline — time to
    /// retune.
    pub fn observe(&mut self, probe: f64) -> bool {
        self.recent.push(probe);
        let w = self.cfg.window.max(1);
        if self.recent.len() > w {
            self.recent.drain(..self.recent.len() - w);
        }
        self.regression_pct() > self.cfg.threshold_pct
    }

    /// Current regression of the window median over the baseline, in
    /// percent (0 when the window is empty or the median is at or below
    /// baseline; fitness is minimized, so bigger probe = worse).
    #[must_use]
    pub fn regression_pct(&self) -> f64 {
        if self.recent.is_empty() || self.baseline <= 0.0 {
            return 0.0;
        }
        let m = median(&self.recent);
        ((m / self.baseline) - 1.0).max(0.0) * 100.0
    }

    /// The baseline fitness currently in force.
    #[must_use]
    pub fn baseline(&self) -> f64 {
        self.baseline
    }

    /// Plain-data state; feed to [`DriftDetector::restore`].
    #[must_use]
    pub fn snapshot(&self) -> DetectorSnapshot {
        DetectorSnapshot {
            baseline: self.baseline,
            recent: self.recent.clone(),
        }
    }

    /// Rebuilds a detector from a snapshot, bit-identically.
    ///
    /// # Errors
    /// Snapshot window longer than the configured window.
    pub fn restore(cfg: DetectorConfig, snap: DetectorSnapshot) -> Result<Self, String> {
        if snap.recent.len() > cfg.window.max(1) {
            return Err(format!(
                "detector snapshot has {} probes but the window is {}",
                snap.recent.len(),
                cfg.window
            ));
        }
        Ok(Self {
            cfg,
            baseline: snap.baseline,
            recent: snap.recent,
        })
    }
}

/// Median of a non-empty slice (average of the middle two for even
/// lengths). Total order over the finite probes we feed it; non-finite
/// probes sort last so a poisoned window reads as regressed.
fn median(xs: &[f64]) -> f64 {
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Less));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(window: usize, pct: f64) -> DetectorConfig {
        DetectorConfig {
            window,
            threshold_pct: pct,
        }
    }

    #[test]
    fn stationary_stream_never_triggers() {
        let mut d = DriftDetector::new(cfg(3, 5.0), 1.0);
        for i in 0..100 {
            // ±2% noise, below the 5% threshold.
            let probe = 1.0 + 0.02 * f64::from(i % 3 - 1);
            assert!(!d.observe(probe), "false trigger at probe {i}");
        }
    }

    #[test]
    fn step_triggers_within_window() {
        let mut d = DriftDetector::new(cfg(3, 5.0), 1.0);
        for _ in 0..10 {
            assert!(!d.observe(1.0));
        }
        let mut fired_at = None;
        for k in 1..=3 {
            if d.observe(1.5) {
                fired_at = Some(k);
                break;
            }
        }
        let k = fired_at.expect("a 50% step must trigger within the window");
        assert!(k <= 3, "triggered after {k} probes");
    }

    #[test]
    fn single_spike_is_absorbed_by_median() {
        let mut d = DriftDetector::new(cfg(3, 5.0), 1.0);
        assert!(!d.observe(1.0));
        assert!(!d.observe(1.0));
        // One bad probe out of three: median still 1.0.
        assert!(!d.observe(5.0));
        assert!(!d.observe(1.0));
    }

    #[test]
    fn reset_rebaselines_and_clears_window() {
        let mut d = DriftDetector::new(cfg(2, 5.0), 1.0);
        assert!(d.observe(2.0) || d.observe(2.0));
        d.reset(2.0);
        assert!((d.baseline() - 2.0).abs() < 1e-12);
        assert!(
            !d.observe(2.0),
            "post-reset baseline must absorb the new level"
        );
        assert!((d.regression_pct()).abs() < 1e-12);
    }

    #[test]
    fn improvement_reads_as_zero_regression() {
        let mut d = DriftDetector::new(cfg(3, 5.0), 1.0);
        d.observe(0.5);
        assert!((d.regression_pct()).abs() < 1e-12);
    }

    #[test]
    fn infinite_threshold_never_triggers() {
        let mut d = DriftDetector::new(cfg(1, f64::INFINITY), 1.0);
        for _ in 0..10 {
            assert!(!d.observe(1e12));
        }
    }

    #[test]
    fn snapshot_restore_round_trips_decisions() {
        let mut d = DriftDetector::new(cfg(3, 10.0), 1.0);
        d.observe(1.0);
        d.observe(1.05);
        let snap = d.snapshot();
        let mut r = DriftDetector::restore(cfg(3, 10.0), snap.clone()).unwrap();
        assert_eq!(r.snapshot(), snap);
        for probe in [1.2, 1.2, 1.2, 0.9] {
            assert_eq!(d.observe(probe), r.observe(probe));
            assert_eq!(d.regression_pct().to_bits(), r.regression_pct().to_bits());
        }
    }

    #[test]
    fn restore_rejects_oversized_window() {
        let snap = DetectorSnapshot {
            baseline: 1.0,
            recent: vec![1.0; 5],
        };
        assert!(DriftDetector::restore(cfg(3, 5.0), snap).is_err());
    }
}
