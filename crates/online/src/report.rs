//! Per-epoch accounting and the invariants an online run must satisfy.

use workloads::{DriftKind, DriftPos};

use crate::state::OnlineConfig;

/// What happened in one epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochRow {
    /// Epoch index (0 = the initial tune).
    pub epoch: u64,
    /// Workload position the epoch ran under.
    pub pos: DriftPos,
    /// The incumbent's fitness on this epoch's workload *before* any
    /// retune — what the system actually delivered when the epoch
    /// arrived (regret is measured on this).
    pub probe: f64,
    /// Whether this epoch committed a retune.
    pub retuned: bool,
    /// The incumbent's fitness at epoch end (post-retune when
    /// `retuned`, the installation fitness otherwise).
    pub fitness: f64,
}

/// The full account of one online run.
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineReport {
    /// One row per epoch.
    pub rows: Vec<EpochRow>,
    /// Retunes committed.
    pub retunes: u64,
    /// Epochs between each retune and the schedule boundary that
    /// caused it (ground truth: the schedule is known).
    pub detect_latencies: Vec<u64>,
    /// Total fitness evaluations (probes + tuning).
    pub evals: u64,
    /// Final incumbent genome.
    pub genes: Vec<i64>,
    /// Final incumbent fitness.
    pub fitness: f64,
}

impl OnlineReport {
    /// Mean probe fitness over all epochs (the delivered quality).
    #[must_use]
    pub fn mean_probe(&self) -> f64 {
        if self.rows.is_empty() {
            return f64::NAN;
        }
        self.rows.iter().map(|r| r.probe).sum::<f64>() / self.rows.len() as f64
    }

    /// Mean regret versus a per-epoch oracle fitness, in percent:
    /// `mean((probe - oracle) / oracle) * 100`. `oracle[e]` is the
    /// fitness an offline tune against epoch `e`'s exact workload
    /// achieves.
    #[must_use]
    pub fn mean_regret_pct(&self, oracle: &[f64]) -> f64 {
        let n = self.rows.len().min(oracle.len());
        if n == 0 {
            return f64::NAN;
        }
        let mut total = 0.0;
        for (row, &best) in self.rows.iter().zip(oracle) {
            if best > 0.0 {
                total += (row.probe - best) / best * 100.0;
            }
        }
        total / n as f64
    }

    /// Checks the bounded-regret-after-detection invariants. Empty
    /// means the run is well-behaved; each violation is one sentence.
    ///
    /// * a retune never leaves the incumbent worse than the probe that
    ///   triggered it (warm retunes seed the incumbent, so its score is
    ///   a ceiling);
    /// * detection latency is bounded by `window + period` epochs (and
    ///   by `window` alone for step/cyclic schedules whose phases are
    ///   at least a window long);
    /// * within one constant workload position, probes after a retune
    ///   never exceed the retuned fitness (phases are deterministic, so
    ///   a held incumbent scores bit-equal every epoch).
    #[must_use]
    pub fn violations(&self, cfg: &OnlineConfig) -> Vec<String> {
        let mut out = Vec::new();
        let eps = 1e-9;
        for row in &self.rows {
            if row.retuned && row.fitness > row.probe * (1.0 + eps) {
                out.push(format!(
                    "epoch {}: retune worsened the incumbent ({} -> {})",
                    row.epoch, row.probe, row.fitness
                ));
            }
        }
        let hard_bound = u64::from(cfg.detector.window as u32) + u64::from(cfg.schedule.period);
        let tight = !matches!(cfg.schedule.kind, DriftKind::Ramp)
            && u64::from(cfg.schedule.period) >= cfg.detector.window as u64;
        for (i, &lat) in self.detect_latencies.iter().enumerate() {
            let bound = if tight {
                cfg.detector.window as u64
            } else {
                hard_bound
            };
            if lat > bound {
                out.push(format!(
                    "retune {i}: detection latency {lat} epochs exceeds the bound of {bound}"
                ));
            }
        }
        // Post-retune stability inside one workload position.
        let mut held: Option<(DriftPos, f64)> = None;
        for row in &self.rows {
            match &mut held {
                Some((pos, fit)) if *pos == row.pos && !row.retuned => {
                    if row.probe > *fit * (1.0 + eps) {
                        out.push(format!(
                            "epoch {}: probe {} regressed past the retuned fitness {} \
                             with no workload change",
                            row.epoch, row.probe, fit
                        ));
                    }
                }
                _ => {}
            }
            if row.retuned {
                held = Some((row.pos, row.fitness));
            } else if held.as_ref().is_some_and(|(pos, _)| *pos != row.pos) {
                held = None;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::DetectorConfig;
    use workloads::DriftSchedule;

    fn cfg() -> OnlineConfig {
        OnlineConfig {
            epochs: 6,
            schedule: DriftSchedule {
                kind: DriftKind::Step,
                period: 3,
                phases: 2,
                seed: 1,
            },
            detector: DetectorConfig {
                window: 2,
                threshold_pct: 5.0,
            },
        }
    }

    fn row(epoch: u64, phase: u32, probe: f64, retuned: bool, fitness: f64) -> EpochRow {
        EpochRow {
            epoch,
            pos: DriftPos::at_phase(phase),
            probe,
            retuned,
            fitness,
        }
    }

    #[test]
    fn clean_run_has_no_violations() {
        let r = OnlineReport {
            rows: vec![
                row(0, 0, 1.0, false, 1.0),
                row(1, 0, 1.0, false, 1.0),
                row(2, 0, 1.0, false, 1.0),
                row(3, 1, 1.5, true, 0.9),
                row(4, 1, 0.9, false, 0.9),
                row(5, 1, 0.9, false, 0.9),
            ],
            retunes: 1,
            detect_latencies: vec![0],
            evals: 100,
            genes: vec![1],
            fitness: 0.9,
        };
        assert!(r.violations(&cfg()).is_empty());
        assert!((r.mean_probe() - (1.0 * 3.0 + 1.5 + 0.9 * 2.0) / 6.0).abs() < 1e-12);
    }

    #[test]
    fn worsening_retune_is_flagged() {
        let r = OnlineReport {
            rows: vec![row(0, 0, 1.0, false, 1.0), row(1, 0, 1.2, true, 1.3)],
            retunes: 1,
            detect_latencies: vec![0],
            evals: 1,
            genes: vec![1],
            fitness: 1.3,
        };
        let v = r.violations(&cfg());
        assert!(v.iter().any(|s| s.contains("worsened")));
    }

    #[test]
    fn late_detection_is_flagged() {
        let r = OnlineReport {
            rows: vec![row(0, 0, 1.0, false, 1.0)],
            retunes: 1,
            detect_latencies: vec![10],
            evals: 1,
            genes: vec![1],
            fitness: 1.0,
        };
        let v = r.violations(&cfg());
        assert!(v.iter().any(|s| s.contains("latency")));
    }

    #[test]
    fn post_retune_regression_in_same_phase_is_flagged() {
        let r = OnlineReport {
            rows: vec![
                row(0, 0, 1.0, false, 1.0),
                row(1, 1, 1.5, true, 0.9),
                row(2, 1, 1.4, false, 0.9),
            ],
            retunes: 1,
            detect_latencies: vec![0],
            evals: 1,
            genes: vec![1],
            fitness: 0.9,
        };
        let v = r.violations(&cfg());
        assert!(v.iter().any(|s| s.contains("no workload change")));
    }

    #[test]
    fn regret_is_relative_to_oracle() {
        let r = OnlineReport {
            rows: vec![row(0, 0, 1.1, false, 1.1), row(1, 0, 1.1, false, 1.1)],
            retunes: 0,
            detect_latencies: vec![],
            evals: 1,
            genes: vec![1],
            fitness: 1.1,
        };
        let regret = r.mean_regret_pct(&[1.0, 1.0]);
        assert!((regret - 10.0).abs() < 1e-9);
    }
}
