//! The online re-tuning policy as a pure state machine.
//!
//! [`OnlineState`] owns every *decision* of an online job — when to
//! probe, when a probe means drift, what the incumbent is, which seed
//! the next retune uses — while the driver (the daemon's job runner or
//! the in-process reference runner in [`crate::runner`]) owns the
//! *mechanics* (building problems, evaluating genomes locally or over
//! the worker pool, persisting checkpoints). One policy implementation
//! driven by both keeps the simulated cluster bit-identical to the
//! in-process reference: any divergence is a mechanics bug, never a
//! policy fork.
//!
//! ## Epoch protocol
//!
//! ```text
//! loop {
//!     if state.is_done()            -> stop, state.into_report()
//!     pos = state.pos()
//!     if state.needs_initial_tune() -> tune; state.install(genes, fit)
//!     else {
//!         probe = fitness(incumbent) on pos's workload
//!         if state.observe_probe(probe) -> retune; state.commit(Some(..))
//!         else                          -> state.commit(None)
//!     }
//! }
//! ```
//!
//! `install` consumes epoch 0 (the initial tune *is* epoch 0's
//! incumbent, so no separate probe is paid); each `commit` consumes one
//! further epoch. Checkpoints snapshot between epochs only, so a
//! restore replays the interrupted epoch from its probe — every input
//! to the replay (workload, incumbent, retune seed) is a pure function
//! of restored state.

use simrng::child_seed;
use workloads::{DriftPos, DriftSchedule};

use crate::detect::{DetectorConfig, DetectorSnapshot, DriftDetector};
use crate::report::{EpochRow, OnlineReport};

/// Everything that parameterizes an online run.
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineConfig {
    /// Total epochs (≥ 1). Epoch 0 is the initial tune.
    pub epochs: u64,
    /// The workload drift schedule.
    pub schedule: DriftSchedule,
    /// Drift detector knobs.
    pub detector: DetectorConfig,
}

/// Plain-data state for epoch-boundary checkpoints.
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineSnapshot {
    /// Completed epochs (also the next epoch to run).
    pub epoch: u64,
    /// Incumbent genome and its fitness at installation.
    pub incumbent: Option<(Vec<i64>, f64)>,
    /// Detector state.
    pub detector: DetectorSnapshot,
    /// Retunes committed so far.
    pub retunes: u64,
    /// Ground-truth detection latency of each retune, in epochs since
    /// the last schedule boundary.
    pub detect_latencies: Vec<u64>,
    /// Fitness evaluations spent so far (probes + tuning).
    pub evals: u64,
    /// One row per completed epoch.
    pub rows: Vec<EpochRow>,
}

/// The online policy state machine. See the module docs for the
/// driving protocol.
#[derive(Debug, Clone)]
pub struct OnlineState {
    cfg: OnlineConfig,
    epoch: u64,
    incumbent: Option<(Vec<i64>, f64)>,
    detector: DriftDetector,
    retunes: u64,
    detect_latencies: Vec<u64>,
    evals: u64,
    rows: Vec<EpochRow>,
    /// The probe awaiting this epoch's `commit` (replay-safe: never
    /// checkpointed).
    pending: Option<f64>,
}

impl OnlineState {
    /// A fresh state at epoch 0, awaiting the initial tune.
    ///
    /// # Errors
    /// Zero epochs, zero-period or zero-phase schedules, zero windows.
    pub fn new(cfg: OnlineConfig) -> Result<Self, String> {
        validate(&cfg)?;
        let detector = DriftDetector::new(cfg.detector, f64::INFINITY);
        Ok(Self {
            cfg,
            epoch: 0,
            incumbent: None,
            detector,
            retunes: 0,
            detect_latencies: Vec::new(),
            evals: 0,
            rows: Vec::new(),
            pending: None,
        })
    }

    /// The configuration in force.
    #[must_use]
    pub fn config(&self) -> &OnlineConfig {
        &self.cfg
    }

    /// Completed epochs (the next epoch to run while not done).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The workload position of the epoch being run.
    #[must_use]
    pub fn pos(&self) -> DriftPos {
        self.cfg.schedule.pos_at(self.epoch)
    }

    /// Whether every epoch has been committed.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.epoch >= self.cfg.epochs
    }

    /// Whether the driver must run the initial tune before anything
    /// else (no incumbent exists yet).
    #[must_use]
    pub fn needs_initial_tune(&self) -> bool {
        self.incumbent.is_none()
    }

    /// The incumbent genome and its installation fitness.
    #[must_use]
    pub fn incumbent(&self) -> Option<(&[i64], f64)> {
        self.incumbent.as_ref().map(|(g, f)| (g.as_slice(), *f))
    }

    /// Retunes committed so far.
    #[must_use]
    pub fn retunes(&self) -> u64 {
        self.retunes
    }

    /// Ground-truth detection latencies recorded so far.
    #[must_use]
    pub fn detect_latencies(&self) -> &[u64] {
        &self.detect_latencies
    }

    /// The detector's current regression over its baseline, percent.
    #[must_use]
    pub fn regression_pct(&self) -> f64 {
        self.detector.regression_pct()
    }

    /// Adds driver-side fitness evaluations to the running total.
    pub fn note_evals(&mut self, n: u64) {
        self.evals += n;
    }

    /// Total evaluations noted (probes are noted by the state itself).
    #[must_use]
    pub fn evals(&self) -> u64 {
        self.evals
    }

    /// The GA seed of the next retune: a named child stream of the
    /// job's base seed, indexed by retune ordinal, so retune N is
    /// deterministic no matter which epoch triggered it.
    #[must_use]
    pub fn retune_seed(&self, base: u64) -> u64 {
        child_seed(base, &format!("online/retune/{}", self.retunes))
    }

    /// Installs the initial incumbent, consuming epoch 0: records the
    /// epoch-0 row (its probe is the tune fitness — the workload is the
    /// one just tuned on) and baselines the detector.
    ///
    /// # Panics
    /// If an incumbent already exists (driver protocol violation).
    pub fn install(&mut self, genes: Vec<i64>, fitness: f64) {
        assert!(
            self.incumbent.is_none(),
            "install() with an incumbent in place"
        );
        assert!(self.pending.is_none(), "install() with a probe pending");
        self.detector.reset(fitness);
        self.rows.push(EpochRow {
            epoch: self.epoch,
            pos: self.pos(),
            probe: fitness,
            retuned: false,
            fitness,
        });
        self.incumbent = Some((genes, fitness));
        self.epoch += 1;
    }

    /// Feeds the epoch's probe of the incumbent. Returns `true` when
    /// the detector demands a retune; either way the epoch stays open
    /// until [`OnlineState::commit`].
    ///
    /// # Panics
    /// If there is no incumbent or a probe is already pending.
    pub fn observe_probe(&mut self, probe: f64) -> bool {
        assert!(self.incumbent.is_some(), "observe_probe() before install()");
        assert!(self.pending.is_none(), "observe_probe() twice in one epoch");
        self.evals += 1;
        self.pending = Some(probe);
        self.detector.observe(probe)
    }

    /// Commits the open epoch: `retuned` carries the new incumbent if
    /// the driver retuned (detector reset to its fitness), `None`
    /// keeps the incumbent. Records the epoch row and advances.
    ///
    /// # Panics
    /// If no probe is pending (driver protocol violation).
    pub fn commit(&mut self, retuned: Option<(Vec<i64>, f64)>) {
        let probe = self
            .pending
            .take()
            .expect("commit() without a pending probe");
        let (retuned_flag, fitness) = match retuned {
            Some((genes, fitness)) => {
                self.detector.reset(fitness);
                self.incumbent = Some((genes, fitness));
                self.retunes += 1;
                self.detect_latencies
                    .push(self.epoch - self.last_boundary());
                (true, fitness)
            }
            None => (false, self.incumbent.as_ref().map_or(probe, |(_, f)| *f)),
        };
        self.rows.push(EpochRow {
            epoch: self.epoch,
            pos: self.pos(),
            probe,
            retuned: retuned_flag,
            fitness,
        });
        self.epoch += 1;
    }

    /// The most recent schedule boundary at or before the current
    /// epoch (0 if the workload has never changed).
    fn last_boundary(&self) -> u64 {
        (1..=self.epoch)
            .rev()
            .find(|&e| self.cfg.schedule.is_boundary(e))
            .unwrap_or(0)
    }

    /// Plain-data state as of the last committed epoch.
    ///
    /// # Panics
    /// If a probe is pending (checkpoints live at epoch boundaries).
    #[must_use]
    pub fn snapshot(&self) -> OnlineSnapshot {
        assert!(self.pending.is_none(), "snapshot() mid-epoch");
        OnlineSnapshot {
            epoch: self.epoch,
            incumbent: self.incumbent.clone(),
            detector: self.detector.snapshot(),
            retunes: self.retunes,
            detect_latencies: self.detect_latencies.clone(),
            evals: self.evals,
            rows: self.rows.clone(),
        }
    }

    /// Rebuilds the state machine from a snapshot, bit-identically.
    ///
    /// # Errors
    /// Internally inconsistent snapshots (row/epoch mismatch, epoch
    /// past the configured horizon, missing incumbent).
    pub fn restore(cfg: OnlineConfig, snap: OnlineSnapshot) -> Result<Self, String> {
        validate(&cfg)?;
        if snap.epoch > cfg.epochs {
            return Err(format!(
                "online snapshot at epoch {} but the job has {} epochs",
                snap.epoch, cfg.epochs
            ));
        }
        if snap.rows.len() as u64 != snap.epoch {
            return Err(format!(
                "online snapshot has {} rows for {} epochs",
                snap.rows.len(),
                snap.epoch
            ));
        }
        if snap.epoch > 0 && snap.incumbent.is_none() {
            return Err("online snapshot past epoch 0 without an incumbent".into());
        }
        let detector = DriftDetector::restore(cfg.detector, snap.detector)?;
        Ok(Self {
            cfg,
            epoch: snap.epoch,
            incumbent: snap.incumbent,
            detector,
            retunes: snap.retunes,
            detect_latencies: snap.detect_latencies,
            evals: snap.evals,
            rows: snap.rows,
            pending: None,
        })
    }

    /// Consumes a finished run into its report.
    ///
    /// # Panics
    /// If the run is not done or has no incumbent.
    #[must_use]
    pub fn into_report(self) -> OnlineReport {
        assert!(self.is_done(), "into_report() before the last epoch");
        let (genes, fitness) = self.incumbent.expect("done without an incumbent");
        OnlineReport {
            rows: self.rows,
            retunes: self.retunes,
            detect_latencies: self.detect_latencies,
            evals: self.evals,
            genes,
            fitness,
        }
    }
}

fn validate(cfg: &OnlineConfig) -> Result<(), String> {
    if cfg.epochs == 0 {
        return Err("an online job needs at least 1 epoch".into());
    }
    if cfg.epochs > 100_000 {
        return Err("online jobs cap at 100000 epochs".into());
    }
    if cfg.schedule.period == 0 {
        return Err("drift period must be ≥ 1 epoch".into());
    }
    if cfg.schedule.phases == 0 {
        return Err("drift schedules need ≥ 1 phase".into());
    }
    if cfg.detector.window == 0 {
        return Err("the drift detector needs a window ≥ 1".into());
    }
    if !(cfg.detector.threshold_pct > 0.0) {
        return Err("the drift threshold must be a positive percentage".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::DriftKind;

    fn cfg(epochs: u64) -> OnlineConfig {
        OnlineConfig {
            epochs,
            schedule: DriftSchedule {
                kind: DriftKind::Step,
                period: 3,
                phases: 3,
                seed: 7,
            },
            detector: DetectorConfig {
                window: 2,
                threshold_pct: 5.0,
            },
        }
    }

    #[test]
    fn protocol_runs_to_completion() {
        let mut st = OnlineState::new(cfg(5)).unwrap();
        assert!(st.needs_initial_tune());
        st.install(vec![1, 2], 1.0);
        assert_eq!(st.epoch(), 1);
        while !st.is_done() {
            let drifted = st.observe_probe(1.0);
            assert!(!drifted, "flat probes must not trigger");
            st.commit(None);
        }
        let r = st.into_report();
        assert_eq!(r.rows.len(), 5);
        assert_eq!(r.retunes, 0);
        assert_eq!(r.genes, vec![1, 2]);
        assert_eq!(r.evals, 4, "one probe per epoch after the install");
    }

    #[test]
    fn regression_triggers_and_retune_rebaselines() {
        let mut st = OnlineState::new(cfg(9)).unwrap();
        st.install(vec![1], 1.0);
        let mut retuned_at = None;
        while !st.is_done() {
            // The workload regresses the incumbent by 50% from epoch 3;
            // the retuned incumbent holds its new fitness afterwards.
            let probe = if retuned_at.is_some() {
                0.9
            } else if st.epoch() >= 3 {
                1.5
            } else {
                1.0
            };
            if st.observe_probe(probe) {
                retuned_at = Some(st.epoch());
                st.commit(Some((vec![2], 0.9)));
            } else {
                st.commit(None);
            }
        }
        // Window 2: boundary at 3, trigger by epoch 4.
        assert!(retuned_at.unwrap() <= 4);
        let r = st.into_report();
        assert_eq!(r.retunes, 1);
        assert_eq!(r.genes, vec![2]);
        assert!(r.detect_latencies[0] <= 2);
    }

    #[test]
    fn snapshot_restore_is_bit_identical() {
        let mut a = OnlineState::new(cfg(7)).unwrap();
        a.install(vec![3], 2.0);
        a.observe_probe(2.0);
        a.commit(None);
        let snap = a.snapshot();
        let mut b = OnlineState::restore(cfg(7), snap.clone()).unwrap();
        assert_eq!(b.snapshot(), snap);
        for probe in [2.0, 3.0, 3.0, 3.0] {
            if a.is_done() {
                break;
            }
            let da = a.observe_probe(probe);
            let db = b.observe_probe(probe);
            assert_eq!(da, db);
            let retune = da.then(|| (vec![4], probe * 0.5));
            a.commit(retune.clone());
            b.commit(retune);
            assert_eq!(a.snapshot(), b.snapshot());
        }
    }

    #[test]
    fn retune_seeds_are_ordinal_streams() {
        let st = OnlineState::new(cfg(3)).unwrap();
        let s0 = st.retune_seed(42);
        assert_eq!(s0, simrng::child_seed(42, "online/retune/0"));
        assert_ne!(s0, simrng::child_seed(43, "online/retune/0"));
    }

    #[test]
    fn restore_rejects_inconsistent_snapshots() {
        let mut st = OnlineState::new(cfg(3)).unwrap();
        st.install(vec![1], 1.0);
        let mut snap = st.snapshot();
        snap.rows.clear();
        assert!(OnlineState::restore(cfg(3), snap).is_err());
        let mut over = st.snapshot();
        over.epoch = 99;
        assert!(OnlineState::restore(cfg(3), over).is_err());
    }

    #[test]
    fn config_validation_rejects_degenerate_jobs() {
        assert!(OnlineState::new(OnlineConfig {
            epochs: 0,
            ..cfg(1)
        })
        .is_err());
        let mut bad = cfg(3);
        bad.detector.window = 0;
        assert!(OnlineState::new(bad).is_err());
        let mut neg = cfg(3);
        neg.detector.threshold_pct = -1.0;
        assert!(OnlineState::new(neg).is_err());
    }
}
