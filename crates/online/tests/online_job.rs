//! End-to-end reference runs: the online policy against real drifting
//! workloads, bracketed by the frozen-incumbent control and the
//! per-phase oracle.

use ga::GaConfig;
use online::{DetectorConfig, OnlineConfig, OnlineJob, OnlineState};
use tuner::paper_tasks;
use workloads::{benchmark_by_name, DriftKind, DriftSchedule};

fn job(kind: DriftKind, drift_seed: u64) -> OnlineJob {
    OnlineJob {
        problem: "inline".into(),
        task: paper_tasks().remove(2), // Opt:Tot — compile-time share moves with body shape
        base: vec![benchmark_by_name("db").unwrap()],
        adapt: jit::AdaptConfig::default(),
        ga: GaConfig {
            pop_size: 8,
            generations: 6,
            threads: 1,
            seed: 2005,
            stagnation_limit: None,
            ..GaConfig::default()
        },
        strategy: "ga".into(),
        online: OnlineConfig {
            epochs: 9,
            schedule: DriftSchedule {
                kind,
                period: 3,
                phases: 3,
                seed: drift_seed,
            },
            detector: DetectorConfig {
                window: 2,
                threshold_pct: 2.0,
            },
        },
    }
}

#[test]
fn online_run_is_deterministic_and_well_behaved() {
    let j = job(DriftKind::Step, 11);
    let a = j.run(None).unwrap();
    let b = j.run(None).unwrap();
    assert_eq!(a, b, "two runs of the same job must be bit-identical");
    assert_eq!(a.rows.len(), 9);
    let v = a.violations(&j.online);
    assert!(v.is_empty(), "violations: {v:?}");
}

#[test]
fn drift_triggers_retunes_and_online_beats_frozen() {
    let mut kinds_with_retunes = 0;
    for (kind, seed) in [
        (DriftKind::Step, 11),
        (DriftKind::Ramp, 11),
        (DriftKind::Cyclic, 11),
    ] {
        let j = job(kind, seed);
        let online = j.run(None).unwrap();
        let frozen = j.run_frozen().unwrap();
        assert_eq!(frozen.retunes, 0);
        // Online never delivers worse than frozen: retunes only fire on
        // detected regression and never worsen the incumbent.
        assert!(
            online.mean_probe() <= frozen.mean_probe() + 1e-9,
            "{kind:?}: online {} vs frozen {}",
            online.mean_probe(),
            frozen.mean_probe()
        );
        if online.retunes > 0 {
            kinds_with_retunes += 1;
            assert!(
                online.mean_probe() < frozen.mean_probe(),
                "{kind:?}: retunes fired but delivered no improvement"
            );
        }
        let v = online.violations(&j.online);
        assert!(v.is_empty(), "{kind:?} violations: {v:?}");
    }
    assert!(
        kinds_with_retunes >= 2,
        "drift must trigger retunes on at least 2 of 3 schedule kinds \
         (got {kinds_with_retunes})"
    );
}

#[test]
fn oracle_lower_bounds_delivered_quality_per_phase() {
    let j = job(DriftKind::Step, 11);
    let online = j.run(None).unwrap();
    let oracle = j.oracle().unwrap();
    assert_eq!(oracle.len(), 9);
    let regret = online.mean_regret_pct(&oracle);
    assert!(regret.is_finite());
    // The initial tune IS the phase-0 oracle, so epoch 0 regret is 0.
    assert!((online.rows[0].probe - oracle[0]).abs() < 1e-12);
}

#[test]
fn checkpoint_resume_is_bit_identical_mid_run() {
    let j = job(DriftKind::Cyclic, 11);
    let full = j.run(None).unwrap();
    for cut in [1, 4, 7] {
        let snap = j.snapshot_at(cut, None).unwrap();
        assert_eq!(snap.epoch, cut);
        let st = OnlineState::restore(j.online.clone(), snap).unwrap();
        let resumed = j.resume(st, None).unwrap();
        assert_eq!(resumed, full, "resume from epoch {cut} diverged");
    }
}
