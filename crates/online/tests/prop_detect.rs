//! Property tests for the drift detector: no false triggers on
//! stationary fitness streams, guaranteed trigger within one window of
//! a sustained step, and bit-exact snapshot/restore round-trips.
//!
//! Gated behind the bare `proptest` cargo feature because the
//! `proptest` crate is not vendored (offline, zero-dependency builds).
//! To run:
//!
//! ```text
//! # on a networked machine:
//! #   add `proptest = "1"` under [dev-dependencies] in crates/online/Cargo.toml
//! cargo test -p inlinetune-online --features proptest
//! ```

#![cfg(feature = "proptest")]

use online::{DetectorConfig, DriftDetector};
use proptest::prelude::*;

fn arb_cfg() -> impl Strategy<Value = DetectorConfig> {
    (1usize..=8, 1.0f64..50.0).prop_map(|(window, threshold_pct)| DetectorConfig {
        window,
        threshold_pct,
    })
}

proptest! {
    /// A stream that stays strictly inside the threshold band around
    /// the baseline never triggers, no matter its length or noise
    /// pattern.
    #[test]
    fn stationary_stream_never_triggers(
        cfg in arb_cfg(),
        baseline in 1e-3f64..1e6,
        noise in proptest::collection::vec(-0.99f64..=0.99, 1..120),
    ) {
        let mut d = DriftDetector::new(cfg, baseline);
        for (i, n) in noise.iter().enumerate() {
            // Scale noise to strictly under the threshold.
            let probe = baseline * (1.0 + n * cfg.threshold_pct / 100.0);
            prop_assert!(!d.observe(probe), "false trigger at probe {i}");
        }
    }

    /// A sustained step strictly past the threshold triggers within
    /// `window` probes of the step, regardless of the stationary
    /// prefix.
    #[test]
    fn step_triggers_within_window(
        cfg in arb_cfg(),
        baseline in 1e-3f64..1e6,
        prefix_len in 0usize..40,
        overshoot in 0.01f64..2.0,
    ) {
        let mut d = DriftDetector::new(cfg, baseline);
        for _ in 0..prefix_len {
            prop_assert!(!d.observe(baseline));
        }
        let stepped = baseline * (1.0 + (1.0 + overshoot) * cfg.threshold_pct / 100.0);
        let mut fired = None;
        for k in 1..=cfg.window {
            if d.observe(stepped) {
                fired = Some(k);
                break;
            }
        }
        prop_assert!(
            fired.is_some(),
            "no trigger within {} probes of a {:.1}% step (threshold {:.1}%)",
            cfg.window,
            (stepped / baseline - 1.0) * 100.0,
            cfg.threshold_pct
        );
    }

    /// Snapshot/restore round-trips the detector bit-exactly: the
    /// restored twin makes identical decisions and reports identical
    /// regression on any shared suffix.
    #[test]
    fn snapshot_restore_round_trips(
        cfg in arb_cfg(),
        baseline in 1e-3f64..1e6,
        prefix in proptest::collection::vec(0.5f64..2.0, 0..20),
        suffix in proptest::collection::vec(0.5f64..2.0, 1..20),
    ) {
        let mut a = DriftDetector::new(cfg, baseline);
        for m in &prefix {
            let _ = a.observe(baseline * m);
        }
        let snap = a.snapshot();
        let mut b = DriftDetector::restore(cfg, snap.clone()).unwrap();
        prop_assert_eq!(b.snapshot(), snap);
        for m in &suffix {
            let probe = baseline * m;
            prop_assert_eq!(a.observe(probe), b.observe(probe));
            prop_assert_eq!(
                a.regression_pct().to_bits(),
                b.regression_pct().to_bits()
            );
        }
    }
}
