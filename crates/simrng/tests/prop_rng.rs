// Gated: needs the crates.io `proptest` crate (see the `proptest`
// feature note in this crate's Cargo.toml).
#![cfg(feature = "proptest")]

//! Property-based tests for the RNG and distributions: range safety for
//! arbitrary parameters, determinism, and stream independence.

use proptest::prelude::*;

use simrng::dist::{CappedGeometric, Categorical, LogNormal, Normal, Zipf};
use simrng::{child_seed, Rng};

proptest! {
    #[test]
    fn below_is_always_in_range(seed in any::<u64>(), n in 1u64..=u64::MAX) {
        let mut rng = Rng::seed_from_u64(seed);
        for _ in 0..32 {
            prop_assert!(rng.below(n) < n);
        }
    }

    #[test]
    fn range_i64_hits_inclusive_bounds_only(seed in any::<u64>(), a in any::<i64>(), b in any::<i64>()) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let mut rng = Rng::seed_from_u64(seed);
        for _ in 0..32 {
            let v = rng.range_i64(lo, hi);
            prop_assert!(v >= lo && v <= hi);
        }
    }

    #[test]
    fn f64_stays_in_unit_interval(seed in any::<u64>()) {
        let mut rng = Rng::seed_from_u64(seed);
        for _ in 0..64 {
            let x = rng.f64();
            prop_assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn streams_are_deterministic_and_label_sensitive(seed in any::<u64>(), label in "[a-z]{1,12}") {
        prop_assert_eq!(child_seed(seed, &label), child_seed(seed, &label));
        // A different label virtually never collides (not a proof, a
        // regression tripwire: any systematic collision fails fast).
        let other = format!("{label}!");
        prop_assert_ne!(child_seed(seed, &label), child_seed(seed, &other));
    }

    #[test]
    fn zipf_ranks_in_range_for_arbitrary_params(seed in any::<u64>(), n in 1u64..100_000, s in 0.01f64..5.0) {
        let z = Zipf::new(n, s).unwrap();
        let mut rng = Rng::seed_from_u64(seed);
        for _ in 0..64 {
            let k = z.sample(&mut rng);
            prop_assert!((1..=n).contains(&k), "rank {k} outside 1..={n}");
        }
    }

    #[test]
    fn normal_samples_are_finite(seed in any::<u64>(), mean in -1e6f64..1e6, sd in 0.0f64..1e3) {
        let d = Normal::new(mean, sd).unwrap();
        let mut rng = Rng::seed_from_u64(seed);
        for _ in 0..32 {
            prop_assert!(d.sample(&mut rng).is_finite());
        }
    }

    #[test]
    fn lognormal_samples_positive(seed in any::<u64>(), median in 0.001f64..1e6, sigma in 0.0f64..3.0) {
        let d = LogNormal::from_median(median, sigma).unwrap();
        let mut rng = Rng::seed_from_u64(seed);
        for _ in 0..32 {
            prop_assert!(d.sample(&mut rng) > 0.0);
        }
    }

    #[test]
    fn categorical_never_picks_zero_weight(seed in any::<u64>(), weights in proptest::collection::vec(0.0f64..10.0, 1..12)) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let c = Categorical::new(&weights).unwrap();
        let mut rng = Rng::seed_from_u64(seed);
        for _ in 0..64 {
            let i = c.sample(&mut rng);
            prop_assert!(i < weights.len());
            prop_assert!(weights[i] > 0.0, "picked zero-weight category {i}");
        }
    }

    #[test]
    fn capped_geometric_respects_cap(seed in any::<u64>(), p in 0.001f64..1.0, cap in 0u32..64) {
        let g = CappedGeometric::new(p, cap).unwrap();
        let mut rng = Rng::seed_from_u64(seed);
        for _ in 0..64 {
            prop_assert!(g.sample(&mut rng) <= cap);
        }
    }

    #[test]
    fn split_streams_do_not_correlate_trivially(seed in any::<u64>()) {
        let mut parent = Rng::seed_from_u64(seed);
        let mut a = parent.split();
        let mut b = parent.split();
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        prop_assert_ne!(xs, ys);
    }
}
