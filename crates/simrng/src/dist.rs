//! Sampling distributions used by the workload generators and the GA.
//!
//! All distributions are plain-old-data structs with a `sample(&mut Rng)`
//! method; construction validates parameters and returns `Result` so that
//! workload specs fail loudly rather than producing silently degenerate
//! programs.

use crate::Rng;

/// Error returned when a distribution is constructed with invalid
/// parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistError(pub String);

impl std::fmt::Display for DistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "distribution parameter error: {}", self.0)
    }
}

impl std::error::Error for DistError {}

fn err(msg: impl Into<String>) -> DistError {
    DistError(msg.into())
}

/// Standard normal sampling via the Marsaglia polar method with a cached
/// spare, exposed as `N(mean, std_dev)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates `N(mean, std_dev)`.
    ///
    /// # Errors
    /// Fails if `std_dev` is negative or either parameter is non-finite.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, DistError> {
        if !mean.is_finite() || !std_dev.is_finite() {
            return Err(err("normal: non-finite parameter"));
        }
        if std_dev < 0.0 {
            return Err(err("normal: negative std_dev"));
        }
        Ok(Self { mean, std_dev })
    }

    /// Draws one sample.
    pub fn sample(&self, rng: &mut Rng) -> f64 {
        // Marsaglia polar method; we deliberately do not cache the spare so
        // the sampler is stateless (important: distributions are shared
        // immutably across threads in the GA evaluator).
        loop {
            let u = rng.f64_range(-1.0, 1.0);
            let v = rng.f64_range(-1.0, 1.0);
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let factor = (-2.0 * s.ln() / s).sqrt();
                return self.mean + self.std_dev * u * factor;
            }
        }
    }
}

/// Log-normal distribution: `exp(N(mu, sigma))`.
///
/// Used for method-size distributions: real Java method sizes are heavily
/// right-skewed with a mass of tiny accessor methods and a long tail of
/// large generated methods (parsers, state machines).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    norm: Normal,
}

impl LogNormal {
    /// Creates a log-normal with underlying normal `N(mu, sigma)`.
    ///
    /// # Errors
    /// Fails if `sigma` is negative or a parameter is non-finite.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, DistError> {
        Ok(Self {
            norm: Normal::new(mu, sigma)?,
        })
    }

    /// Creates a log-normal from the desired *median* and a shape factor
    /// `sigma`. `median = exp(mu)`, so `mu = ln(median)`.
    ///
    /// # Errors
    /// Fails if `median <= 0` or `sigma < 0`.
    pub fn from_median(median: f64, sigma: f64) -> Result<Self, DistError> {
        if median.is_nan() || median <= 0.0 {
            return Err(err("lognormal: median must be positive"));
        }
        Self::new(median.ln(), sigma)
    }

    /// Draws one sample (always positive).
    pub fn sample(&self, rng: &mut Rng) -> f64 {
        self.norm.sample(rng).exp()
    }
}

/// Zipf distribution over ranks `1..=n` with exponent `s > 0`.
///
/// Sampling uses the rejection-inversion method of Hörmann & Derflinger,
/// which is O(1) per sample for any `n` and any `s > 0, s != 1` (the `s = 1`
/// harmonic case is handled by a tiny epsilon shift).
///
/// Used for call-site hotness: a few call sites dominate dynamic call
/// counts, which is what makes the adaptive scenario's hot-call-site test
/// (`HOT_CALLEE_MAX_SIZE`) meaningful.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Zipf {
    n: u64,
    s: f64,
    // Precomputed constants for rejection-inversion.
    h_x1: f64,
    h_n: f64,
    dense: f64,
}

impl Zipf {
    /// Creates a Zipf over `1..=n` with exponent `s`.
    ///
    /// # Errors
    /// Fails if `n == 0` or `s <= 0` or `s` is non-finite.
    pub fn new(n: u64, s: f64) -> Result<Self, DistError> {
        if n == 0 {
            return Err(err("zipf: n must be >= 1"));
        }
        if !s.is_finite() || s <= 0.0 {
            return Err(err("zipf: exponent must be positive and finite"));
        }
        // The inversion formulas divide by (1 - s); nudge s away from 1.
        let s = if (s - 1.0).abs() < 1e-9 {
            1.0 + 1e-9
        } else {
            s
        };
        let h_x1 = Self::h_raw(1.5, s) - 1.0;
        let h_n = Self::h_raw(n as f64 + 0.5, s);
        let dense = 2.0 - Self::h_inv_raw(Self::h_raw(2.5, s) - (2.0f64).powf(-s), s);
        Ok(Self {
            n,
            s,
            h_x1,
            h_n,
            dense,
        })
    }

    #[inline]
    fn h_raw(x: f64, s: f64) -> f64 {
        // H(x) = x^(1-s) / (1-s)
        ((1.0 - s) * x.ln()).exp() / (1.0 - s)
    }

    #[inline]
    fn h_inv_raw(x: f64, s: f64) -> f64 {
        // H^{-1}(x) = ((1-s) x)^(1/(1-s))
        (((1.0 - s) * x).ln() / (1.0 - s)).exp()
    }

    /// Draws one rank in `1..=n`.
    pub fn sample(&self, rng: &mut Rng) -> u64 {
        if self.n == 1 {
            return 1;
        }
        loop {
            let u = self.h_n + rng.f64() * (self.h_x1 - self.h_n);
            let x = Self::h_inv_raw(u, self.s);
            let k = x.clamp(1.0, self.n as f64).round();
            #[allow(clippy::float_cmp)]
            let accept = {
                let diff = Self::h_raw(k + 0.5, self.s) - (-(k.ln()) * self.s).exp();
                k - x <= self.dense || u >= diff
            };
            if accept {
                return k as u64;
            }
        }
    }
}

/// Discrete distribution over `0..weights.len()` proportional to the given
/// non-negative weights, using Walker's alias method: O(n) setup, O(1)
/// sampling.
#[derive(Debug, Clone, PartialEq)]
pub struct Categorical {
    prob: Vec<f64>,
    alias: Vec<usize>,
}

impl Categorical {
    /// Builds the alias tables from `weights`.
    ///
    /// # Errors
    /// Fails if `weights` is empty, contains a negative or non-finite
    /// value, or sums to zero.
    pub fn new(weights: &[f64]) -> Result<Self, DistError> {
        if weights.is_empty() {
            return Err(err("categorical: empty weights"));
        }
        if weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
            return Err(err("categorical: weights must be finite and >= 0"));
        }
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return Err(err("categorical: weights sum to zero"));
        }
        let n = weights.len();
        let mut prob = vec![0.0; n];
        let mut alias = vec![0usize; n];
        let scaled: Vec<f64> = weights.iter().map(|w| w * n as f64 / total).collect();
        let mut small: Vec<usize> = Vec::with_capacity(n);
        let mut large: Vec<usize> = Vec::with_capacity(n);
        for (i, &p) in scaled.iter().enumerate() {
            if p < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        let mut scaled = scaled;
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            large.pop();
            prob[s] = scaled[s];
            alias[s] = l;
            scaled[l] = (scaled[l] + scaled[s]) - 1.0;
            if scaled[l] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        for &i in small.iter().chain(large.iter()) {
            prob[i] = 1.0;
            alias[i] = i;
        }
        Ok(Self { prob, alias })
    }

    /// Number of categories.
    #[must_use]
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Whether the distribution has zero categories (never true for a
    /// successfully constructed value).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws one category index.
    pub fn sample(&self, rng: &mut Rng) -> usize {
        let i = rng.below(self.prob.len() as u64) as usize;
        if rng.f64() < self.prob[i] {
            i
        } else {
            self.alias[i]
        }
    }
}

/// Geometric-ish distribution: number of Bernoulli(p) failures before the
/// first success, capped at `max`. Used for call-chain depth generation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CappedGeometric {
    p: f64,
    max: u32,
}

impl CappedGeometric {
    /// Creates a capped geometric with success probability `p` in `(0, 1]`.
    ///
    /// # Errors
    /// Fails unless `0 < p <= 1`.
    pub fn new(p: f64, max: u32) -> Result<Self, DistError> {
        if !(p > 0.0 && p <= 1.0) {
            return Err(err("geometric: p must be in (0, 1]"));
        }
        Ok(Self { p, max })
    }

    /// Draws one sample in `0..=max`.
    pub fn sample(&self, rng: &mut Rng) -> u32 {
        let mut k = 0;
        while k < self.max && !rng.chance(self.p) {
            k += 1;
        }
        k
    }
}

/// Samples a positive integer from a log-normal, clamped to `[lo, hi]`.
///
/// This is the canonical "method size" draw in the workload generators.
pub fn lognormal_int(rng: &mut Rng, dist: &LogNormal, lo: u32, hi: u32) -> u32 {
    debug_assert!(lo <= hi);
    let x = dist.sample(rng);
    let clamped = x.clamp(f64::from(lo), f64::from(hi));
    clamped.round() as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Rng {
        Rng::seed_from_u64(0xdead_beef)
    }

    #[test]
    fn normal_rejects_bad_params() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, f64::INFINITY).is_err());
    }

    #[test]
    fn normal_moments() {
        let d = Normal::new(3.0, 2.0).unwrap();
        let mut r = rng();
        let n = 40_000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn lognormal_is_positive_and_median_right() {
        let d = LogNormal::from_median(20.0, 0.8).unwrap();
        let mut r = rng();
        let n = 40_001;
        let mut samples: Vec<f64> = (0..n).map(|_| d.sample(&mut r)).collect();
        assert!(samples.iter().all(|&x| x > 0.0));
        samples.sort_by(f64::total_cmp);
        let median = samples[n / 2];
        assert!((median / 20.0 - 1.0).abs() < 0.1, "median {median}");
    }

    #[test]
    fn lognormal_rejects_bad_median() {
        assert!(LogNormal::from_median(0.0, 1.0).is_err());
        assert!(LogNormal::from_median(-2.0, 1.0).is_err());
    }

    #[test]
    fn zipf_in_range() {
        let z = Zipf::new(50, 1.2).unwrap();
        let mut r = rng();
        for _ in 0..5000 {
            let k = z.sample(&mut r);
            assert!((1..=50).contains(&k), "rank {k}");
        }
    }

    #[test]
    fn zipf_rank_one_dominates() {
        let z = Zipf::new(1000, 1.3).unwrap();
        let mut r = rng();
        let n = 20_000;
        let ones = (0..n).filter(|_| z.sample(&mut r) == 1).count();
        let twos_plus = n - ones;
        // With s = 1.3 rank 1 should hold a large share (~30%+).
        assert!(ones * 2 > twos_plus / 2, "rank-1 count {ones}/{n}");
    }

    #[test]
    fn zipf_n1_always_one() {
        let z = Zipf::new(1, 2.0).unwrap();
        let mut r = rng();
        assert!((0..100).all(|_| z.sample(&mut r) == 1));
    }

    #[test]
    fn zipf_handles_s_equal_one() {
        let z = Zipf::new(10, 1.0).unwrap();
        let mut r = rng();
        for _ in 0..1000 {
            let k = z.sample(&mut r);
            assert!((1..=10).contains(&k));
        }
    }

    #[test]
    fn zipf_rejects_bad_params() {
        assert!(Zipf::new(0, 1.0).is_err());
        assert!(Zipf::new(10, 0.0).is_err());
        assert!(Zipf::new(10, -1.0).is_err());
        assert!(Zipf::new(10, f64::NAN).is_err());
    }

    #[test]
    fn categorical_respects_weights() {
        let c = Categorical::new(&[1.0, 0.0, 3.0]).unwrap();
        let mut r = rng();
        let n = 40_000;
        let mut counts = [0usize; 3];
        for _ in 0..n {
            counts[c.sample(&mut r)] += 1;
        }
        assert_eq!(counts[1], 0, "zero-weight category sampled");
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    fn categorical_single_category() {
        let c = Categorical::new(&[7.0]).unwrap();
        let mut r = rng();
        assert!((0..50).all(|_| c.sample(&mut r) == 0));
    }

    #[test]
    fn categorical_rejects_degenerate() {
        assert!(Categorical::new(&[]).is_err());
        assert!(Categorical::new(&[0.0, 0.0]).is_err());
        assert!(Categorical::new(&[-1.0, 2.0]).is_err());
        assert!(Categorical::new(&[f64::NAN]).is_err());
    }

    #[test]
    fn capped_geometric_in_range() {
        let g = CappedGeometric::new(0.3, 5).unwrap();
        let mut r = rng();
        for _ in 0..2000 {
            assert!(g.sample(&mut r) <= 5);
        }
    }

    #[test]
    fn capped_geometric_p1_is_zero() {
        let g = CappedGeometric::new(1.0, 10).unwrap();
        let mut r = rng();
        assert!((0..100).all(|_| g.sample(&mut r) == 0));
    }

    #[test]
    fn lognormal_int_clamps() {
        let d = LogNormal::from_median(1000.0, 2.0).unwrap();
        let mut r = rng();
        for _ in 0..500 {
            let v = lognormal_int(&mut r, &d, 3, 50);
            assert!((3..=50).contains(&v));
        }
    }
}
