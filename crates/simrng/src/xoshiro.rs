//! The xoshiro256\*\* generator and its SplitMix64 seeder.
//!
//! xoshiro256\*\* is the recommendation of Blackman & Vigna for a
//! general-purpose 64-bit generator: 256 bits of state, period 2^256 − 1,
//! passes BigCrush, and is a handful of ALU ops per output. SplitMix64 is
//! used only to expand a 64-bit seed into the initial 256-bit state (its
//! outputs are equidistributed, so any `u64` seed — including 0 — yields a
//! valid non-zero state).

/// SplitMix64: a tiny 64-bit generator used for seeding.
///
/// Every call advances the state by a fixed odd constant and returns a
/// bijective mix of it, so consecutive outputs are distinct and
/// well-distributed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a SplitMix64 generator from a raw seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// The workspace-wide deterministic RNG: xoshiro256\*\*.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Seeds the generator from a single `u64` via SplitMix64 state
    /// expansion, as recommended by the xoshiro authors.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        Self { s }
    }

    /// Constructs the generator from a full 256-bit state.
    ///
    /// The state must not be all zeros (the all-zero state is a fixed point);
    /// if it is, a fixed non-zero fallback state is substituted.
    #[must_use]
    pub fn from_state(s: [u64; 4]) -> Self {
        if s == [0; 4] {
            Self::seed_from_u64(0)
        } else {
            Self { s }
        }
    }

    /// The raw 256-bit state, for checkpointing. Feed it back through
    /// [`Rng::from_state`] to resume the stream exactly where it left off.
    #[must_use]
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Returns the next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns the next 32 uniformly distributed bits (upper half of the
    /// 64-bit output, which has the better statistical quality).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        // Take the top 53 bits; multiply by 2^-53.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in the half-open interval `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo > hi` or either bound is non-finite.
    #[inline]
    pub fn f64_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi && lo.is_finite() && hi.is_finite(), "bad range");
        lo + (hi - lo) * self.f64()
    }

    /// Uniform integer in `[0, n)` using Lemire's multiply-shift rejection
    /// method (unbiased).
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        // Fast path for powers of two.
        if n.is_power_of_two() {
            return self.next_u64() & (n - 1);
        }
        let mut x = self.next_u64();
        let mut m = u128::from(x) * u128::from(n);
        let mut l = m as u64;
        if l < n {
            let t = n.wrapping_neg() % n;
            while l < t {
                x = self.next_u64();
                m = u128::from(x) * u128::from(n);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "range_i64: lo > hi");
        let span = (hi as i128 - lo as i128 + 1) as u128;
        if span > u128::from(u64::MAX) {
            // Full i64 domain: any u64 reinterpreted works.
            return self.next_u64() as i64;
        }
        lo.wrapping_add(self.below(span as u64) as i64)
    }

    /// Uniform `usize` in `[lo, hi]` inclusive.
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo <= hi, "range_usize: lo > hi");
        lo + self.below((hi - lo) as u64 + 1) as usize
    }

    /// Bernoulli trial: `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Picks a uniformly random element of a non-empty slice.
    ///
    /// # Panics
    /// Panics if the slice is empty.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        assert!(!xs.is_empty(), "choose on empty slice");
        &xs[self.below(xs.len() as u64) as usize]
    }

    /// Fisher–Yates shuffle, in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// The xoshiro256\*\* jump function: advances the state by 2^128 steps,
    /// giving a stream independent of (non-overlapping with) the original
    /// for any realistic consumption. Used to derive per-thread streams.
    pub fn jump(&mut self) {
        const JUMP: [u64; 4] = [
            0x180e_c6d3_3cfd_0aba,
            0xd5a6_1266_f0c9_392c,
            0xa958_2618_e03f_c9aa,
            0x39ab_dc45_29b1_661c,
        ];
        let mut s = [0u64; 4];
        for j in JUMP {
            for b in 0..64 {
                if j & (1u64 << b) != 0 {
                    s[0] ^= self.s[0];
                    s[1] ^= self.s[1];
                    s[2] ^= self.s[2];
                    s[3] ^= self.s[3];
                }
                self.next_u64();
            }
        }
        self.s = s;
    }

    /// Returns a new generator 2^128 steps ahead, leaving `self` just past
    /// the jump. Successive calls yield mutually independent streams.
    #[must_use]
    pub fn split(&mut self) -> Rng {
        let child = self.clone();
        self.jump();
        child
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference outputs for xoshiro256** seeded with SplitMix64(0), as
    /// produced by the authors' C reference implementation.
    #[test]
    fn matches_reference_vector_seed0() {
        let mut r = Rng::seed_from_u64(0);
        let got: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        // First four outputs of xoshiro256** with state from splitmix64(0).
        assert_eq!(
            got,
            vec![
                0x99ec_5f36_cb75_f2b4,
                0xbf6e_1f78_4956_452a,
                0x1a5f_849d_4933_e6e0,
                0x6aa5_94f1_262d_2d2c,
            ]
        );
    }

    #[test]
    fn splitmix_reference_vector() {
        // splitmix64 with seed 1234567 — values cross-checked against the
        // public reference implementation.
        let mut sm = SplitMix64::new(0);
        let a = sm.next_u64();
        let b = sm.next_u64();
        assert_eq!(a, 0xe220_a839_7b1d_cdaf);
        assert_eq!(b, 0x6e78_9e6a_a1b9_65f4);
    }

    #[test]
    fn below_is_in_range_and_hits_all_values() {
        let mut r = Rng::seed_from_u64(9);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = r.below(7);
            assert!(v < 7);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn range_i64_inclusive_bounds() {
        let mut r = Rng::seed_from_u64(10);
        let (mut lo_hit, mut hi_hit) = (false, false);
        for _ in 0..2000 {
            let v = r.range_i64(-3, 3);
            assert!((-3..=3).contains(&v));
            lo_hit |= v == -3;
            hi_hit |= v == 3;
        }
        assert!(lo_hit && hi_hit);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::seed_from_u64(11);
        for _ in 0..1000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_is_near_half() {
        let mut r = Rng::seed_from_u64(12);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| r.f64()).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng::seed_from_u64(13);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle left input sorted");
    }

    #[test]
    fn split_streams_differ() {
        let mut parent = Rng::seed_from_u64(14);
        let mut a = parent.split();
        let mut b = parent.split();
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn zero_state_is_rejected() {
        let mut r = Rng::from_state([0; 4]);
        // Must not get stuck at zero.
        assert_ne!(r.next_u64(), 0);
    }

    #[test]
    fn determinism_across_clones() {
        let mut a = Rng::seed_from_u64(99);
        let mut b = a.clone();
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = Rng::seed_from_u64(15);
        assert!((0..100).all(|_| !r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }
}
