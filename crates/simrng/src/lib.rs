//! Deterministic pseudo-random number generation for the `inlinetune`
//! simulator.
//!
//! Everything in this workspace that involves randomness — synthetic
//! benchmark generation, genetic-algorithm operators, sampling profilers —
//! goes through this crate so that a single `u64` seed reproduces an entire
//! experiment bit-for-bit, independent of the version of any external RNG
//! crate.
//!
//! The generator is xoshiro256\*\* (Blackman & Vigna), seeded through
//! SplitMix64, with `jump()` support for cheap independent parallel streams.
//! A small library of sampling distributions (uniform, normal, log-normal,
//! Zipf, categorical via Walker's alias method, …) sits on top.
//!
//! # Example
//!
//! ```
//! use simrng::{Rng, dist::Zipf};
//!
//! let mut rng = Rng::seed_from_u64(42);
//! let z = Zipf::new(100, 1.1).unwrap();
//! let ranks: Vec<u64> = (0..5).map(|_| z.sample(&mut rng)).collect();
//! // Same seed, same ranks, forever.
//! let mut rng2 = Rng::seed_from_u64(42);
//! let again: Vec<u64> = (0..5).map(|_| z.sample(&mut rng2)).collect();
//! assert_eq!(ranks, again);
//! ```

pub mod dist;
mod xoshiro;

pub use xoshiro::{Rng, SplitMix64};

/// Derives a child seed from a parent seed and a string label.
///
/// Used to give every subsystem (each synthetic benchmark, each GA run, each
/// profiler instance) an independent, *named* random stream so that adding a
/// new consumer of randomness never perturbs existing ones.
///
/// The mix is FNV-1a over the label folded into the parent seed and then
/// finalized with the SplitMix64 output function, which is a bijective
/// avalanche mix.
#[must_use]
pub fn child_seed(parent: u64, label: &str) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET ^ parent;
    for b in label.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    // SplitMix64 finalizer: guarantees avalanche even for short labels.
    let mut z = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Convenience constructor: an [`Rng`] for the named child stream.
#[must_use]
pub fn child_rng(parent: u64, label: &str) -> Rng {
    Rng::seed_from_u64(child_seed(parent, label))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn child_seeds_differ_per_label() {
        let a = child_seed(7, "workload/compress");
        let b = child_seed(7, "workload/jess");
        let c = child_seed(8, "workload/compress");
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn child_seed_is_deterministic() {
        assert_eq!(child_seed(123, "x"), child_seed(123, "x"));
    }

    #[test]
    fn empty_label_still_mixes_parent() {
        assert_ne!(child_seed(1, ""), child_seed(2, ""));
    }
}
