//! # sim — deterministic simulation of the whole tuning cluster
//!
//! Runs the `tuned` daemon, its protocol server, and a fleet of `evald`
//! workers **in one process on a simulated network with a virtual
//! clock**, then turns every kind of distributed-systems weather on
//! them: dropped frames, duplicates, delays and reorders, one-way
//! partitions (half-open connections), full partitions, worker crashes
//! and restarts. Everything is derived from one `u64` seed, so a CI
//! sweep covers hundreds of fault schedules in seconds and any failure
//! replays with `simtest --seed N --trace`.
//!
//! The approach is FoundationDB-style simulation testing, scaled to
//! this repo: the production code under test is the *real* dispatch,
//! server, and worker code — the [`served::Transport`] seam swaps only
//! the sockets and the clock. What the sweep asserts after every
//! scenario:
//!
//! * **No lost jobs.** Every submitted job terminates inside a virtual
//!   deadline.
//! * **Checkpoints stay loadable.** Every checkpoint written under
//!   faults restores through `search::restore`.
//! * **Bit-identical results.** The faulty run's best genome and
//!   fitness bits equal a fault-free in-process tune of the same spec —
//!   faults may cost retries and failovers, never correctness.
//!
//! A note on what "deterministic" means here: *outcomes* are
//! deterministic, not thread schedules. Fault verdicts are pure
//! functions of `(seed, link, connection, frame)`, so a seed always
//! injects the same faults; and because fitness is a pure function of
//! the genome and results merge keyed by genome, the final answer is
//! bit-stable no matter how the OS interleaves the threads in between.
//!
//! Layout:
//! * [`net`] — [`SimNet`]/`SimTransport`: the simulated network and
//!   virtual clock behind the [`served::Transport`] trait.
//! * [`cluster`] — [`Cluster`]: boot a deployment, crash / partition /
//!   heal / advance, check invariants.
//! * [`scale`] — the throughput-scaling suite: a virtual 1–50-worker
//!   fleet of synthetic eval servers proving the batched, pipelined
//!   dispatcher beats serial at 2 workers and holds ≥ 70 % parallel
//!   efficiency at 16, while staying exactly-once and bit-identical
//!   under seeded fault sweeps.
//! * [`online`] — the online-drift sweep: drifting workloads, the
//!   drift detector, and warm retunes running inside the simulated
//!   cluster, asserted bit-identical — per-epoch rows included —
//!   against the in-process reference runner, with bounded regret
//!   after every detection.
//! * [`shard_soak`] — the multi-tenant soak: a thousand virtual clients
//!   over a shared hundred-worker fleet against the sharded control
//!   plane (admission, quotas, DRR fairness, bit-identity), plus the
//!   1/4/16-shard throughput bench behind `BENCH_shard.json`.
//! * [`sweep`] — seed-derived scenarios, the per-seed driver, and sweep
//!   reports (`simtest` is a thin CLI over this). Includes the
//!   persistent-store crash/recovery sweep ([`run_store_sweep`]): kill a
//!   store mid-append under seeded torn-tail schedules and prove no
//!   acknowledged record is lost or corrupted. Also the mixed-problem
//!   sweep ([`run_mixed_sweep`]): one `inline`, one `flags` and one
//!   `dss` job queued on a single daemon per scenario, proving a
//!   heterogeneous backlog loses no job under the same fault weather.

pub mod cluster;
pub mod net;
pub mod online;
pub mod scale;
pub mod shard_soak;
pub mod sweep;

pub use cluster::{Cluster, ClusterConfig, Outcome, DAEMON_ADDR};
pub use net::{FaultPlan, SimNet, TraceEvent, GRACE};
pub use online::{
    run_online_seed, run_online_sweep, OnlineExpected, OnlineScenario, OnlineSeedReport,
    OnlineSweepReport,
};
pub use scale::{
    run_scale, run_scale_suite, run_scale_to, ScaleConfig, ScaleReport, ScaleSuite,
    MEASURE_ATTEMPTS, MIN_EFFICIENCY_AT_16, WORKER_COUNTS,
};
pub use shard_soak::{
    run_shard_bench, run_shard_seed, run_shard_sweep, ShardBenchPoint, ShardBenchReport,
    ShardScale, ShardSeedReport, ShardSweepReport, BENCH_SHARD_COUNTS, CAPPED_TENANT,
    SOAK_DEADLINE, TENANTS,
};
pub use sweep::{
    run_mixed_seed, run_mixed_sweep, run_seed, run_store_seed, run_store_sweep, run_sweep,
    MixedSeedReport, MixedSweepReport, Scenario, SeedReport, StoreScenario, StoreSeedReport,
    StoreSweepReport, SweepReport, Verdict, MIXED_PROBLEMS,
};
