//! perfgate: calibrated performance-regression gates over the tuner's
//! hot paths, plus the online-vs-frozen verdict from the drift study.
//!
//! Hard-coded wall-clock gates rot across machines, so every threshold
//! here is expressed in *kernel medians* — multiples of how long this
//! machine takes to run `obs::calib`'s fixed reference kernel — with a
//! floor in milliseconds so gates never tighten below timer noise.
//! Each gated operation is measured best-of-N (contention only ever
//! adds time), the same discipline the calibration itself uses.
//!
//! Gated paths:
//!
//! * **genome_eval** — a batch of inlining-problem fitness evaluations
//!   (the cost every generation of every tune pays per genome);
//! * **store_put / store_get** — durable appends and lookups against a
//!   scratch fitness store (the warm-start and read-through path);
//! * **dispatch_ledger** — a full claim/resolve cycle over a
//!   generation-sized [`served::dispatch::BatchLedger`] (the
//!   exactly-once bookkeeping under every remote batch).
//!
//! If `results/online.csv` exists (written by `experiments online`),
//! the gate also aggregates it: per drift schedule, the online
//! adaptive runner's mean probe fitness must beat the frozen incumbent
//! on at least two of three schedules.
//!
//! One JSON object lands in `--out` (default `BENCH_online.json`) and
//! on stdout; the exit code is nonzero when any gate trips.
//!
//! ```sh
//! perfgate [--out BENCH_online.json] [--csv results/online.csv] [--reps 5]
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;

use served::dispatch::BatchLedger;
use sim::Cluster;
use stored::{Record, Store};

/// One calibrated gate: what was measured, what the machine-scaled
/// threshold came out to, and whether the measurement stayed under it.
struct Gate {
    name: &'static str,
    /// Operations per measured repetition (for per-op context).
    ops: usize,
    measured_ms: f64,
    multiplier: f64,
    floor_ms: f64,
    threshold_ms: f64,
    ok: bool,
}

/// Best-of-`reps` wall time of `op`, in milliseconds, after one
/// untimed warm-up pass (first-touch effects belong to the warm-up,
/// not the gate).
fn measure_ms(reps: usize, mut op: impl FnMut()) -> f64 {
    op();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        op();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn gate(
    name: &'static str,
    ops: usize,
    multiplier: f64,
    floor_ms: f64,
    reps: usize,
    op: impl FnMut(),
) -> Gate {
    let baseline = obs::calib::get_calibration();
    let measured_ms = measure_ms(reps, op);
    let threshold_ms = baseline.threshold_ms(multiplier, floor_ms);
    Gate {
        name,
        ops,
        measured_ms,
        multiplier,
        floor_ms,
        threshold_ms,
        ok: measured_ms <= threshold_ms,
    }
}

/// Mean probe fitness per `(schedule, mode)` cell of the drift study's
/// CSV, plus the schedule set — tolerant of extra columns so the study
/// can grow fields without breaking the gate.
fn aggregate_csv(path: &str) -> Result<OnlineVerdict, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let mut lines = text.lines();
    let header: Vec<&str> = lines
        .next()
        .ok_or_else(|| format!("{path} is empty"))?
        .split(',')
        .collect();
    let col = |name: &str| {
        header
            .iter()
            .position(|h| *h == name)
            .ok_or_else(|| format!("{path} has no '{name}' column (header: {header:?})"))
    };
    let (sched_col, mode_col, probe_col) = (col("schedule")?, col("mode")?, col("probe")?);

    let mut sums: BTreeMap<(String, String), (f64, u64)> = BTreeMap::new();
    for (i, line) in lines.enumerate() {
        let fields: Vec<&str> = line.split(',').collect();
        let probe: f64 = fields
            .get(probe_col)
            .and_then(|f| f.parse().ok())
            .ok_or_else(|| format!("{path} row {}: bad probe field", i + 2))?;
        let key = (
            fields.get(sched_col).unwrap_or(&"?").to_string(),
            fields.get(mode_col).unwrap_or(&"?").to_string(),
        );
        let cell = sums.entry(key).or_insert((0.0, 0));
        cell.0 += probe;
        cell.1 += 1;
    }

    let mean = |schedule: &str, mode: &str| -> Option<f64> {
        sums.get(&(schedule.to_string(), mode.to_string()))
            .map(|(sum, n)| sum / *n as f64)
    };
    let schedules: Vec<String> = {
        let mut s: Vec<String> = sums.keys().map(|(sched, _)| sched.clone()).collect();
        s.dedup();
        s
    };
    let mut rows = Vec::new();
    let mut beats = 0usize;
    for sched in &schedules {
        let online = mean(sched, "online")
            .ok_or_else(|| format!("{path}: schedule {sched} has no online rows"))?;
        let frozen = mean(sched, "frozen")
            .ok_or_else(|| format!("{path}: schedule {sched} has no frozen rows"))?;
        let oracle = mean(sched, "oracle");
        if online < frozen {
            beats += 1;
        }
        rows.push((sched.clone(), online, frozen, oracle));
    }
    // The acceptance bar: adaptive re-tuning must beat the frozen
    // incumbent on at least two of three drift schedules.
    let need = schedules.len().div_ceil(3) * 2;
    Ok(OnlineVerdict {
        rows,
        beats,
        need,
        ok: beats >= need,
    })
}

struct OnlineVerdict {
    /// `(schedule, mean online probe, mean frozen probe, mean oracle)`.
    rows: Vec<(String, f64, f64, Option<f64>)>,
    beats: usize,
    need: usize,
    ok: bool,
}

fn main() {
    let mut out_path = "BENCH_online.json".to_string();
    let mut csv_path = "results/online.csv".to_string();
    let mut reps = 5usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut grab = || args.next().unwrap_or_default();
        match arg.as_str() {
            "--out" => out_path = grab(),
            "--csv" => csv_path = grab(),
            "--reps" => reps = grab().parse().unwrap_or(5).max(1),
            other => {
                eprintln!("perfgate: unknown argument '{other}'");
                eprintln!("usage: perfgate [--out PATH] [--csv PATH] [--reps N]");
                std::process::exit(2);
            }
        }
    }

    let baseline = obs::calib::get_calibration();
    eprintln!(
        "perfgate: kernel median {:.3} ms over {} iterations (cv {:.1}%)",
        baseline.median_ms, baseline.iteration_count, baseline.cv_percent
    );

    // -- genome evaluation: the cost every generation pays per genome.
    let spec = Cluster::spec(1);
    let problem = spec.build_problem().expect("sim spec builds a problem");
    let mut rng = simrng::child_rng(1, "perfgate/genomes");
    let genomes: Vec<Vec<i64>> = (0..16).map(|_| problem.space().random(&mut rng)).collect();
    let eval_gate = gate("genome_eval", genomes.len(), 40.0, 2.0, reps, || {
        for g in &genomes {
            std::hint::black_box(problem.fitness(g));
        }
    });

    // -- store put/get: the durable warm-start and read-through path.
    let scratch = std::env::temp_dir().join(format!("perfgate-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    let fp = problem.fingerprint().clone();
    let records: Vec<Record> = (0..256)
        .map(|i| Record {
            fingerprint: fp.clone(),
            genome: vec![i, i * 7 % 97, i % 13, 1, 135],
            fitness: 1.0 - i as f64 / 1024.0,
        })
        .collect();
    let mut put_round = 0u64;
    let put_gate = gate("store_put", records.len(), 3.0, 4.0, reps, || {
        // A fresh directory per repetition: appends must pay the
        // durable (flush-before-ack) path every time, not ride a
        // warmed log.
        let dir = scratch.join(format!("put-{put_round}"));
        put_round += 1;
        let store = Store::open(&dir).expect("scratch store opens");
        for rec in &records {
            store.append(rec).expect("gated append");
        }
    });
    let store = Store::open(scratch.join("get")).expect("scratch store opens");
    for rec in &records {
        store.append(rec).expect("seed append");
    }
    let get_gate = gate("store_get", records.len(), 1.0, 1.0, reps, || {
        for rec in &records {
            let hit = store.get(rec.fingerprint.cell_digest, &rec.genome);
            assert_eq!(
                hit.map(f64::to_bits),
                Some(rec.fitness.to_bits()),
                "store lookup lost an acked record mid-gate"
            );
        }
    });
    drop(store);
    let _ = std::fs::remove_dir_all(&scratch);

    // -- dispatch ledger: a generation-sized claim/resolve cycle.
    let ledger_gate = gate("dispatch_ledger", 4096, 1.0, 1.0, reps, || {
        let ledger = BatchLedger::new(4096, 0);
        loop {
            let claimed = ledger.claim(64);
            if claimed.is_empty() {
                break;
            }
            for idx in claimed {
                assert!(ledger.resolve(idx, 1.0), "double-commit in gate loop");
            }
        }
        assert_eq!(ledger.remaining(), 0);
    });

    let gates = [eval_gate, put_gate, get_gate, ledger_gate];
    let gates_ok = gates.iter().all(|g| g.ok);
    for g in &gates {
        eprintln!(
            "perfgate: {:16} {:8.3} ms / {:4} ops (threshold {:.3} ms = max({} x kernel, {} ms)) {}",
            g.name,
            g.measured_ms,
            g.ops,
            g.threshold_ms,
            g.multiplier,
            g.floor_ms,
            if g.ok { "ok" } else { "FAIL" }
        );
    }

    // -- the drift study's verdict, when its CSV is present.
    let online = if std::path::Path::new(&csv_path).exists() {
        match aggregate_csv(&csv_path) {
            Ok(v) => Some(v),
            Err(e) => {
                eprintln!("perfgate: {e}");
                std::process::exit(2);
            }
        }
    } else {
        eprintln!("perfgate: no {csv_path} — skipping the online-vs-frozen verdict");
        None
    };
    if let Some(v) = &online {
        for (sched, on, frozen, _) in &v.rows {
            eprintln!(
                "perfgate: schedule {sched:6} online {on:.6} vs frozen {frozen:.6} ({})",
                if on < frozen {
                    "online wins"
                } else {
                    "frozen wins"
                }
            );
        }
        eprintln!(
            "perfgate: online beats frozen on {}/{} schedules (need {}) {}",
            v.beats,
            v.rows.len(),
            v.need,
            if v.ok { "ok" } else { "FAIL" }
        );
    }
    let online_ok = online.as_ref().is_none_or(|v| v.ok);

    let mut json = String::new();
    let _ = write!(
        json,
        "{{\"bench\":\"calibrated perf gates\",\
         \"calibration\":{{\"median_ms\":{:.6},\"cv_percent\":{:.3},\"iterations\":{}}},\
         \"gates\":[",
        baseline.median_ms, baseline.cv_percent, baseline.iteration_count
    );
    for (i, g) in gates.iter().enumerate() {
        let _ = write!(
            json,
            "{}{{\"name\":\"{}\",\"ops\":{},\"measured_ms\":{:.6},\
             \"multiplier\":{},\"floor_ms\":{},\"threshold_ms\":{:.6},\"ok\":{}}}",
            if i == 0 { "" } else { "," },
            g.name,
            g.ops,
            g.measured_ms,
            g.multiplier,
            g.floor_ms,
            g.threshold_ms,
            g.ok
        );
    }
    let _ = write!(json, "],\"gates_ok\":{gates_ok},");
    match &online {
        Some(v) => {
            let _ = write!(json, "\"online\":{{\"csv\":\"{csv_path}\",\"schedules\":[");
            for (i, (sched, on, frozen, oracle)) in v.rows.iter().enumerate() {
                let _ = write!(
                    json,
                    "{}{{\"schedule\":\"{}\",\"online_mean\":{:.6},\"frozen_mean\":{:.6}",
                    if i == 0 { "" } else { "," },
                    sched,
                    on,
                    frozen
                );
                if let Some(o) = oracle {
                    let _ = write!(json, ",\"oracle_mean\":{o:.6}");
                }
                let _ = write!(json, "}}");
            }
            let _ = write!(
                json,
                "],\"beats_frozen\":{},\"needed\":{},\"online_ok\":{}}},",
                v.beats, v.need, v.ok
            );
        }
        None => {
            let _ = write!(json, "\"online\":null,");
        }
    }
    let _ = write!(json, "\"all_ok\":{}}}", gates_ok && online_ok);

    println!("{json}");
    if let Err(e) = std::fs::write(&out_path, format!("{json}\n")) {
        eprintln!("perfgate: write {out_path}: {e}");
        std::process::exit(2);
    }
    if !(gates_ok && online_ok) {
        std::process::exit(1);
    }
}
