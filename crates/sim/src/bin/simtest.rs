//! `simtest` — the seed-sweep runner.
//!
//! ```text
//! simtest --seeds 200 --base-seed 1 --out BENCH_sim.json   # CI sweep
//! simtest --seed 42 --trace                                # replay one seed
//! simtest --store-seed 7                                   # replay one store
//!     crash/recovery scenario
//! simtest --mixed-seed 4                                   # replay one
//!     mixed-problem scenario
//! simtest --seeds 20 --broken                              # self-test: the
//!     redispatch-disabled daemon must be caught (exit 0 iff >=1 seed fails)
//! simtest --scale                                          # throughput-scaling
//!     suite: virtual 1/2/4/8/16/50-worker fleet, prints the matrix and
//!     "scale_ok: true|false" (exit 0 iff ok)
//! simtest --scale --scale-workers 2,16                     # CI fast profile
//! simtest --shard-seeds 50                                 # multi-tenant soak:
//!     1000 virtual clients / 100 workers / 8 shards per seed (scale down
//!     with --shard-clients/--shard-workers/--shard-shards/--shard-runners)
//! simtest --shard-seed 3 --shard-clients 100               # replay one soak seed
//! simtest --shard-bench --out BENCH_shard.json             # 1/4/16-shard
//!     throughput bench (exit 0 iff sharded >= single-queue and no job lost)
//! ```
//!
//! Sweep mode also runs `--mixed-seeds N` (default 8) mixed-problem
//! scenarios — an `inline`, a `flags` and a `dss` job queued together
//! on one daemon per seed, proving a heterogeneous backlog loses no
//! job under faults — and `--store-seeds N` (default 60)
//! persistent-store crash/recovery scenarios: each kills a store
//! mid-append (seeded torn wal tails, compactions straddling the kill)
//! and proves every acknowledged record survives bit-exactly.
//!
//! Exit status: 0 when the run's expectation holds (all seeds green, or
//! — under `--broken` — at least one seed red), 1 otherwise. Every
//! failing seed prints its fault trace and a one-command replay line.

use std::time::Instant;

use served::json::Json;
use sim::sweep::{run_mixed_seed, run_seed, run_store_seed, run_store_sweep, run_sweep, Expected};

struct Args {
    seeds: u64,
    base_seed: u64,
    store_seeds: u64,
    mixed_seeds: u64,
    one_seed: Option<u64>,
    one_store_seed: Option<u64>,
    one_mixed_seed: Option<u64>,
    out: Option<String>,
    trace: bool,
    broken: bool,
    scale: bool,
    scale_workers: Vec<usize>,
    shard_seeds: u64,
    one_shard_seed: Option<u64>,
    shard_scale: sim::ShardScale,
    shard_bench: bool,
    shard_bench_jobs: usize,
    online_seeds: u64,
    one_online_seed: Option<u64>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seeds: 200,
        base_seed: 1,
        store_seeds: 60,
        mixed_seeds: 8,
        one_seed: None,
        one_store_seed: None,
        one_mixed_seed: None,
        out: None,
        trace: false,
        broken: false,
        scale: false,
        scale_workers: sim::WORKER_COUNTS.to_vec(),
        shard_seeds: 0,
        one_shard_seed: None,
        shard_scale: sim::ShardScale::default(),
        shard_bench: false,
        shard_bench_jobs: 16,
        online_seeds: 0,
        one_online_seed: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut grab = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match a.as_str() {
            "--seeds" => args.seeds = num(&grab("--seeds")?)?,
            "--base-seed" => args.base_seed = num(&grab("--base-seed")?)?,
            "--store-seeds" => args.store_seeds = num(&grab("--store-seeds")?)?,
            "--mixed-seeds" => args.mixed_seeds = num(&grab("--mixed-seeds")?)?,
            "--seed" => args.one_seed = Some(num(&grab("--seed")?)?),
            "--store-seed" => args.one_store_seed = Some(num(&grab("--store-seed")?)?),
            "--mixed-seed" => args.one_mixed_seed = Some(num(&grab("--mixed-seed")?)?),
            "--out" => args.out = Some(grab("--out")?),
            "--trace" => args.trace = true,
            "--broken" => args.broken = true,
            "--scale" => args.scale = true,
            "--shard-seeds" => args.shard_seeds = num(&grab("--shard-seeds")?)?,
            "--online-seeds" => args.online_seeds = num(&grab("--online-seeds")?)?,
            "--online-seed" => args.one_online_seed = Some(num(&grab("--online-seed")?)?),
            "--shard-seed" => args.one_shard_seed = Some(num(&grab("--shard-seed")?)?),
            "--shard-clients" => {
                args.shard_scale.clients = num(&grab("--shard-clients")?)? as usize;
            }
            "--shard-workers" => {
                args.shard_scale.workers = num(&grab("--shard-workers")?)? as usize;
            }
            "--shard-shards" => {
                args.shard_scale.shards = num(&grab("--shard-shards")?)? as usize;
            }
            "--shard-runners" => {
                args.shard_scale.runners = num(&grab("--shard-runners")?)? as usize;
            }
            "--shard-bench" => args.shard_bench = true,
            "--shard-bench-jobs" => {
                args.shard_bench_jobs = num(&grab("--shard-bench-jobs")?)? as usize;
            }
            "--scale-workers" => {
                args.scale_workers = grab("--scale-workers")?
                    .split(',')
                    .map(|w| num(w).map(|n| n as usize))
                    .collect::<Result<_, _>>()?;
            }
            "--help" | "-h" => {
                println!(
                    "usage: simtest [--seeds N] [--base-seed S] [--store-seeds N] \
                     [--mixed-seeds N] [--shard-seeds N] [--out FILE] [--seed X [--trace]] \
                     [--store-seed X] [--mixed-seed X] [--shard-seed X] [--broken] \
                     [--scale [--scale-workers 1,2,...]] \
                     [--shard-clients N] [--shard-workers N] [--shard-shards N] \
                     [--shard-runners N] [--shard-bench [--shard-bench-jobs N]] \
                     [--online-seeds N] [--online-seed X]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(args)
}

fn num(s: &str) -> Result<u64, String> {
    s.parse().map_err(|_| format!("'{s}' is not a number"))
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("simtest: {e}");
            std::process::exit(2);
        }
    };
    let redispatch = !args.broken;

    // Throughput-scaling suite mode.
    if args.scale {
        let started = Instant::now();
        let suite = sim::run_scale_suite(args.base_seed, &args.scale_workers);
        let serial = sim::scale::serial_evals_per_sec(sim::scale::EVAL_COST);
        println!(
            "scaling sweep (seed {}, serial baseline {serial:.2} evals/vsec):",
            args.base_seed
        );
        for r in &suite.sweep {
            println!(
                "  {:>3} workers: {:>7.2} evals/vsec  efficiency {:.3}  \
                 ({} evals, {} batches, {} fallback, bit_identical {}, lossless {})",
                r.workers,
                r.evals_per_sec,
                r.efficiency,
                r.evaluations,
                r.batches,
                r.fallback_evals,
                r.bit_identical,
                r.lossless,
            );
        }
        for (label, r) in &suite.faulted {
            println!(
                "  fault {label:>13} ({} workers): {:>7.2} evals/vsec  \
                 ({} remote, {} fallback, bit_identical {}, lossless {})",
                r.workers,
                r.evals_per_sec,
                r.remote_evals,
                r.fallback_evals,
                r.bit_identical,
                r.lossless,
            );
        }
        let ok = suite.ok();
        println!(
            "scale_ok: {ok} ({:.2}s wall)",
            started.elapsed().as_secs_f64()
        );
        if let Some(path) = &args.out {
            let json = scale_json(&suite, args.base_seed, started.elapsed().as_secs_f64());
            if let Err(e) = std::fs::write(path, json.to_text() + "\n") {
                eprintln!("simtest: cannot write {path}: {e}");
                std::process::exit(2);
            }
            println!("summary written to {path}");
        }
        std::process::exit(i32::from(!ok));
    }

    // Shard-bench mode: 1/4/16 shards, 16 concurrent jobs, the
    // `sharded >= single-queue` gate behind BENCH_shard.json.
    if args.shard_bench {
        let started = Instant::now();
        let report = sim::run_shard_bench(
            args.base_seed,
            args.shard_bench_jobs,
            args.shard_scale.workers.min(16),
            &sim::BENCH_SHARD_COUNTS,
        );
        println!(
            "shard bench (seed {}, {} concurrent jobs):",
            report.seed, report.jobs
        );
        for p in &report.points {
            println!(
                "  {:>2} shards: {:>7.2} jobs/vsec  p95 sched delay {:>8} us  \
                 ({} virtual ms, all_done {})",
                p.shards, p.jobs_per_vsec, p.sched_delay_p95_micros, p.virtual_ms, p.all_done,
            );
        }
        let ok = report.is_ok();
        println!(
            "shard_bench_ok: {ok} ({:.2}s wall)",
            started.elapsed().as_secs_f64()
        );
        if let Some(path) = &args.out {
            let json = shard_bench_json(&report, started.elapsed().as_secs_f64());
            if let Err(e) = std::fs::write(path, json.to_text() + "\n") {
                eprintln!("simtest: cannot write {path}: {e}");
                std::process::exit(2);
            }
            println!("summary written to {path}");
        }
        std::process::exit(i32::from(!ok));
    }

    // Single shard-soak replay mode.
    if let Some(seed) = args.one_shard_seed {
        let started = Instant::now();
        let report = sim::run_shard_seed(seed, &args.shard_scale, &mut Expected::new());
        print_shard_seed(&report, started.elapsed().as_secs_f64());
        for f in &report.failures {
            println!("  {f}");
        }
        std::process::exit(i32::from(!report.is_ok()));
    }

    // Single online-scenario replay mode.
    if let Some(seed) = args.one_online_seed {
        let started = Instant::now();
        let report = sim::run_online_seed(seed, &mut sim::OnlineExpected::new());
        println!(
            "online seed {seed}: {} ({:?} drift, {} retunes, {} virtual ms, {:.2}s wall, \
             faults drop/dup/delay/blackhole = {}/{}/{}/{})",
            report.verdict.tag(),
            report.kind,
            report.retunes,
            report.virtual_ms,
            started.elapsed().as_secs_f64(),
            report.fault_counts.0,
            report.fault_counts.1,
            report.fault_counts.2,
            report.fault_counts.3,
        );
        if args.trace || !report.verdict.is_ok() {
            for line in &report.trace {
                println!("  {line}");
            }
        }
        std::process::exit(i32::from(!report.verdict.is_ok()));
    }

    // Single store-scenario replay mode.
    if let Some(seed) = args.one_store_seed {
        let report = run_store_seed(seed);
        println!(
            "store seed {seed}: {} ({} records, {} torn bytes)",
            if report.is_ok() { "ok" } else { "FAILED" },
            report.records,
            report.torn_bytes,
        );
        for f in &report.failures {
            println!("  {f}");
        }
        std::process::exit(i32::from(!report.is_ok()));
    }

    // Single mixed-problem scenario replay mode.
    if let Some(seed) = args.one_mixed_seed {
        let report = run_mixed_seed(seed, &mut Expected::new());
        println!(
            "mixed seed {seed}: {} ({} virtual ms, ga seed {})",
            if report.is_ok() { "ok" } else { "FAILED" },
            report.virtual_ms,
            report.ga_seed,
        );
        for (problem, v) in &report.verdicts {
            println!("  {problem}: {}", v.tag());
        }
        if args.trace || !report.is_ok() {
            for line in &report.trace {
                println!("  {line}");
            }
        }
        std::process::exit(i32::from(!report.is_ok()));
    }

    // Single-seed replay mode.
    if let Some(seed) = args.one_seed {
        let started = Instant::now();
        let report = run_seed(seed, &mut Expected::new(), redispatch);
        println!(
            "seed {seed}: {} ({} virtual ms, {:.2}s wall, faults drop/dup/delay/blackhole = {}/{}/{}/{})",
            report.verdict.tag(),
            report.virtual_ms,
            started.elapsed().as_secs_f64(),
            report.fault_counts.0,
            report.fault_counts.1,
            report.fault_counts.2,
            report.fault_counts.3,
        );
        if args.trace || !report.verdict.is_ok() {
            for line in &report.trace {
                println!("  {line}");
            }
        }
        std::process::exit(i32::from(!report.verdict.is_ok()));
    }

    // Sweep mode.
    let started = Instant::now();
    let report = run_sweep(args.base_seed, args.seeds, redispatch);
    let wall = started.elapsed();
    println!(
        "swept {} seeds ({}..{}): {} passed, {} failed in {:.2}s wall / {:.1}s virtual",
        report.seeds,
        report.base_seed,
        report.base_seed + report.seeds,
        report.passed,
        report.failures.len(),
        wall.as_secs_f64(),
        report.virtual_ms as f64 / 1000.0,
    );
    println!(
        "faults injected: {} dropped, {} duplicated, {} delayed, {} blackholed",
        report.fault_counts.0, report.fault_counts.1, report.fault_counts.2, report.fault_counts.3,
    );
    println!(
        "worst scenario: seed {} at {} virtual ms",
        report.worst_seed, report.worst_virtual_ms,
    );
    for f in &report.failures {
        println!("\nseed {} FAILED: {:?}", f.seed, f.verdict);
        for line in &f.trace {
            println!("  {line}");
        }
        println!("  replay: scripts/replay.sh {}", f.seed);
    }

    // The mixed-problem sweep (skipped under --broken: that mode
    // self-tests the redispatch invariant only).
    let mixed_report = if args.broken || args.mixed_seeds == 0 {
        None
    } else {
        let started = Instant::now();
        let r = sim::run_mixed_sweep(args.base_seed, args.mixed_seeds);
        println!(
            "mixed sweep: {} seeds x {} problems, {} passed, {} failed in {:.2}s \
             ({} jobs done, {:.1}s virtual)",
            r.seeds,
            sim::MIXED_PROBLEMS.len(),
            r.passed,
            r.failures.len(),
            started.elapsed().as_secs_f64(),
            r.jobs_done,
            r.virtual_ms as f64 / 1000.0,
        );
        for f in &r.failures {
            println!("\nmixed seed {} FAILED:", f.seed);
            for (problem, v) in &f.verdicts {
                println!("  {problem}: {v:?}");
            }
            for line in &f.trace {
                println!("  {line}");
            }
            println!("  replay: simtest --mixed-seed {}", f.seed);
        }
        Some(r)
    };

    // The store crash/recovery sweep (skipped under --broken: that mode
    // self-tests the redispatch invariant only).
    let store_report = if args.broken || args.store_seeds == 0 {
        None
    } else {
        let started = Instant::now();
        let r = run_store_sweep(args.base_seed, args.store_seeds);
        println!(
            "store sweep: {} seeds, {} passed, {} failed in {:.2}s \
             ({} records, {} scenarios with torn wal tails)",
            r.seeds,
            r.passed,
            r.failures.len(),
            started.elapsed().as_secs_f64(),
            r.records,
            r.torn_scenarios,
        );
        for f in &r.failures {
            println!("\nstore seed {} FAILED:", f.seed);
            for line in &f.failures {
                println!("  {line}");
            }
            println!("  replay: simtest --store-seed {}", f.seed);
        }
        Some(r)
    };

    // The multi-tenant shard soak sweep (opt-in: `--shard-seeds N`;
    // CI's soak stage runs it at the headline 1000-client scale).
    let shard_report = if args.broken || args.shard_seeds == 0 {
        None
    } else {
        let started = Instant::now();
        let r = sim::run_shard_sweep(args.base_seed, args.shard_seeds, &args.shard_scale);
        println!(
            "shard soak: {} seeds x {} clients / {} workers / {} shards, {} passed, {} failed \
             in {:.2}s ({} jobs done, {} queue_full rejects ridden, {} quota rejects, \
             {:.1}s virtual)",
            r.seeds,
            args.shard_scale.clients,
            args.shard_scale.workers,
            args.shard_scale.shards,
            r.passed,
            r.failures.len(),
            started.elapsed().as_secs_f64(),
            r.jobs_done,
            r.queue_full_rejects,
            r.quota_rejects,
            r.virtual_ms as f64 / 1000.0,
        );
        for f in &r.failures {
            println!("\nshard seed {} FAILED:", f.seed);
            for line in &f.failures {
                println!("  {line}");
            }
            println!("  replay: simtest --shard-seed {}", f.seed);
        }
        Some(r)
    };

    // The online-drift sweep (opt-in: `--online-seeds N`; CI runs it at
    // 50 seeds).
    let online_report = if args.broken || args.online_seeds == 0 {
        None
    } else {
        let started = Instant::now();
        let r = sim::run_online_sweep(args.base_seed, args.online_seeds);
        println!(
            "online sweep: {} seeds, {} passed, {} failed in {:.2}s \
             ({} retunes committed, {:.1}s virtual)",
            r.seeds,
            r.passed,
            r.failures.len(),
            started.elapsed().as_secs_f64(),
            r.retunes,
            r.virtual_ms as f64 / 1000.0,
        );
        for f in &r.failures {
            println!(
                "\nonline seed {} FAILED ({:?} drift): {:?}",
                f.seed, f.kind, f.verdict
            );
            for line in &f.trace {
                println!("  {line}");
            }
            println!("  replay: simtest --online-seed {}", f.seed);
        }
        Some(r)
    };

    if let Some(path) = &args.out {
        let json = report_json(
            &report,
            mixed_report.as_ref(),
            store_report.as_ref(),
            shard_report.as_ref(),
            online_report.as_ref(),
            wall.as_secs_f64(),
            args.broken,
        );
        if let Err(e) = std::fs::write(path, json.to_text() + "\n") {
            eprintln!("simtest: cannot write {path}: {e}");
            std::process::exit(2);
        }
        println!("summary written to {path}");
    }

    let caught = !report.failures.is_empty();
    let store_ok = store_report.as_ref().is_none_or(|r| r.failures.is_empty());
    let mixed_ok = mixed_report.as_ref().is_none_or(|r| r.failures.is_empty());
    let shard_ok = shard_report.as_ref().is_none_or(|r| r.failures.is_empty());
    let online_ok = online_report.as_ref().is_none_or(|r| r.failures.is_empty());
    let ok = if args.broken {
        // Self-test: a daemon that drops re-dispatched work MUST be
        // caught by at least one seed, or the sweep has no teeth.
        if caught {
            println!("broken-build self-test: lost-work bug caught, as it must be");
        } else {
            println!("broken-build self-test FAILED: no seed caught the lost-work bug");
        }
        caught
    } else {
        !caught && store_ok && mixed_ok && shard_ok && online_ok
    };
    std::process::exit(i32::from(!ok));
}

fn scale_report_json(r: &sim::ScaleReport) -> Json {
    Json::obj(vec![
        ("workers", Json::Int(r.workers as i64)),
        ("evaluations", Json::Int(r.evaluations as i64)),
        ("elapsed_virtual_us", Json::Int(r.elapsed_micros as i64)),
        (
            "evals_per_vsec",
            served::checkpoint::f64_to_json(r.evals_per_sec),
        ),
        ("efficiency", served::checkpoint::f64_to_json(r.efficiency)),
        ("remote_evals", Json::Int(r.remote_evals as i64)),
        ("fallback_evals", Json::Int(r.fallback_evals as i64)),
        ("batches", Json::Int(r.batches as i64)),
        ("bit_identical", Json::Bool(r.bit_identical)),
        ("lossless", Json::Bool(r.lossless)),
    ])
}

fn scale_json(suite: &sim::ScaleSuite, seed: u64, wall_secs: f64) -> Json {
    Json::obj(vec![
        ("bench", Json::Str("sim_scale".into())),
        ("seed", Json::Int(seed as i64)),
        (
            "serial_evals_per_vsec",
            served::checkpoint::f64_to_json(sim::scale::serial_evals_per_sec(
                sim::scale::EVAL_COST,
            )),
        ),
        (
            "sweep",
            Json::Arr(suite.sweep.iter().map(scale_report_json).collect()),
        ),
        (
            "faulted",
            Json::Arr(
                suite
                    .faulted
                    .iter()
                    .map(|(label, r)| {
                        let Json::Obj(mut fields) = scale_report_json(r) else {
                            unreachable!("scale_report_json returns an object");
                        };
                        fields.insert(0, ("fault".into(), Json::Str(label.clone())));
                        Json::Obj(fields)
                    })
                    .collect(),
            ),
        ),
        ("scale_ok", Json::Bool(suite.ok())),
        ("wall_secs", served::checkpoint::f64_to_json(wall_secs)),
    ])
}

fn print_shard_seed(r: &sim::ShardSeedReport, wall_secs: f64) {
    println!(
        "shard seed {}: {} ({} clients: {} admitted, {} done, {} queue_full rejects ridden, \
         {} quota rejects; p95 sched delay {} us; {} virtual ms, {wall_secs:.2}s wall)",
        r.seed,
        if r.is_ok() { "ok" } else { "FAILED" },
        r.clients,
        r.admitted,
        r.done,
        r.queue_full_rejects,
        r.quota_rejects,
        r.sched_delay_p95_micros,
        r.virtual_ms,
    );
}

fn shard_bench_json(report: &sim::ShardBenchReport, wall_secs: f64) -> Json {
    Json::obj(vec![
        ("bench", Json::Str("shard".into())),
        ("seed", Json::Int(report.seed as i64)),
        ("jobs", Json::Int(report.jobs as i64)),
        (
            "points",
            Json::Arr(
                report
                    .points
                    .iter()
                    .map(|p| {
                        Json::obj(vec![
                            ("shards", Json::Int(p.shards as i64)),
                            ("virtual_ms", Json::Int(p.virtual_ms as i64)),
                            (
                                "jobs_per_vsec",
                                served::checkpoint::f64_to_json(p.jobs_per_vsec),
                            ),
                            (
                                "sched_delay_p95_micros",
                                Json::Int(p.sched_delay_p95_micros as i64),
                            ),
                            ("all_done", Json::Bool(p.all_done)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "sharded_beats_single",
            Json::Bool(report.sharded_beats_single()),
        ),
        ("shard_bench_ok", Json::Bool(report.is_ok())),
        ("wall_secs", served::checkpoint::f64_to_json(wall_secs)),
    ])
}

fn report_json(
    report: &sim::SweepReport,
    mixed: Option<&sim::MixedSweepReport>,
    store: Option<&sim::StoreSweepReport>,
    shard: Option<&sim::ShardSweepReport>,
    online: Option<&sim::OnlineSweepReport>,
    wall_secs: f64,
    broken: bool,
) -> Json {
    let mut fields = vec![
        ("bench", Json::Str("sim_sweep".into())),
        ("base_seed", Json::Int(report.base_seed as i64)),
        ("seeds", Json::Int(report.seeds as i64)),
        ("passed", Json::Int(report.passed as i64)),
        ("failed", Json::Int(report.failures.len() as i64)),
        ("broken_mode", Json::Bool(broken)),
        ("wall_secs", served::checkpoint::f64_to_json(wall_secs)),
        ("virtual_ms", Json::Int(report.virtual_ms as i64)),
        (
            "worst_virtual_ms",
            Json::Int(report.worst_virtual_ms as i64),
        ),
        ("worst_seed", Json::Int(report.worst_seed as i64)),
        (
            "faults",
            Json::obj(vec![
                ("dropped", Json::Int(report.fault_counts.0 as i64)),
                ("duplicated", Json::Int(report.fault_counts.1 as i64)),
                ("delayed", Json::Int(report.fault_counts.2 as i64)),
                ("blackholed", Json::Int(report.fault_counts.3 as i64)),
            ]),
        ),
        (
            "failing_seeds",
            Json::Arr(
                report
                    .failures
                    .iter()
                    .map(|f| Json::Int(f.seed as i64))
                    .collect(),
            ),
        ),
    ];
    if let Some(m) = mixed {
        fields.extend([
            ("mixed_seeds", Json::Int(m.seeds as i64)),
            ("mixed_passed", Json::Int(m.passed as i64)),
            ("mixed_failed", Json::Int(m.failures.len() as i64)),
            ("mixed_jobs_done", Json::Int(m.jobs_done as i64)),
            (
                "mixed_failing_seeds",
                Json::Arr(
                    m.failures
                        .iter()
                        .map(|f| Json::Int(f.seed as i64))
                        .collect(),
                ),
            ),
        ]);
    }
    if let Some(s) = shard {
        fields.extend([
            ("shard_seeds", Json::Int(s.seeds as i64)),
            ("shard_passed", Json::Int(s.passed as i64)),
            ("shard_failed", Json::Int(s.failures.len() as i64)),
            ("shard_jobs_done", Json::Int(s.jobs_done as i64)),
            (
                "shard_queue_full_rejects",
                Json::Int(s.queue_full_rejects as i64),
            ),
            ("shard_quota_rejects", Json::Int(s.quota_rejects as i64)),
            (
                "shard_failing_seeds",
                Json::Arr(
                    s.failures
                        .iter()
                        .map(|f| Json::Int(f.seed as i64))
                        .collect(),
                ),
            ),
        ]);
    }
    if let Some(o) = online {
        fields.extend([
            ("online_seeds", Json::Int(o.seeds as i64)),
            ("online_passed", Json::Int(o.passed as i64)),
            ("online_failed", Json::Int(o.failures.len() as i64)),
            ("online_retunes", Json::Int(o.retunes as i64)),
            (
                "online_failing_seeds",
                Json::Arr(
                    o.failures
                        .iter()
                        .map(|f| Json::Int(f.seed as i64))
                        .collect(),
                ),
            ),
        ]);
    }
    if let Some(s) = store {
        fields.extend([
            ("store_seeds", Json::Int(s.seeds as i64)),
            ("store_passed", Json::Int(s.passed as i64)),
            ("store_failed", Json::Int(s.failures.len() as i64)),
            ("store_records", Json::Int(s.records as i64)),
            ("store_torn_scenarios", Json::Int(s.torn_scenarios as i64)),
            (
                "store_failing_seeds",
                Json::Arr(
                    s.failures
                        .iter()
                        .map(|f| Json::Int(f.seed as i64))
                        .collect(),
                ),
            ),
        ]);
    }
    Json::obj(fields)
}
