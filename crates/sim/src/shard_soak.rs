//! The multi-tenant shard soak: thousands of virtual clients, a shared
//! worker fleet, and the full crash/partition/restart weather — against
//! the sharded control plane's four invariants:
//!
//! 1. **No lost jobs.** Every *admitted* job reaches `done` inside the
//!    virtual deadline. Admission rejects are legal (that is what the
//!    admission controller is for) but must be structured: a retryable
//!    `queue_full` that eventually admits, or a terminal `quota`.
//! 2. **Quotas respected.** The capped tenant's charged evaluations
//!    never exceed its budget, every reservation is settled by the end,
//!    and the accountant's admit/reject books match the client's.
//! 3. **No tenant starvation.** Every tenant with admitted work drains
//!    it completely — the deficit-round-robin scheduler may not park a
//!    runnable tenant behind a noisy one.
//! 4. **Bit-identical results.** Each job's genome and fitness bits
//!    equal a fault-free single-shard in-process run of the same spec
//!    ([`Cluster::expected`]) — sharding and faults may change timing,
//!    never answers.
//!
//! The headline scale (1000 clients, 100 workers) is tractable because
//! clients draw their GA seed from a small pool and every simulated
//! deployment runs with the persistent fitness store on: the first job
//! per trajectory pays real evaluations, the rest are store hits. The
//! soak is therefore a *control-plane* stress test — admission, DRR
//! scheduling, quota accounting, shard routing, settle — not a fitness
//! recomputation burner.
//!
//! [`run_shard_bench`] is the companion throughput probe: the same
//! cluster at 1, 4 and 16 shards, 16 concurrent distinct-trajectory
//! jobs, measuring submit-to-done throughput and p95 scheduling delay.
//! One shard means one shard executor — the single-queue baseline this
//! PR replaces — so the gate `sharded ≥ single-queue` is the whole
//! point of the subsystem in one number.

use std::time::Duration;

use served::json::Json;
use served::{Client, JobSpec, JobState};
use simrng::child_rng;

use crate::cluster::{Cluster, ClusterConfig};
use crate::net::FaultPlan;
use crate::sweep::Expected;

/// Virtual-time budget for a whole soak scenario (submission through
/// the last job's terminal state). Generous: the backlog is long but
/// store-hit jobs finish in virtual microseconds.
pub const SOAK_DEADLINE: Duration = Duration::from_secs(1200);

/// GA seeds soak clients draw from (small on purpose: ground truths and
/// store cells are shared across the sweep).
const GA_SEEDS: [u64; 4] = [1, 7, 23, 77];

/// The tenant roster every soak scenario uses. `capped` carries an
/// eval-budget quota sized so that some of its submissions *must* be
/// rejected — a soak that never exercises the quota path proves
/// nothing about it.
pub const TENANTS: [&str; 4] = ["alpha", "beta", "gamma", "capped"];

/// The quota-capped member of [`TENANTS`].
pub const CAPPED_TENANT: &str = "capped";

/// Scale knobs for one soak scenario.
#[derive(Debug, Clone)]
pub struct ShardScale {
    /// Virtual clients; each submits one job (retrying structured
    /// `queue_full` rejects until admitted or terminally rejected).
    pub clients: usize,
    /// `evald` workers in the shared fleet.
    pub workers: usize,
    /// Daemon shards.
    pub shards: usize,
    /// Daemon job-runner threads.
    pub runners: usize,
}

impl Default for ShardScale {
    fn default() -> Self {
        Self {
            clients: 1000,
            workers: 100,
            shards: 8,
            runners: 16,
        }
    }
}

/// One timed fault against a specific worker index.
#[derive(Debug, Clone, Copy)]
enum Fault {
    Crash { at_ms: u64, worker: usize },
    Restart { at_ms: u64, worker: usize },
    Partition { at_ms: u64, worker: usize },
    Heal { at_ms: u64, worker: usize },
}

impl Fault {
    fn at_ms(self) -> u64 {
        match self {
            Fault::Crash { at_ms, .. }
            | Fault::Restart { at_ms, .. }
            | Fault::Partition { at_ms, .. }
            | Fault::Heal { at_ms, .. } => at_ms,
        }
    }

    fn fire(self, cluster: &Cluster) {
        match self {
            Fault::Crash { worker, .. } => cluster.crash_worker(worker),
            Fault::Restart { worker, .. } => {
                let _ = cluster.restart_worker(worker);
            }
            Fault::Partition { worker, .. } => cluster.partition_worker(worker),
            Fault::Heal { worker, .. } => cluster.heal_worker(worker),
        }
    }
}

/// One soak scenario's report. Green iff `failures` is empty.
#[derive(Debug, Clone)]
pub struct ShardSeedReport {
    /// The scenario seed.
    pub seed: u64,
    /// Clients that submitted.
    pub clients: usize,
    /// Jobs the admission controller accepted.
    pub admitted: u64,
    /// Structured retryable `queue_full` rejects clients rode through.
    pub queue_full_rejects: u64,
    /// Structured terminal `quota` rejects (capped tenant only).
    pub quota_rejects: u64,
    /// Admitted jobs that reached `done` with the bit-exact result.
    pub done: u64,
    /// Broken invariants, in the order they were caught.
    pub failures: Vec<String>,
    /// Virtual ms from first submission to the last terminal state.
    pub virtual_ms: u64,
    /// p95 scheduling delay (enqueue → claim), virtual microseconds.
    pub sched_delay_p95_micros: u64,
}

impl ShardSeedReport {
    /// Whether every invariant held.
    #[must_use]
    pub fn is_ok(&self) -> bool {
        self.failures.is_empty()
    }
}

fn soak_broken(seed: u64, clients: usize, detail: String) -> ShardSeedReport {
    ShardSeedReport {
        seed,
        clients,
        admitted: 0,
        queue_full_rejects: 0,
        quota_rejects: 0,
        done: 0,
        failures: vec![detail],
        virtual_ms: 0,
        sched_delay_p95_micros: 0,
    }
}

/// Derives the fault schedule a soak seed denotes: frame-level faults
/// on every daemon↔worker link plus one or two crash/restart pairs and
/// an optional partition/heal pair, each aimed at a seeded worker
/// index.
fn derive_faults(seed: u64, workers: usize) -> (FaultPlan, Vec<Fault>) {
    let mut rng = child_rng(seed, "sim/shard");
    let plan = FaultPlan {
        drop_p: rng.f64() * 0.08,
        dup_p: rng.f64() * 0.03,
        delay_p: rng.f64() * 0.30,
        delay_max_micros: 1_000 + rng.below(15_000),
    };
    let mut faults = Vec::new();
    for _ in 0..=rng.below(2) {
        let worker = rng.below(workers as u64) as usize;
        let crash_at = 40 + rng.below(400);
        faults.push(Fault::Crash {
            at_ms: crash_at,
            worker,
        });
        faults.push(Fault::Restart {
            at_ms: crash_at + 40 + rng.below(300),
            worker,
        });
    }
    if rng.chance(0.6) {
        let worker = rng.below(workers as u64) as usize;
        let cut_at = 20 + rng.below(400);
        faults.push(Fault::Partition {
            at_ms: cut_at,
            worker,
        });
        faults.push(Fault::Heal {
            at_ms: cut_at + 30 + rng.below(250),
            worker,
        });
    }
    faults.sort_by_key(|f| f.at_ms());
    (plan, faults)
}

fn fire_due(cluster: &Cluster, started_ms: u64, pending: &mut Vec<Fault>) {
    let now = cluster.now_ms();
    while pending
        .first()
        .is_some_and(|f| now.saturating_sub(started_ms) >= f.at_ms())
    {
        pending.remove(0).fire(cluster);
    }
}

/// What one submission attempt came back with.
enum Admission {
    Admitted(u64),
    QueueFull,
    Quota,
    Broken(String),
}

fn try_submit(client: &mut Client, spec: &JobSpec) -> Admission {
    let frame = Json::obj(vec![
        ("cmd", Json::Str("submit".into())),
        ("job", spec.to_json()),
    ]);
    let resp = match client.request(&frame) {
        Ok(r) => r,
        Err(e) => return Admission::Broken(format!("submit transport: {e}")),
    };
    if resp.get("ok").and_then(Json::as_bool) == Some(true) {
        return match resp.get("id").and_then(Json::as_u64) {
            Some(id) => Admission::Admitted(id),
            None => Admission::Broken("submit ok frame without an id".into()),
        };
    }
    if resp.get("busy").and_then(Json::as_bool) != Some(true) {
        return Admission::Broken(format!("unstructured reject: {}", resp.to_text()));
    }
    let retryable = resp.get("retryable").and_then(Json::as_bool) == Some(true);
    match resp.get("reason").and_then(Json::as_str) {
        Some("queue_full") if retryable => Admission::QueueFull,
        Some("quota") if !retryable => Admission::Quota,
        other => Admission::Broken(format!(
            "busy frame with reason {other:?} retryable {retryable}"
        )),
    }
}

/// Runs one soak scenario seed and checks every invariant. `expected`
/// caches fault-free ground truths (shared across a sweep — clients
/// draw from the same small GA-seed pool).
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn run_shard_seed(seed: u64, scale: &ShardScale, expected: &mut Expected) -> ShardSeedReport {
    let (plan, faults) = derive_faults(seed, scale.workers);
    let mut rng = child_rng(seed, "sim/shard/clients");

    // Ground truths up front (outside the cluster's virtual clock).
    for ga_seed in GA_SEEDS {
        let spec = Cluster::spec(ga_seed);
        expected
            .entry((spec.problem.clone(), ga_seed))
            .or_insert_with(|| {
                let (g, f) = Cluster::expected(&spec).expect("reference tune of a valid spec");
                (g, f.to_bits())
            });
    }

    // Size the capped tenant's budget so roughly a quarter of its
    // clients can admit by estimate — the rest must see `quota`.
    let per_job = Cluster::spec(1).eval_estimate();
    let capped_clients = scale.clients.div_ceil(TENANTS.len());
    let quota = per_job * (capped_clients as u64 / 4).max(1);

    let cluster = match Cluster::boot(&ClusterConfig {
        seed,
        workers: scale.workers,
        plan,
        redispatch: true,
        shards: scale.shards,
        runners: scale.runners,
        // Deliberately smaller than the backlog: the soak must ride
        // through structured queue_full rejects, not sidestep them.
        queue_capacity: (scale.clients / (16 * scale.shards.max(1))).max(4),
        tenant_quotas: vec![(CAPPED_TENANT.to_string(), quota)],
        store: true,
    }) {
        Ok(c) => c,
        Err(e) => return soak_broken(seed, scale.clients, format!("boot: {e}")),
    };
    let mut client = match cluster.client() {
        Ok(c) => c,
        Err(e) => {
            cluster.abandon();
            return soak_broken(seed, scale.clients, format!("connect: {e}"));
        }
    };

    let started_ms = cluster.now_ms();
    let give_up_ms = started_ms + SOAK_DEADLINE.as_millis() as u64;
    let mut pending = faults;
    let mut failures = Vec::new();
    let mut admitted: Vec<(u64, u64, String)> = Vec::new(); // (id, ga_seed, tenant)
    let mut queue_full_rejects = 0u64;
    let mut quota_rejects = 0u64;

    // Submission phase: every client submits one job, riding through
    // retryable rejects while the runners drain the backlog underneath.
    'clients: for c in 0..scale.clients {
        let tenant = TENANTS[c % TENANTS.len()];
        let ga_seed = *rng.choose(&GA_SEEDS);
        let spec = JobSpec {
            name: format!("soak-{seed}-{c}"),
            tenant: tenant.to_string(),
            ..Cluster::spec(ga_seed)
        };
        loop {
            fire_due(&cluster, started_ms, &mut pending);
            match try_submit(&mut client, &spec) {
                Admission::Admitted(id) => {
                    admitted.push((id, ga_seed, tenant.to_string()));
                    break;
                }
                Admission::QueueFull => {
                    queue_full_rejects += 1;
                    if cluster.now_ms() >= give_up_ms {
                        failures.push(format!("client {c}: still queue_full at the soak deadline"));
                        break 'clients;
                    }
                    cluster.advance(Duration::from_millis(20));
                }
                Admission::Quota => {
                    quota_rejects += 1;
                    if tenant != CAPPED_TENANT {
                        failures.push(format!("client {c}: quota reject for uncapped '{tenant}'"));
                    }
                    break;
                }
                Admission::Broken(detail) => {
                    failures.push(format!("client {c}: {detail}"));
                    // The control link is fault-free; try a reconnect
                    // once rather than abandoning the whole scenario.
                    match cluster.client() {
                        Ok(fresh) => client = fresh,
                        Err(e) => {
                            failures.push(format!("reconnect: {e}"));
                            break 'clients;
                        }
                    }
                    break;
                }
            }
        }
    }

    // Drain phase: poll every admitted job to a terminal state through
    // the protocol, firing the remaining timed faults as the virtual
    // clock passes them, then check results against the authoritative
    // daemon record (exact bits, not JSON round-trips).
    let mut done = 0u64;
    let mut hung = false;
    for (id, ga_seed, tenant) in &admitted {
        loop {
            fire_due(&cluster, started_ms, &mut pending);
            let state = match client.status(*id) {
                Ok(job) => job
                    .get("state")
                    .and_then(Json::as_str)
                    .map(str::to_string)
                    .unwrap_or_default(),
                Err(_) => match cluster.client() {
                    Ok(fresh) => {
                        client = fresh;
                        continue;
                    }
                    Err(e) => {
                        failures.push(format!("job {id}: reconnect: {e}"));
                        hung = true;
                        break;
                    }
                },
            };
            if matches!(state.as_str(), "done" | "failed" | "canceled") {
                break;
            }
            if cluster.now_ms() >= give_up_ms {
                failures.push(format!(
                    "job {id} (tenant {tenant}): still '{state}' at the soak deadline — lost work"
                ));
                hung = true;
                break;
            }
            cluster.advance(Duration::from_millis(20));
        }
        if hung {
            break;
        }
        let Some(record) = cluster.daemon().status(*id) else {
            failures.push(format!("job {id}: vanished from the daemon"));
            continue;
        };
        if record.state != JobState::Done {
            failures.push(format!(
                "job {id} (tenant {tenant}): terminal '{:?}': {}",
                record.state,
                record.error.unwrap_or_default()
            ));
            continue;
        }
        let spec_problem = record.spec.problem.clone();
        let Some((want_genes, want_bits)) = expected.get(&(spec_problem, *ga_seed)) else {
            failures.push(format!("job {id}: no ground truth for ga seed {ga_seed}"));
            continue;
        };
        match record.result {
            Some((ref genes, fitness))
                if genes == want_genes && fitness.to_bits() == *want_bits =>
            {
                done += 1;
            }
            Some((genes, fitness)) => failures.push(format!(
                "job {id} (ga seed {ga_seed}): got {genes:?} @ {fitness}, fault-free single-shard \
                 gives {want_genes:?} @ {}",
                f64::from_bits(*want_bits)
            )),
            None => failures.push(format!("job {id}: done without a result")),
        }
    }
    let virtual_ms = cluster.now_ms() - started_ms;

    // Book-keeping invariants, straight from the daemon. A job's state
    // flips terminal *before* its runner settles the quota reservation,
    // so give the runners a moment of wall clock to finish their books
    // — the settle lag is scheduling, not an invariant breach.
    if !hung {
        for _ in 0..500 {
            let usage = cluster.daemon().tenant_usage();
            let settled: u64 = usage.iter().map(|u| u.settled).sum();
            if usage.iter().all(|u| u.reserved == 0) && settled >= admitted.len() as u64 {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        audit_books(&cluster, &admitted, quota_rejects, scale, &mut failures);
        if let Err(e) = cluster.checkpoints_loadable() {
            failures.push(format!("checkpoint audit: {e}"));
        }
    }
    let sched_delay_p95_micros = cluster
        .daemon()
        .obs()
        .histogram("sched_delay_micros")
        .snapshot()
        .p95();

    if hung {
        cluster.abandon();
    } else {
        cluster.shutdown();
    }
    ShardSeedReport {
        seed,
        clients: scale.clients,
        admitted: admitted.len() as u64,
        queue_full_rejects,
        quota_rejects,
        done,
        failures,
        virtual_ms,
        sched_delay_p95_micros,
    }
}

/// Quota, starvation and shard-routing invariants over the daemon's own
/// books once the backlog has drained.
fn audit_books(
    cluster: &Cluster,
    admitted: &[(u64, u64, String)],
    quota_rejects: u64,
    scale: &ShardScale,
    failures: &mut Vec<String>,
) {
    let usage = cluster.daemon().tenant_usage();
    let mut admitted_by_tenant = std::collections::HashMap::new();
    for (_, _, tenant) in admitted {
        *admitted_by_tenant.entry(tenant.as_str()).or_insert(0u64) += 1;
    }
    for tenant in TENANTS {
        let Some(row) = usage.iter().find(|u| u.tenant == tenant) else {
            failures.push(format!("tenant '{tenant}' missing from the accountant"));
            continue;
        };
        let client_admits = admitted_by_tenant.get(tenant).copied().unwrap_or(0);
        // Starvation: a tenant whose work was admitted must have had all
        // of it scheduled, run and settled — DRR may not park anyone.
        if row.settled < client_admits {
            failures.push(format!(
                "tenant '{tenant}': {} settled of {client_admits} admitted — starved work",
                row.settled
            ));
        }
        if row.reserved != 0 {
            failures.push(format!(
                "tenant '{tenant}': {} evals still reserved after the drain",
                row.reserved
            ));
        }
        if row.admitted < client_admits {
            failures.push(format!(
                "tenant '{tenant}': accountant admitted {} but clients saw {client_admits}",
                row.admitted
            ));
        }
        if scale.clients >= 2 * TENANTS.len() && client_admits == 0 && tenant != CAPPED_TENANT {
            failures.push(format!("tenant '{tenant}': nothing admitted at soak scale"));
        }
        if tenant == CAPPED_TENANT {
            if let Some(cap) = row.quota {
                if row.used > cap {
                    failures.push(format!(
                        "capped tenant charged {} evals over its {cap} quota",
                        row.used
                    ));
                }
            } else {
                failures.push("capped tenant lost its quota".into());
            }
            if row.rejected < quota_rejects {
                failures.push(format!(
                    "accountant counted {} quota rejects, clients saw {quota_rejects}",
                    row.rejected
                ));
            }
        }
    }
    // Shard routing: the backlog must actually spread, and every shard
    // must end drained.
    let snaps = cluster.daemon().shard_snapshots();
    let busy_shards = snaps.iter().filter(|s| s.done > 0).count();
    if scale.shards > 1 && admitted.len() >= 4 * scale.shards && busy_shards < 2 {
        failures.push(format!(
            "{} jobs all landed in one of {} shards — routing is not spreading",
            admitted.len(),
            scale.shards
        ));
    }
    for s in &snaps {
        if s.queued != 0 || s.running != 0 {
            failures.push(format!(
                "shard {}: {} queued / {} running after the drain",
                s.shard, s.queued, s.running
            ));
        }
    }
}

/// A shard soak sweep's summary.
#[derive(Debug, Clone)]
pub struct ShardSweepReport {
    /// First seed swept.
    pub base_seed: u64,
    /// Seeds swept.
    pub seeds: u64,
    /// Seeds on which every invariant held.
    pub passed: u64,
    /// Failing reports (empty on a green sweep).
    pub failures: Vec<ShardSeedReport>,
    /// Jobs driven to their bit-exact result across the sweep.
    pub jobs_done: u64,
    /// Structured queue_full rejects ridden through across the sweep —
    /// evidence the admission controller was actually exercised.
    pub queue_full_rejects: u64,
    /// Structured quota rejects across the sweep.
    pub quota_rejects: u64,
    /// Accumulated virtual milliseconds.
    pub virtual_ms: u64,
}

/// Sweeps `seeds` consecutive soak scenario seeds at `scale`.
#[must_use]
pub fn run_shard_sweep(base_seed: u64, seeds: u64, scale: &ShardScale) -> ShardSweepReport {
    let mut expected = Expected::new();
    let mut report = ShardSweepReport {
        base_seed,
        seeds,
        passed: 0,
        failures: Vec::new(),
        jobs_done: 0,
        queue_full_rejects: 0,
        quota_rejects: 0,
        virtual_ms: 0,
    };
    for seed in base_seed..base_seed + seeds {
        let r = run_shard_seed(seed, scale, &mut expected);
        report.jobs_done += r.done;
        report.queue_full_rejects += r.queue_full_rejects;
        report.quota_rejects += r.quota_rejects;
        report.virtual_ms += r.virtual_ms;
        if r.is_ok() {
            report.passed += 1;
        } else {
            report.failures.push(r);
        }
    }
    report
}

// ---------------------------------------------------------------------
// Shard throughput bench
// ---------------------------------------------------------------------

/// Shard counts the bench sweeps. One shard is the single-queue
/// baseline this PR replaces.
pub const BENCH_SHARD_COUNTS: [usize; 3] = [1, 4, 16];

/// One bench point: the cluster at one shard count.
#[derive(Debug, Clone)]
pub struct ShardBenchPoint {
    /// Shards (and shard executors) in this configuration.
    pub shards: usize,
    /// Concurrent jobs submitted.
    pub jobs: usize,
    /// Virtual ms from first submit to the last job's terminal state.
    pub virtual_ms: u64,
    /// Submit-to-done throughput, jobs per virtual second.
    pub jobs_per_vsec: f64,
    /// p95 scheduling delay (enqueue → claim), virtual microseconds.
    pub sched_delay_p95_micros: u64,
    /// Whether every job finished `done` with a result.
    pub all_done: bool,
}

/// The bench report across [`BENCH_SHARD_COUNTS`].
#[derive(Debug, Clone)]
pub struct ShardBenchReport {
    /// The sim seed.
    pub seed: u64,
    /// Concurrent jobs per point.
    pub jobs: usize,
    /// One point per shard count, ascending.
    pub points: Vec<ShardBenchPoint>,
}

impl ShardBenchReport {
    /// The acceptance gate: the most-sharded configuration's throughput
    /// is at least the single-queue baseline's.
    #[must_use]
    pub fn sharded_beats_single(&self) -> bool {
        match (self.points.first(), self.points.last()) {
            (Some(single), Some(sharded)) if self.points.len() >= 2 => {
                sharded.jobs_per_vsec >= single.jobs_per_vsec
            }
            _ => false,
        }
    }

    /// Gate plus completeness: every point drove every job to `done`.
    #[must_use]
    pub fn is_ok(&self) -> bool {
        self.sharded_beats_single() && self.points.iter().all(|p| p.all_done)
    }
}

/// Runs the shard bench: for each shard count, boots a fault-free
/// cluster (network latency only — evaluations need a nonzero virtual
/// cost for throughput to mean anything), submits `jobs` concurrent
/// jobs with distinct GA trajectories, and measures submit-to-done
/// throughput and p95 scheduling delay. Runner threads equal the shard
/// count, so one shard *is* the serial single-queue daemon.
#[must_use]
pub fn run_shard_bench(
    seed: u64,
    jobs: usize,
    workers: usize,
    shard_counts: &[usize],
) -> ShardBenchReport {
    let mut points = Vec::with_capacity(shard_counts.len());
    for &shards in shard_counts {
        points.push(bench_point(seed, jobs, workers, shards));
    }
    ShardBenchReport { seed, jobs, points }
}

fn bench_point(seed: u64, jobs: usize, workers: usize, shards: usize) -> ShardBenchPoint {
    let broken = |virtual_ms| ShardBenchPoint {
        shards,
        jobs,
        virtual_ms,
        jobs_per_vsec: 0.0,
        sched_delay_p95_micros: 0,
        all_done: false,
    };
    let cluster = match Cluster::boot(&ClusterConfig {
        seed,
        workers,
        // Latency-only weather: every frame takes time, none are lost,
        // so the point is deterministic-by-outcome and evals cost
        // virtual time.
        plan: FaultPlan {
            drop_p: 0.0,
            dup_p: 0.0,
            delay_p: 1.0,
            delay_max_micros: 4_000,
        },
        redispatch: true,
        shards,
        runners: shards,
        queue_capacity: jobs.max(8),
        tenant_quotas: Vec::new(),
        store: true,
    }) {
        Ok(c) => c,
        Err(_) => return broken(0),
    };
    let Ok(mut client) = cluster.client() else {
        cluster.abandon();
        return broken(0);
    };

    let started_ms = cluster.now_ms();
    let mut ids = Vec::with_capacity(jobs);
    for c in 0..jobs {
        // Distinct trajectories: no cross-job store hits, every job
        // pays its own evaluations.
        let spec = JobSpec {
            name: format!("bench-{shards}-{c}"),
            ..Cluster::spec(1000 + c as u64)
        };
        match client.submit(&spec) {
            Ok(id) => ids.push(id),
            Err(_) => {
                let waited = cluster.now_ms() - started_ms;
                cluster.abandon();
                return broken(waited);
            }
        }
    }
    let mut all_done = true;
    for id in &ids {
        match cluster.wait(*id, SOAK_DEADLINE, |_| {}) {
            crate::cluster::Outcome::Done { .. } => {}
            _ => all_done = false,
        }
    }
    let virtual_ms = (cluster.now_ms() - started_ms).max(1);
    let sched_delay_p95_micros = cluster
        .daemon()
        .obs()
        .histogram("sched_delay_micros")
        .snapshot()
        .p95();
    cluster.shutdown();
    #[allow(clippy::cast_precision_loss)]
    ShardBenchPoint {
        shards,
        jobs,
        virtual_ms,
        jobs_per_vsec: jobs as f64 / (virtual_ms as f64 / 1000.0),
        sched_delay_p95_micros,
        all_done,
    }
}
