//! The simulated network: an in-process implementation of
//! [`served::Transport`] with a **virtual clock** and **seeded fault
//! schedules**, in the style of FoundationDB's deterministic simulation.
//!
//! One [`SimNet`] is one universe: a set of named nodes ("daemon",
//! "w0", …), each holding a [`SimTransport`] handle onto the shared
//! state. Streams are pairs of in-memory pipes; the clock is a plain
//! `u64` of microseconds that **only moves when every thread is
//! blocked** — so a fault-free request/response cycle runs at condvar
//! speed (no real sleeping anywhere), while timeouts, backoffs, and
//! poll intervals resolve instantly the moment the cluster goes
//! quiet. A 30-virtual-second run of timeout recovery costs
//! milliseconds of wall clock.
//!
//! # How time advances
//!
//! Every blocking wait (sleep, read-with-deadline, accept poll)
//! registers its absolute virtual deadline and parks on one shared
//! condvar in short real-time slices ([`GRACE`]). When a slice elapses
//! with nothing happening — no messages delivered, nothing computing —
//! the parked thread *advances the clock* to the earliest registered
//! deadline or in-flight message delivery, and wakes everyone.
//! [`served::Transport::busy_begin`] brackets (held around fitness
//! measurements and other real CPU work) block advancement entirely:
//! virtual time cannot jump over a request deadline while a worker is
//! legitimately computing the answer.
//!
//! # Faults
//!
//! Each `write()` call below a `BufWriter` flush is one protocol frame,
//! and each frame on a faulted link draws a verdict — deliver, drop,
//! duplicate, or delay — from a **pure function** of
//! `(net seed, link, connection index, frame index)`. Thread
//! interleaving therefore cannot change which frame gets which fault:
//! re-running a seed reproduces the same fault schedule, and the final
//! tuning result is bit-identical because fitness is a pure function of
//! the genome and the dispatch layer merges results by genome.
//! Partitions are directed send-time blackholes (a one-way partition is
//! exactly a half-open connection: sends "succeed", nothing arrives),
//! and [`SimNet::crash`] closes every stream touching a node — readers
//! see EOF after draining what was already delivered, writers see
//! `BrokenPipe`, in-flight frames are lost, and the node's listeners
//! start failing their accepts.

use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{self, Read, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use served::{NetListener, NetStream, Transport};
use simrng::{child_seed, Rng};

/// Real-time slice a blocked thread waits before concluding the
/// universe is idle and advancing the virtual clock. Large enough that
/// ordinary unbracketed compute (JSON parsing, checkpoint writes)
/// finishes inside one slice; small enough that idle virtual hops are
/// cheap.
pub const GRACE: Duration = Duration::from_micros(500);

/// Per-link fault probabilities. Applied per frame, at send time.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultPlan {
    /// Probability a frame is silently dropped.
    pub drop_p: f64,
    /// Probability a frame is delivered twice.
    pub dup_p: f64,
    /// Probability a frame is delayed (which also reorders it past any
    /// frame sent soon after with a smaller delay).
    pub delay_p: f64,
    /// Upper bound of the uniform delay, microseconds.
    pub delay_max_micros: u64,
}

impl FaultPlan {
    /// Whether the plan can ever perturb a frame.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.drop_p > 0.0 || self.dup_p > 0.0 || (self.delay_p > 0.0 && self.delay_max_micros > 0)
    }
}

/// What the fault schedule did to one frame (or what the harness did to
/// the universe). The `(link, conn, seq)` triple identifies a frame
/// independently of thread interleaving.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A frame was dropped on `link` (connection `conn`, frame `seq`).
    Drop {
        at: u64,
        link: String,
        conn: u64,
        seq: u64,
    },
    /// A frame was delivered twice.
    Dup {
        at: u64,
        link: String,
        conn: u64,
        seq: u64,
    },
    /// A frame was delayed by `micros`.
    Delay {
        at: u64,
        link: String,
        conn: u64,
        seq: u64,
        micros: u64,
    },
    /// A frame was blackholed by an active partition.
    Partitioned {
        at: u64,
        link: String,
        conn: u64,
        seq: u64,
    },
    /// A harness action: crash, restart, partition, heal, …
    Note { at: u64, what: String },
}

impl std::fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceEvent::Drop {
                at,
                link,
                conn,
                seq,
            } => {
                write!(f, "[{:>9}us] drop      {link} conn={conn} frame={seq}", at)
            }
            TraceEvent::Dup {
                at,
                link,
                conn,
                seq,
            } => {
                write!(f, "[{:>9}us] dup       {link} conn={conn} frame={seq}", at)
            }
            TraceEvent::Delay {
                at,
                link,
                conn,
                seq,
                micros,
            } => write!(
                f,
                "[{:>9}us] delay+{micros}us {link} conn={conn} frame={seq}",
                at
            ),
            TraceEvent::Partitioned {
                at,
                link,
                conn,
                seq,
            } => {
                write!(f, "[{:>9}us] blackhole {link} conn={conn} frame={seq}", at)
            }
            TraceEvent::Note { at, what } => write!(f, "[{:>9}us] {what}", at),
        }
    }
}

/// One queued-but-undelivered frame.
struct Segment {
    deliver_at: u64,
    order: u64,
    data: Vec<u8>,
}

/// One direction of one connection.
struct Pipe {
    from: String,
    to: String,
    /// Bytes delivered and readable now.
    ready: VecDeque<u8>,
    /// Frames in flight (matured into `ready` when the clock reaches
    /// their `deliver_at`).
    inflight: Vec<Segment>,
    /// No more data will ever arrive (writer dropped, or a crash).
    closed: bool,
    /// Frames written so far (indexes the fault schedule).
    seq: u64,
    /// Connection index within the link (indexes the fault schedule).
    conn: u64,
    /// Tie-break for same-instant delivery: enqueue order.
    next_order: u64,
}

struct ListenerState {
    node: String,
    backlog: VecDeque<(u64, u64)>, // (read pipe id, write pipe id) for the server side
    open: bool,
}

struct State {
    now: u64,
    busy: usize,
    shutdown: bool,
    crashed: HashSet<String>,
    /// Directed blocked pairs: `(from, to)` present ⇒ frames from→to
    /// are blackholed and new connections involving the pair fail.
    partitions: HashSet<(String, String)>,
    plans: HashMap<(String, String), FaultPlan>,
    listeners: HashMap<String, ListenerState>,
    pipes: HashMap<u64, Pipe>,
    /// Per-link connection counter (indexes the fault schedule).
    conn_count: HashMap<(String, String), u64>,
    /// Registered absolute deadlines of parked threads.
    sleepers: HashMap<u64, u64>,
    trace: Vec<TraceEvent>,
    next_id: u64,
    next_port: u32,
}

impl State {
    /// Moves every matured in-flight frame into its pipe's ready bytes,
    /// in `(deliver_at, enqueue order)` order.
    fn mature(&mut self) {
        let now = self.now;
        for pipe in self.pipes.values_mut() {
            if pipe.inflight.iter().any(|s| s.deliver_at <= now) {
                pipe.inflight.sort_by_key(|s| (s.deliver_at, s.order));
                while pipe.inflight.first().is_some_and(|s| s.deliver_at <= now) {
                    let seg = pipe.inflight.remove(0);
                    pipe.ready.extend(seg.data);
                }
            }
        }
    }

    /// The earliest instant at which anything scheduled happens.
    fn next_event(&self) -> Option<u64> {
        let sleeper = self.sleepers.values().copied().min();
        let delivery = self
            .pipes
            .values()
            .filter(|p| !p.closed)
            .flat_map(|p| p.inflight.iter().map(|s| s.deliver_at))
            .min();
        match (sleeper, delivery) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Idle-advance: jump the clock to the next scheduled event. Only
    /// legal when nothing is computing (`busy == 0`).
    fn try_advance(&mut self) -> bool {
        if self.busy > 0 || self.shutdown {
            return false;
        }
        match self.next_event() {
            Some(t) if t > self.now => {
                self.now = t;
                self.mature();
                true
            }
            _ => false,
        }
    }
}

/// The shared simulated universe. Create one per test or sweep seed;
/// hand each node its own transport via [`SimNet::transport`].
pub struct SimNet {
    seed: u64,
    grace: Duration,
    state: Mutex<State>,
    cv: Condvar,
}

impl SimNet {
    /// A fresh universe. `seed` roots every fault schedule in it.
    #[must_use]
    pub fn new(seed: u64) -> Arc<Self> {
        Self::with_grace(seed, GRACE)
    }

    /// A fresh universe with a custom idle-grace slice. The default
    /// [`GRACE`] keeps idle virtual hops cheap for sweeps with many
    /// universes; measurements that *grade* elapsed virtual time (the
    /// scaling suite) pass a larger slice, because every time the host
    /// starves a runnable thread past the slice the advancement rule
    /// mistakes the lull for idleness and charges spurious virtual
    /// time. A longer slice trades wall-clock per legitimate hop for
    /// tolerance of scheduler latency on a saturated machine.
    #[must_use]
    pub fn with_grace(seed: u64, grace: Duration) -> Arc<Self> {
        Arc::new(Self {
            seed,
            grace,
            state: Mutex::new(State {
                now: 0,
                busy: 0,
                shutdown: false,
                crashed: HashSet::new(),
                partitions: HashSet::new(),
                plans: HashMap::new(),
                listeners: HashMap::new(),
                pipes: HashMap::new(),
                conn_count: HashMap::new(),
                sleepers: HashMap::new(),
                trace: Vec::new(),
                next_id: 1,
                next_port: 40_000,
            }),
            cv: Condvar::new(),
        })
    }

    /// A transport handle for the named node. Every socket opened
    /// through it belongs to `node` for fault/partition/crash purposes.
    #[must_use]
    pub fn transport(self: &Arc<Self>, node: &str) -> Arc<dyn Transport> {
        Arc::new(SimTransport {
            net: Arc::clone(self),
            node: node.to_string(),
        })
    }

    /// Installs a fault plan on the directed link `from → to`.
    pub fn set_plan(&self, from: &str, to: &str, plan: FaultPlan) {
        let mut st = self.lock();
        st.plans.insert((from.into(), to.into()), plan);
    }

    /// The current virtual time, microseconds.
    #[must_use]
    pub fn now_micros(&self) -> u64 {
        self.lock().now
    }

    /// Manually advances the virtual clock (matures deliveries, wakes
    /// every parked thread). Blocked threads advance the clock on their
    /// own; this is for tests that want to jump ahead explicitly.
    pub fn advance(&self, d: Duration) {
        let mut st = self.lock();
        st.now += d.as_micros() as u64;
        st.mature();
        drop(st);
        self.cv.notify_all();
    }

    /// Crashes a node: every stream touching it closes (peers see EOF
    /// after draining delivered bytes, writers see `BrokenPipe`),
    /// in-flight frames are lost, and its listeners start erroring.
    pub fn crash(&self, node: &str) {
        let mut st = self.lock();
        st.crashed.insert(node.to_string());
        for pipe in st.pipes.values_mut() {
            if pipe.from == node || pipe.to == node {
                pipe.closed = true;
                pipe.inflight.clear();
                if pipe.to == node {
                    // The crashed reader will never drain these.
                    pipe.ready.clear();
                }
            }
        }
        for l in st.listeners.values_mut() {
            if l.node == node {
                l.open = false;
                l.backlog.clear();
            }
        }
        let at = st.now;
        st.trace.push(TraceEvent::Note {
            at,
            what: format!("crash     {node}"),
        });
        drop(st);
        self.cv.notify_all();
    }

    /// Revives a crashed node so it can bind again (the harness then
    /// boots a fresh server on the same address).
    pub fn revive(&self, node: &str) {
        let mut st = self.lock();
        st.crashed.remove(node);
        let at = st.now;
        st.trace.push(TraceEvent::Note {
            at,
            what: format!("revive    {node}"),
        });
        drop(st);
        self.cv.notify_all();
    }

    /// Installs a symmetric partition between two nodes: frames in both
    /// directions blackhole, new connections fail.
    pub fn partition(&self, a: &str, b: &str) {
        let mut st = self.lock();
        st.partitions.insert((a.into(), b.into()));
        st.partitions.insert((b.into(), a.into()));
        let at = st.now;
        st.trace.push(TraceEvent::Note {
            at,
            what: format!("partition {a} <-> {b}"),
        });
        drop(st);
        self.cv.notify_all();
    }

    /// Installs a one-way partition `from → to`: sends from `from`
    /// "succeed" but never arrive — a half-open link.
    pub fn partition_oneway(&self, from: &str, to: &str) {
        let mut st = self.lock();
        st.partitions.insert((from.into(), to.into()));
        let at = st.now;
        st.trace.push(TraceEvent::Note {
            at,
            what: format!("half-open {from} -> {to}"),
        });
        drop(st);
        self.cv.notify_all();
    }

    /// Removes any partition between two nodes (both directions).
    pub fn heal(&self, a: &str, b: &str) {
        let mut st = self.lock();
        st.partitions.remove(&(a.to_string(), b.to_string()));
        st.partitions.remove(&(b.to_string(), a.to_string()));
        let at = st.now;
        st.trace.push(TraceEvent::Note {
            at,
            what: format!("heal      {a} <-> {b}"),
        });
        drop(st);
        self.cv.notify_all();
    }

    /// Appends a harness note to the fault trace.
    pub fn note(&self, what: &str) {
        let mut st = self.lock();
        let at = st.now;
        st.trace.push(TraceEvent::Note {
            at,
            what: what.to_string(),
        });
    }

    /// A copy of the fault trace so far.
    #[must_use]
    pub fn trace(&self) -> Vec<TraceEvent> {
        self.lock().trace.clone()
    }

    /// Tears the universe down: every blocked operation errors out,
    /// sleeps become short real naps (so an abandoned, hung cluster's
    /// threads idle harmlessly until process exit instead of spinning).
    pub fn shutdown(&self) {
        let mut st = self.lock();
        st.shutdown = true;
        for pipe in st.pipes.values_mut() {
            pipe.closed = true;
            pipe.inflight.clear();
        }
        for l in st.listeners.values_mut() {
            l.open = false;
        }
        drop(st);
        self.cv.notify_all();
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        self.state.lock().expect("sim state poisoned")
    }

    fn next_id(st: &mut State) -> u64 {
        st.next_id += 1;
        st.next_id
    }

    /// Parks on the condvar for one grace slice; on a quiet slice,
    /// idle-advances the clock. Returns the reacquired guard.
    fn park<'a>(&self, st: std::sync::MutexGuard<'a, State>) -> std::sync::MutexGuard<'a, State> {
        let (mut st, timeout) = self
            .cv
            .wait_timeout(st, self.grace)
            .expect("sim state poisoned");
        if timeout.timed_out() && st.try_advance() {
            self.cv.notify_all();
        }
        st
    }

    /// The fault verdict for one frame — a pure function of
    /// `(seed, link, conn, seq)`, independent of thread interleaving.
    fn verdict(&self, plan: &FaultPlan, link: &(String, String), conn: u64, seq: u64) -> Verdict {
        let label = format!("fault/{}->{}/{conn}/{seq}", link.0, link.1);
        let mut rng = Rng::seed_from_u64(child_seed(self.seed, &label));
        if rng.chance(plan.drop_p) {
            return Verdict::Drop;
        }
        let copies = if rng.chance(plan.dup_p) { 2 } else { 1 };
        let delay = if plan.delay_max_micros > 0 && rng.chance(plan.delay_p) {
            rng.below(plan.delay_max_micros + 1)
        } else {
            0
        };
        Verdict::Deliver { copies, delay }
    }
}

enum Verdict {
    Drop,
    Deliver { copies: u32, delay: u64 },
}

/// A node's handle onto the simulated universe.
pub struct SimTransport {
    net: Arc<SimNet>,
    node: String,
}

impl std::fmt::Debug for SimTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SimTransport({})", self.node)
    }
}

fn host_of(addr: &str) -> &str {
    addr.rsplit_once(':').map_or(addr, |(h, _)| h)
}

impl Transport for SimTransport {
    fn connect(&self, addr: &str, _timeout: Duration) -> io::Result<Box<dyn NetStream>> {
        let peer = host_of(addr).to_string();
        let mut st = self.net.lock();
        if st.shutdown || st.crashed.contains(&self.node) {
            return Err(io::Error::new(io::ErrorKind::NotConnected, "node is down"));
        }
        // A TCP handshake needs both directions; either one partitioned
        // fails the connect (immediately — virtual time is free, and the
        // dispatcher treats any connect error the same way).
        if st.partitions.contains(&(self.node.clone(), peer.clone()))
            || st.partitions.contains(&(peer.clone(), self.node.clone()))
        {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                format!("partitioned from {peer}"),
            ));
        }
        let open = st
            .listeners
            .get(addr)
            .is_some_and(|l| l.open && !st.crashed.contains(&l.node));
        if !open {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                format!("nothing listens on {addr}"),
            ));
        }
        // Two pipes: client→server and server→client.
        let c2s = SimNet::next_id(&mut st);
        let s2c = SimNet::next_id(&mut st);
        let fwd_link = (self.node.clone(), peer.clone());
        let rev_link = (peer.clone(), self.node.clone());
        let conn = {
            let c = st.conn_count.entry(fwd_link.clone()).or_insert(0);
            *c += 1;
            *c
        };
        st.pipes.insert(
            c2s,
            Pipe {
                from: fwd_link.0.clone(),
                to: fwd_link.1.clone(),
                ready: VecDeque::new(),
                inflight: Vec::new(),
                closed: false,
                seq: 0,
                conn,
                next_order: 0,
            },
        );
        st.pipes.insert(
            s2c,
            Pipe {
                from: rev_link.0.clone(),
                to: rev_link.1.clone(),
                ready: VecDeque::new(),
                inflight: Vec::new(),
                closed: false,
                seq: 0,
                conn,
                next_order: 0,
            },
        );
        st.listeners
            .get_mut(addr)
            .expect("listener checked above")
            .backlog
            .push_back((c2s, s2c));
        drop(st);
        self.net.cv.notify_all();
        Ok(Box::new(SimStream {
            net: Arc::clone(&self.net),
            node: self.node.clone(),
            read_pipe: s2c,
            write_pipe: c2s,
            read_timeout: Arc::new(Mutex::new(None)),
        }))
    }

    fn bind(&self, addr: &str) -> io::Result<Box<dyn NetListener>> {
        let mut st = self.net.lock();
        if st.shutdown || st.crashed.contains(&self.node) {
            return Err(io::Error::new(io::ErrorKind::NotConnected, "node is down"));
        }
        let full = if addr.ends_with(":0") {
            st.next_port += 1;
            format!("{}:{}", host_of(addr), st.next_port)
        } else {
            addr.to_string()
        };
        if st.listeners.get(&full).is_some_and(|l| l.open) {
            return Err(io::Error::new(
                io::ErrorKind::AddrInUse,
                format!("{full} already bound"),
            ));
        }
        st.listeners.insert(
            full.clone(),
            ListenerState {
                node: self.node.clone(),
                backlog: VecDeque::new(),
                open: true,
            },
        );
        drop(st);
        Ok(Box::new(SimListener {
            net: Arc::clone(&self.net),
            node: self.node.clone(),
            addr: full,
        }))
    }

    fn sleep(&self, d: Duration) {
        let mut st = self.net.lock();
        if st.shutdown {
            drop(st);
            // Abandoned-cluster threads nap for real so they neither
            // spin nor block process exit.
            std::thread::sleep(Duration::from_millis(1));
            return;
        }
        let id = SimNet::next_id(&mut st);
        let deadline = st.now + d.as_micros() as u64;
        st.sleepers.insert(id, deadline);
        while st.now < deadline && !st.shutdown {
            st = self.net.park(st);
        }
        st.sleepers.remove(&id);
        drop(st);
        self.net.cv.notify_all();
    }

    fn now_micros(&self) -> u64 {
        self.net.lock().now
    }

    fn busy_begin(&self) {
        self.net.lock().busy += 1;
    }

    fn busy_end(&self) {
        let mut st = self.net.lock();
        st.busy = st.busy.saturating_sub(1);
        drop(st);
        self.net.cv.notify_all();
    }
}

struct SimListener {
    net: Arc<SimNet>,
    node: String,
    addr: String,
}

impl NetListener for SimListener {
    fn local_addr(&self) -> String {
        self.addr.clone()
    }

    fn accept(&self, poll: Duration) -> io::Result<Option<Box<dyn NetStream>>> {
        let mut st = self.net.lock();
        let id = SimNet::next_id(&mut st);
        let deadline = st.now + poll.as_micros() as u64;
        st.sleepers.insert(id, deadline);
        let result = loop {
            if st.shutdown {
                break Err(io::Error::new(
                    io::ErrorKind::NotConnected,
                    "simulation shut down",
                ));
            }
            match st.listeners.get_mut(&self.addr) {
                Some(l) if l.open => {
                    if let Some((srv_read, srv_write)) = l.backlog.pop_front() {
                        break Ok(Some(Box::new(SimStream {
                            net: Arc::clone(&self.net),
                            node: self.node.clone(),
                            read_pipe: srv_read,
                            write_pipe: srv_write,
                            read_timeout: Arc::new(Mutex::new(None)),
                        }) as Box<dyn NetStream>));
                    }
                }
                _ => {
                    break Err(io::Error::new(
                        io::ErrorKind::NotConnected,
                        "listener is down (node crashed?)",
                    ));
                }
            }
            if st.now >= deadline {
                break Ok(None);
            }
            st = self.net.park(st);
        };
        st.sleepers.remove(&id);
        drop(st);
        self.net.cv.notify_all();
        result
    }
}

struct SimStream {
    net: Arc<SimNet>,
    node: String,
    read_pipe: u64,
    write_pipe: u64,
    /// Shared across [`NetStream::try_clone`] halves, like a real
    /// socket's option.
    read_timeout: Arc<Mutex<Option<Duration>>>,
}

impl Read for SimStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let timeout = *self.read_timeout.lock().expect("timeout poisoned");
        let mut st = self.net.lock();
        let id = SimNet::next_id(&mut st);
        let deadline = timeout.map(|t| st.now + t.as_micros() as u64);
        if let Some(d) = deadline {
            st.sleepers.insert(id, d);
        }
        let result = loop {
            if st.shutdown || st.crashed.contains(&self.node) {
                break Err(io::Error::new(
                    io::ErrorKind::ConnectionAborted,
                    "node is down",
                ));
            }
            let Some(pipe) = st.pipes.get_mut(&self.read_pipe) else {
                break Ok(0);
            };
            if !pipe.ready.is_empty() {
                let n = buf.len().min(pipe.ready.len());
                for b in buf.iter_mut().take(n) {
                    *b = pipe.ready.pop_front().expect("len checked");
                }
                break Ok(n);
            }
            if pipe.closed {
                break Ok(0); // EOF: delivered bytes drained, writer gone
            }
            if let Some(d) = deadline {
                if st.now >= d {
                    break Err(io::Error::new(
                        io::ErrorKind::WouldBlock,
                        "simulated read timeout",
                    ));
                }
            }
            st = self.net.park(st);
        };
        st.sleepers.remove(&id);
        drop(st);
        self.net.cv.notify_all();
        result
    }
}

impl Write for SimStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let mut st = self.net.lock();
        if st.shutdown || st.crashed.contains(&self.node) {
            return Err(io::Error::new(io::ErrorKind::BrokenPipe, "node is down"));
        }
        let now = st.now;
        let Some(pipe) = st.pipes.get_mut(&self.write_pipe) else {
            return Err(io::Error::new(io::ErrorKind::BrokenPipe, "pipe gone"));
        };
        if pipe.closed {
            return Err(io::Error::new(io::ErrorKind::BrokenPipe, "peer closed"));
        }
        pipe.seq += 1;
        let link = (pipe.from.clone(), pipe.to.clone());
        let (conn, seq) = (pipe.conn, pipe.seq);
        // Send-time partition check: a one-way partition blackholes the
        // frame but reports success — exactly a half-open connection.
        if st.partitions.contains(&link) {
            let at = st.now;
            st.trace.push(TraceEvent::Partitioned {
                at,
                link: format!("{}->{}", link.0, link.1),
                conn,
                seq,
            });
            return Ok(buf.len());
        }
        let verdict = match st.plans.get(&link) {
            Some(plan) if plan.is_active() => self.net.verdict(plan, &link, conn, seq),
            _ => Verdict::Deliver {
                copies: 1,
                delay: 0,
            },
        };
        let link_label = format!("{}->{}", link.0, link.1);
        match verdict {
            Verdict::Drop => {
                let at = st.now;
                st.trace.push(TraceEvent::Drop {
                    at,
                    link: link_label,
                    conn,
                    seq,
                });
            }
            Verdict::Deliver { copies, delay } => {
                if copies > 1 {
                    let at = st.now;
                    st.trace.push(TraceEvent::Dup {
                        at,
                        link: link_label.clone(),
                        conn,
                        seq,
                    });
                }
                if delay > 0 {
                    let at = st.now;
                    st.trace.push(TraceEvent::Delay {
                        at,
                        link: link_label,
                        conn,
                        seq,
                        micros: delay,
                    });
                }
                let pipe = st.pipes.get_mut(&self.write_pipe).expect("pipe exists");
                for _ in 0..copies {
                    if delay == 0 {
                        pipe.ready.extend(buf.iter().copied());
                    } else {
                        let order = pipe.next_order;
                        pipe.next_order += 1;
                        pipe.inflight.push(Segment {
                            deliver_at: now + delay,
                            order,
                            data: buf.to_vec(),
                        });
                    }
                }
            }
        }
        drop(st);
        self.net.cv.notify_all();
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl Drop for SimStream {
    fn drop(&mut self) {
        // Only the last handle onto the pair closes it; clones share the
        // timeout Arc, so its count tracks outstanding handles.
        if Arc::strong_count(&self.read_timeout) > 1 {
            return;
        }
        let mut st = self.net.lock();
        if let Some(p) = st.pipes.get_mut(&self.write_pipe) {
            p.closed = true; // peer reads EOF after draining
        }
        if let Some(p) = st.pipes.get_mut(&self.read_pipe) {
            if p.closed {
                // Both directions down: reclaim.
                st.pipes.remove(&self.read_pipe);
                st.pipes.remove(&self.write_pipe);
            }
        }
        drop(st);
        self.net.cv.notify_all();
    }
}

impl NetStream for SimStream {
    fn try_clone(&self) -> io::Result<Box<dyn NetStream>> {
        Ok(Box::new(SimStream {
            net: Arc::clone(&self.net),
            node: self.node.clone(),
            read_pipe: self.read_pipe,
            write_pipe: self.write_pipe,
            read_timeout: Arc::clone(&self.read_timeout),
        }))
    }

    fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        *self.read_timeout.lock().expect("timeout poisoned") = timeout;
        Ok(())
    }
}

/// Process-unique suffix for simulation scratch directories.
pub(crate) fn unique_suffix() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    NEXT.fetch_add(1, Ordering::SeqCst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};
    use std::time::Instant;

    fn echo_server(net: &Arc<SimNet>, node: &str, addr: &str) -> std::thread::JoinHandle<()> {
        let t = net.transport(node);
        let listener = t.bind(addr).expect("bind");
        std::thread::spawn(move || {
            while let Ok(accepted) = listener.accept(Duration::from_millis(50)) {
                let Some(stream) = accepted else { continue };
                let mut writer = stream.try_clone().expect("clone");
                let mut reader = BufReader::new(stream);
                let mut line = String::new();
                while reader.read_line(&mut line).map_or(false, |n| n > 0) {
                    if writer.write_all(line.as_bytes()).is_err() {
                        return;
                    }
                    line.clear();
                }
            }
        })
    }

    #[test]
    fn virtual_sleep_outruns_the_wall_clock() {
        let net = SimNet::new(1);
        let t = net.transport("n");
        let wall = Instant::now();
        t.sleep(Duration::from_secs(30));
        assert!(
            wall.elapsed() < Duration::from_secs(2),
            "a 30s virtual sleep took {:?} of wall clock",
            wall.elapsed()
        );
        assert!(t.now_micros() >= 30_000_000);
        net.shutdown();
    }

    #[test]
    fn round_trip_and_read_timeout() {
        let net = SimNet::new(2);
        let server = echo_server(&net, "srv", "srv:9000");
        let t = net.transport("cli");
        let stream = t
            .connect("srv:9000", Duration::from_secs(1))
            .expect("connect");
        let mut writer = stream.try_clone().expect("clone");
        writer.write_all(b"hello\n").expect("write");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut line = String::new();
        reader.read_line(&mut line).expect("read");
        assert_eq!(line, "hello\n");

        // Nothing more is coming: a read deadline must fire on the
        // virtual clock, not the wall clock.
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("set timeout");
        let wall = Instant::now();
        let err = reader.read_line(&mut line).expect_err("must time out");
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
        assert!(wall.elapsed() < Duration::from_secs(2));
        net.shutdown();
        let _ = server.join();
    }

    #[test]
    fn crash_gives_readers_eof_and_writers_broken_pipe() {
        let net = SimNet::new(3);
        let server = echo_server(&net, "srv", "srv:9000");
        let t = net.transport("cli");
        let stream = t
            .connect("srv:9000", Duration::from_secs(1))
            .expect("connect");
        let mut writer = stream.try_clone().expect("clone");
        net.crash("srv");
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        assert_eq!(reader.read_line(&mut line).expect("EOF"), 0);
        assert_eq!(
            writer.write_all(b"x\n").expect_err("broken pipe").kind(),
            io::ErrorKind::BrokenPipe
        );
        assert!(
            t.connect("srv:9000", Duration::from_secs(1)).is_err(),
            "connecting to a crashed node must fail"
        );
        net.shutdown();
        let _ = server.join();
    }

    #[test]
    fn partitions_blackhole_sends_and_refuse_connects() {
        let net = SimNet::new(4);
        let server = echo_server(&net, "srv", "srv:9000");
        let t = net.transport("cli");
        let stream = t
            .connect("srv:9000", Duration::from_secs(1))
            .expect("connect");
        net.partition_oneway("cli", "srv");
        let mut writer = stream.try_clone().expect("clone");
        // Half-open: the send "succeeds"…
        writer.write_all(b"lost\n").expect("blackholed write");
        // …but nothing ever comes back.
        stream
            .set_read_timeout(Some(Duration::from_millis(200)))
            .expect("set timeout");
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        assert!(
            reader.read_line(&mut line).is_err(),
            "reply must never arrive"
        );
        assert!(
            t.connect("srv:9000", Duration::from_secs(1)).is_err(),
            "new connections through a partition must fail"
        );
        net.heal("cli", "srv");
        assert!(t.connect("srv:9000", Duration::from_secs(1)).is_ok());
        assert!(matches!(net.trace().first(), Some(TraceEvent::Note { .. })));
        net.shutdown();
        let _ = server.join();
    }

    #[test]
    fn fault_verdicts_are_a_pure_function_of_the_frame_identity() {
        let plan = FaultPlan {
            drop_p: 0.3,
            dup_p: 0.2,
            delay_p: 0.5,
            delay_max_micros: 10_000,
        };
        let link = ("a".to_string(), "b".to_string());
        let net1 = SimNet::new(99);
        let net2 = SimNet::new(99);
        for conn in 1..4u64 {
            for seq in 1..32u64 {
                let a = match net1.verdict(&plan, &link, conn, seq) {
                    Verdict::Drop => (true, 0, 0),
                    Verdict::Deliver { copies, delay } => (false, copies, delay),
                };
                let b = match net2.verdict(&plan, &link, conn, seq) {
                    Verdict::Drop => (true, 0, 0),
                    Verdict::Deliver { copies, delay } => (false, copies, delay),
                };
                assert_eq!(a, b, "verdict diverged at conn={conn} seq={seq}");
            }
        }
    }
}
