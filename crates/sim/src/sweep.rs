//! The seed sweep: hundreds of randomized fault scenarios, each fully
//! determined by one `u64`, each checked against the cluster
//! invariants, all in seconds of wall clock (the network is simulated
//! and the clock is virtual — only fitness evaluation costs real CPU).
//!
//! A scenario is *derived from its seed*, never stored: frame-level
//! fault probabilities, an optional mid-run worker crash + restart, an
//! optional temporary partition, and the GA seed of the job itself all
//! come out of [`simrng::child_rng`] streams rooted at the scenario
//! seed. Re-running a failing seed therefore replays the identical
//! schedule — `simtest --seed N --trace` is the whole reproduction
//! recipe.
//!
//! The fault-free ground truth ([`Cluster::expected`]) is cached per GA
//! seed: scenarios draw their GA seed from a small pool, so a 200-seed
//! sweep pays for only a handful of in-process reference runs.

use std::collections::HashMap;
use std::time::Duration;

use simrng::child_rng;

use crate::cluster::{Cluster, ClusterConfig, Outcome};
use crate::net::FaultPlan;

/// Virtual-time budget per scenario before a job counts as hung. Far
/// beyond anything a healthy run needs (worst observed healthy runs
/// finish in well under ten virtual seconds even through crash +
/// partition schedules).
pub const SCENARIO_DEADLINE: Duration = Duration::from_secs(60);

/// GA seeds scenarios draw from (small on purpose — see the module docs
/// on ground-truth caching).
const GA_SEEDS: [u64; 4] = [1, 7, 23, 77];

/// One timed fault event in a scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// Crash worker `0` at this virtual time.
    Crash {
        /// Virtual ms after job submission.
        at_ms: u64,
    },
    /// Restart the crashed worker.
    Restart {
        /// Virtual ms after job submission.
        at_ms: u64,
    },
    /// Partition worker `1` (or `0` if only one) from the daemon.
    Partition {
        /// Virtual ms after job submission.
        at_ms: u64,
    },
    /// Heal the partition.
    Heal {
        /// Virtual ms after job submission.
        at_ms: u64,
    },
}

impl Event {
    /// The event's virtual fire time, in ms after job submission.
    #[must_use]
    pub fn at_ms(self) -> u64 {
        match self {
            Event::Crash { at_ms }
            | Event::Restart { at_ms }
            | Event::Partition { at_ms }
            | Event::Heal { at_ms } => at_ms,
        }
    }
}

/// A fully derived scenario (everything [`run_seed`] will do).
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The root seed.
    pub seed: u64,
    /// Frame-level faults on every daemon↔worker link.
    pub plan: FaultPlan,
    /// Timed crash/partition events, ascending by time.
    pub events: Vec<Event>,
    /// The job's GA seed (picks the search trajectory).
    pub ga_seed: u64,
    /// Workers in the cluster.
    pub workers: usize,
}

impl Scenario {
    /// Derives the scenario a seed denotes. Pure: same seed, same
    /// scenario, on every machine and every run.
    #[must_use]
    pub fn derive(seed: u64) -> Self {
        let mut rng = child_rng(seed, "sim/scenario");
        let plan = FaultPlan {
            drop_p: rng.f64() * 0.12,
            dup_p: rng.f64() * 0.04,
            delay_p: rng.f64() * 0.35,
            delay_max_micros: 1_000 + rng.below(25_000),
        };
        let mut events = Vec::new();
        if rng.chance(0.5) {
            let crash_at = 40 + rng.below(220);
            let restart_at = crash_at + 40 + rng.below(180);
            events.push(Event::Crash { at_ms: crash_at });
            events.push(Event::Restart { at_ms: restart_at });
        }
        if rng.chance(0.35) {
            let cut_at = 20 + rng.below(260);
            let heal_at = cut_at + 30 + rng.below(200);
            events.push(Event::Partition { at_ms: cut_at });
            events.push(Event::Heal { at_ms: heal_at });
        }
        events.sort_by_key(|e| e.at_ms());
        Self {
            seed,
            plan,
            events,
            ga_seed: *rng.choose(&GA_SEEDS),
            workers: 2,
        }
    }
}

/// What one scenario produced.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// All invariants held.
    Ok,
    /// The job finished but its result diverged from the fault-free
    /// ground truth (the bit-identity invariant broke).
    Mismatch {
        /// What the cluster produced vs. what the tuner produces
        /// fault-free.
        detail: String,
    },
    /// The job ended `failed`/`canceled`, or a checkpoint would not
    /// load.
    Broken {
        /// The failure message.
        detail: String,
    },
    /// The job never terminated inside the virtual deadline.
    Hang {
        /// Virtual ms waited.
        waited_ms: u64,
    },
}

impl Verdict {
    /// Whether every invariant held.
    #[must_use]
    pub fn is_ok(&self) -> bool {
        matches!(self, Verdict::Ok)
    }

    /// A short machine-friendly tag.
    #[must_use]
    pub fn tag(&self) -> &'static str {
        match self {
            Verdict::Ok => "ok",
            Verdict::Mismatch { .. } => "mismatch",
            Verdict::Broken { .. } => "broken",
            Verdict::Hang { .. } => "hang",
        }
    }
}

/// One scenario's full report.
#[derive(Debug, Clone)]
pub struct SeedReport {
    /// The scenario seed.
    pub seed: u64,
    /// The invariant verdict.
    pub verdict: Verdict,
    /// Virtual ms from submission to terminal state (or to giving up).
    pub virtual_ms: u64,
    /// Fault-trace lines (drops, dups, delays, blackholes, crash marks).
    /// Only populated for failing seeds — passing traces are noise.
    pub trace: Vec<String>,
    /// Frames dropped / duplicated / delayed / blackholed.
    pub fault_counts: (u64, u64, u64, u64),
}

/// Expected-result cache shared across a sweep, keyed by
/// `(problem id, GA seed)` — mixed sweeps tune three problems over the
/// same GA-seed pool, and each (problem, seed) cell has its own
/// fault-free trajectory.
pub type Expected = HashMap<(String, u64), (Vec<i64>, u64)>;

/// Runs one scenario seed against a cluster and checks every invariant.
/// `expected` caches fault-free ground truths across calls;
/// `redispatch = false` runs the intentionally-broken daemon (the sweep
/// self-test expects it to get caught).
#[must_use]
pub fn run_seed(seed: u64, expected: &mut Expected, redispatch: bool) -> SeedReport {
    let scenario = Scenario::derive(seed);
    match run_scenario(&scenario, expected, redispatch) {
        Ok(report) => report,
        Err(e) => SeedReport {
            seed,
            verdict: Verdict::Broken { detail: e },
            virtual_ms: 0,
            trace: Vec::new(),
            fault_counts: (0, 0, 0, 0),
        },
    }
}

fn run_scenario(
    scenario: &Scenario,
    expected: &mut Expected,
    redispatch: bool,
) -> Result<SeedReport, String> {
    let spec = Cluster::spec(scenario.ga_seed);
    let (want_genes, want_bits) = expected
        .entry((spec.problem.clone(), scenario.ga_seed))
        .or_insert_with(|| {
            let (g, f) = Cluster::expected(&spec).expect("reference tune of a valid spec");
            (g, f.to_bits())
        })
        .clone();

    let cluster = Cluster::boot(&ClusterConfig {
        seed: scenario.seed,
        workers: scenario.workers,
        plan: scenario.plan,
        redispatch,
        ..ClusterConfig::default()
    })?;
    let started_ms = cluster.now_ms();
    let id = cluster.submit(&spec)?;

    // Fire timed events as the virtual clock passes them. The partition
    // targets the *last* worker so crash (worker 0) and partition
    // schedules compose without stepping on each other.
    let mut pending = scenario.events.clone();
    let part_target = scenario.workers.saturating_sub(1);
    let outcome = cluster.wait(id, SCENARIO_DEADLINE, |now_ms| {
        while pending
            .first()
            .is_some_and(|e| now_ms.saturating_sub(started_ms) >= e.at_ms())
        {
            match pending.remove(0) {
                Event::Crash { .. } => cluster.crash_worker(0),
                Event::Restart { .. } => {
                    let _ = cluster.restart_worker(0);
                }
                Event::Partition { .. } => cluster.partition_worker(part_target),
                Event::Heal { .. } => cluster.heal_worker(part_target),
            }
        }
    });
    let virtual_ms = cluster.now_ms() - started_ms;
    let counts = count_faults(&cluster);

    let verdict = match &outcome {
        Outcome::Hang { waited_ms } => {
            let waited_ms = *waited_ms;
            let trace = trace_lines(&cluster);
            cluster.abandon();
            return Ok(SeedReport {
                seed: scenario.seed,
                verdict: Verdict::Hang { waited_ms },
                virtual_ms,
                trace,
                fault_counts: counts,
            });
        }
        Outcome::Failed(msg) => Verdict::Broken {
            detail: msg.clone(),
        },
        Outcome::Done { genes, fitness, .. } => {
            if *genes != want_genes || fitness.to_bits() != want_bits {
                Verdict::Mismatch {
                    detail: format!(
                        "got {genes:?} @ {fitness}, fault-free tune gives {want_genes:?} @ {}",
                        f64::from_bits(want_bits)
                    ),
                }
            } else if let Err(e) = cluster.checkpoints_loadable() {
                Verdict::Broken { detail: e }
            } else {
                Verdict::Ok
            }
        }
    };

    let trace = if verdict.is_ok() {
        Vec::new()
    } else {
        trace_lines(&cluster)
    };
    cluster.shutdown();
    Ok(SeedReport {
        seed: scenario.seed,
        verdict,
        virtual_ms,
        trace,
        fault_counts: counts,
    })
}

fn trace_lines(cluster: &Cluster) -> Vec<String> {
    cluster
        .net()
        .trace()
        .iter()
        .map(ToString::to_string)
        .collect()
}

fn count_faults(cluster: &Cluster) -> (u64, u64, u64, u64) {
    use crate::net::TraceEvent;
    let mut c = (0, 0, 0, 0);
    for e in cluster.net().trace() {
        match e {
            TraceEvent::Drop { .. } => c.0 += 1,
            TraceEvent::Dup { .. } => c.1 += 1,
            TraceEvent::Delay { .. } => c.2 += 1,
            TraceEvent::Partitioned { .. } => c.3 += 1,
            TraceEvent::Note { .. } => {}
        }
    }
    c
}

/// A whole sweep's summary.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// First seed swept.
    pub base_seed: u64,
    /// Seeds swept (`base_seed..base_seed + seeds`).
    pub seeds: u64,
    /// Seeds on which every invariant held.
    pub passed: u64,
    /// Failing reports (empty on a green sweep).
    pub failures: Vec<SeedReport>,
    /// Total frames dropped / duplicated / delayed / blackholed across
    /// the sweep — evidence the schedules actually exercised faults.
    pub fault_counts: (u64, u64, u64, u64),
    /// Accumulated virtual milliseconds simulated.
    pub virtual_ms: u64,
    /// The slowest single scenario, in virtual ms — the sweep's
    /// worst-case distance from the [`SCENARIO_DEADLINE`] hang cutoff.
    pub worst_virtual_ms: u64,
    /// The seed of that slowest scenario.
    pub worst_seed: u64,
}

// ---------------------------------------------------------------------
// Mixed-problem sweep
// ---------------------------------------------------------------------

/// The problem ids a mixed scenario submits — one job per id, all to
/// the same daemon over the same worker pool (every id in
/// [`problems::KNOWN`], spelled out so a new domain is an explicit
/// sweep decision, not a silent cost increase).
pub const MIXED_PROBLEMS: [&str; 3] = ["inline", "flags", "dss"];

/// One mixed-problem scenario's report: the verdict each job earned, in
/// submission order, plus the shared fault trace when any failed.
///
/// The invariant here is **no lost jobs**: a daemon holding a
/// heterogeneous backlog — an inlining job, a flag-selection job and a
/// data-structure job queued together — must drive *every* one of them
/// to `done` with its bit-exact fault-free result, through the same
/// crash/partition/frame-fault schedule the single-job sweep runs.
#[derive(Debug, Clone)]
pub struct MixedSeedReport {
    /// The scenario seed (schedules derive from it exactly like
    /// [`Scenario::derive`] — the mixed sweep reuses that derivation).
    pub seed: u64,
    /// The GA seed every job in the scenario uses.
    pub ga_seed: u64,
    /// Per-job verdicts, `(problem id, verdict)`, in submission order.
    /// A checkpoint-audit failure appends an extra `("checkpoints", _)`
    /// entry.
    pub verdicts: Vec<(&'static str, Verdict)>,
    /// Virtual ms from first submission to the last job's terminal
    /// state (or to giving up).
    pub virtual_ms: u64,
    /// Fault-trace lines; only populated for failing seeds.
    pub trace: Vec<String>,
}

impl MixedSeedReport {
    /// Whether every job completed with its fault-free result.
    #[must_use]
    pub fn is_ok(&self) -> bool {
        !self.verdicts.is_empty() && self.verdicts.iter().all(|(_, v)| v.is_ok())
    }
}

fn mixed_broken(seed: u64, ga_seed: u64, detail: &str) -> MixedSeedReport {
    MixedSeedReport {
        seed,
        ga_seed,
        verdicts: MIXED_PROBLEMS
            .iter()
            .map(|p| {
                (
                    *p,
                    Verdict::Broken {
                        detail: detail.to_string(),
                    },
                )
            })
            .collect(),
        virtual_ms: 0,
        trace: Vec::new(),
    }
}

/// Runs one mixed-problem scenario: derives the fault schedule from
/// `seed`, submits one job per [`MIXED_PROBLEMS`] entry to a single
/// daemon *before any of them completes*, fires the timed fault events
/// while the backlog drains, and checks every job against its own
/// fault-free ground truth. `expected` caches ground truths across
/// calls, keyed by `(problem, ga_seed)`.
#[must_use]
pub fn run_mixed_seed(seed: u64, expected: &mut Expected) -> MixedSeedReport {
    let scenario = Scenario::derive(seed);
    let mut want = Vec::with_capacity(MIXED_PROBLEMS.len());
    for problem in MIXED_PROBLEMS {
        let spec = Cluster::spec_for(problem, scenario.ga_seed);
        let (genes, bits) = expected
            .entry((problem.to_string(), scenario.ga_seed))
            .or_insert_with(|| {
                let (g, f) = Cluster::expected(&spec).expect("reference tune of a valid spec");
                (g, f.to_bits())
            })
            .clone();
        want.push((spec, genes, bits));
    }

    let cluster = match Cluster::boot(&ClusterConfig {
        seed: scenario.seed,
        workers: scenario.workers,
        plan: scenario.plan,
        redispatch: true,
        ..ClusterConfig::default()
    }) {
        Ok(c) => c,
        Err(e) => return mixed_broken(seed, scenario.ga_seed, &format!("boot: {e}")),
    };
    let started_ms = cluster.now_ms();

    // Submit the whole heterogeneous backlog up front: with one job
    // worker, the daemon holds two queued problems while tuning the
    // first — exactly the mixed-queue shape the invariant is about.
    let mut ids = Vec::with_capacity(want.len());
    for (spec, _, _) in &want {
        match cluster.submit(spec) {
            Ok(id) => ids.push(id),
            Err(e) => {
                cluster.abandon();
                return mixed_broken(seed, scenario.ga_seed, &format!("submit: {e}"));
            }
        }
    }

    // Drain the backlog job by job, firing timed events as the virtual
    // clock passes them (they land during whichever job is running —
    // the schedule does not care which problem it interrupts).
    let mut pending = scenario.events.clone();
    let part_target = scenario.workers.saturating_sub(1);
    let mut verdicts = Vec::with_capacity(want.len() + 1);
    let mut hung = false;
    for (i, id) in ids.iter().enumerate() {
        let problem = MIXED_PROBLEMS[i];
        if hung {
            verdicts.push((
                problem,
                Verdict::Broken {
                    detail: "not waited: an earlier job hung".into(),
                },
            ));
            continue;
        }
        let outcome = cluster.wait(*id, SCENARIO_DEADLINE, |now_ms| {
            while pending
                .first()
                .is_some_and(|e| now_ms.saturating_sub(started_ms) >= e.at_ms())
            {
                match pending.remove(0) {
                    Event::Crash { .. } => cluster.crash_worker(0),
                    Event::Restart { .. } => {
                        let _ = cluster.restart_worker(0);
                    }
                    Event::Partition { .. } => cluster.partition_worker(part_target),
                    Event::Heal { .. } => cluster.heal_worker(part_target),
                }
            }
        });
        let (_, want_genes, want_bits) = &want[i];
        let verdict = match outcome {
            Outcome::Hang { waited_ms } => {
                hung = true;
                Verdict::Hang { waited_ms }
            }
            Outcome::Failed(msg) => Verdict::Broken { detail: msg },
            Outcome::Done { genes, fitness, .. } => {
                if genes != *want_genes || fitness.to_bits() != *want_bits {
                    Verdict::Mismatch {
                        detail: format!(
                            "{problem}: got {genes:?} @ {fitness}, fault-free tune gives \
                             {want_genes:?} @ {}",
                            f64::from_bits(*want_bits)
                        ),
                    }
                } else {
                    Verdict::Ok
                }
            }
        };
        verdicts.push((problem, verdict));
    }
    if !hung {
        if let Err(e) = cluster.checkpoints_loadable() {
            verdicts.push(("checkpoints", Verdict::Broken { detail: e }));
        }
    }

    let virtual_ms = cluster.now_ms() - started_ms;
    let failing = hung || verdicts.iter().any(|(_, v)| !v.is_ok());
    let trace = if failing {
        trace_lines(&cluster)
    } else {
        Vec::new()
    };
    if hung {
        cluster.abandon();
    } else {
        cluster.shutdown();
    }
    MixedSeedReport {
        seed,
        ga_seed: scenario.ga_seed,
        verdicts,
        virtual_ms,
        trace,
    }
}

/// A mixed-problem sweep's summary.
#[derive(Debug, Clone)]
pub struct MixedSweepReport {
    /// First seed swept.
    pub base_seed: u64,
    /// Seeds swept.
    pub seeds: u64,
    /// Seeds on which every job completed with its fault-free result.
    pub passed: u64,
    /// Failing reports (empty on a green sweep).
    pub failures: Vec<MixedSeedReport>,
    /// Jobs driven to their bit-exact result across the sweep.
    pub jobs_done: u64,
    /// Accumulated virtual milliseconds simulated.
    pub virtual_ms: u64,
}

/// Sweeps `seeds` consecutive mixed-problem scenario seeds. Ground
/// truths are cached across the sweep: scenarios draw their GA seed
/// from the same small pool as the single-job sweep, so the whole
/// sweep pays for at most `MIXED_PROBLEMS.len() × GA_SEEDS.len()`
/// reference runs.
#[must_use]
pub fn run_mixed_sweep(base_seed: u64, seeds: u64) -> MixedSweepReport {
    let mut expected = Expected::new();
    let mut report = MixedSweepReport {
        base_seed,
        seeds,
        passed: 0,
        failures: Vec::new(),
        jobs_done: 0,
        virtual_ms: 0,
    };
    for seed in base_seed..base_seed + seeds {
        let r = run_mixed_seed(seed, &mut expected);
        report.virtual_ms += r.virtual_ms;
        report.jobs_done += r.verdicts.iter().filter(|(_, v)| v.is_ok()).count() as u64;
        if r.is_ok() {
            report.passed += 1;
        } else {
            report.failures.push(r);
        }
    }
    report
}

// ---------------------------------------------------------------------
// Store crash/recovery sweep
// ---------------------------------------------------------------------

/// One persistent-store crash/recovery scenario, fully derived from its
/// seed: a write session killed mid-append (an optionally torn record
/// tail on the wal), a recovery session that must serve every
/// acknowledged record bit-exactly, and a third open proving recovery
/// is idempotent.
#[derive(Debug, Clone)]
pub struct StoreScenario {
    /// The root seed.
    pub seed: u64,
    /// Records appended across both write sessions.
    pub records: usize,
    /// Records acknowledged before the kill.
    pub kill_after: usize,
    /// Distinct tuning cells the records spread over.
    pub cells: usize,
    /// Wal records per background compaction (0 disables it).
    pub compact_threshold: usize,
    /// Whether session one compacts explicitly before the kill.
    pub compact_before_kill: bool,
    /// Whether session two compacts after recovering.
    pub compact_after_restart: bool,
    /// Where the in-flight record's write is cut, as a fraction of its
    /// encoded length. `None` = the process died between appends (a
    /// clean tail).
    pub torn_frac: Option<f64>,
}

impl StoreScenario {
    /// Derives the scenario a seed denotes. Pure, like
    /// [`Scenario::derive`].
    #[must_use]
    pub fn derive(seed: u64) -> Self {
        let mut rng = child_rng(seed, "sim/store");
        let records = 12 + rng.below(36) as usize;
        Self {
            seed,
            records,
            kill_after: 1 + rng.below(records as u64 - 1) as usize,
            cells: 1 + rng.below(3) as usize,
            compact_threshold: 4 + rng.below(12) as usize,
            compact_before_kill: rng.chance(0.4),
            compact_after_restart: rng.chance(0.5),
            torn_frac: rng.chance(0.8).then(|| rng.f64()),
        }
    }
}

/// One store scenario's report. Green iff `failures` is empty.
#[derive(Debug, Clone)]
pub struct StoreSeedReport {
    /// The scenario seed.
    pub seed: u64,
    /// Broken invariants, in the order they were caught.
    pub failures: Vec<String>,
    /// Distinct record keys the scenario acknowledged.
    pub records: usize,
    /// Bytes of torn tail the kill left on the wal.
    pub torn_bytes: u64,
}

impl StoreSeedReport {
    /// Whether every invariant held.
    #[must_use]
    pub fn is_ok(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Runs one store crash/recovery scenario in a scratch directory under
/// the system temp dir (removed afterwards).
#[must_use]
pub fn run_store_seed(seed: u64) -> StoreSeedReport {
    let dir = std::env::temp_dir().join(format!("simstore-{}-{seed}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let report = run_store_scenario(&StoreScenario::derive(seed), &dir);
    let _ = std::fs::remove_dir_all(&dir);
    report
}

/// The deterministic record plan of a store scenario: `records` entries
/// over `cells` fingerprints, with deliberate duplicate keys (carrying
/// *different* fitness values) to exercise first-write-wins across the
/// crash boundary.
fn store_plan(sc: &StoreScenario) -> Vec<stored::Record> {
    let mut rng = child_rng(sc.seed, "sim/store/records");
    let fingerprints: Vec<stored::Fingerprint> = (0..sc.cells)
        .map(|c| stored::Fingerprint {
            cell_digest: stored::digest_parts(&["simstore", &c.to_string(), &sc.seed.to_string()]),
            arch: if c % 2 == 0 { "x86-p4" } else { "ppc-g4" }.to_string(),
            features: (0..stored::FEATURES).map(|_| rng.f64() * 8.0).collect(),
            // Mix tagged and untagged records so the crash sweep also
            // covers the optional problem-tag encoding.
            problem: ["inline", "flags", "dss"][c % 3].to_string(),
        })
        .collect();
    let mut plan: Vec<stored::Record> = Vec::with_capacity(sc.records + 1);
    // One extra record: the one "in flight" when the kill lands.
    for _ in 0..=sc.records {
        let rec = if !plan.is_empty() && rng.chance(0.15) {
            // A duplicate key with a conflicting fitness: the store must
            // keep serving the first acknowledged value.
            let prev = rng.choose(&plan).clone();
            stored::Record {
                fitness: rng.f64() * 4.0,
                ..prev
            }
        } else {
            stored::Record {
                fingerprint: rng.choose(&fingerprints).clone(),
                genome: (0..5).map(|_| rng.below(100) as i64).collect(),
                fitness: rng.f64() * 4.0,
            }
        };
        plan.push(rec);
    }
    plan
}

fn store_options(sc: &StoreScenario) -> stored::StoreOptions {
    stored::StoreOptions {
        compact_threshold: sc.compact_threshold,
        obs: std::sync::Arc::new(obs::Registry::new()),
    }
}

/// Acknowledged ground truth: first write wins per key, keyed exactly
/// like [`stored::Record::key`] resolves lookups.
type Acked = HashMap<(u64, Vec<i64>), f64>;

fn check_served(store: &stored::Store, acked: &Acked, when: &str, failures: &mut Vec<String>) {
    for ((cell, genome), want) in acked {
        match store.get(*cell, genome) {
            Some(got) if got.to_bits() == want.to_bits() => {}
            Some(got) => failures.push(format!(
                "{when}: key ({cell:#x}, {genome:?}) served {got} (bits {:#x}), acked {want} (bits {:#x})",
                got.to_bits(),
                want.to_bits()
            )),
            None => failures.push(format!(
                "{when}: acked record ({cell:#x}, {genome:?}) lost"
            )),
        }
    }
    let stats = store.stats();
    if stats.records != acked.len() {
        failures.push(format!(
            "{when}: store indexes {} records, {} were acknowledged",
            stats.records,
            acked.len()
        ));
    }
}

fn run_store_scenario(sc: &StoreScenario, dir: &std::path::Path) -> StoreSeedReport {
    let mut failures = Vec::new();
    let plan = store_plan(sc);
    let mut acked = Acked::new();

    // Session one: append until the kill point, then die. `drop` joins
    // the compactor, which is the right model — the torn bytes below
    // stand in for the append that was *in flight* when the process was
    // killed, which by the ack contract is the only write that may be
    // lost.
    match stored::Store::open_with(dir, store_options(sc)) {
        Err(e) => failures.push(format!("first open: {e}")),
        Ok(store) => {
            for rec in &plan[..sc.kill_after] {
                let dup = acked.contains_key(&(rec.fingerprint.cell_digest, rec.genome.clone()));
                match store.append(rec) {
                    Ok(fresh) => {
                        if fresh == dup {
                            failures.push(format!(
                                "append said fresh={fresh} for {} key {:?}",
                                if dup { "duplicate" } else { "new" },
                                rec.genome
                            ));
                        }
                        acked
                            .entry((rec.fingerprint.cell_digest, rec.genome.clone()))
                            .or_insert(rec.fitness);
                    }
                    Err(e) => failures.push(format!("append: {e}")),
                }
            }
            if sc.compact_before_kill {
                if let Err(e) = store.compact() {
                    failures.push(format!("pre-kill compact: {e}"));
                }
            }
        }
    }

    // The kill: a strict prefix of the in-flight record's encoding lands
    // on the wal tail.
    let mut torn_bytes = 0u64;
    if let Some(frac) = sc.torn_frac {
        let encoded = stored::encode_record(&plan[sc.kill_after]);
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let cut = 1 + ((frac * (encoded.len() - 2) as f64) as usize).min(encoded.len() - 2);
        torn_bytes = cut as u64;
        let tail = std::fs::OpenOptions::new()
            .append(true)
            .open(dir.join("wal.seg"))
            .and_then(|mut f| std::io::Write::write_all(&mut f, &encoded[..cut]));
        if let Err(e) = tail {
            failures.push(format!("injecting torn tail: {e}"));
        }
    }

    // Session two: recovery. Every acknowledged record must be served
    // bit-exactly, the torn tail must be measured and truncated, and the
    // remaining appends must land on the recovered wal.
    match stored::Store::open_with(dir, store_options(sc)) {
        Err(e) => failures.push(format!("recovery open: {e}")),
        Ok(store) => {
            let recovered = store.stats().recovered_torn_bytes;
            if recovered != torn_bytes {
                failures.push(format!(
                    "recovery truncated {recovered} bytes, kill tore {torn_bytes}"
                ));
            }
            check_served(&store, &acked, "after recovery", &mut failures);
            for rec in &plan[sc.kill_after..sc.records] {
                match store.append(rec) {
                    Ok(_) => {
                        acked
                            .entry((rec.fingerprint.cell_digest, rec.genome.clone()))
                            .or_insert(rec.fitness);
                    }
                    Err(e) => failures.push(format!("post-recovery append: {e}")),
                }
            }
            if sc.compact_after_restart {
                if let Err(e) = store.compact() {
                    failures.push(format!("post-recovery compact: {e}"));
                }
            }
            check_served(&store, &acked, "after restart writes", &mut failures);
        }
    }

    // Session three: recovery must be idempotent — a clean reopen serves
    // the same records and finds nothing left to truncate.
    match stored::Store::open_with(dir, store_options(sc)) {
        Err(e) => failures.push(format!("third open: {e}")),
        Ok(store) => {
            let recovered = store.stats().recovered_torn_bytes;
            if recovered != 0 {
                failures.push(format!(
                    "clean reopen truncated {recovered} bytes; recovery was not idempotent"
                ));
            }
            check_served(&store, &acked, "after clean reopen", &mut failures);
        }
    }

    StoreSeedReport {
        seed: sc.seed,
        failures,
        records: acked.len(),
        torn_bytes,
    }
}

/// A store sweep's summary.
#[derive(Debug, Clone)]
pub struct StoreSweepReport {
    /// First seed swept.
    pub base_seed: u64,
    /// Seeds swept.
    pub seeds: u64,
    /// Seeds on which every invariant held.
    pub passed: u64,
    /// Failing reports (empty on a green sweep).
    pub failures: Vec<StoreSeedReport>,
    /// Distinct acknowledged records across the sweep.
    pub records: u64,
    /// Scenarios whose kill actually tore the wal — evidence the sweep
    /// exercised the recovery path, not just clean restarts.
    pub torn_scenarios: u64,
}

/// Sweeps `seeds` consecutive store crash/recovery seeds.
#[must_use]
pub fn run_store_sweep(base_seed: u64, seeds: u64) -> StoreSweepReport {
    let mut report = StoreSweepReport {
        base_seed,
        seeds,
        passed: 0,
        failures: Vec::new(),
        records: 0,
        torn_scenarios: 0,
    };
    for seed in base_seed..base_seed + seeds {
        let r = run_store_seed(seed);
        report.records += r.records as u64;
        report.torn_scenarios += u64::from(r.torn_bytes > 0);
        if r.is_ok() {
            report.passed += 1;
        } else {
            report.failures.push(r);
        }
    }
    report
}

/// Sweeps `seeds` consecutive scenario seeds starting at `base_seed`.
#[must_use]
pub fn run_sweep(base_seed: u64, seeds: u64, redispatch: bool) -> SweepReport {
    let mut expected = Expected::new();
    let mut report = SweepReport {
        base_seed,
        seeds,
        passed: 0,
        failures: Vec::new(),
        fault_counts: (0, 0, 0, 0),
        virtual_ms: 0,
        worst_virtual_ms: 0,
        worst_seed: base_seed,
    };
    for seed in base_seed..base_seed + seeds {
        let r = run_seed(seed, &mut expected, redispatch);
        report.fault_counts.0 += r.fault_counts.0;
        report.fault_counts.1 += r.fault_counts.1;
        report.fault_counts.2 += r.fault_counts.2;
        report.fault_counts.3 += r.fault_counts.3;
        report.virtual_ms += r.virtual_ms;
        if r.virtual_ms > report.worst_virtual_ms {
            report.worst_virtual_ms = r.virtual_ms;
            report.worst_seed = seed;
        }
        if r.verdict.is_ok() {
            report.passed += 1;
        } else {
            report.failures.push(r);
        }
    }
    report
}
