//! The seed sweep: hundreds of randomized fault scenarios, each fully
//! determined by one `u64`, each checked against the cluster
//! invariants, all in seconds of wall clock (the network is simulated
//! and the clock is virtual — only fitness evaluation costs real CPU).
//!
//! A scenario is *derived from its seed*, never stored: frame-level
//! fault probabilities, an optional mid-run worker crash + restart, an
//! optional temporary partition, and the GA seed of the job itself all
//! come out of [`simrng::child_rng`] streams rooted at the scenario
//! seed. Re-running a failing seed therefore replays the identical
//! schedule — `simtest --seed N --trace` is the whole reproduction
//! recipe.
//!
//! The fault-free ground truth ([`Cluster::expected`]) is cached per GA
//! seed: scenarios draw their GA seed from a small pool, so a 200-seed
//! sweep pays for only a handful of in-process reference runs.

use std::collections::HashMap;
use std::time::Duration;

use simrng::child_rng;

use crate::cluster::{Cluster, ClusterConfig, Outcome};
use crate::net::FaultPlan;

/// Virtual-time budget per scenario before a job counts as hung. Far
/// beyond anything a healthy run needs (worst observed healthy runs
/// finish in well under ten virtual seconds even through crash +
/// partition schedules).
pub const SCENARIO_DEADLINE: Duration = Duration::from_secs(60);

/// GA seeds scenarios draw from (small on purpose — see the module docs
/// on ground-truth caching).
const GA_SEEDS: [u64; 4] = [1, 7, 23, 77];

/// One timed fault event in a scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// Crash worker `0` at this virtual time.
    Crash {
        /// Virtual ms after job submission.
        at_ms: u64,
    },
    /// Restart the crashed worker.
    Restart {
        /// Virtual ms after job submission.
        at_ms: u64,
    },
    /// Partition worker `1` (or `0` if only one) from the daemon.
    Partition {
        /// Virtual ms after job submission.
        at_ms: u64,
    },
    /// Heal the partition.
    Heal {
        /// Virtual ms after job submission.
        at_ms: u64,
    },
}

impl Event {
    fn at_ms(self) -> u64 {
        match self {
            Event::Crash { at_ms }
            | Event::Restart { at_ms }
            | Event::Partition { at_ms }
            | Event::Heal { at_ms } => at_ms,
        }
    }
}

/// A fully derived scenario (everything [`run_seed`] will do).
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The root seed.
    pub seed: u64,
    /// Frame-level faults on every daemon↔worker link.
    pub plan: FaultPlan,
    /// Timed crash/partition events, ascending by time.
    pub events: Vec<Event>,
    /// The job's GA seed (picks the search trajectory).
    pub ga_seed: u64,
    /// Workers in the cluster.
    pub workers: usize,
}

impl Scenario {
    /// Derives the scenario a seed denotes. Pure: same seed, same
    /// scenario, on every machine and every run.
    #[must_use]
    pub fn derive(seed: u64) -> Self {
        let mut rng = child_rng(seed, "sim/scenario");
        let plan = FaultPlan {
            drop_p: rng.f64() * 0.12,
            dup_p: rng.f64() * 0.04,
            delay_p: rng.f64() * 0.35,
            delay_max_micros: 1_000 + rng.below(25_000),
        };
        let mut events = Vec::new();
        if rng.chance(0.5) {
            let crash_at = 40 + rng.below(220);
            let restart_at = crash_at + 40 + rng.below(180);
            events.push(Event::Crash { at_ms: crash_at });
            events.push(Event::Restart { at_ms: restart_at });
        }
        if rng.chance(0.35) {
            let cut_at = 20 + rng.below(260);
            let heal_at = cut_at + 30 + rng.below(200);
            events.push(Event::Partition { at_ms: cut_at });
            events.push(Event::Heal { at_ms: heal_at });
        }
        events.sort_by_key(|e| e.at_ms());
        Self {
            seed,
            plan,
            events,
            ga_seed: *rng.choose(&GA_SEEDS),
            workers: 2,
        }
    }
}

/// What one scenario produced.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// All invariants held.
    Ok,
    /// The job finished but its result diverged from the fault-free
    /// ground truth (the bit-identity invariant broke).
    Mismatch {
        /// What the cluster produced vs. what the tuner produces
        /// fault-free.
        detail: String,
    },
    /// The job ended `failed`/`canceled`, or a checkpoint would not
    /// load.
    Broken {
        /// The failure message.
        detail: String,
    },
    /// The job never terminated inside the virtual deadline.
    Hang {
        /// Virtual ms waited.
        waited_ms: u64,
    },
}

impl Verdict {
    /// Whether every invariant held.
    #[must_use]
    pub fn is_ok(&self) -> bool {
        matches!(self, Verdict::Ok)
    }

    /// A short machine-friendly tag.
    #[must_use]
    pub fn tag(&self) -> &'static str {
        match self {
            Verdict::Ok => "ok",
            Verdict::Mismatch { .. } => "mismatch",
            Verdict::Broken { .. } => "broken",
            Verdict::Hang { .. } => "hang",
        }
    }
}

/// One scenario's full report.
#[derive(Debug, Clone)]
pub struct SeedReport {
    /// The scenario seed.
    pub seed: u64,
    /// The invariant verdict.
    pub verdict: Verdict,
    /// Virtual ms from submission to terminal state (or to giving up).
    pub virtual_ms: u64,
    /// Fault-trace lines (drops, dups, delays, blackholes, crash marks).
    /// Only populated for failing seeds — passing traces are noise.
    pub trace: Vec<String>,
    /// Frames dropped / duplicated / delayed / blackholed.
    pub fault_counts: (u64, u64, u64, u64),
}

/// Expected-result cache shared across a sweep (keyed by GA seed).
pub type Expected = HashMap<u64, (Vec<i64>, u64)>;

/// Runs one scenario seed against a cluster and checks every invariant.
/// `expected` caches fault-free ground truths across calls;
/// `redispatch = false` runs the intentionally-broken daemon (the sweep
/// self-test expects it to get caught).
#[must_use]
pub fn run_seed(seed: u64, expected: &mut Expected, redispatch: bool) -> SeedReport {
    let scenario = Scenario::derive(seed);
    match run_scenario(&scenario, expected, redispatch) {
        Ok(report) => report,
        Err(e) => SeedReport {
            seed,
            verdict: Verdict::Broken { detail: e },
            virtual_ms: 0,
            trace: Vec::new(),
            fault_counts: (0, 0, 0, 0),
        },
    }
}

fn run_scenario(
    scenario: &Scenario,
    expected: &mut Expected,
    redispatch: bool,
) -> Result<SeedReport, String> {
    let spec = Cluster::spec(scenario.ga_seed);
    let (want_genes, want_bits) = expected
        .entry(scenario.ga_seed)
        .or_insert_with(|| {
            let (g, f) = Cluster::expected(&spec).expect("reference tune of a valid spec");
            (g, f.to_bits())
        })
        .clone();

    let cluster = Cluster::boot(&ClusterConfig {
        seed: scenario.seed,
        workers: scenario.workers,
        plan: scenario.plan,
        redispatch,
    })?;
    let started_ms = cluster.now_ms();
    let id = cluster.submit(&spec)?;

    // Fire timed events as the virtual clock passes them. The partition
    // targets the *last* worker so crash (worker 0) and partition
    // schedules compose without stepping on each other.
    let mut pending = scenario.events.clone();
    let part_target = scenario.workers.saturating_sub(1);
    let outcome = cluster.wait(id, SCENARIO_DEADLINE, |now_ms| {
        while pending
            .first()
            .is_some_and(|e| now_ms.saturating_sub(started_ms) >= e.at_ms())
        {
            match pending.remove(0) {
                Event::Crash { .. } => cluster.crash_worker(0),
                Event::Restart { .. } => {
                    let _ = cluster.restart_worker(0);
                }
                Event::Partition { .. } => cluster.partition_worker(part_target),
                Event::Heal { .. } => cluster.heal_worker(part_target),
            }
        }
    });
    let virtual_ms = cluster.now_ms() - started_ms;
    let counts = count_faults(&cluster);

    let verdict = match &outcome {
        Outcome::Hang { waited_ms } => {
            let waited_ms = *waited_ms;
            let trace = trace_lines(&cluster);
            cluster.abandon();
            return Ok(SeedReport {
                seed: scenario.seed,
                verdict: Verdict::Hang { waited_ms },
                virtual_ms,
                trace,
                fault_counts: counts,
            });
        }
        Outcome::Failed(msg) => Verdict::Broken {
            detail: msg.clone(),
        },
        Outcome::Done { genes, fitness, .. } => {
            if *genes != want_genes || fitness.to_bits() != want_bits {
                Verdict::Mismatch {
                    detail: format!(
                        "got {genes:?} @ {fitness}, fault-free tune gives {want_genes:?} @ {}",
                        f64::from_bits(want_bits)
                    ),
                }
            } else if let Err(e) = cluster.checkpoints_loadable() {
                Verdict::Broken { detail: e }
            } else {
                Verdict::Ok
            }
        }
    };

    let trace = if verdict.is_ok() {
        Vec::new()
    } else {
        trace_lines(&cluster)
    };
    cluster.shutdown();
    Ok(SeedReport {
        seed: scenario.seed,
        verdict,
        virtual_ms,
        trace,
        fault_counts: counts,
    })
}

fn trace_lines(cluster: &Cluster) -> Vec<String> {
    cluster
        .net()
        .trace()
        .iter()
        .map(ToString::to_string)
        .collect()
}

fn count_faults(cluster: &Cluster) -> (u64, u64, u64, u64) {
    use crate::net::TraceEvent;
    let mut c = (0, 0, 0, 0);
    for e in cluster.net().trace() {
        match e {
            TraceEvent::Drop { .. } => c.0 += 1,
            TraceEvent::Dup { .. } => c.1 += 1,
            TraceEvent::Delay { .. } => c.2 += 1,
            TraceEvent::Partitioned { .. } => c.3 += 1,
            TraceEvent::Note { .. } => {}
        }
    }
    c
}

/// A whole sweep's summary.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// First seed swept.
    pub base_seed: u64,
    /// Seeds swept (`base_seed..base_seed + seeds`).
    pub seeds: u64,
    /// Seeds on which every invariant held.
    pub passed: u64,
    /// Failing reports (empty on a green sweep).
    pub failures: Vec<SeedReport>,
    /// Total frames dropped / duplicated / delayed / blackholed across
    /// the sweep — evidence the schedules actually exercised faults.
    pub fault_counts: (u64, u64, u64, u64),
    /// Accumulated virtual milliseconds simulated.
    pub virtual_ms: u64,
    /// The slowest single scenario, in virtual ms — the sweep's
    /// worst-case distance from the [`SCENARIO_DEADLINE`] hang cutoff.
    pub worst_virtual_ms: u64,
    /// The seed of that slowest scenario.
    pub worst_seed: u64,
}

/// Sweeps `seeds` consecutive scenario seeds starting at `base_seed`.
#[must_use]
pub fn run_sweep(base_seed: u64, seeds: u64, redispatch: bool) -> SweepReport {
    let mut expected = Expected::new();
    let mut report = SweepReport {
        base_seed,
        seeds,
        passed: 0,
        failures: Vec::new(),
        fault_counts: (0, 0, 0, 0),
        virtual_ms: 0,
        worst_virtual_ms: 0,
        worst_seed: base_seed,
    };
    for seed in base_seed..base_seed + seeds {
        let r = run_seed(seed, &mut expected, redispatch);
        report.fault_counts.0 += r.fault_counts.0;
        report.fault_counts.1 += r.fault_counts.1;
        report.fault_counts.2 += r.fault_counts.2;
        report.fault_counts.3 += r.fault_counts.3;
        report.virtual_ms += r.virtual_ms;
        if r.virtual_ms > report.worst_virtual_ms {
            report.worst_virtual_ms = r.virtual_ms;
            report.worst_seed = seed;
        }
        if r.verdict.is_ok() {
            report.passed += 1;
        } else {
            report.failures.push(r);
        }
    }
    report
}
