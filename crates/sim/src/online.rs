//! The online-drift sweep: seeded fault scenarios over **online**
//! jobs — a drifting workload, the drift detector, and warm retunes
//! all running inside the simulated cluster — checked against the
//! in-process reference runner ([`online::OnlineJob`]) epoch by epoch.
//!
//! A scenario derives everything from its seed, exactly like
//! [`crate::sweep::Scenario`]: frame-level fault probabilities, an
//! optional crash + restart, an optional partition + heal, and the
//! job's identity — drift kind, GA seed, drift seed — drawn from small
//! pools so a 50-seed sweep pays for only a handful of reference runs.
//! What the sweep asserts per seed, on top of the usual no-lost-jobs /
//! checkpoints-loadable invariants:
//!
//! * **Bit-identical outcomes.** The daemon's final incumbent genome
//!   and fitness bits equal `OnlineJob::run(None)` for the same spec,
//!   and so does every per-epoch row (probe fitness, retune decision,
//!   post-epoch fitness), the retune count, the detection latencies
//!   and the evaluation count — the whole trajectory, not just the
//!   endpoint.
//! * **Bounded regret after detection.** The reconstructed
//!   [`online::OnlineReport`] passes
//!   [`online::OnlineReport::violations`] — retunes never worsen the
//!   incumbent, detection latency stays inside the window/period
//!   bound, probes hold steady inside a constant workload phase.
//!
//! Replay a failure with `simtest --online-seed N`.

use std::collections::HashMap;

use simrng::child_rng;
use workloads::DriftKind;

use crate::cluster::{Cluster, ClusterConfig, Outcome};
use crate::net::FaultPlan;
use crate::sweep::{Event, Verdict, SCENARIO_DEADLINE};

use online::{OnlineJob, OnlineReport};
use served::job::{JobSpec, OnlineSpec};

/// GA seeds online scenarios draw from (small on purpose: reference
/// runs are cached per (kind, GA seed, drift seed) cell).
const GA_SEEDS: [u64; 2] = [1, 23];

/// Drift-morph seeds scenarios draw from.
const DRIFT_SEEDS: [u64; 2] = [11, 29];

/// Epochs per online scenario. Six epochs over a period-2, two-phase
/// schedule crosses at least two boundaries — every seed exercises
/// detection, not just the initial tune.
const EPOCHS: u64 = 6;

/// A fully derived online scenario.
#[derive(Debug, Clone)]
pub struct OnlineScenario {
    /// The root seed.
    pub seed: u64,
    /// Frame-level faults on every daemon↔worker link.
    pub plan: FaultPlan,
    /// Timed crash/partition events, ascending by time.
    pub events: Vec<Event>,
    /// The drift schedule's shape.
    pub kind: DriftKind,
    /// The job's GA seed (picks search trajectories).
    pub ga_seed: u64,
    /// The workload morph seed (picks how phases differ).
    pub drift_seed: u64,
    /// Workers in the cluster.
    pub workers: usize,
}

impl OnlineScenario {
    /// Derives the scenario a seed denotes. Pure: same seed, same
    /// scenario, on every machine and every run.
    #[must_use]
    pub fn derive(seed: u64) -> Self {
        let mut rng = child_rng(seed, "sim/online-scenario");
        let plan = FaultPlan {
            drop_p: rng.f64() * 0.12,
            dup_p: rng.f64() * 0.04,
            delay_p: rng.f64() * 0.35,
            delay_max_micros: 1_000 + rng.below(25_000),
        };
        let mut events = Vec::new();
        if rng.chance(0.5) {
            let crash_at = 40 + rng.below(220);
            let restart_at = crash_at + 40 + rng.below(180);
            events.push(Event::Crash { at_ms: crash_at });
            events.push(Event::Restart { at_ms: restart_at });
        }
        if rng.chance(0.35) {
            let cut_at = 20 + rng.below(260);
            let heal_at = cut_at + 30 + rng.below(200);
            events.push(Event::Partition { at_ms: cut_at });
            events.push(Event::Heal { at_ms: heal_at });
        }
        events.sort_by_key(|e| e.at_ms());
        Self {
            seed,
            plan,
            events,
            kind: *rng.choose(&DriftKind::ALL),
            ga_seed: *rng.choose(&GA_SEEDS),
            drift_seed: *rng.choose(&DRIFT_SEEDS),
            workers: 2,
        }
    }

    /// The job spec this scenario submits: [`Cluster::spec`] plus an
    /// online section tight enough that drift detection fires within
    /// the sweep (one-probe window, 2 % threshold).
    #[must_use]
    pub fn spec(&self) -> JobSpec {
        let mut spec = Cluster::spec(self.ga_seed);
        spec.name = format!("sim-online-{}-{}", self.kind.name(), self.ga_seed);
        spec.online = Some(OnlineSpec {
            epochs: EPOCHS,
            kind: self.kind,
            period: 2,
            phases: 2,
            drift_seed: self.drift_seed,
            window: 1,
            threshold_pct: 2.0,
        });
        spec
    }
}

/// One online scenario's report.
#[derive(Debug, Clone)]
pub struct OnlineSeedReport {
    /// The scenario seed.
    pub seed: u64,
    /// The drift kind the scenario ran.
    pub kind: DriftKind,
    /// The invariant verdict.
    pub verdict: Verdict,
    /// Retunes the daemon committed (0 until the job finishes).
    pub retunes: u64,
    /// Virtual ms from submission to terminal state (or to giving up).
    pub virtual_ms: u64,
    /// Fault-trace lines, populated only for failing seeds.
    pub trace: Vec<String>,
    /// Frames dropped / duplicated / delayed / blackholed.
    pub fault_counts: (u64, u64, u64, u64),
}

/// Reference-run cache shared across a sweep, keyed by
/// `(kind name, GA seed, drift seed)` — the three values that fully
/// determine an online trajectory (faults must not change it).
pub type OnlineExpected = HashMap<(&'static str, u64, u64), OnlineReport>;

/// The fault-free ground truth for an online spec: the in-process
/// reference runner over the same schedule, store-free — exactly what
/// the daemon must bit-match.
///
/// # Errors
/// Invalid spec.
pub fn online_reference(spec: &JobSpec) -> Result<OnlineReport, String> {
    let online = spec
        .online
        .as_ref()
        .ok_or_else(|| "spec has no online section".to_string())?;
    OnlineJob {
        problem: spec.problem.clone(),
        task: spec.task()?,
        base: spec.training()?,
        adapt: spec.adapt_cfg(),
        ga: spec.ga.clone(),
        strategy: spec.strategy.clone(),
        online: online.config(),
    }
    .run(None)
}

/// Runs one online scenario seed and checks every invariant.
/// `expected` caches reference runs across calls.
#[must_use]
pub fn run_online_seed(seed: u64, expected: &mut OnlineExpected) -> OnlineSeedReport {
    let scenario = OnlineScenario::derive(seed);
    match run_online_scenario(&scenario, expected) {
        Ok(report) => report,
        Err(e) => OnlineSeedReport {
            seed,
            kind: scenario.kind,
            verdict: Verdict::Broken { detail: e },
            retunes: 0,
            virtual_ms: 0,
            trace: Vec::new(),
            fault_counts: (0, 0, 0, 0),
        },
    }
}

fn run_online_scenario(
    scenario: &OnlineScenario,
    expected: &mut OnlineExpected,
) -> Result<OnlineSeedReport, String> {
    let spec = scenario.spec();
    let key = (scenario.kind.name(), scenario.ga_seed, scenario.drift_seed);
    if !expected.contains_key(&key) {
        expected.insert(key, online_reference(&spec)?);
    }
    let want = expected[&key].clone();

    let cluster = Cluster::boot(&ClusterConfig {
        seed: scenario.seed,
        workers: scenario.workers,
        plan: scenario.plan,
        // Store-free on purpose: warm-start transfer reseeds retunes
        // from store cells, which is a deliberate trajectory change —
        // the bit-identity reference is the store-free runner.
        store: false,
        ..ClusterConfig::default()
    })?;
    let started_ms = cluster.now_ms();
    let id = cluster.submit(&spec)?;

    let mut pending = scenario.events.clone();
    let part_target = scenario.workers.saturating_sub(1);
    let outcome = cluster.wait(id, SCENARIO_DEADLINE, |now_ms| {
        while pending
            .first()
            .is_some_and(|e| now_ms.saturating_sub(started_ms) >= e.at_ms())
        {
            match pending.remove(0) {
                Event::Crash { .. } => cluster.crash_worker(0),
                Event::Restart { .. } => {
                    let _ = cluster.restart_worker(0);
                }
                Event::Partition { .. } => cluster.partition_worker(part_target),
                Event::Heal { .. } => cluster.heal_worker(part_target),
            }
        }
    });
    let virtual_ms = cluster.now_ms() - started_ms;
    let counts = count_faults(&cluster);

    let (verdict, retunes) = match &outcome {
        Outcome::Hang { waited_ms } => {
            let waited_ms = *waited_ms;
            let trace = trace_lines(&cluster);
            cluster.abandon();
            return Ok(OnlineSeedReport {
                seed: scenario.seed,
                kind: scenario.kind,
                verdict: Verdict::Hang { waited_ms },
                retunes: 0,
                virtual_ms,
                trace,
                fault_counts: counts,
            });
        }
        Outcome::Failed(msg) => (
            Verdict::Broken {
                detail: msg.clone(),
            },
            0,
        ),
        Outcome::Done { genes, fitness, .. } => {
            match check_against(&cluster, id, genes, *fitness, &want, &spec) {
                Ok(retunes) => (Verdict::Ok, retunes),
                Err(v) => (v, 0),
            }
        }
    };

    let trace = if verdict.is_ok() {
        Vec::new()
    } else {
        trace_lines(&cluster)
    };
    cluster.shutdown();
    Ok(OnlineSeedReport {
        seed: scenario.seed,
        kind: scenario.kind,
        verdict,
        retunes,
        virtual_ms,
        trace,
        fault_counts: counts,
    })
}

/// The online bit-identity check: final genome + fitness bits, then
/// the whole persisted trajectory (rows, retunes, latencies, evals)
/// against the reference, then the bounded-regret invariants, then
/// checkpoint loadability. Returns the retune count on success.
fn check_against(
    cluster: &Cluster,
    id: u64,
    genes: &[i64],
    fitness: f64,
    want: &OnlineReport,
    spec: &JobSpec,
) -> Result<u64, Verdict> {
    if genes != want.genes || fitness.to_bits() != want.fitness.to_bits() {
        return Err(Verdict::Mismatch {
            detail: format!(
                "got {genes:?} @ {fitness}, reference run gives {:?} @ {}",
                want.genes, want.fitness
            ),
        });
    }
    let snap = cluster
        .online_snapshot(id)
        .map_err(|detail| Verdict::Broken { detail })?;
    let got = OnlineReport {
        rows: snap.rows,
        retunes: snap.retunes,
        detect_latencies: snap.detect_latencies,
        evals: snap.evals,
        genes: genes.to_vec(),
        fitness,
    };
    if got != *want {
        return Err(Verdict::Mismatch {
            detail: format!(
                "trajectory diverged: daemon rows/retunes/latencies/evals \
                 {:?}/{}/{:?}/{} vs reference {:?}/{}/{:?}/{}",
                got.rows,
                got.retunes,
                got.detect_latencies,
                got.evals,
                want.rows,
                want.retunes,
                want.detect_latencies,
                want.evals,
            ),
        });
    }
    let cfg = spec.online.as_ref().expect("online scenario spec").config();
    let violations = got.violations(&cfg);
    if !violations.is_empty() {
        return Err(Verdict::Broken {
            detail: format!("regret invariants violated: {}", violations.join("; ")),
        });
    }
    cluster
        .checkpoints_loadable()
        .map_err(|detail| Verdict::Broken { detail })?;
    Ok(got.retunes)
}

fn trace_lines(cluster: &Cluster) -> Vec<String> {
    cluster
        .net()
        .trace()
        .iter()
        .map(ToString::to_string)
        .collect()
}

fn count_faults(cluster: &Cluster) -> (u64, u64, u64, u64) {
    use crate::net::TraceEvent;
    let mut c = (0, 0, 0, 0);
    for e in cluster.net().trace() {
        match e {
            TraceEvent::Drop { .. } => c.0 += 1,
            TraceEvent::Dup { .. } => c.1 += 1,
            TraceEvent::Delay { .. } => c.2 += 1,
            TraceEvent::Partitioned { .. } => c.3 += 1,
            TraceEvent::Note { .. } => {}
        }
    }
    c
}

/// A whole online sweep's summary.
#[derive(Debug, Clone)]
pub struct OnlineSweepReport {
    /// First seed swept.
    pub base_seed: u64,
    /// Seeds swept.
    pub seeds: u64,
    /// Seeds on which every invariant held.
    pub passed: u64,
    /// Failing reports (empty on a green sweep).
    pub failures: Vec<OnlineSeedReport>,
    /// Total retunes committed across passing seeds — evidence the
    /// sweep exercised detection, not just initial tunes.
    pub retunes: u64,
    /// Total frames dropped / duplicated / delayed / blackholed.
    pub fault_counts: (u64, u64, u64, u64),
    /// Accumulated virtual milliseconds simulated.
    pub virtual_ms: u64,
}

/// Sweeps `seeds` online scenarios starting at `base_seed`.
#[must_use]
pub fn run_online_sweep(base_seed: u64, seeds: u64) -> OnlineSweepReport {
    let mut expected = OnlineExpected::new();
    let mut report = OnlineSweepReport {
        base_seed,
        seeds,
        passed: 0,
        failures: Vec::new(),
        retunes: 0,
        fault_counts: (0, 0, 0, 0),
        virtual_ms: 0,
    };
    for seed in base_seed..base_seed + seeds {
        let r = run_online_seed(seed, &mut expected);
        report.fault_counts.0 += r.fault_counts.0;
        report.fault_counts.1 += r.fault_counts.1;
        report.fault_counts.2 += r.fault_counts.2;
        report.fault_counts.3 += r.fault_counts.3;
        report.virtual_ms += r.virtual_ms;
        report.retunes += r.retunes;
        if r.verdict.is_ok() {
            report.passed += 1;
        } else {
            report.failures.push(r);
        }
    }
    report
}
