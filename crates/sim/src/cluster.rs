//! The cluster harness: boots a **whole tuning deployment** — one
//! `tuned` daemon, its protocol server, and N `evald` workers — in a
//! single process on one [`SimNet`], and exposes the fault levers
//! (crash, restart, partition, heal, advance) plus the invariants the
//! sweep checks after every scenario:
//!
//! 1. **No lost jobs** — every submitted job reaches a terminal state
//!    before the (virtual) deadline, or the seed is flagged as a hang.
//! 2. **Checkpoints stay loadable** — whatever the fault schedule did,
//!    every checkpoint on disk restores through [`search::restore`].
//! 3. **Bit-identical results** — the faulty run's best genome and
//!    fitness bits equal a fault-free in-process run of the same
//!    strategy over the same [`problems::Problem`]. Faults may change
//!    *timing* (retries, failovers, fallbacks) but never *results*; any
//!    divergence is a real bug.
//!
//! A hung cluster is **abandoned, not joined**: [`Cluster::abandon`]
//! raises every stop flag and shuts the net down (simulated sleeps
//! degrade to short real naps), then drops the thread handles. Stuck
//! threads idle harmlessly until process exit — the sweep moves on to
//! the next seed instead of deadlocking the test run.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use evald::{Chaos, EvalWorker};
use ga::GaConfig;
use jit::Scenario;
use served::checkpoint::RunDir;
use served::dispatch::DispatchConfig;
use served::{Client, Daemon, DaemonConfig, JobSpec, Server};
use tuner::Goal;

use crate::net::{unique_suffix, FaultPlan, SimNet};

/// The daemon's protocol address inside the simulation.
pub const DAEMON_ADDR: &str = "daemon:6000";

/// How one job ended (or failed to end).
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// Terminal `done`: the tuned genome and its fitness.
    Done {
        /// The best genome the search converged to.
        genes: Vec<i64>,
        /// Its fitness (compare with `to_bits` for exactness).
        fitness: f64,
        /// Generations the daemon reported.
        generations: u64,
    },
    /// Terminal `failed` or `canceled`, with the state/error message.
    Failed(String),
    /// The job never reached a terminal state before the virtual
    /// deadline — lost work, a stuck retry loop, or a real deadlock.
    Hang {
        /// Virtual milliseconds waited before giving up.
        waited_ms: u64,
    },
}

impl Outcome {
    /// Whether the job completed successfully.
    #[must_use]
    pub fn is_done(&self) -> bool {
        matches!(self, Outcome::Done { .. })
    }
}

/// Knobs for [`Cluster::boot`].
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Root seed of the simulated universe (fault schedules derive from
    /// it).
    pub seed: u64,
    /// Number of `evald` workers ("w0", "w1", …).
    pub workers: usize,
    /// The fault plan installed on every daemon↔worker link. Control
    /// links (the test's own client) are always fault-free.
    pub plan: FaultPlan,
    /// The [`DispatchConfig::redispatch`] test hook. `false` builds the
    /// intentionally-broken daemon the sweep must catch.
    pub redispatch: bool,
    /// Shard count for the daemon's sharded executor.
    pub shards: usize,
    /// Daemon job-runner threads (`DaemonConfig::workers`; the daemon
    /// itself raises this to at least `shards`).
    pub runners: usize,
    /// Per-shard queue capacity.
    pub queue_capacity: usize,
    /// Per-tenant eval-budget quotas, `(tenant, max_evals)`.
    pub tenant_quotas: Vec<(String, u64)>,
    /// Whether the daemon gets the persistent fitness store. On by
    /// default (the offline sweep proves the store tier never perturbs
    /// a trajectory); the online sweep turns it off, because
    /// warm-start transfer *intentionally* reseeds retunes from store
    /// cells — a store-backed online run is valid but diverges from
    /// the store-free in-process reference the sweep bit-compares
    /// against.
    pub store: bool,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            seed: 1,
            workers: 2,
            plan: FaultPlan::default(),
            redispatch: true,
            shards: 1,
            runners: 1,
            queue_capacity: 16,
            tenant_quotas: Vec::new(),
            store: true,
        }
    }
}

struct WorkerSlot {
    node: String,
    addr: String,
    stop: Arc<AtomicBool>,
}

/// A whole tuned+evald deployment on one simulated network.
pub struct Cluster {
    net: Arc<SimNet>,
    daemon: Daemon,
    server_stop: Arc<AtomicBool>,
    workers: Mutex<Vec<WorkerSlot>>,
    handles: Mutex<Vec<JoinHandle<()>>>,
    run_root: PathBuf,
    ctl: Arc<dyn served::Transport>,
    abandoned: bool,
}

impl Cluster {
    /// Boots the deployment: N workers, one daemon (1 job worker, 1
    /// local eval thread, short virtual-time dispatch timeouts), one
    /// protocol server — all on a fresh [`SimNet`] seeded from
    /// `config.seed`.
    ///
    /// # Errors
    /// Bind or run-directory failures.
    pub fn boot(config: &ClusterConfig) -> Result<Self, String> {
        let net = SimNet::new(config.seed);
        let run_root = std::env::temp_dir().join(format!(
            "simtest-{}-{}-{}",
            std::process::id(),
            config.seed,
            unique_suffix()
        ));
        let _ = std::fs::remove_dir_all(&run_root);

        let mut workers = Vec::new();
        let mut handles = Vec::new();
        let mut addrs = Vec::new();
        for i in 0..config.workers.max(1) {
            let node = format!("w{i}");
            let addr = format!("{node}:7000");
            net.set_plan("daemon", &node, config.plan);
            net.set_plan(&node, "daemon", config.plan);
            let (stop, handle) = start_worker(&net, &node, &addr)?;
            workers.push(WorkerSlot {
                node,
                addr: addr.clone(),
                stop,
            });
            handles.push(handle);
            addrs.push(addr);
        }

        let daemon = Daemon::start(
            DaemonConfig {
                workers: config.runners,
                queue_capacity: config.queue_capacity,
                eval_threads: 1,
                eval_workers: addrs,
                shards: config.shards,
                tenant_quotas: config.tenant_quotas.clone(),
                drr_quantum: shard::drr::DEFAULT_QUANTUM,
                max_connections: 4096,
                dispatch: DispatchConfig {
                    connect_timeout: Duration::from_millis(50),
                    request_timeout: Duration::from_millis(200),
                    backoff_base: Duration::from_millis(10),
                    backoff_cap: Duration::from_millis(80),
                    max_consecutive_failures: 3,
                    // Idle dispatch threads poll on the virtual clock;
                    // a coarser tick keeps idle-advance hops cheap.
                    idle_poll: Duration::from_millis(20),
                    redispatch: config.redispatch,
                    ..DispatchConfig::default()
                },
                obs: Arc::new(obs::Registry::new()),
                transport: net.transport("daemon"),
                // Simulated deployments run with the persistent
                // fitness store enabled by default: invariant 3
                // (bit-identical results under faults) then also proves
                // the store tier never perturbs a distributed
                // trajectory. See [`ClusterConfig::store`] for why the
                // online sweep opts out.
                store: if config.store {
                    Some(Arc::new(
                        stored::Store::open(run_root.join("store"))
                            .map_err(|e| format!("store: {e}"))?,
                    ))
                } else {
                    None
                },
            },
            RunDir::open(&run_root).map_err(|e| format!("run dir: {e}"))?,
        )?;

        let server = Server::bind_on(net.transport("daemon"), DAEMON_ADDR, daemon.clone())?;
        let server_stop = server.stop_flag();
        handles.push(
            std::thread::Builder::new()
                .name("sim-tuned-server".into())
                .spawn(move || {
                    let _ = server.serve();
                })
                .map_err(|e| format!("spawn server: {e}"))?,
        );

        Ok(Self {
            ctl: net.transport("ctl"),
            net,
            daemon,
            server_stop,
            workers: Mutex::new(workers),
            handles: Mutex::new(handles),
            run_root,
            abandoned: false,
        })
    }

    /// The simulated universe (for installing extra plans or reading
    /// the fault trace).
    #[must_use]
    pub fn net(&self) -> &Arc<SimNet> {
        &self.net
    }

    /// The daemon handle itself — soak invariants read the authoritative
    /// state (tenant accounting, shard snapshots, exact result bits)
    /// straight from it rather than through JSON round-trips.
    #[must_use]
    pub fn daemon(&self) -> &Daemon {
        &self.daemon
    }

    /// A fresh protocol client on the fault-free control link. The soak
    /// reuses one connection for thousands of submits instead of paying
    /// a connect (and a server conn thread) per job.
    ///
    /// # Errors
    /// Connection failures.
    pub fn client(&self) -> Result<Client, String> {
        Client::connect_on(&self.ctl, DAEMON_ADDR)
    }

    /// Current virtual time, milliseconds.
    #[must_use]
    pub fn now_ms(&self) -> u64 {
        self.net.now_micros() / 1000
    }

    /// A tiny deterministic job spec every sim test tunes: the paper's
    /// Opt scenario, total-time goal, one benchmark, population 6 × 3
    /// generations. `ga_seed` picks the search trajectory.
    #[must_use]
    pub fn spec(ga_seed: u64) -> JobSpec {
        Self::spec_for("inline", ga_seed)
    }

    /// Like [`Cluster::spec`], but tuning an arbitrary problem — mixed
    /// sweeps submit `inline`, `flags` and `dss` jobs to one daemon.
    #[must_use]
    pub fn spec_for(problem: &str, ga_seed: u64) -> JobSpec {
        JobSpec {
            name: format!("sim-{problem}-{ga_seed}"),
            scenario: Scenario::Opt,
            goal: Goal::Total,
            arch: "x86-p4".into(),
            suite: vec!["db".into()],
            ga: GaConfig {
                pop_size: 6,
                generations: 3,
                threads: 1,
                seed: ga_seed,
                stagnation_limit: None,
                ..GaConfig::default()
            },
            strategy: "ga".into(),
            problem: problem.into(),
            tenant: "default".into(),
            online: None,
            drift_pos: None,
        }
    }

    /// The fault-free ground truth for a spec: an in-process run of the
    /// same strategy over the same problem (what the daemon's result
    /// must bit-match, faults or no faults). For `inline` specs this is
    /// exactly [`Tuner::tune`]'s trajectory — the problem wrapper is
    /// bit-identical to the direct tuner path (test-enforced in the
    /// `problems` crate).
    ///
    /// # Errors
    /// Invalid spec.
    pub fn expected(spec: &JobSpec) -> Result<(Vec<i64>, f64), String> {
        let problem = spec.build_problem()?;
        let mut strategy = search::build(&spec.strategy, problem.space().clone(), spec.ga.clone())?;
        let backend = ga::LocalEvaluator::new(|genes: &[i64]| problem.fitness(genes), 1);
        while !search::step_with(strategy.as_mut(), &backend) {}
        strategy
            .best()
            .ok_or_else(|| "in-process search finished without a best".into())
    }

    /// Submits a job through the protocol (a control-node client over
    /// the simulated net).
    ///
    /// # Errors
    /// Connection or daemon-side rejection.
    pub fn submit(&self, spec: &JobSpec) -> Result<u64, String> {
        Client::connect_on(&self.ctl, DAEMON_ADDR)?.submit(spec)
    }

    /// Polls a job to a terminal state, driving `on_tick(now_ms)` once
    /// per poll so scenario drivers can fire timed fault events. Gives
    /// up — returning [`Outcome::Hang`] — once `deadline` of *virtual*
    /// time has elapsed since the call.
    pub fn wait(&self, id: u64, deadline: Duration, mut on_tick: impl FnMut(u64)) -> Outcome {
        let started = self.net.now_micros();
        let give_up = started + deadline.as_micros() as u64;
        let mut client = None;
        loop {
            on_tick(self.net.now_micros() / 1000);
            // (Re)connect lazily: the control link is fault-free, but a
            // server-side idle timeout may still close an old session.
            if client.is_none() {
                client = Client::connect_on(&self.ctl, DAEMON_ADDR).ok();
            }
            let state = client.as_mut().and_then(|c| match c.status(id) {
                Ok(job) => job
                    .get("state")
                    .and_then(served::json::Json::as_str)
                    .map(String::from),
                Err(_) => None,
            });
            match state {
                Some(s) if matches!(s.as_str(), "done" | "failed" | "canceled") => {
                    return self.outcome_of(id, &s);
                }
                Some(_) => {}
                None => client = None, // reconnect next tick
            }
            if self.net.now_micros() >= give_up {
                return Outcome::Hang {
                    waited_ms: (self.net.now_micros() - started) / 1000,
                };
            }
            self.ctl.sleep(Duration::from_millis(20));
        }
    }

    /// The authoritative record, straight from the daemon handle (the
    /// protocol round-trips floats through JSON; the handle keeps the
    /// exact bits the assertion needs).
    fn outcome_of(&self, id: u64, state: &str) -> Outcome {
        let Some(record) = self.daemon.status(id) else {
            return Outcome::Failed(format!("job {id} vanished from the daemon"));
        };
        if state == "done" {
            if let Some((genes, fitness)) = record.result {
                return Outcome::Done {
                    genes,
                    fitness,
                    generations: record.generation as u64,
                };
            }
        }
        Outcome::Failed(
            record
                .error
                .unwrap_or_else(|| format!("terminal state '{state}' without a result")),
        )
    }

    /// Crashes a worker: its listener dies, every stream touching it
    /// closes, in-flight frames are lost.
    pub fn crash_worker(&self, i: usize) {
        let workers = self.workers.lock().expect("workers poisoned");
        if let Some(w) = workers.get(i) {
            w.stop.store(true, Ordering::SeqCst);
            self.net.crash(&w.node);
        }
    }

    /// Restarts a crashed worker on the same address: a fresh `evald`
    /// process in the same simulated node. The daemon's `probe_dead`
    /// ping revives it in the pool on the next generation.
    ///
    /// # Errors
    /// Bind failures (e.g. the node was never crashed).
    pub fn restart_worker(&self, i: usize) -> Result<(), String> {
        let mut workers = self.workers.lock().expect("workers poisoned");
        let Some(w) = workers.get_mut(i) else {
            return Err(format!("no worker {i}"));
        };
        self.net.revive(&w.node);
        let (stop, handle) = start_worker(&self.net, &w.node, &w.addr)?;
        w.stop = stop;
        self.handles.lock().expect("handles poisoned").push(handle);
        Ok(())
    }

    /// Symmetric partition between the daemon and one worker.
    pub fn partition_worker(&self, i: usize) {
        let workers = self.workers.lock().expect("workers poisoned");
        if let Some(w) = workers.get(i) {
            self.net.partition("daemon", &w.node);
        }
    }

    /// Heals the daemon↔worker partition.
    pub fn heal_worker(&self, i: usize) {
        let workers = self.workers.lock().expect("workers poisoned");
        if let Some(w) = workers.get(i) {
            self.net.heal("daemon", &w.node);
        }
    }

    /// Jumps the virtual clock forward (blocked threads advance it on
    /// their own; this is for tests that want an explicit fast-forward).
    pub fn advance(&self, d: Duration) {
        self.net.advance(d);
    }

    /// Invariant: every checkpoint the daemon wrote restores cleanly —
    /// strategy checkpoints through [`search::restore`], online
    /// epoch-boundary snapshots through [`online::OnlineState::restore`]
    /// against the job's own spec.
    ///
    /// # Errors
    /// The first unloadable checkpoint.
    pub fn checkpoints_loadable(&self) -> Result<usize, String> {
        let dir = RunDir::open(&self.run_root).map_err(|e| format!("reopen run dir: {e}"))?;
        let mut loaded = 0;
        for id in dir.job_ids() {
            match dir.load_checkpoint(id) {
                None => {}
                Some(Err(e)) => return Err(format!("job {id}: corrupt checkpoint: {e}")),
                Some(Ok(snap)) => {
                    search::restore(snap)
                        .map_err(|e| format!("job {id}: checkpoint rejected: {e}"))?;
                    loaded += 1;
                }
            }
            match dir.load_online(id) {
                None => {}
                Some(Err(e)) => return Err(format!("job {id}: corrupt online snapshot: {e}")),
                Some(Ok(snap)) => {
                    let cfg = Self::online_config(&dir, id)?;
                    online::OnlineState::restore(cfg, snap)
                        .map_err(|e| format!("job {id}: online snapshot rejected: {e}"))?;
                    loaded += 1;
                }
            }
        }
        Ok(loaded)
    }

    /// The final online snapshot a job wrote, validated through
    /// [`online::OnlineState::restore`] before it is returned — the
    /// sweep compares its rows against the in-process reference run.
    ///
    /// # Errors
    /// Missing, corrupt, or unrestorable snapshot (or a job that was
    /// never online).
    pub fn online_snapshot(&self, id: u64) -> Result<online::OnlineSnapshot, String> {
        let dir = RunDir::open(&self.run_root).map_err(|e| format!("reopen run dir: {e}"))?;
        let snap = dir
            .load_online(id)
            .ok_or_else(|| format!("job {id}: no online snapshot on disk"))?
            .map_err(|e| format!("job {id}: corrupt online snapshot: {e}"))?;
        let cfg = Self::online_config(&dir, id)?;
        online::OnlineState::restore(cfg, snap.clone())
            .map_err(|e| format!("job {id}: online snapshot rejected: {e}"))?;
        Ok(snap)
    }

    /// The online config a job's persisted spec denotes.
    fn online_config(dir: &RunDir, id: u64) -> Result<online::OnlineConfig, String> {
        let spec = dir
            .load_spec(id)
            .ok_or_else(|| format!("job {id}: online snapshot without a spec"))?
            .map_err(|e| format!("job {id}: corrupt spec: {e}"))?;
        spec.online
            .as_ref()
            .map(served::job::OnlineSpec::config)
            .ok_or_else(|| format!("job {id}: online snapshot but an offline spec"))
    }

    /// Graceful teardown: stops the server and workers, drains the
    /// daemon, shuts the net down, joins every thread, and removes the
    /// run directory. Call only when no job is hung (use
    /// [`Cluster::abandon`] otherwise).
    pub fn shutdown(mut self) {
        self.abandoned = false;
        self.teardown(true);
    }

    /// Abandons a hung cluster: raises every stop flag and shuts the
    /// net down, but joins nothing — stuck threads degrade to slow real
    /// naps and die with the process. The run directory is left on disk
    /// (leaked threads may still touch it).
    pub fn abandon(mut self) {
        self.abandoned = true;
        self.teardown(false);
    }

    fn teardown(&mut self, join: bool) {
        self.server_stop.store(true, Ordering::SeqCst);
        for w in self.workers.lock().expect("workers poisoned").iter() {
            w.stop.store(true, Ordering::SeqCst);
        }
        if join {
            // Drain the daemon first (its workers park on a real
            // condvar, not the sim clock), then error out every blocked
            // simulated I/O so serve loops observe their stop flags.
            self.daemon.shutdown();
            self.net.shutdown();
            for h in self.handles.lock().expect("handles poisoned").drain(..) {
                let _ = h.join();
            }
            let _ = std::fs::remove_dir_all(&self.run_root);
        } else {
            self.net.shutdown();
            // Dropping the handles detaches the threads.
            self.handles.lock().expect("handles poisoned").clear();
        }
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        // Safety net for early returns in tests: tear down without
        // joining (shutdown()/abandon() already emptied the handle list
        // when they ran).
        if !self.handles.lock().expect("handles poisoned").is_empty() {
            self.teardown(false);
        }
    }
}

fn start_worker(
    net: &Arc<SimNet>,
    node: &str,
    addr: &str,
) -> Result<(Arc<AtomicBool>, JoinHandle<()>), String> {
    let worker = EvalWorker::bind_on(
        net.transport(node),
        addr,
        Chaos::inert(),
        Arc::new(obs::Registry::new()),
    )?;
    let stop = worker.stop_flag();
    let handle = std::thread::Builder::new()
        .name(format!("sim-evald-{node}"))
        .spawn(move || {
            let _ = worker.serve();
        })
        .map_err(|e| format!("spawn worker: {e}"))?;
    Ok((stop, handle))
}
