//! The throughput-scaling suite: a virtual N-worker cluster that proves
//! the batched, pipelined dispatch layer actually *scales* — and keeps
//! its exactly-once and bit-identity guarantees while doing so.
//!
//! Unlike [`cluster`](crate::cluster), which boots the whole daemon
//! stack, this suite drives [`served::dispatch::RemoteEvaluator`]
//! directly against a fleet of **synthetic workers**: tiny protocol
//! servers that answer `eval_batch` by sleeping a configurable virtual
//! duration per genome and returning a pure, closed-form fitness. That
//! makes throughput *measurable in virtual time*: with an eval cost of
//! `c` and `W` workers, a perfectly parallel dispatcher finishes `E`
//! evaluations in `E·c/W` virtual seconds, so
//!
//! ```text
//! efficiency = (E / elapsed) / (W / c)     ∈ (0, 1]
//! ```
//!
//! is an exact parallel-efficiency figure, deterministic from below:
//! the critical path of virtual sleeps is a hard floor on elapsed, and
//! the only nondeterminism — the host descheduling a runnable thread
//! past the grace window ([`crate::GRACE`]), which the advancement rule
//! then reads as idleness — strictly *adds* virtual time. Gated
//! measurements therefore retry ([`run_scale_to`]) and keep the best
//! attempt, which still never exceeds the true efficiency. The headline
//! assertions CI runs:
//!
//! * **2 workers beat serial.** Distributed throughput at `W = 2`
//!   strictly exceeds the analytic one-at-a-time baseline `1/c`.
//! * **≥ 70 % efficiency at 16 workers.** The batched claim loop keeps
//!   a 16-worker fleet at least [`MIN_EFFICIENCY_AT_16`] busy.
//! * **Bit-identity.** Every run — including the seeded fault variants
//!   (lossy/laggy links, a worker crash mid-run, a never-healed
//!   partition) — converges to the same best genome, fitness bits, and
//!   evaluation count as a serial in-process run of the same seed.
//! * **Exactly-once.** `remote_completed + fallback == evaluations`:
//!   no genome is scored twice and none is dropped, whatever the fault
//!   schedule did to the frames carrying it.
//!
//! Two details keep the numbers deterministic. The synthetic cost is
//! spent with `transport.sleep(..)` — *virtual* time — because a
//! `busy()` bracket blocks clock advancement without adding any; and
//! the worker pool's observability registry is rebuilt on the
//! simulation clock (see `TransportClock`), so the dispatcher's
//! adaptive RTT model sees virtual round-trips instead of wall-clock
//! scheduling noise.

use std::io::{BufReader, BufWriter};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use ga::{Evaluator, GaConfig, Genome, LocalEvaluator, PendingScores, PipelinedEvaluator, Ranges};
use served::dispatch::{DispatchConfig, RemoteEvaluator, WorkerPool};
use served::json::Json;
use served::proto::{
    err, eval_batch_response, ok_with, parse_eval_batch_request, parse_request, read_frame,
    write_frame, EvalOutcome, Frame,
};
use served::{Metrics, NetStream, Transport};

use crate::net::{FaultPlan, SimNet};

/// Default virtual cost of one fitness evaluation. Large against every
/// per-frame overhead in the simulation, so throughput is eval-bound
/// the way a real simulator-backed fleet is.
pub const EVAL_COST: Duration = Duration::from_millis(30);

/// The parallel-efficiency floor asserted at 16 workers.
pub const MIN_EFFICIENCY_AT_16: f64 = 0.7;

/// Attempts a gated measurement gets before conceding its threshold.
/// One attempt is definitive on a quiet host; the retries exist for
/// saturated CI machines, where scheduler starvation inflates virtual
/// elapsed (see [`run_scale_to`] for why that bias is one-sided).
pub const MEASURE_ATTEMPTS: usize = 4;

/// Worker counts the default scaling sweep measures. 50 deliberately
/// over-provisions a 64-genome generation: its report shows saturation
/// (throughput flat, efficiency pop-bound), which is the honest answer,
/// so only the 16-worker point carries an efficiency assertion.
pub const WORKER_COUNTS: &[usize] = &[1, 2, 4, 8, 16, 50];

/// Gene ranges for the synthetic problem — the same 4-threshold shape
/// as the inlining problem, so batch sizes and memo behavior match the
/// real workload.
#[must_use]
pub fn ranges() -> Ranges {
    Ranges::new(vec![(1, 50), (1, 30), (1, 15), (1, 400)])
}

/// The pure synthetic fitness: normalized distance to (7, 11, 3, 120).
/// Closed-form and branch-free, so the worker, the dispatch fallback,
/// and the serial reference compute bit-identical values by
/// construction.
#[must_use]
pub fn synthetic_fitness(g: &[i64]) -> f64 {
    let target = [7.0, 11.0, 3.0, 120.0];
    g.iter()
        .zip(target)
        .map(|(&x, t)| {
            let d = (x as f64 - t) / t;
            d * d
        })
        .sum::<f64>()
        .sqrt()
}

/// The analytic serial baseline: one evaluator computing back to back,
/// in evaluations per virtual second. This is the *most favorable*
/// local figure (zero overhead), so beating it is meaningful.
#[must_use]
pub fn serial_evals_per_sec(eval_cost: Duration) -> f64 {
    1e6 / u64::try_from(eval_cost.as_micros())
        .unwrap_or(u64::MAX)
        .max(1) as f64
}

/// Knobs for one [`run_scale`] measurement.
#[derive(Debug, Clone)]
pub struct ScaleConfig {
    /// Seed for the simulated universe *and* the GA.
    pub seed: u64,
    /// Synthetic workers ("w0", "w1", …).
    pub workers: usize,
    /// GA population per generation (the dispatchable batch).
    pub pop_size: usize,
    /// GA generations.
    pub generations: usize,
    /// Virtual cost of one evaluation on a worker.
    pub eval_cost: Duration,
    /// Dispatcher backpressure bound / adaptive batch ceiling. The
    /// suite pins this to 1: on a zero-RTT virtual link the adaptive
    /// tuner's fixed point *is* one genome per claim (nothing to
    /// amortize), and larger unprimed claims make the efficiency
    /// measurement hostage to real-time thread-start races — under
    /// machine load the grace-window clock can advance mid-handshake,
    /// poisoning the RTT model and skewing claim sizes. Adaptive
    /// sizing itself is covered by the `served::dispatch` unit tests
    /// and the real-TCP bench (`scripts/bench.sh`).
    pub max_inflight: usize,
    /// Fault plan installed on every daemon↔worker link (both
    /// directions). Control links stay clean.
    pub plan: FaultPlan,
    /// Crash "w0" this far into the run (virtual time), never reviving
    /// it. The fleet must absorb the loss.
    pub crash_w0_after: Option<Duration>,
    /// Partition "w1" from the daemon before the run starts, never
    /// healing it. The dispatcher must route around it.
    pub partition_w1: bool,
}

impl ScaleConfig {
    /// A fault-free measurement at `workers` workers.
    #[must_use]
    pub fn new(seed: u64, workers: usize) -> Self {
        Self {
            seed,
            workers,
            pop_size: 64,
            generations: 4,
            eval_cost: EVAL_COST,
            max_inflight: 1,
            plan: FaultPlan::default(),
            crash_w0_after: None,
            partition_w1: false,
        }
    }
}

/// What one [`run_scale`] measured and verified.
#[derive(Debug, Clone)]
pub struct ScaleReport {
    /// Workers the run was provisioned with.
    pub workers: usize,
    /// Backend evaluations the strategy requested (memo misses).
    pub evaluations: usize,
    /// Virtual microseconds the whole search took.
    pub elapsed_micros: u64,
    /// Evaluations per virtual second.
    pub evals_per_sec: f64,
    /// `evals_per_sec` over the ideal `workers / eval_cost` rate.
    pub efficiency: f64,
    /// Evaluations completed over the wire.
    pub remote_evals: u64,
    /// Evaluations the dispatcher fell back to computing locally.
    pub fallback_evals: u64,
    /// `eval_batch` frames sent (so `evaluations / batches` is the
    /// realized mean batch size).
    pub batches: u64,
    /// Whether best genome, fitness bits, and evaluation count all
    /// equal the serial reference run of the same seed.
    pub bit_identical: bool,
    /// Whether `remote_evals + fallback_evals == evaluations`: every
    /// genome scored exactly once, none lost, none double-counted.
    pub lossless: bool,
    /// The tuned genome.
    pub best_genes: Vec<i64>,
    /// Its fitness.
    pub best_fitness: f64,
}

/// Routes the dispatcher's RTT measurements onto the simulation's
/// virtual clock. Without this the pool's registry reads wall time, and
/// the adaptive batch tuner would model real scheduling noise instead
/// of the (deterministic) virtual round-trips.
#[derive(Debug)]
struct TransportClock(Arc<dyn Transport>);

impl obs::Clock for TransportClock {
    fn now_micros(&self) -> u64 {
        self.0.now_micros()
    }
}

/// Starts a synthetic worker on simulated node `node`: a protocol
/// server whose `eval_batch` sleeps `cost` of virtual time per genome
/// and answers with [`synthetic_fitness`]. Returns its address and stop
/// flag.
fn synthetic_worker(net: &Arc<SimNet>, node: &str, cost: Duration) -> (String, Arc<AtomicBool>) {
    let transport = net.transport(node);
    let listener = transport
        .bind(&format!("{node}:7000"))
        .expect("bind synthetic worker");
    let addr = listener.local_addr();
    let stop = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&stop);
    std::thread::spawn(move || {
        while !flag.load(Ordering::SeqCst) {
            match listener.accept(Duration::from_millis(50)) {
                Ok(Some(stream)) => serve_conn(stream, cost, &flag, &*transport),
                Ok(None) => {}
                Err(_) => return,
            }
        }
    });
    (addr, stop)
}

fn serve_conn(
    stream: Box<dyn NetStream>,
    cost: Duration,
    stop: &AtomicBool,
    transport: &dyn Transport,
) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    let mut writer = BufWriter::new(write_half);
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let line = match read_frame(&mut reader) {
            Frame::Line(line) => line,
            Frame::Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue; // idle poll keeps the stop flag live
            }
            _ => return,
        };
        // Everything between reading a frame and finishing its reply is
        // worker compute: bracket it as busy so the virtual clock cannot
        // advance while this thread is runnable but starved by a loaded
        // host. The bracket is dropped around each virtual sleep — busy
        // blocks clock advancement outright, and the sleep *is* the
        // clock moving.
        let guard = served::net::busy(transport);
        let Ok((cmd, body)) = parse_request(&line) else {
            return;
        };
        let ok = match cmd.as_str() {
            "task" | "ping" => write_frame(&mut writer, &ok_with(vec![])).is_ok(),
            "eval_batch" => {
                let Ok((batch_id, evals)) = parse_eval_batch_request(&body) else {
                    return;
                };
                let results: Vec<(usize, EvalOutcome)> = evals
                    .iter()
                    .map(|e| {
                        // The synthetic cost is *slept*, not computed:
                        // only transport.sleep spends virtual time (a
                        // busy() bracket would block the clock without
                        // adding any).
                        transport.busy_end();
                        transport.sleep(cost);
                        transport.busy_begin();
                        (e.id, EvalOutcome::Fitness(synthetic_fitness(&e.genes)))
                    })
                    .collect();
                write_frame(&mut writer, &eval_batch_response(batch_id, &results)).is_ok()
            }
            _ => write_frame(&mut writer, &err("unexpected verb")).is_ok(),
        };
        drop(guard);
        if !ok {
            return;
        }
    }
}

/// Keeps the transport's busy bracket held while the *caller* computes
/// (GA propose/tell between generations) and releases it only across
/// the inner `wait()`, when the dispatch fan-out is the active party.
/// Without it, a loaded host can deschedule the main thread mid-propose
/// for longer than the simulation's grace window, and the virtual clock
/// advances spuriously — to a worker's accept-poll deadline, say —
/// inflating elapsed virtual time with real-world scheduling noise.
struct MainThreadBusy<'e> {
    inner: &'e RemoteEvaluator<'e>,
    transport: Arc<dyn Transport>,
}

struct BusyHandoff<'p> {
    inner: Box<dyn PendingScores + 'p>,
    transport: Arc<dyn Transport>,
}

impl PendingScores for BusyHandoff<'_> {
    fn wait(self: Box<Self>) -> Vec<f64> {
        self.transport.busy_end();
        let scores = self.inner.wait();
        self.transport.busy_begin();
        scores
    }
}

impl Evaluator for MainThreadBusy<'_> {
    fn evaluate(&self, genomes: &[Genome]) -> Vec<f64> {
        self.begin(genomes).wait()
    }
}

impl PipelinedEvaluator for MainThreadBusy<'_> {
    fn begin<'s>(&'s self, genomes: &[Genome]) -> Box<dyn PendingScores + 's> {
        Box::new(BusyHandoff {
            inner: self.inner.begin(genomes),
            transport: Arc::clone(&self.transport),
        })
    }
}

/// One virtual universe at a time per process. A `cargo test` harness
/// runs `#[test]`s concurrently, and two simultaneous measurements
/// starve each other's grace windows — each universe's runnable threads
/// fight the other's for the same cores, and every starvation past
/// [`crate::GRACE`] is charged as spurious virtual time. Serializing
/// the measurement costs nothing on the machines that need it (the
/// work was going to timeshare anyway) and keeps the efficiency
/// figures honest.
static MEASURE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Idle-grace slice for scale universes, 4× the sweep default
/// ([`crate::GRACE`]). Elapsed virtual time is the *graded quantity*
/// here, and every time the host starves a runnable thread past the
/// slice, the idle-advance rule charges the lull as spurious virtual
/// time — so the measurement buys scheduler-latency tolerance with
/// wall clock. Cheap in this suite: one universe runs at a time and
/// its virtual events are coarse (30 ms eval sleeps), so legitimate
/// idle hops are few.
const MEASURE_GRACE: Duration = Duration::from_millis(2);

/// Measures one configuration: boots the virtual fleet, runs the full
/// GA through the batched pipelined dispatcher, then re-runs the same
/// seed serially in-process and compares bit for bit.
#[must_use]
pub fn run_scale(cfg: &ScaleConfig) -> ScaleReport {
    let _one_universe = MEASURE_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let net = SimNet::with_grace(cfg.seed, MEASURE_GRACE);
    let mut addrs = Vec::new();
    let mut stops = Vec::new();
    for i in 0..cfg.workers {
        let node = format!("w{i}");
        let (addr, stop) = synthetic_worker(&net, &node, cfg.eval_cost);
        if cfg.plan.is_active() {
            net.set_plan("daemon", &node, cfg.plan);
            net.set_plan(&node, "daemon", cfg.plan);
        }
        addrs.push(addr);
        stops.push(stop);
    }
    if cfg.partition_w1 && cfg.workers > 1 {
        net.partition("daemon", "w1");
    }
    if let Some(after) = cfg.crash_w0_after {
        let chaos_net = Arc::clone(&net);
        let chaos_clock = net.transport("chaos");
        std::thread::spawn(move || {
            chaos_clock.sleep(after);
            chaos_net.crash("w0");
        });
    }

    let dispatch = DispatchConfig {
        connect_timeout: Duration::from_millis(50),
        request_timeout: Duration::from_millis(250),
        backoff_base: Duration::from_millis(10),
        backoff_cap: Duration::from_millis(80),
        max_inflight: cfg.max_inflight,
        idle_poll: Duration::from_millis(1),
        ..DispatchConfig::default()
    };
    let mut pool = WorkerPool::with_workers(dispatch, &addrs);
    pool.set_transport(net.transport("daemon"));
    pool.set_obs(Arc::new(obs::Registry::with_clock(Arc::new(
        TransportClock(net.transport("daemon")),
    ))));
    let pool = Arc::new(pool);
    let metrics = Arc::new(Metrics::new());
    let remote = RemoteEvaluator::new(&pool, Json::Null, &metrics, |g| synthetic_fitness(g));

    let ga = GaConfig {
        pop_size: cfg.pop_size,
        generations: cfg.generations,
        threads: 1,
        seed: cfg.seed,
        stagnation_limit: None,
        ..GaConfig::default()
    };
    let mut strategy = search::build("ga", ranges(), ga.clone()).expect("ga strategy builds");
    let clock = net.transport("daemon");
    let driver = MainThreadBusy {
        inner: &remote,
        transport: Arc::clone(&clock),
    };
    clock.busy_begin();
    let started = clock.now_micros();
    while !search::step_pipelined(strategy.as_mut(), &driver, |_| {}) {}
    let elapsed_micros = clock.now_micros().saturating_sub(started).max(1);
    clock.busy_end();

    // The serial reference: same seed, in-process backend, no virtual
    // cost. Distribution must change timing only, never these numbers.
    let mut reference = search::build("ga", ranges(), ga).expect("ga strategy builds");
    let local = LocalEvaluator::new(|g: &[i64]| synthetic_fitness(g), 1);
    while !search::step_with(reference.as_mut(), &local) {}

    let (best_genes, best_fitness) = strategy.best().expect("scale run converged");
    let (ref_genes, ref_fitness) = reference.best().expect("reference converged");
    let bit_identical = best_genes == ref_genes
        && best_fitness.to_bits() == ref_fitness.to_bits()
        && strategy.evaluations() == reference.evaluations();

    for s in &stops {
        s.store(true, Ordering::SeqCst);
    }
    net.shutdown();

    let evaluations = strategy.evaluations();
    let remote_evals = metrics.remote_completed.load(Ordering::Relaxed);
    let fallback_evals = metrics.remote_fallback_evals.load(Ordering::Relaxed);
    let evals_per_sec = evaluations as f64 * 1e6 / elapsed_micros as f64;
    let efficiency =
        evals_per_sec / (cfg.workers.max(1) as f64 * serial_evals_per_sec(cfg.eval_cost));
    ScaleReport {
        workers: cfg.workers,
        evaluations,
        elapsed_micros,
        evals_per_sec,
        efficiency,
        remote_evals,
        fallback_evals,
        batches: metrics.remote_batches.load(Ordering::Relaxed),
        bit_identical,
        lossless: remote_evals + fallback_evals == evaluations as u64,
        best_genes,
        best_fitness,
    }
}

/// Runs `cfg` up to `attempts` times and returns the most efficient
/// report, stopping early once one reaches `target` efficiency.
///
/// Sound because the measurement's noise is one-sided: virtual elapsed
/// can never undershoot the workload's critical path of virtual sleeps,
/// and the only nondeterminism — a loaded host descheduling a runnable
/// (but unbracketed) thread for longer than [`crate::GRACE`], which the
/// idle-advance rule then mistakes for quiescence — *adds* spurious
/// virtual time. So the best attempt is the faithful throughput figure
/// and still a lower bound on the true parallel efficiency.
///
/// Correctness flags are not measurements: a bit-identity or
/// losslessness failure is a real bug on any attempt, so the first
/// attempt that trips one is returned immediately, un-retried.
#[must_use]
pub fn run_scale_to(cfg: &ScaleConfig, target: f64, attempts: usize) -> ScaleReport {
    let mut best: Option<ScaleReport> = None;
    for _ in 0..attempts.max(1) {
        let report = run_scale(cfg);
        if !(report.bit_identical && report.lossless) {
            return report;
        }
        let reached = report.efficiency >= target;
        if best
            .as_ref()
            .is_none_or(|b| report.efficiency > b.efficiency)
        {
            best = Some(report);
        }
        if reached {
            break;
        }
    }
    best.expect("at least one attempt ran")
}

/// The efficiency a CI-gated worker count must reach: 2 workers must
/// beat the serial baseline (efficiency 1/2, taken with a margin) and
/// 16 must hold [`MIN_EFFICIENCY_AT_16`]. Ungated counts are reported
/// as measured, single-shot — nothing asserts on them.
fn gate_target(workers: usize) -> Option<f64> {
    match workers {
        2 => Some(0.55),
        16 => Some(MIN_EFFICIENCY_AT_16),
        _ => None,
    }
}

/// The full suite: the clean scaling sweep over `counts`, plus three
/// fault variants at 4 workers (lossy/laggy links, a mid-run crash of
/// "w0", a never-healed partition of "w1").
#[derive(Debug, Clone)]
pub struct ScaleSuite {
    /// Fault-free measurements, one per worker count.
    pub sweep: Vec<ScaleReport>,
    /// The fault variants, labeled.
    pub faulted: Vec<(String, ScaleReport)>,
}

impl ScaleSuite {
    /// The clean-sweep report at `workers`, if that count was measured.
    #[must_use]
    pub fn at(&self, workers: usize) -> Option<&ScaleReport> {
        self.sweep.iter().find(|r| r.workers == workers)
    }

    /// The composite verdict CI greps for: every run (clean and
    /// faulted) bit-identical and lossless, 2 workers strictly beating
    /// the serial baseline, and ≥ [`MIN_EFFICIENCY_AT_16`] efficiency
    /// at 16 workers — each threshold checked only when its worker
    /// count was part of the sweep.
    #[must_use]
    pub fn ok(&self) -> bool {
        let clean = self
            .sweep
            .iter()
            .chain(self.faulted.iter().map(|(_, r)| r))
            .all(|r| r.bit_identical && r.lossless);
        let beats_local = self
            .at(2)
            .is_none_or(|r| r.evals_per_sec > serial_evals_per_sec(EVAL_COST));
        let efficient = self
            .at(16)
            .is_none_or(|r| r.efficiency >= MIN_EFFICIENCY_AT_16);
        clean && beats_local && efficient
    }
}

/// Runs the whole suite for one seed. `counts` is typically
/// [`WORKER_COUNTS`]; CI's fast profile passes a shorter list.
#[must_use]
pub fn run_scale_suite(seed: u64, counts: &[usize]) -> ScaleSuite {
    let sweep = counts
        .iter()
        .map(|&w| {
            let cfg = ScaleConfig::new(seed, w);
            match gate_target(w) {
                Some(target) => run_scale_to(&cfg, target, MEASURE_ATTEMPTS),
                None => run_scale(&cfg),
            }
        })
        .collect();
    let mut faulted = Vec::new();

    let mut lossy = ScaleConfig::new(seed.wrapping_add(1), 4);
    lossy.plan = FaultPlan {
        drop_p: 0.05,
        dup_p: 0.05,
        delay_p: 0.25,
        delay_max_micros: 20_000,
    };
    faulted.push(("lossy-links".to_string(), run_scale(&lossy)));

    let mut crash = ScaleConfig::new(seed.wrapping_add(2), 4);
    crash.crash_w0_after = Some(Duration::from_millis(500));
    faulted.push(("crash-w0".to_string(), run_scale(&crash)));

    let mut part = ScaleConfig::new(seed.wrapping_add(3), 4);
    part.partition_w1 = true;
    faulted.push(("partition-w1".to_string(), run_scale(&part)));

    ScaleSuite { sweep, faulted }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_fitness_is_pure_and_minimized_at_the_target() {
        let at_target = synthetic_fitness(&[7, 11, 3, 120]);
        assert_eq!(at_target, 0.0);
        let off = synthetic_fitness(&[50, 30, 15, 400]);
        assert!(off > 0.0);
        assert_eq!(
            off.to_bits(),
            synthetic_fitness(&[50, 30, 15, 400]).to_bits()
        );
    }

    #[test]
    fn serial_baseline_matches_the_cost() {
        let rate = serial_evals_per_sec(Duration::from_millis(30));
        assert!((rate - 33.333).abs() < 0.01, "got {rate}");
    }
}
