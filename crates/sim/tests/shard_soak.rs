//! Tier-1 smoke over the multi-tenant shard soak and bench: small
//! scale so `cargo test` stays fast — `simtest --shard-seeds` runs the
//! headline 1000-client / 100-worker sweep in CI's soak stage.

use sim::{run_shard_bench, run_shard_seed, ShardScale};

#[test]
fn a_small_soak_holds_every_invariant() {
    let scale = ShardScale {
        clients: 32,
        workers: 6,
        shards: 4,
        runners: 4,
    };
    let mut expected = sim::sweep::Expected::new();
    for seed in [11, 12] {
        let r = run_shard_seed(seed, &scale, &mut expected);
        assert!(r.is_ok(), "soak seed {seed} failed: {:?}", r.failures);
        assert!(r.admitted > 0, "soak seed {seed} admitted nothing");
        assert_eq!(
            r.done, r.admitted,
            "soak seed {seed}: every admitted job must finish"
        );
        // The capped tenant's budget admits roughly a quarter of its
        // clients; the rest must have seen structured quota rejects.
        assert!(
            r.quota_rejects > 0,
            "soak seed {seed} never exercised the quota path"
        );
    }
}

#[test]
fn the_bench_gate_holds_at_small_scale() {
    let r = run_shard_bench(21, 8, 4, &[1, 4]);
    assert_eq!(r.points.len(), 2);
    assert!(
        r.points.iter().all(|p| p.all_done),
        "bench lost jobs: {:?}",
        r.points
    );
    assert!(
        r.sharded_beats_single(),
        "sharded throughput fell below the single-queue baseline: {:?}",
        r.points
    );
}
