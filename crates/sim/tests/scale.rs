//! The throughput-scaling suite's headline assertions, on the virtual
//! cluster: distributed dispatch beats the serial baseline at 2
//! workers, holds ≥ 70 % parallel efficiency at 16, and stays
//! exactly-once and bit-identical under seeded fault sweeps.
//!
//! Everything here runs on `sim`'s virtual clock — throughput is
//! measured in *virtual* seconds against a synthetic per-eval cost, so
//! the thresholds are exact. No test in this file holds a wall-clock
//! deadline. Efficiency-graded measurements go through
//! `scale::run_scale_to`, which retries on a starved host: scheduler
//! noise can only *inflate* virtual elapsed, so the best of a few
//! attempts is the faithful (and still conservative) figure, while
//! bit-identity and losslessness must hold on every attempt.

use std::time::Duration;

use sim::scale::{self, ScaleConfig};
use sim::FaultPlan;

#[test]
fn two_workers_beat_the_serial_baseline() {
    // Beating serial at 2 workers means efficiency above 1/2; retry to
    // a margin above that so one starved attempt can't flake the test.
    let report = scale::run_scale_to(&ScaleConfig::new(11, 2), 0.55, scale::MEASURE_ATTEMPTS);
    let serial = scale::serial_evals_per_sec(scale::EVAL_COST);
    assert!(
        report.evals_per_sec > serial,
        "2 workers must beat one-at-a-time: {:.2} vs {serial:.2} evals/vsec",
        report.evals_per_sec
    );
    assert!(report.bit_identical, "distribution changed the result");
    assert!(report.lossless, "a genome was lost or double-counted");
    assert_eq!(report.fallback_evals, 0, "healthy fleet needs no fallback");
    assert!(
        report.batches as usize <= report.evaluations,
        "batching cannot send more frames than evals: {} frames / {} evals",
        report.batches,
        report.evaluations
    );
}

#[test]
fn sixteen_workers_hold_the_efficiency_floor() {
    let report = scale::run_scale_to(
        &ScaleConfig::new(11, 16),
        scale::MIN_EFFICIENCY_AT_16,
        scale::MEASURE_ATTEMPTS,
    );
    assert!(
        report.efficiency >= scale::MIN_EFFICIENCY_AT_16,
        "16-worker efficiency {:.3} under the {:.2} floor ({} evals in {} vus)",
        report.efficiency,
        scale::MIN_EFFICIENCY_AT_16,
        report.evaluations,
        report.elapsed_micros
    );
    assert!(report.bit_identical, "distribution changed the result");
    assert!(report.lossless, "a genome was lost or double-counted");
    assert_eq!(report.fallback_evals, 0, "healthy fleet needs no fallback");
}

#[test]
fn lossy_links_lose_no_work_and_change_no_bits() {
    for seed in [3, 5] {
        let mut cfg = ScaleConfig::new(seed, 4);
        cfg.plan = FaultPlan {
            drop_p: 0.05,
            dup_p: 0.05,
            delay_p: 0.25,
            delay_max_micros: 20_000,
        };
        let report = scale::run_scale(&cfg);
        assert!(
            report.bit_identical,
            "seed {seed}: faults changed the result"
        );
        assert!(
            report.lossless,
            "seed {seed}: faults lost or duplicated work"
        );
    }
}

#[test]
fn a_worker_crash_mid_run_is_absorbed() {
    let mut cfg = ScaleConfig::new(9, 4);
    cfg.crash_w0_after = Some(Duration::from_millis(500));
    let report = scale::run_scale(&cfg);
    assert!(report.bit_identical, "the crash changed the result");
    assert!(report.lossless, "the crash lost or duplicated work");
    assert!(
        report.remote_evals > 0,
        "the surviving workers should still carry the load"
    );
}

#[test]
fn a_partitioned_worker_is_routed_around() {
    let mut cfg = ScaleConfig::new(13, 4);
    cfg.partition_w1 = true;
    let report = scale::run_scale(&cfg);
    assert!(report.bit_identical, "the partition changed the result");
    assert!(report.lossless, "the partition lost or duplicated work");
    assert!(
        report.remote_evals > 0,
        "the reachable workers should still carry the load"
    );
}

#[test]
fn the_suite_verdict_composes_the_thresholds() {
    let suite = scale::run_scale_suite(7, &[2, 16]);
    for (label, report) in &suite.faulted {
        assert!(report.bit_identical, "{label}: faults changed the result");
        assert!(report.lossless, "{label}: faults lost or duplicated work");
    }
    assert!(suite.ok(), "composite scaling verdict failed: {suite:?}");
}
